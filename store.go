package dphist

// The release store: the retention side of the serving layer. A data
// owner mints releases rarely (each one spends budget, permanently) and
// serves queries against them indefinitely, so the natural deployment
// keeps every live release in memory behind a name and answers lookups
// and range batches at traffic. Store is that retention layer: named,
// versioned, bounded by LRU capacity and TTL, safe for concurrent use,
// and — opened through OpenStore — durable across restarts. Releases
// themselves are immutable, so Store hands out the stored values
// directly; a query never copies a release.
//
// Three scaling axes are built in:
//
//   - Sharding. Entries hash across N independent shards, each behind
//     its own RWMutex, so hot Get/Query metadata traffic does not
//     serialize on one lock — and query batches snapshot the release
//     plus its compiled query plan under a brief read lock and compute
//     *outside* it, so a 100k-range batch never stalls a Put. Unbounded
//     stores default to a small shard pool; capacity-bounded stores
//     default to one shard because exact LRU ordering is global state
//     (WithShards overrides either way, with the capacity split per
//     shard).
//
//   - Namespaces. Store.Namespace(name) scopes a view onto its own
//     release keyspace and its own epsilon Accountant, so one store
//     serves many protected datasets (tenants) with independent budgets.
//     The plain Store methods are the "default" namespace.
//
//   - Answer caching. WithQueryCache bounds a sharded LRU cache of
//     whole batch answers keyed by (namespace, name, version, specs),
//     with single-flight stampede protection; entries are invalidated
//     on Put, Delete, TTL expiry, and capacity eviction, so a cached
//     answer is always the answer the live release would give.

import (
	"container/list"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dphist/dphist/internal/plan"
	"github.com/dphist/dphist/internal/qcache"
)

// ErrReleaseNotFound reports a Store lookup under a name that holds no
// live release: never stored, deleted, evicted by capacity, or expired
// by TTL.
var ErrReleaseNotFound = errors.New("dphist: release not found")

// ErrBadName reports a namespace or release name the store refuses to
// create state under: empty, ".", "..", or containing "/". Such names
// are unroutable or ambiguous as URL path segments under the HTTP
// surface's /v1/ns/{ns}/ routes (clients and proxies normalize dot
// segments away, and a slash splits one name into two segments), so the
// store rejects them at the boundary rather than minting releases no
// serving layer can address.
var ErrBadName = errors.New("dphist: invalid name")

// ValidateName reports whether a namespace or release name is
// admissible to the store: non-empty, not "." or "..", and free of "/".
// Anything else — including names needing percent-escaping, which the
// HTTP layer handles — is allowed.
func ValidateName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("%w: empty", ErrBadName)
	case name == "." || name == "..":
		return fmt.Errorf("%w: %q is a path dot segment", ErrBadName, name)
	case strings.Contains(name, "/"):
		return fmt.Errorf("%w: %q contains %q", ErrBadName, name, "/")
	}
	return nil
}

// DefaultNamespace is the namespace the plain Store methods operate on.
const DefaultNamespace = "default"

// StoreEntry describes one stored release.
type StoreEntry struct {
	// Namespace is the tenant keyspace the release is stored in; the
	// plain Store methods use DefaultNamespace.
	Namespace string
	// Name is the key the release is stored under.
	Name string
	// Version counts Puts under this namespace/name, starting at 1.
	// Versions are monotone for the lifetime of the Store — including
	// across restarts of a durable store: re-storing a name after
	// deletion or eviction continues the sequence rather than restarting
	// it, so an analyst can always tell a re-mint from a re-read.
	Version int
	// Strategy, Epsilon, and Domain summarize the release without
	// touching its counts.
	Strategy Strategy
	Epsilon  float64
	Domain   int
	// StoredAt is the Put time; TTL expiry is measured from it.
	StoredAt time.Time
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithCapacity bounds the number of retained releases: a Put that grows
// the store past n evicts least-recently-used entries first. Get and
// Query refresh recency. n <= 0 (the default) means unbounded. The bound
// counts entries across all namespaces; with more than one shard it is
// enforced per shard (each gets ceil(n/shards)), so the store-wide count
// stays within one entry per shard of n.
func WithCapacity(n int) StoreOption {
	return func(s *Store) { s.capacity = n }
}

// WithTTL expires entries d after they were stored, regardless of use —
// a privacy-motivated bound as much as a memory one, since a deployment
// may promise analysts data no staler than d. d <= 0 (the default)
// means entries never expire.
func WithTTL(d time.Duration) StoreOption {
	return func(s *Store) { s.ttl = d }
}

// WithShards fixes the number of hash shards. The default is 1 when a
// capacity bound is set (exact global LRU) and defaultShards otherwise.
// It panics unless 1 <= n <= 4096.
func WithShards(n int) StoreOption {
	if n < 1 || n > 4096 {
		panic(fmt.Sprintf("dphist: shard count %d outside [1, 4096]", n))
	}
	return func(s *Store) { s.shardCount = n }
}

// WithBudget sets the total epsilon budget each namespace Accountant is
// created with (default 1.0). It panics unless the budget is positive
// and finite, matching NewAccountant.
func WithBudget(total float64) StoreOption {
	checkBudget(total)
	return func(s *Store) { s.budget = total }
}

// WithQueryCache enables the sharded answer cache on the store's query
// paths, bounded to n cached batches per query family (range batches
// and rectangle batches are cached separately). Cached answers are
// keyed by (namespace, name, version, spec batch) and invalidated on
// Put, Delete, TTL expiry, and capacity eviction, so they are always
// the answers the live release would give; concurrent misses for one
// batch are collapsed to a single computation. n <= 0 (the default)
// disables caching.
func WithQueryCache(n int) StoreOption {
	return func(s *Store) { s.cacheCap = n }
}

// defaultShards is the shard count for unbounded stores; capacity-
// bounded stores default to a single shard so LRU order stays exact.
const defaultShards = 8

// storeItem is one live entry plus its position in the shard's recency
// list. The compiled query plan rides alongside the release so the
// query paths can snapshot both under one brief read lock and answer
// whole batches outside it.
type storeItem struct {
	release Release
	plan    *plan.Plan // nil for external Release implementations
	entry   StoreEntry
	elem    *list.Element // element of storeShard.recency; Value is the nsKey
}

// nsKey addresses one entry: a name inside a namespace.
type nsKey struct {
	ns   string
	name string
}

// storeShard is one independently locked slice of the keyspace. Writers
// take the write lock; the query/get snapshot path takes only the read
// lock when no recency bookkeeping is needed, so a slow batch never
// stalls a Put on the same shard.
type storeShard struct {
	mu       sync.RWMutex
	items    map[nsKey]*storeItem
	recency  *list.List    // front = most recently used
	versions map[nsKey]int // per-key Put counter; survives eviction
}

// Store is a versioned release store with LRU and TTL eviction, hash
// sharding, and per-namespace budget accounting. The zero value is not
// usable; construct with NewStore (in-memory) or OpenStore (durable).
// All methods are safe for concurrent use.
//
// Version counters deliberately survive eviction and deletion (so a
// re-mint is always distinguishable from a re-read), which means the
// counter map grows with the number of distinct names ever stored —
// a few words per name — even when capacity bounds the releases
// themselves. Deployments minting under unbounded fresh names should
// recycle a fixed name scheme.
type Store struct {
	capacity   int // requested store-wide bound; 0 = unbounded
	shardCap   int // derived per-shard bound
	ttl        time.Duration
	shardCount int
	budget     float64
	cacheCap   int // answer-cache bound per query family; 0 = disabled
	snapEvery  int
	syncWrites bool
	now        func() time.Time // injectable clock for tests

	shards []*storeShard

	// The answer caches; nil when caching is disabled. Their locks are
	// leaves: the cache never calls back into the store, so holding a
	// shard lock while invalidating is safe.
	rangeCache *qcache.Cache[[]RangeSpec]
	rectCache  *qcache.Cache[[]RectSpec]

	acctMu sync.Mutex
	accts  map[string]*Accountant

	// readOnly marks a replica store: local mutations (Put, Delete,
	// Mint, Accountant.Spend) are refused with ErrReadOnly, and state
	// changes only through the Apply/Bootstrap replication surface. See
	// replica.go.
	readOnly bool
	// applyMu serializes Apply and Bootstrap on a replica.
	applyMu sync.Mutex
	// applied is the highest primary sequence folded into this store —
	// on a replica, the replication high-water mark; on a primary it
	// mirrors the journal sequence.
	applied atomic.Uint64

	persistState // all zero for in-memory stores; see persist.go
}

// NewStore returns an empty in-memory store with the given options
// applied. State dies with the process; see OpenStore for the durable
// variant.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		budget:     1.0,
		snapEvery:  defaultSnapshotEvery,
		syncWrites: true,
		now:        time.Now,
		accts:      make(map[string]*Accountant),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.shardCount == 0 {
		if s.capacity > 0 {
			s.shardCount = 1
		} else {
			s.shardCount = defaultShards
		}
	}
	if s.capacity > 0 {
		s.shardCap = (s.capacity + s.shardCount - 1) / s.shardCount
	}
	s.shards = make([]*storeShard, s.shardCount)
	for i := range s.shards {
		s.shards[i] = &storeShard{
			items:    make(map[nsKey]*storeItem),
			recency:  list.New(),
			versions: make(map[nsKey]int),
		}
	}
	if s.cacheCap > 0 {
		s.rangeCache = qcache.New(s.cacheCap, slices.Equal[[]RangeSpec], slices.Clone[[]RangeSpec])
		s.rectCache = qcache.New(s.cacheCap, slices.Equal[[]RectSpec], slices.Clone[[]RectSpec])
	}
	return s
}

// shard returns the shard owning key k, by inline FNV-1a over the
// namespace and name — a few nanoseconds for typical keys, cheap enough
// for the read hot path (maphash's per-call setup is not).
func (s *Store) shard(k nsKey) *storeShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.ns); i++ {
		h = (h ^ uint64(k.ns[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("a","bc") must not collide with ("ab","c")
	for i := 0; i < len(k.name); i++ {
		h = (h ^ uint64(k.name[i])) * prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Namespace returns a scoped view of the store: its own release
// keyspace and its own epsilon Accountant, isolated from every other
// namespace. The empty name aliases DefaultNamespace, which the plain
// Store methods operate on. Namespaces spring into being on first use;
// there is no registration step.
//
// An invalid name (see ValidateName) returns an errored view: every
// operation on it fails with ErrBadName, its Accountant is nil, and no
// store state is created — check Err to distinguish the cases up front.
func (s *Store) Namespace(name string) *Namespace {
	if name == "" {
		name = DefaultNamespace
	}
	return &Namespace{s: s, name: name, err: ValidateName(name)}
}

// Namespaces returns the sorted names of every namespace that currently
// holds a live release or has an instantiated budget accountant.
func (s *Store) Namespaces() []string {
	seen := make(map[string]bool)
	now := s.nowIfTTL()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, it := range sh.items {
			if s.ttl <= 0 || !s.expired(it, now) {
				seen[k.ns] = true
			}
		}
		sh.mu.Unlock()
	}
	s.acctMu.Lock()
	for ns := range s.accts {
		seen[ns] = true
	}
	s.acctMu.Unlock()
	out := make([]string, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// HasNamespace reports whether the namespace currently holds a live
// release or has an instantiated budget accountant — without creating
// either, so read-only surfaces (dashboards, probes) can answer for
// arbitrary names while only writes bring namespaces into being.
func (s *Store) HasNamespace(name string) bool {
	if name == "" {
		name = DefaultNamespace
	}
	s.acctMu.Lock()
	_, ok := s.accts[name]
	s.acctMu.Unlock()
	if ok {
		return true
	}
	now := s.nowIfTTL()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, it := range sh.items {
			if k.ns == name && (s.ttl <= 0 || !s.expired(it, now)) {
				sh.mu.Unlock()
				return true
			}
		}
		sh.mu.Unlock()
	}
	return false
}

// Budget returns the total epsilon each namespace accountant is created
// with (the WithBudget option).
func (s *Store) Budget() float64 { return s.budget }

// accountant returns (creating on first use) the namespace's budget
// accountant. Durable stores wire it to the journal so every admitted
// charge is on disk before it is acknowledged.
func (s *Store) accountant(ns string) *Accountant {
	s.acctMu.Lock()
	defer s.acctMu.Unlock()
	if a, ok := s.accts[ns]; ok {
		return a
	}
	a := NewAccountant(s.budget)
	switch {
	case s.readOnly:
		// Replicas never admit local expenditure: the primary owns the
		// ledger, and shipped charges arrive through restore, which
		// bypasses the ledger by design.
		a.ledger = readOnlyLedger{}
	case s.jnl != nil:
		a.ledger = &storeLedger{s: s, ns: ns}
	}
	s.accts[ns] = a
	return a
}

// Namespace is a scoped view of a Store: one tenant's release keyspace
// plus its own epsilon budget. Obtain one with Store.Namespace; the
// zero value is not usable. All methods are safe for concurrent use.
type Namespace struct {
	s    *Store
	name string
	err  error // non-nil when the namespace name failed ValidateName
}

// Name returns the namespace's name.
func (n *Namespace) Name() string { return n.name }

// Err returns the name-validation failure this view was created with,
// or nil for a usable namespace.
func (n *Namespace) Err() error { return n.err }

// Store returns the underlying store.
func (n *Namespace) Store() *Store { return n.s }

// Accountant returns the namespace's budget accountant, created with
// the store's WithBudget total on first use. In a durable store its
// charges flow through the journal, so Spent() survives restarts. It is
// nil for an errored view (see Err): an invalid name must not bring
// budget state into being.
func (n *Namespace) Accountant() *Accountant {
	if n.err != nil {
		return nil
	}
	return n.s.accountant(n.name)
}

// Remaining returns the namespace's unspent budget, or 0 for an errored
// view.
func (n *Namespace) Remaining() float64 {
	if n.err != nil {
		return 0
	}
	return n.Accountant().Remaining()
}

// Put stores the release under name in this namespace; semantics follow
// Store.Put.
func (n *Namespace) Put(name string, r Release) (StoreEntry, error) {
	if n.err != nil {
		return StoreEntry{}, n.err
	}
	return n.s.put(n.name, name, r)
}

// Get returns the live release stored under name in this namespace;
// semantics follow Store.Get.
func (n *Namespace) Get(name string) (Release, StoreEntry, bool) {
	if n.err != nil {
		return nil, StoreEntry{}, false
	}
	return n.s.get(n.name, name)
}

// Query answers a batch of range queries against the release stored
// under name in this namespace; semantics follow Store.Query.
func (n *Namespace) Query(name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	if n.err != nil {
		return nil, StoreEntry{}, n.err
	}
	return n.s.query(n.name, name, specs)
}

// QueryInto is Query appending into dst; buffer-reuse semantics follow
// Store.QueryInto.
func (n *Namespace) QueryInto(dst []float64, name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	if n.err != nil {
		return dst, StoreEntry{}, n.err
	}
	return n.s.queryInto(dst, n.name, name, specs)
}

// QueryRects answers a batch of rectangle queries against the 2-D
// release stored under name in this namespace; semantics follow
// Store.QueryRects.
func (n *Namespace) QueryRects(name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	if n.err != nil {
		return nil, StoreEntry{}, n.err
	}
	return n.s.queryRects(n.name, name, specs)
}

// QueryRectsInto is QueryRects appending into dst; buffer-reuse
// semantics follow Store.QueryInto.
func (n *Namespace) QueryRectsInto(dst []float64, name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	if n.err != nil {
		return dst, StoreEntry{}, n.err
	}
	return n.s.queryRectsInto(dst, n.name, name, specs)
}

// List returns the metadata of every live entry in this namespace,
// sorted by name.
func (n *Namespace) List() []StoreEntry {
	if n.err != nil {
		return []StoreEntry{}
	}
	return n.s.list(n.name)
}

// Delete removes the entry under name in this namespace, reporting
// whether a live entry was removed.
func (n *Namespace) Delete(name string) bool {
	if n.err != nil {
		return false
	}
	return n.s.delete(n.name, name)
}

// Len returns the number of live entries in this namespace.
func (n *Namespace) Len() int {
	if n.err != nil {
		return 0
	}
	return n.s.length(n.name)
}

// Version returns the name's current Put counter in this namespace — the
// number of times the name has ever been stored — or 0 if it never was.
// Unlike Get, it answers for names whose releases were deleted, evicted,
// or TTL-expired: version counters deliberately outlive their entries
// (and, on a durable store, the process), which lets sequence-structured
// writers such as the ingest engine's epoch scheduler resume exactly
// where a previous process stopped.
func (n *Namespace) Version(name string) int {
	if n.err != nil {
		return 0
	}
	return n.s.version(n.name, name)
}

// Mint issues the request through the session and retains the result
// under name in this namespace; semantics follow Store.Mint. On an
// errored view nothing is charged and nothing is released.
func (n *Namespace) Mint(session *Session, name string, req Request) (Release, StoreEntry, error) {
	if n.err != nil {
		return nil, StoreEntry{}, n.err
	}
	return n.s.mint(session, n.name, name, req)
}

// Put stores the release under name in the default namespace, replacing
// any previous holder and bumping the name's version. It returns the new
// entry metadata. Storing may evict: expired entries are dropped first,
// then least-recently-used ones until the capacity bound holds. On a
// durable store the release is journaled (and by default fsynced)
// before Put returns.
func (s *Store) Put(name string, r Release) (StoreEntry, error) {
	return s.put(DefaultNamespace, name, r)
}

// Mint issues the request through the session — charging its budget —
// and retains the result under name in the default namespace. Nothing
// is stored if either step fails, and a request that fails validation
// or overdraws the budget charges nothing; the charge follows
// Session.Release semantics (made before the pipeline runs, never
// refunded), so a pipeline failure after admission still costs its
// epsilon.
func (s *Store) Mint(session *Session, name string, req Request) (Release, StoreEntry, error) {
	return s.mint(session, DefaultNamespace, name, req)
}

func (s *Store) mint(session *Session, ns, name string, req Request) (Release, StoreEntry, error) {
	if session == nil {
		return nil, StoreEntry{}, errors.New("dphist: nil session")
	}
	// Validate both names before spending: a release minted under an
	// unusable or unroutable name would burn budget for nothing.
	if err := ValidateName(ns); err != nil {
		return nil, StoreEntry{}, fmt.Errorf("namespace: %w", err)
	}
	if err := ValidateName(name); err != nil {
		return nil, StoreEntry{}, err
	}
	// Refuse before Session.Release runs: a mint on a replica must not
	// charge the session's budget for a release that cannot be stored.
	if s.readOnly {
		return nil, StoreEntry{}, ErrReadOnly
	}
	rel, err := session.Release(req)
	if err != nil {
		return nil, StoreEntry{}, err
	}
	entry, err := s.put(ns, name, rel)
	if err != nil {
		return nil, StoreEntry{}, err
	}
	return rel, entry, nil
}

// Get returns the live release stored under name in the default
// namespace and its metadata, refreshing its recency. The boolean
// reports whether the name held a live (present, unexpired) release.
func (s *Store) Get(name string) (Release, StoreEntry, bool) {
	return s.get(DefaultNamespace, name)
}

// Query answers a batch of range queries against the release stored
// under name in the default namespace, refreshing its recency. It fails
// with ErrReleaseNotFound when the name holds no live release; spec
// validation follows QueryBatch. The release is read outside the store
// lock, so long batches do not block other store traffic.
func (s *Store) Query(name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	return s.query(DefaultNamespace, name, specs)
}

// QueryInto is Query appending into dst, so a serving loop can reuse one
// result buffer across batches and keep the steady-state allocation
// count at zero — the answer cache appends hits straight into dst. dst
// may be nil. On error dst is returned truncated to its original length,
// never with a partial batch appended.
func (s *Store) QueryInto(dst []float64, name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	return s.queryInto(dst, DefaultNamespace, name, specs)
}

// QueryRects answers a batch of rectangle queries against the 2-D
// release stored under name in the default namespace, refreshing its
// recency. It fails with ErrReleaseNotFound when the name holds no live
// release and with ErrNotRectangular when the stored release answers no
// rectangle queries; spec validation follows QueryRects. Like Query,
// the release is read outside the store lock.
func (s *Store) QueryRects(name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	return s.queryRects(DefaultNamespace, name, specs)
}

// QueryRectsInto is QueryRects appending into dst; buffer-reuse
// semantics follow QueryInto.
func (s *Store) QueryRectsInto(dst []float64, name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	return s.queryRectsInto(dst, DefaultNamespace, name, specs)
}

// List returns the metadata of every live entry in the default
// namespace, sorted by name. It does not refresh recency.
func (s *Store) List() []StoreEntry { return s.list(DefaultNamespace) }

// Delete removes the entry under name in the default namespace,
// reporting whether a live entry was removed. The name's version counter
// is kept, so a later Put continues the sequence.
func (s *Store) Delete(name string) bool { return s.delete(DefaultNamespace, name) }

// Len returns the number of live entries in the default namespace.
func (s *Store) Len() int { return s.length(DefaultNamespace) }

func (s *Store) put(ns, name string, r Release) (StoreEntry, error) {
	if err := ValidateName(ns); err != nil {
		return StoreEntry{}, fmt.Errorf("namespace: %w", err)
	}
	if err := ValidateName(name); err != nil {
		return StoreEntry{}, err
	}
	if r == nil {
		return StoreEntry{}, errors.New("dphist: nil release")
	}
	if s.readOnly {
		return StoreEntry{}, ErrReadOnly
	}
	if s.jnl != nil {
		s.opMu.RLock()
		if s.closed {
			s.opMu.RUnlock()
			return StoreEntry{}, ErrStoreClosed
		}
	}
	k := nsKey{ns, name}
	sh := s.shard(k)
	sh.mu.Lock()
	now := s.now()
	s.sweepExpiredLocked(sh, now)
	entry := StoreEntry{
		Namespace: ns,
		Name:      name,
		Version:   sh.versions[k] + 1,
		Strategy:  r.Strategy(),
		Epsilon:   r.Epsilon(),
		Domain:    releaseDomain(r),
		StoredAt:  now,
	}
	// Durability before visibility: the put must be on disk before any
	// reader can observe it, or a crash would forget a release the
	// analyst has already seen named metadata for.
	if err := s.journalPut(entry, r); err != nil {
		sh.mu.Unlock()
		if s.jnl != nil {
			s.opMu.RUnlock()
		}
		return StoreEntry{}, err
	}
	sh.versions[k] = entry.Version
	if it, ok := sh.items[k]; ok {
		it.release = r
		it.plan = releasePlan(r)
		it.entry = entry
		sh.recency.MoveToFront(it.elem)
	} else {
		sh.items[k] = &storeItem{release: r, plan: releasePlan(r), entry: entry, elem: sh.recency.PushFront(k)}
	}
	// Capacity evictions are not journaled: they are a cache policy, not
	// an event, and recovery re-derives them by re-running the bound
	// over the replayed state.
	for s.shardCap > 0 && len(sh.items) > s.shardCap {
		s.removeLocked(sh, sh.recency.Back().Value.(nsKey))
	}
	// A re-Put bumps the version, so the old answers are unreachable by
	// key already; dropping them frees their memory immediately.
	s.invalidateCached(ns, name)
	sh.mu.Unlock()
	if s.jnl != nil {
		s.opMu.RUnlock()
	}
	// Outside every lock: Snapshot takes the op write lock itself.
	s.maybeSnapshot()
	return entry, nil
}

func (s *Store) get(ns, name string) (Release, StoreEntry, bool) {
	rel, _, entry, ok := s.snapshotLive(nsKey{ns, name})
	return rel, entry, ok
}

// snapshotLive returns the live release, its compiled plan, and its
// metadata under k. On an unbounded store it holds only a brief read
// lock — no recency or clock bookkeeping — so slow readers never stall
// writers on the shard; a capacity-bounded store takes the write lock
// to refresh recency. Expired entries are removed (upgrading to the
// write lock when needed) and reported as absent.
func (s *Store) snapshotLive(k nsKey) (Release, *plan.Plan, StoreEntry, bool) {
	sh := s.shard(k)
	if s.shardCap == 0 {
		sh.mu.RLock()
		it, ok := sh.items[k]
		var rel Release
		var pl *plan.Plan
		var entry StoreEntry
		expired := false
		if ok {
			if s.ttl > 0 && s.expired(it, s.now()) {
				expired = true
			} else {
				rel, pl, entry = it.release, it.plan, it.entry
			}
		}
		sh.mu.RUnlock()
		if expired {
			// Upgrade to remove the corpse (and its cached answers); the
			// re-check guards a racing Put that revived the name.
			sh.mu.Lock()
			if it, ok := sh.items[k]; ok && s.expired(it, s.now()) {
				s.removeLocked(sh, k)
			}
			sh.mu.Unlock()
			return nil, nil, StoreEntry{}, false
		}
		if !ok {
			return nil, nil, StoreEntry{}, false
		}
		return rel, pl, entry, true
	}
	sh.mu.Lock()
	it := s.liveLocked(sh, k)
	if it == nil {
		sh.mu.Unlock()
		return nil, nil, StoreEntry{}, false
	}
	sh.recency.MoveToFront(it.elem)
	rel, pl, entry := it.release, it.plan, it.entry
	sh.mu.Unlock()
	return rel, pl, entry, true
}

func (s *Store) query(ns, name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	// Presize the answer buffer: the batch engine grows dst once for the
	// whole batch, so handing it exact capacity makes the compute path a
	// single allocation.
	return s.queryInto(make([]float64, 0, len(specs)), ns, name, specs)
}

func (s *Store) queryInto(dst []float64, ns, name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	// Snapshot under the shard lock, answer outside it: a 100k-range
	// batch must never block a concurrent Put on the same shard.
	keep := len(dst)
	rel, pl, entry, ok := s.snapshotLive(nsKey{ns, name})
	if !ok {
		return dst[:keep], StoreEntry{}, fmt.Errorf("%w: %q", ErrReleaseNotFound, name)
	}
	if c := s.rangeCache; c != nil {
		answers, err := c.DoInto(dst, qcache.Key{
			Namespace: ns, Name: name, Version: entry.Version,
			Hash: hashRangeSpecs(specs), Len: len(specs),
		}, specs, func(owned []float64) ([]float64, error) {
			return answerRangesInto(owned, pl, rel, specs)
		})
		if err != nil {
			return dst[:keep], entry, err
		}
		return answers, entry, nil
	}
	answers, err := answerRangesInto(dst, pl, rel, specs)
	if err != nil {
		return dst[:keep], entry, err
	}
	return answers, entry, nil
}

func (s *Store) queryRects(ns, name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	return s.queryRectsInto(make([]float64, 0, len(specs)), ns, name, specs)
}

func (s *Store) queryRectsInto(dst []float64, ns, name string, specs []RectSpec) ([]float64, StoreEntry, error) {
	keep := len(dst)
	rel, pl, entry, ok := s.snapshotLive(nsKey{ns, name})
	if !ok {
		return dst[:keep], StoreEntry{}, fmt.Errorf("%w: %q", ErrReleaseNotFound, name)
	}
	if c := s.rectCache; c != nil {
		answers, err := c.DoInto(dst, qcache.Key{
			Namespace: ns, Name: name, Version: entry.Version,
			Hash: hashRectSpecs(specs), Len: len(specs),
		}, specs, func(owned []float64) ([]float64, error) {
			return answerRectsInto(owned, pl, rel, specs)
		})
		if err != nil {
			return dst[:keep], entry, err
		}
		return answers, entry, nil
	}
	answers, err := answerRectsInto(dst, pl, rel, specs)
	if err != nil {
		return dst[:keep], entry, err
	}
	return answers, entry, nil
}

// hashRangeSpecs fingerprints a range batch with FNV-1a over the spec
// words. Collisions are harmless — the cache verifies the full batch on
// every hit — so speed wins over cryptographic strength.
func hashRangeSpecs(specs []RangeSpec) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range specs {
		h = fnvMix(h, uint64(q.Lo))
		h = fnvMix(h, uint64(q.Hi))
	}
	return h
}

// hashRectSpecs is hashRangeSpecs for rectangle batches.
func hashRectSpecs(specs []RectSpec) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range specs {
		h = fnvMix(h, uint64(q.X0))
		h = fnvMix(h, uint64(q.Y0))
		h = fnvMix(h, uint64(q.X1))
		h = fnvMix(h, uint64(q.Y1))
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// invalidateCached drops every cached answer batch for the release; a
// no-op when caching is disabled.
func (s *Store) invalidateCached(ns, name string) {
	if s.rangeCache != nil {
		s.rangeCache.Invalidate(ns, name)
	}
	if s.rectCache != nil {
		s.rectCache.Invalidate(ns, name)
	}
}

// CacheStats is the answer cache's scorecard across both query
// families. All fields are zero when caching is disabled (Capacity > 0
// distinguishes an enabled-but-cold cache from a disabled one).
type CacheStats struct {
	// Hits counts batches answered from memory, including callers that
	// shared another caller's in-flight computation.
	Hits int64
	// Misses counts batches that had to be computed from a query plan.
	Misses int64
	// Entries is the number of cached batches right now.
	Entries int
	// Capacity is the configured bound per query family (WithQueryCache).
	Capacity int
}

// CacheStats reports the answer cache's hit/miss counters and
// occupancy, summed over the range and rectangle families.
func (s *Store) CacheStats() CacheStats {
	var out CacheStats
	if s.rangeCache != nil {
		st := s.rangeCache.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Entries += st.Entries
		out.Capacity = st.Capacity
	}
	if s.rectCache != nil {
		st := s.rectCache.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Entries += st.Entries
	}
	return out
}

func (s *Store) list(ns string) []StoreEntry {
	var out []StoreEntry
	now := s.nowIfTTL()
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepExpiredLocked(sh, now)
		for k, it := range sh.items {
			if k.ns == ns {
				out = append(out, it.entry)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if out == nil {
		out = []StoreEntry{}
	}
	return out
}

func (s *Store) delete(ns, name string) bool {
	if s.readOnly {
		return false
	}
	if s.jnl != nil {
		s.opMu.RLock()
		if s.closed {
			s.opMu.RUnlock()
			return false
		}
	}
	k := nsKey{ns, name}
	sh := s.shard(k)
	sh.mu.Lock()
	if s.liveLocked(sh, k) == nil {
		sh.mu.Unlock()
		if s.jnl != nil {
			s.opMu.RUnlock()
		}
		return false
	}
	s.journalDelete(ns, name)
	s.removeLocked(sh, k)
	sh.mu.Unlock()
	if s.jnl != nil {
		s.opMu.RUnlock()
	}
	s.maybeSnapshot()
	return true
}

func (s *Store) version(ns, name string) int {
	k := nsKey{ns, name}
	sh := s.shard(k)
	sh.mu.RLock()
	v := sh.versions[k]
	sh.mu.RUnlock()
	return v
}

func (s *Store) length(ns string) int {
	n := 0
	now := s.nowIfTTL()
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepExpiredLocked(sh, now)
		for k := range sh.items {
			if k.ns == ns {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// liveLocked returns the item under k if present and unexpired, removing
// it (and returning nil) when expired. The clock is only consulted when
// a TTL is configured — time.Now would otherwise dominate the read path.
func (s *Store) liveLocked(sh *storeShard, k nsKey) *storeItem {
	it, ok := sh.items[k]
	if !ok {
		return nil
	}
	if s.ttl > 0 && s.expired(it, s.now()) {
		s.removeLocked(sh, k)
		return nil
	}
	return it
}

func (s *Store) expired(it *storeItem, now time.Time) bool {
	return s.ttl > 0 && now.Sub(it.entry.StoredAt) >= s.ttl
}

// nowIfTTL reads the clock only when a TTL makes the answer matter;
// expiry-sweep callers on TTL-free stores skip the time.Now cost.
func (s *Store) nowIfTTL() time.Time {
	if s.ttl > 0 {
		return s.now()
	}
	return time.Time{}
}

// sweepExpiredLocked drops every expired entry in the shard. TTL runs
// from StoredAt while the recency list orders by use, so a full scan is
// needed; the store is capacity-bounded in any deployment that cares,
// keeping this O(capacity). Expiry is never journaled — it is a pure
// function of StoredAt and the TTL option, so recovery re-derives it.
func (s *Store) sweepExpiredLocked(sh *storeShard, now time.Time) {
	if s.ttl <= 0 {
		return
	}
	for k, it := range sh.items {
		if s.expired(it, now) {
			s.removeLocked(sh, k)
		}
	}
}

// removeLocked drops the entry under k and its cached answers; the
// cache locks are leaves, so invalidating under the shard lock is safe.
func (s *Store) removeLocked(sh *storeShard, k nsKey) {
	it := sh.items[k]
	sh.recency.Remove(it.elem)
	delete(sh.items, k)
	s.invalidateCached(k.ns, k.name)
}
