package dphist

// The release store: the retention side of the serving layer. A data
// owner mints releases rarely (each one spends budget, permanently) and
// serves queries against them indefinitely, so the natural deployment
// keeps every live release in memory behind a name and answers lookups
// and range batches at traffic. Store is that retention layer: named,
// versioned, bounded by LRU capacity and TTL, and safe for concurrent
// use. Releases themselves are immutable, so Store hands out the stored
// values directly — a query never copies a release.

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrReleaseNotFound reports a Store lookup under a name that holds no
// live release: never stored, deleted, evicted by capacity, or expired
// by TTL.
var ErrReleaseNotFound = errors.New("dphist: release not found")

// StoreEntry describes one stored release.
type StoreEntry struct {
	// Name is the key the release is stored under.
	Name string
	// Version counts Puts under this name, starting at 1. Versions are
	// monotone for the lifetime of the Store: re-storing a name after
	// deletion or eviction continues the sequence rather than restarting
	// it, so an analyst can always tell a re-mint from a re-read.
	Version int
	// Strategy, Epsilon, and Domain summarize the release without
	// touching its counts.
	Strategy Strategy
	Epsilon  float64
	Domain   int
	// StoredAt is the Put time; TTL expiry is measured from it.
	StoredAt time.Time
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithCapacity bounds the number of retained releases: a Put that grows
// the store past n evicts least-recently-used entries first. Get and
// Query refresh recency. n <= 0 (the default) means unbounded.
func WithCapacity(n int) StoreOption {
	return func(s *Store) { s.capacity = n }
}

// WithTTL expires entries d after they were stored, regardless of use —
// a privacy-motivated bound as much as a memory one, since a deployment
// may promise analysts data no staler than d. d <= 0 (the default)
// means entries never expire.
func WithTTL(d time.Duration) StoreOption {
	return func(s *Store) { s.ttl = d }
}

// storeItem is one live entry plus its position in the recency list.
type storeItem struct {
	release Release
	entry   StoreEntry
	elem    *list.Element // element of Store.recency; Value is the name
}

// Store is an in-memory, versioned release store with LRU and TTL
// eviction. The zero value is not usable; construct with NewStore. All
// methods are safe for concurrent use.
//
// Version counters deliberately survive eviction and deletion (so a
// re-mint is always distinguishable from a re-read), which means the
// counter map grows with the number of distinct names ever stored —
// a few words per name — even when capacity bounds the releases
// themselves. Deployments minting under unbounded fresh names should
// recycle a fixed name scheme.
type Store struct {
	capacity int
	ttl      time.Duration
	now      func() time.Time // injectable clock for tests

	mu       sync.Mutex
	items    map[string]*storeItem
	recency  *list.List     // front = most recently used
	versions map[string]int // per-name Put counter; survives eviction
}

// NewStore returns an empty store with the given options applied.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		now:      time.Now,
		items:    make(map[string]*storeItem),
		recency:  list.New(),
		versions: make(map[string]int),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Put stores the release under name, replacing any previous holder and
// bumping the name's version. It returns the new entry metadata. Storing
// may evict: expired entries are dropped first, then least-recently-used
// ones until the capacity bound holds.
func (s *Store) Put(name string, r Release) (StoreEntry, error) {
	if name == "" {
		return StoreEntry{}, errors.New("dphist: empty release name")
	}
	if r == nil {
		return StoreEntry{}, errors.New("dphist: nil release")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.sweepExpiredLocked(now)
	s.versions[name]++
	entry := StoreEntry{
		Name:     name,
		Version:  s.versions[name],
		Strategy: r.Strategy(),
		Epsilon:  r.Epsilon(),
		Domain:   releaseDomain(r),
		StoredAt: now,
	}
	if it, ok := s.items[name]; ok {
		it.release = r
		it.entry = entry
		s.recency.MoveToFront(it.elem)
	} else {
		s.items[name] = &storeItem{release: r, entry: entry, elem: s.recency.PushFront(name)}
	}
	for s.capacity > 0 && len(s.items) > s.capacity {
		s.removeLocked(s.recency.Back().Value.(string))
	}
	return entry, nil
}

// Mint issues the request through the session — charging its budget —
// and retains the result under name. Nothing is stored if either step
// fails, and a request that fails validation or overdraws the budget
// charges nothing; the charge follows Session.Release semantics (made
// before the pipeline runs, never refunded), so a pipeline failure
// after admission still costs its epsilon.
func (s *Store) Mint(session *Session, name string, req Request) (Release, StoreEntry, error) {
	if session == nil {
		return nil, StoreEntry{}, errors.New("dphist: nil session")
	}
	if name == "" {
		// Validate before spending: a release minted for an unusable
		// name would burn budget for nothing.
		return nil, StoreEntry{}, errors.New("dphist: empty release name")
	}
	rel, err := session.Release(req)
	if err != nil {
		return nil, StoreEntry{}, err
	}
	entry, err := s.Put(name, rel)
	if err != nil {
		return nil, StoreEntry{}, err
	}
	return rel, entry, nil
}

// Get returns the live release stored under name and its metadata,
// refreshing its recency. The boolean reports whether the name held a
// live (present, unexpired) release.
func (s *Store) Get(name string) (Release, StoreEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.liveLocked(name)
	if it == nil {
		return nil, StoreEntry{}, false
	}
	s.recency.MoveToFront(it.elem)
	return it.release, it.entry, true
}

// Query answers a batch of range queries against the release stored
// under name, refreshing its recency. It fails with ErrReleaseNotFound
// when the name holds no live release; spec validation follows
// QueryBatch. The release is read outside the store lock, so long
// batches do not block other store traffic.
func (s *Store) Query(name string, specs []RangeSpec) ([]float64, StoreEntry, error) {
	rel, entry, ok := s.Get(name)
	if !ok {
		return nil, StoreEntry{}, fmt.Errorf("%w: %q", ErrReleaseNotFound, name)
	}
	answers, err := QueryBatch(rel, specs)
	if err != nil {
		return nil, entry, err
	}
	return answers, entry, nil
}

// List returns the metadata of every live entry, sorted by name. It does
// not refresh recency.
func (s *Store) List() []StoreEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked(s.now())
	out := make([]StoreEntry, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it.entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes the entry under name, reporting whether a live entry
// was removed. The name's version counter is kept, so a later Put
// continues the sequence.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveLocked(name) == nil {
		return false
	}
	s.removeLocked(name)
	return true
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked(s.now())
	return len(s.items)
}

// liveLocked returns the item under name if present and unexpired,
// removing it (and returning nil) when expired.
func (s *Store) liveLocked(name string) *storeItem {
	it, ok := s.items[name]
	if !ok {
		return nil
	}
	if s.expired(it, s.now()) {
		s.removeLocked(name)
		return nil
	}
	return it
}

func (s *Store) expired(it *storeItem, now time.Time) bool {
	return s.ttl > 0 && now.Sub(it.entry.StoredAt) >= s.ttl
}

// sweepExpiredLocked drops every expired entry. TTL runs from StoredAt
// while the recency list orders by use, so a full scan is needed; the
// store is capacity-bounded in any deployment that cares, keeping this
// O(capacity).
func (s *Store) sweepExpiredLocked(now time.Time) {
	if s.ttl <= 0 {
		return
	}
	for name, it := range s.items {
		if s.expired(it, now) {
			s.removeLocked(name)
		}
	}
}

func (s *Store) removeLocked(name string) {
	it := s.items[name]
	s.recency.Remove(it.elem)
	delete(s.items, name)
}
