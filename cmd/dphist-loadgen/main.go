// Command dphist-loadgen drives a live dphist server with a mixed
// query/mint/ingest workload and reports per-op-class latency
// quantiles — the ground truth for how the serving hot path behaves
// under concurrent HTTP traffic rather than in a single-goroutine
// benchmark.
//
// Usage:
//
//	dphist-loadgen -url http://127.0.0.1:8080 [flags]
//
// Flags:
//
//	-url U          server base URL (default http://127.0.0.1:8080)
//	-ns NS          namespace to drive (empty = default routes)
//	-workers N      concurrent connections (default 8)
//	-duration D     measured window (default 10s)
//	-warmup D       traffic before measurement starts (default 2s)
//	-qps F          total offered load cap; 0 = unthrottled, which
//	                measures saturation throughput (default 0)
//	-mix SPEC       op mix as class=weight pairs, e.g.
//	                "query=0.9,mint=0.05,ingest=0.05" (default query=1)
//	-batch N        ranges / rects / events per request (default 8)
//	-zipf-s F       Zipf skew across targets, >1 (default 1.2)
//	-zipf-v F       Zipf v parameter, >=1 (default 1)
//	-correlation F  probability in [0,1] that consecutive ranges stay
//	                near the last position (default 0.6)
//	-mint-eps F     epsilon spent per mint op (default 0.001)
//	-seed N         RNG seed for reproducible runs (default 1)
//	-json           emit the report as JSON instead of a table
//
// Targets are discovered from GET /v1/releases; when the server holds
// no releases, a seed release named "loadgen-seed" is minted first so
// the query class has something to hit. Popularity across targets is
// Zipfian — the first release takes the bulk of the traffic, like a
// production hot key.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dphist/dphist/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		ns          = flag.String("ns", "", "namespace (empty = default routes)")
		workers     = flag.Int("workers", 8, "concurrent connections")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup before measurement")
		qps         = flag.Float64("qps", 0, "total offered QPS cap (0 = unthrottled)")
		mix         = flag.String("mix", "query=1", "op mix, e.g. query=0.9,mint=0.05,ingest=0.05")
		batch       = flag.Int("batch", 8, "specs per request")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf skew across targets (>1)")
		zipfV       = flag.Float64("zipf-v", 1, "Zipf v parameter (>=1)")
		correlation = flag.Float64("correlation", 0.6, "correlated-range probability [0,1]")
		mintEps     = flag.Float64("mint-eps", 0.001, "epsilon per mint op")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		asJSON      = flag.Bool("json", false, "emit JSON report")
	)
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:     *url,
		Namespace:   *ns,
		Workers:     *workers,
		Duration:    *duration,
		Warmup:      *warmup,
		QPS:         *qps,
		Batch:       *batch,
		ZipfS:       *zipfS,
		ZipfV:       *zipfV,
		Correlation: *correlation,
		MintEpsilon: *mintEps,
		Seed:        *seed,
	}
	if err := parseMix(*mix, &cfg); err != nil {
		fatal(err)
	}

	targets, err := loadgen.Discover(nil, *url, *ns)
	if err != nil {
		fatal(fmt.Errorf("discover targets: %w", err))
	}
	if len(targets) == 0 && cfg.QueryWeight > 0 {
		t, err := mintSeed(cfg)
		if err != nil {
			fatal(fmt.Errorf("server holds no releases and seeding failed: %w", err))
		}
		fmt.Fprintf(os.Stderr, "no stored releases; minted %q (domain %d) to query\n", t.Name, t.Domain)
		targets = []loadgen.Target{t}
	}
	cfg.Targets = targets

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printTable(rep, *qps)
}

// parseMix fills the op weights from "class=weight,..." syntax.
func parseMix(spec string, cfg *loadgen.Config) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("mix: %q is not class=weight", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return fmt.Errorf("mix: bad weight in %q", part)
		}
		switch k {
		case "query":
			cfg.QueryWeight = w
		case "mint":
			cfg.MintWeight = w
		case "ingest":
			cfg.IngestWeight = w
		default:
			return fmt.Errorf("mix: unknown op class %q (want query, mint, ingest)", k)
		}
	}
	return nil
}

// mintSeed stores a release for the query class to hit when discovery
// comes back empty.
func mintSeed(cfg loadgen.Config) (loadgen.Target, error) {
	base := strings.TrimRight(cfg.BaseURL, "/")
	route := base + "/v1/releases"
	if cfg.Namespace != "" {
		route = base + "/v1/ns/" + cfg.Namespace + "/releases"
	}
	body := fmt.Sprintf(`{"name":"loadgen-seed","strategy":"universal","epsilon":%g}`, cfg.MintEpsilon)
	resp, err := http.Post(route, "application/json", strings.NewReader(body))
	if err != nil {
		return loadgen.Target{}, err
	}
	defer resp.Body.Close()
	var out struct {
		Name   string `json:"name"`
		Domain int    `json:"domain"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return loadgen.Target{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return loadgen.Target{}, fmt.Errorf("%s: %s", resp.Status, out.Error)
	}
	return loadgen.Target{Name: out.Name, Domain: out.Domain}, nil
}

func printTable(rep loadgen.Report, qpsCap float64) {
	mode := "saturation (unthrottled)"
	if qpsCap > 0 {
		mode = fmt.Sprintf("paced at %g QPS offered", qpsCap)
	}
	fmt.Printf("%d workers, %s for %s: %d ops, %d errors, %.0f QPS achieved\n",
		rep.Workers, mode, rep.Duration, rep.Ops, rep.Errors, rep.QPS)
	fmt.Printf("%-8s %10s %8s %12s %12s %12s %12s %10s\n",
		"op", "ops", "errors", "p50", "p99", "p99.9", "max", "qps")
	for _, c := range rep.Classes {
		fmt.Printf("%-8s %10d %8d %12s %12s %12s %12s %10.0f\n",
			c.Op, c.Ops, c.Errors,
			ms(c.P50Ns), ms(c.P99Ns), ms(c.P999Ns), ms(c.MaxNs), c.QPS)
	}
}

func ms(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dphist-loadgen:", err)
	os.Exit(1)
}
