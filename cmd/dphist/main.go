// Command dphist computes differentially private histograms from CSV
// data. Each input row contributes one record; the selected column is
// interpreted as a non-negative integer position on the domain [0, n).
//
// Usage:
//
//	dphist -domain 1024 [flags] < records.csv
//
// Flags:
//
//	-domain N     domain size (required)
//	-col N        0-based CSV column holding the position (default 0)
//	-eps F        privacy budget epsilon (default 1.0)
//	-task T       "universal" (range-queryable histogram, default),
//	              "unattributed" (multiset of counts),
//	              "laplace" (flat noisy histogram baseline),
//	              "wavelet" (Haar-wavelet comparator), or
//	              "degree_sequence" (graphical degree sequence)
//	-k N          branching factor for the universal tree (default 2)
//	-seed N       noise seed; omit for a time-derived seed
//
// Output: "position,count" CSV rows on stdout (rank,count for the
// unattributed task). Zero counts are omitted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/dphist/dphist/dphistio"
)

func main() {
	var (
		domainSize = flag.Int("domain", 0, "domain size (required unless -ip-prefix or -time-start is set)")
		col        = flag.Int("col", 0, "0-based CSV column holding the position")
		eps        = flag.Float64("eps", 1.0, "privacy budget epsilon")
		task       = flag.String("task", "universal", "universal | unattributed | laplace | wavelet | degree_sequence")
		branching  = flag.Int("k", 2, "branching factor for the universal tree")
		seed       = flag.Uint64("seed", 0, "noise seed (0 = derive from current time)")
		ipPrefix   = flag.String("ip-prefix", "", `treat the column as IPv4 addresses in this CIDR prefix (e.g. "10.0.0.0/16")`)
		timeStart  = flag.String("time-start", "", "treat the column as RFC 3339 timestamps binned from this instant")
		timeWidth  = flag.Duration("time-width", 90*time.Minute, "time bin width (paper: 90m = 16 bins/day)")
		timeBins   = flag.Int("time-bins", 0, "number of time bins (required with -time-start)")
	)
	flag.Parse()
	if *domainSize < 1 && *ipPrefix == "" && *timeStart == "" {
		fmt.Fprintln(os.Stderr, "dphist: one of -domain, -ip-prefix, or -time-start is required")
		os.Exit(2)
	}
	s := *seed
	if s == 0 {
		s = uint64(time.Now().UnixNano())
	}
	req := dphistio.Request{
		DomainSize: *domainSize,
		Column:     *col,
		Epsilon:    *eps,
		Task:       *task,
		Branching:  *branching,
		Seed:       s,
		IPPrefix:   *ipPrefix,
	}
	if *timeStart != "" {
		start, err := time.Parse(time.RFC3339, *timeStart)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dphist: bad -time-start: %v\n", err)
			os.Exit(2)
		}
		req.TimeStart = start
		req.TimeBinWidth = *timeWidth
		req.TimeBins = *timeBins
	}
	res, err := dphistio.Run(req, os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dphist: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dphist: loaded %d records (%d skipped), task=%s eps=%g\n",
		res.Loaded, res.Skipped, *task, *eps)
	for i, c := range res.Counts {
		if c == 0 {
			continue
		}
		fmt.Println(strconv.Itoa(i) + "," + strconv.FormatFloat(c, 'f', -1, 64))
	}
}
