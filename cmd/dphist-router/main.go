// Command dphist-router fronts a dphist cluster: it consistently
// hashes namespaces across primary shards and fans reads out over each
// shard's replicas, retrying the next replica on failure, so the read
// path scales with replica count while every write still lands on
// exactly one primary.
//
// Usage:
//
//	dphist-router -addr :8090 \
//	    -shard http://primary-a:8080,http://replica-a1:8081,http://replica-a2:8082 \
//	    -shard http://primary-b:8080,http://replica-b1:8081
//
// Each -shard is a comma-separated list: the primary's base URL first,
// then any replicas (started with dphist-server -follow=<primary>).
// The router exposes the same public API as dphist-server — clients
// point at the router and need not know the topology. /healthz and
// /v1/stats are answered by the router itself; /v1/stats reports the
// shard table and retry counters.
//
// The router holds no histogram state and spends no privacy budget:
// replication ships already-noised releases, so adding routers or
// replicas never touches epsilon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dphist/dphist/internal/cluster"
)

// shardFlags collects repeatable -shard values.
type shardFlags []cluster.Shard

func (f *shardFlags) String() string {
	parts := make([]string, len(*f))
	for i, sh := range *f {
		parts[i] = strings.Join(append([]string{sh.Primary}, sh.Replicas...), ",")
	}
	return strings.Join(parts, " ")
}

func (f *shardFlags) Set(v string) error {
	urls := strings.Split(v, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
		if urls[i] == "" {
			return fmt.Errorf("empty URL in shard %q", v)
		}
	}
	*f = append(*f, cluster.Shard{Primary: urls[0], Replicas: urls[1:]})
	return nil
}

func main() {
	var shards shardFlags
	addr := flag.String("addr", ":8090", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = 64)")
	timeout := flag.Duration("backend-timeout", 30*time.Second, "per-request backend timeout")
	flag.Var(&shards, "shard", "primaryURL[,replicaURL,...] — repeat once per shard (required)")
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "dphist-router: at least one -shard is required")
		os.Exit(2)
	}
	ring, err := cluster.NewRing(shards, *vnodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dphist-router: %v\n", err)
		os.Exit(2)
	}
	router := cluster.NewRouter(ring, &http.Client{Timeout: *timeout})
	replicas := 0
	for _, sh := range ring.Shards() {
		replicas += len(sh.Replicas)
	}
	fmt.Fprintf(os.Stderr, "dphist-router: routing %d shards (%d replicas) on %s\n",
		len(ring.Shards()), replicas, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second, // above the backend timeout: a slow backend answers, not a torn proxy
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "dphist-router: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "dphist-router: shutting down, draining requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dphist-router: drain: %v\n", err)
	}
}
