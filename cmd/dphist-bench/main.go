// Command dphist-bench regenerates every table and figure of the paper's
// evaluation (Hay et al., PVLDB 2010) on the synthetic stand-in datasets.
//
// Usage:
//
//	dphist-bench [flags] <experiment>
//
// Experiments:
//
//	fig2      the Figure 2(b) running example (queries L, H, S)
//	fig3      one noisy/inferred sample on the Figure 3 sequence
//	fig5      unattributed histogram error (S~, S~r, S-bar)
//	fig6      universal histogram error vs range size (L~, H~, H-bar)
//	fig7      positional error profile of S-bar on NetTrace
//	theorem2  error(S-bar) scaling with the number of distinct counts
//	theorem4  the Theorem 4(iv) error-ratio experiment
//	blum      Appendix E bounds and the database-size growth experiment
//	branching branching-factor ablation for the H tree
//	nonneg    Section 4.2 non-negativity heuristic ablation
//	wavelet   Haar wavelet (Xiao et al.) vs H~ and H-bar
//	2d        2D universal histograms (Appendix B extension)
//	serving   release-store batch range-query throughput, one row per
//	          strategy in cached and uncached modes (engineering)
//	serving2d release-store batch rectangle-query throughput against 2-D
//	          releases: summed-area fast path vs quadtree decomposition,
//	          cached and uncached (engineering)
//	ingest    streaming write path: sustained events/sec through the
//	          sharded ingest pipeline at 1, 4, and 16 shards, plus the
//	          epoch mint latency over the absorbed data (engineering)
//	loadtest  end-to-end HTTP serving under mixed traffic: a bounded
//	          worker pool drives a live server with Zipf-popular query,
//	          mint, and ingest ops and reports per-class p50/p99 plus
//	          the saturation QPS, best of 3 repeats (engineering)
//	reload    durable-store crash recovery time + sharded vs single-mutex
//	          concurrent Get throughput (engineering)
//	replication
//	          cluster mode: replication-log ship throughput into a
//	          follower, live apply lag, and read fan-out throughput
//	          through the consistent-hash router at 1, 2, and 4
//	          replicas (engineering)
//	compare   CI regression gate: fail when any tracked metric in the
//	          -json candidate regresses >30% against -baseline
//	verify    live scorecard of every reproducible paper claim
//	all       run every paper experiment above in order
//
// Flags:
//
//	-seed N      random seed (default 42)
//	-trials N    mechanism samples per measurement (default: paper's value)
//	-ranges N    random ranges per size for fig6 (default 1000)
//	-eps LIST    comma-separated epsilons (default 1.0,0.1,0.01)
//	-scale S     "paper" or "small" workload sizes (default paper)
//	-json FILE   also write serving/serving2d rows as a machine-readable
//	             baseline (merging with FILE's existing rows), so CI can
//	             archive a perf trajectory (BENCH_serving.json)
//	-baseline F  committed baseline for the compare experiment
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/cluster"
	"github.com/dphist/dphist/internal/experiments"
	"github.com/dphist/dphist/internal/ingest"
	"github.com/dphist/dphist/internal/loadgen"
	"github.com/dphist/dphist/internal/replica"
	"github.com/dphist/dphist/internal/server"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "random seed")
		trials   = flag.Int("trials", 0, "mechanism samples per measurement (0 = paper default)")
		ranges   = flag.Int("ranges", 0, "random ranges per size in fig6 (0 = 1000)")
		epsArg   = flag.String("eps", "", "comma-separated epsilon list (default 1.0,0.1,0.01)")
		scale    = flag.String("scale", "paper", `workload scale: "paper" or "small"`)
		jsonTo   = flag.String("json", "", "write serving benchmark rows to this JSON baseline file")
		baseline = flag.String("baseline", "", "committed BENCH_serving.json to compare against (compare experiment)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, RangesPerSize: *ranges}
	switch *scale {
	case "paper":
		cfg.Scale = experiments.ScalePaper
	case "small":
		cfg.Scale = experiments.ScaleSmall
	default:
		fatalf("unknown scale %q", *scale)
	}
	if *epsArg != "" {
		for _, tok := range strings.Split(*epsArg, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || v <= 0 {
				fatalf("bad epsilon %q", tok)
			}
			cfg.Epsilons = append(cfg.Epsilons, v)
		}
	}

	runners := map[string]func(experiments.Config){
		"fig2":      runFig2,
		"fig3":      runFig3,
		"fig5":      runFig5,
		"fig6":      runFig6,
		"fig7":      runFig7,
		"theorem2":  runTheorem2,
		"theorem4":  runTheorem4,
		"blum":      runBlum,
		"branching": runBranching,
		"nonneg":    runNonNeg,
		"wavelet":   runWavelet,
		"2d":        run2D,
		"advisor":   func(cfg experiments.Config) { writeServingJSON(*jsonTo, cfg.Seed, *scale, runAdvisor(cfg)) },
		"serving":   func(cfg experiments.Config) { writeServingJSON(*jsonTo, cfg.Seed, *scale, runServing(cfg)) },
		"serving2d": func(cfg experiments.Config) { writeServingJSON(*jsonTo, cfg.Seed, *scale, runServing2D(cfg)) },
		"ingest":    func(cfg experiments.Config) { writeServingJSON(*jsonTo, cfg.Seed, *scale, runIngest(cfg)) },
		"loadtest":  func(cfg experiments.Config) { writeServingJSON(*jsonTo, cfg.Seed, *scale, runLoadtest(cfg)) },
		"replication": func(cfg experiments.Config) {
			writeServingJSON(*jsonTo, cfg.Seed, *scale, runReplication(cfg))
		},
		"reload":  runReload,
		"verify":  runVerify,
		"compare": func(experiments.Config) { runCompare(*baseline, *jsonTo) },
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"fig2", "fig3", "fig5", "fig6", "fig7",
			"theorem2", "theorem4", "blum", "branching", "nonneg", "wavelet", "2d"} {
			runners[n](cfg)
			fmt.Println()
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fatalf("unknown experiment %q", name)
	}
	run(cfg)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: dphist-bench [flags] <experiment>\n\n")
	fmt.Fprintf(os.Stderr, "experiments: fig2 fig3 fig5 fig6 fig7 theorem2 theorem4 blum branching nonneg wavelet 2d advisor serving serving2d ingest loadtest reload replication compare all\n\n")
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dphist-bench: "+format+"\n", args...)
	os.Exit(2)
}

func vec(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		if v < 1e-9 && v > -1e-9 { // suppress float dust in displays
			v = 0
		}
		parts[i] = strconv.FormatFloat(v, 'g', 4, 64)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func runFig2(cfg experiments.Config) {
	fmt.Println("== Figure 2(b): query variations on the running example ==")
	res := experiments.RunFig2(cfg, 1.0)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "query\ttrue answer\tprivate output\tinferred answer\n")
	fmt.Fprintf(w, "L\t%s\t%s\t-\n", vec(res.TrueL), vec(res.NoisyL))
	fmt.Fprintf(w, "H\t%s\t%s\t%s\n", vec(res.TrueH), vec(res.NoisyH), vec(res.InferredH))
	fmt.Fprintf(w, "S\t%s\t%s\t%s\n", vec(res.TrueS), vec(res.NoisyS), vec(res.InferredS))
	w.Flush()
	hbar, sbar := experiments.PaperFig2Inference()
	fmt.Printf("\npaper's printed noisy draws re-inferred:\n")
	fmt.Printf("  H~=<13,3,11,4,1,12,1> -> H-bar=%s (paper: <14,3,11,3,0,11,0>)\n", vec(hbar))
	fmt.Printf("  S~=<1,2,0,11>         -> S-bar=%s (paper: <1,1,1,11>)\n", vec(sbar))
}

func runFig3(cfg experiments.Config) {
	fmt.Println("== Figure 3: one sample on a mostly-uniform sequence (eps=1.0) ==")
	res := experiments.RunFig3(cfg)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "index\tS(I)\ts~\ts-bar\t\n")
	for i := range res.Truth {
		fmt.Fprintf(w, "%d\t%.0f\t%.2f\t%.2f\t\n", i+1, res.Truth[i], res.Noisy[i], res.Inferred[i])
	}
	w.Flush()
}

func runFig5(cfg experiments.Config) {
	fmt.Println("== Figure 5: unattributed histogram error (mean squared error per position) ==")
	rows := experiments.RunFig5(cfg)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "dataset\teps\terror(S~)\terror(S~r)\terror(S-bar)\timprovement\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%g\t%.4g\t%.4g\t%.4g\t%.1fx\t\n",
			r.Dataset, r.Epsilon, r.ErrSTilde, r.ErrSr, r.ErrSBar, r.ErrSTilde/r.ErrSBar)
	}
	w.Flush()
}

func runFig6(cfg experiments.Config) {
	fmt.Println("== Figure 6: range query error vs range size ==")
	rows := experiments.RunFig6(cfg)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "dataset\teps\trange size\terror(L~)\terror(H~)\terror(H-bar)\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%g\t%d\t%.4g\t%.4g\t%.4g\t\n",
			r.Dataset, r.Epsilon, r.RangeSize, r.ErrL, r.ErrH, r.ErrHBar)
	}
	w.Flush()
}

func runFig7(cfg experiments.Config) {
	fmt.Println("== Figure 7: positional error of S-bar on NetTrace (descending order) ==")
	res := experiments.RunFig7(cfg)
	sum := res.Summarize()
	fmt.Printf("eps=%g trials=%d positions=%d\n", res.Epsilon, res.Trials, len(res.Truth))
	fmt.Printf("error(S~) at every position: %.4g\n", sum.ErrSTilde)
	fmt.Printf("error(S-bar): overall %.4g | interior of uniform runs %.4g | run boundaries %.4g\n",
		sum.MeanOverall, sum.MeanInterior, sum.MeanBoundary)
	// Downsampled profile: 32 evenly spaced positions.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "position\ttrue count\terror(S-bar)\t\n")
	step := len(res.Truth) / 32
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Truth); i += step {
		fmt.Fprintf(w, "%d\t%.0f\t%.4g\t\n", i+1, res.Truth[i], res.ErrSBar[i])
	}
	w.Flush()
}

func runTheorem2(cfg experiments.Config) {
	fmt.Println("== Theorem 2: error(S-bar) scaling with distinct counts d (eps=1.0) ==")
	rows := experiments.RunTheorem2(cfg)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "n\td\terror(S-bar)\terror(S~)\tsum log^3(n_i)\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.4g\t%.4g\t%.4g\t\n", r.N, r.D, r.ErrSBar, r.ErrSTilde, r.Bound)
	}
	w.Flush()
}

func runTheorem4(cfg experiments.Config) {
	fmt.Println("== Theorem 4(iv): all-but-endpoints query, H~ vs H-bar ==")
	res := experiments.RunTheorem4(cfg)
	fmt.Printf("tree: height %d, k=%d\n", res.Height, res.K)
	fmt.Printf("error(H~_q)    = %.4g\n", res.ErrHTilde)
	fmt.Printf("error(H-bar_q) = %.4g\n", res.ErrHBar)
	fmt.Printf("measured ratio  = %.2f (theorem predicts >= %.2f)\n", res.MeasuredRatio, res.PredictedRatio)
}

func runBlum(cfg experiments.Config) {
	fmt.Println("== Appendix E: comparison with Blum et al. ==")
	fmt.Println("-- (eps,delta)-usefulness bounds: minimum database size N (usefulness=0.05, delta=0.01) --")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "domain n\talpha\tmin N (H~)\tmin N (Blum et al.)\t\n")
	for _, r := range experiments.BlumBounds(0.05, 0.01) {
		fmt.Fprintf(w, "%d\t%g\t%.4g\t%.4g\t\n", r.DomainN, r.Alpha, r.MinNHTree, r.MinNBlum)
	}
	w.Flush()
	fmt.Println("-- absolute range error vs database size (alpha=1.0) --")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "records N\tmean |err| H~\tmean |err| equi-depth\t\n")
	for _, r := range experiments.RunBlumEmpirical(cfg) {
		fmt.Fprintf(w, "%d\t%.4g\t%.4g\t\n", r.Records, r.AbsErrHTree, r.AbsErrEquiDF)
	}
	w.Flush()
}

func runBranching(cfg experiments.Config) {
	fmt.Println("== Ablation: branching factor k (eps=0.1, mixed random ranges) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "k\theight\terror(H~)\terror(H-bar)\t\n")
	for _, r := range experiments.RunBranching(cfg) {
		fmt.Fprintf(w, "%d\t%d\t%.4g\t%.4g\t\n", r.K, r.Height, r.ErrHTilde, r.ErrHBar)
	}
	w.Flush()
}

func runNonNeg(cfg experiments.Config) {
	fmt.Println("== Ablation: Section 4.2 non-negativity heuristic (unit counts) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "eps\terror(L~)\terror(H-bar plain)\terror(H-bar nonneg)\tsparse frac\t\n")
	for _, r := range experiments.RunNonNegativity(cfg) {
		fmt.Fprintf(w, "%g\t%.4g\t%.4g\t%.4g\t%.2f\t\n",
			r.Epsilon, r.ErrLTilde, r.ErrHBarPlain, r.ErrHBarNonNeg, r.SparseFraction)
	}
	w.Flush()
}

func runVerify(cfg experiments.Config) {
	fmt.Println("== Reproduction scorecard (small-scale, live) ==")
	claims := experiments.Verify(cfg)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	failures := 0
	for _, c := range claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", mark, c.ID, c.Text, c.Detail)
	}
	w.Flush()
	if failures > 0 {
		fmt.Printf("\n%d of %d claims FAILED\n", failures, len(claims))
		os.Exit(1)
	}
	fmt.Printf("\nall %d claims reproduced\n", len(claims))
}

func run2D(cfg experiments.Config) {
	fmt.Println("== Extension: 2D universal histograms (Appendix B future work) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "eps\terror(flat 2D L~)\terror(quadtree H~)\terror(H-bar)\terror(H-bar+nonneg)\t\n")
	for _, r := range experiments.RunExt2D(cfg) {
		fmt.Fprintf(w, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t\n",
			r.Epsilon, r.ErrFlat, r.ErrQuadTree, r.ErrInferred, r.ErrInferredNN)
	}
	w.Flush()
}

// servingRow is one machine-readable serving measurement; collected
// rows become the BENCH_serving.json baseline CI archives so future
// changes have a perf trajectory to compare against. Rows are keyed by
// (experiment, release, mode); "uncached" rows measure the plan-based
// batch engine, "cached" rows the answer cache serving the same batch.
type servingRow struct {
	Experiment      string  `json:"experiment"` // "serving" (1-D) or "serving2d"
	Release         string  `json:"release"`
	Mode            string  `json:"mode,omitempty"` // "uncached" (default) or "cached"
	Queries         int     `json:"queries"`
	NsPerQuery      float64 `json:"ns_per_query"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	AllocsPerQuery  float64 `json:"allocs_per_query"`
	HitRatio        float64 `json:"hit_ratio,omitempty"` // cached rows only
	P50Ns           float64 `json:"p50_ns,omitempty"`    // loadtest rows only
	P99Ns           float64 `json:"p99_ns,omitempty"`    // loadtest rows only
	ErrorRate       float64 `json:"error_rate,omitempty"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	DomainOrSide    int     `json:"domain"`
	BatchSize       int     `json:"batch_size"`
	BatchesMeasured int     `json:"batches"`
}

// servingBaseline is the BENCH_serving.json document shape.
type servingBaseline struct {
	GeneratedBy string       `json:"generated_by"`
	Seed        uint64       `json:"seed"`
	Scale       string       `json:"scale"`
	Rows        []servingRow `json:"rows"`
}

// timeBatches runs the warm-up plus timed batch loop and reports one
// row. Allocations are measured from the runtime's monotonic Mallocs
// counter on this goroutine's world, so the figure includes the result
// slices the Store path allocates per batch.
func timeBatches(experiment, release string, domain, batchSize, batches int, query func() error) servingRow {
	if err := query(); err != nil { // warm up
		fatalf("%v", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	startTime := time.Now()
	for b := 0; b < batches; b++ {
		if err := query(); err != nil {
			fatalf("%v", err)
		}
	}
	elapsed := time.Since(startTime)
	runtime.ReadMemStats(&after)
	queries := batches * batchSize
	return servingRow{
		Experiment:      experiment,
		Release:         release,
		Queries:         queries,
		NsPerQuery:      float64(elapsed.Nanoseconds()) / float64(queries),
		QueriesPerSec:   float64(queries) / elapsed.Seconds(),
		AllocsPerQuery:  float64(after.Mallocs-before.Mallocs) / float64(queries),
		ElapsedSeconds:  elapsed.Seconds(),
		DomainOrSide:    domain,
		BatchSize:       batchSize,
		BatchesMeasured: batches,
	}
}

func printServingRows(rows []servingRow) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "release\tmode\tqueries\telapsed\tns/query\tqueries/sec\tallocs/query\thit ratio\t\n")
	for _, r := range rows {
		mode := r.Mode
		if mode == "" {
			mode = "uncached"
		}
		hit := "-"
		if r.Mode == "cached" {
			hit = fmt.Sprintf("%.3f", r.HitRatio)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%.0f\t%.3g\t%.4f\t%s\t\n",
			r.Release, mode, r.Queries, time.Duration(r.ElapsedSeconds*float64(time.Second)).Round(time.Millisecond),
			r.NsPerQuery, r.QueriesPerSec, r.AllocsPerQuery, hit)
	}
	w.Flush()
}

// writeServingJSON merges rows into the JSON baseline at path (replacing
// rows with the same experiment+release key), so `serving` and
// `serving2d` runs can share one BENCH_serving.json artifact. A no-op
// when path is empty.
func writeServingJSON(path string, seed uint64, scale string, rows []servingRow) {
	if path == "" || len(rows) == 0 {
		return
	}
	var doc servingBaseline
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fatalf("existing baseline %s is not valid JSON: %v", path, err)
		}
	}
	// The current run's metadata wins over whatever the merged-in file
	// recorded; rows measured under other seeds/scales are replaced by
	// key, not annotated.
	doc.GeneratedBy = "dphist-bench"
	doc.Seed = seed
	doc.Scale = scale
	for _, row := range rows {
		replaced := false
		for i, old := range doc.Rows {
			if old.Experiment == row.Experiment && old.Release == row.Release && old.Mode == row.Mode {
				doc.Rows[i] = row
				replaced = true
				break
			}
		}
		if !replaced {
			doc.Rows = append(doc.Rows, row)
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\nwrote %d serving rows to %s\n", len(rows), path)
}

// cachedRow times the same batch loop against the cache-enabled store
// and annotates the row with the hit ratio observed during the timed
// window (the warm-up miss primes the cache, so steady state is ~1.0).
func cachedRow(experiment, release string, cached *dphist.Store, domain, batchSize, batches int, query func() error) servingRow {
	before := cached.CacheStats()
	row := timeBatches(experiment, release, domain, batchSize, batches, query)
	after := cached.CacheStats()
	row.Mode = "cached"
	hits := after.Hits - before.Hits
	if total := hits + (after.Misses - before.Misses); total > 0 {
		row.HitRatio = float64(hits) / float64(total)
	}
	return row
}

// chainHierarchy builds a one-root constraint forest with n leaves, so
// the hierarchy strategy can serve the same domain as the others.
func chainHierarchy(n int) *dphist.Hierarchy {
	parent := make([]int, n+1)
	parent[0] = -1
	for i := 1; i <= n; i++ {
		parent[i] = 0
	}
	h, err := dphist.NewHierarchy(parent)
	if err != nil {
		fatalf("%v", err)
	}
	return h
}

// runServing measures the read side the paper motivates but never
// benchmarks: once a release is minted (one budget charge), how fast can
// arbitrary range queries be answered against it? It mints one release
// per strategy into a dphist.Store and times 1,000-range batches through
// Store.Query — the exact path POST /v1/query serves — once against an
// uncached store (the plan-based batch engine) and once against a
// cache-enabled twin (the answer cache in steady state).
func runServing(cfg experiments.Config) []servingRow {
	domain := 1 << 14
	batches := 200
	if cfg.Scale == experiments.ScaleSmall {
		domain = 1 << 10
		batches = 50
	}
	const batchSize = 1000
	fmt.Printf("== Serving engine: %d-range batches against stored releases (domain %d) ==\n",
		batchSize, domain)

	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64(i % 23)
	}
	specs := make([]dphist.RangeSpec, batchSize)
	rng := rand.New(rand.NewPCG(cfg.Seed, 17))
	for i := range specs {
		lo := rng.IntN(domain)
		specs[i] = dphist.RangeSpec{Lo: lo, Hi: lo + 1 + rng.IntN(domain-lo)}
	}

	store := dphist.NewStore()
	cached := dphist.NewStore(dphist.WithQueryCache(256))
	session, err := dphist.NewSession(dphist.MustNew(dphist.WithSeed(cfg.Seed)), 100)
	if err != nil {
		fatalf("%v", err)
	}
	// A consistent-configuration mechanism reaches the O(1) prefix path.
	consistent, err := dphist.NewSession(dphist.MustNew(dphist.WithSeed(cfg.Seed),
		dphist.WithoutNonNegativity(), dphist.WithoutRounding()), 100)
	if err != nil {
		fatalf("%v", err)
	}
	names := []string{
		"universal", "universal-consistent", "laplace", "wavelet",
		"unattributed", "degree_sequence", "hierarchy",
	}
	for _, name := range names {
		sess := session
		req := dphist.Request{Counts: counts, Epsilon: 0.1}
		switch name {
		case "universal":
			req.Strategy = dphist.StrategyUniversal
		case "universal-consistent":
			req.Strategy = dphist.StrategyUniversal
			sess = consistent
		case "laplace":
			req.Strategy = dphist.StrategyLaplace
		case "wavelet":
			req.Strategy = dphist.StrategyWavelet
		case "unattributed":
			req.Strategy = dphist.StrategyUnattributed
		case "degree_sequence":
			req.Strategy = dphist.StrategyDegreeSequence
		case "hierarchy":
			req.Strategy = dphist.StrategyHierarchy
			req.Hierarchy = chainHierarchy(domain)
		}
		rel, _, err := store.Mint(sess, name, req)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if _, err := cached.Put(name, rel); err != nil {
			fatalf("%s: %v", name, err)
		}
	}

	var rows []servingRow
	for _, name := range names {
		rows = append(rows, timeBatches("serving", name, domain, batchSize, batches, func() error {
			_, _, err := store.Query(name, specs)
			return err
		}))
		rows = append(rows, cachedRow("serving", name, cached, domain, batchSize, batches, func() error {
			_, _, err := cached.Query(name, specs)
			return err
		}))
	}
	// Large batches cross the kernels' parallel crossover threshold, so
	// these rows gate the worker-pool fan-out path. Only the universal
	// pair is interesting: every other 1-D strategy shares the prefix
	// plan "universal-consistent" already exercises.
	const bigBatch = 10000
	bigSpecs := make([]dphist.RangeSpec, bigBatch)
	for i := range bigSpecs {
		lo := rng.IntN(domain)
		bigSpecs[i] = dphist.RangeSpec{Lo: lo, Hi: lo + 1 + rng.IntN(domain-lo)}
	}
	bigBatches := max(1, batches/5)
	for _, name := range []string{"universal", "universal-consistent"} {
		row := timeBatches("serving", name, domain, bigBatch, bigBatches, func() error {
			_, _, err := store.Query(name, bigSpecs)
			return err
		})
		row.Mode = "batch10k"
		rows = append(rows, row)
	}
	printServingRows(rows)
	return rows
}

// runServing2D is the 2-D twin of runServing: it mints universal2d
// releases into a store and times 1,000-rectangle batches through
// Store.QueryRects — the exact path POST /v1/query2d serves. The
// consistent release answers each rectangle in O(1) from its
// summed-area table; the default (non-negativity truncated) release
// pays the iterative quadtree decomposition.
func runServing2D(cfg experiments.Config) []servingRow {
	side := 128
	batches := 200
	if cfg.Scale == experiments.ScaleSmall {
		side = 64
		batches = 50
	}
	const batchSize = 1000
	fmt.Printf("== Serving engine 2D: %d-rectangle batches against stored releases (%dx%d grid) ==\n",
		batchSize, side, side)

	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
		for x := range cells[y] {
			cells[y][x] = float64((x*31 + y*17) % 23)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 19))
	rects := make([]dphist.RectSpec, batchSize)
	for i := range rects {
		x0, y0 := rng.IntN(side), rng.IntN(side)
		rects[i] = dphist.RectSpec{
			X0: x0, Y0: y0,
			X1: x0 + 1 + rng.IntN(side-x0),
			Y1: y0 + 1 + rng.IntN(side-y0),
		}
	}

	store := dphist.NewStore()
	cachedStore := dphist.NewStore(dphist.WithQueryCache(256))
	session, err := dphist.NewSession(dphist.MustNew(dphist.WithSeed(cfg.Seed)), 100)
	if err != nil {
		fatalf("%v", err)
	}
	consistent, err := dphist.NewSession(dphist.MustNew(dphist.WithSeed(cfg.Seed),
		dphist.WithoutNonNegativity(), dphist.WithoutRounding()), 100)
	if err != nil {
		fatalf("%v", err)
	}
	for name, sess := range map[string]*dphist.Session{"quadtree": session, "quadtree-consistent": consistent} {
		rel, _, err := store.Mint(sess, name, dphist.Request{
			Strategy: dphist.StrategyUniversal2D, Cells: cells, Epsilon: 0.1})
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if _, err := cachedStore.Put(name, rel); err != nil {
			fatalf("%s: %v", name, err)
		}
	}

	var rows []servingRow
	for _, name := range []string{"quadtree", "quadtree-consistent"} {
		rows = append(rows, timeBatches("serving2d", name, side, batchSize, batches, func() error {
			_, _, err := store.QueryRects(name, rects)
			return err
		}))
		rows = append(rows, cachedRow("serving2d", name, cachedStore, side, batchSize, batches, func() error {
			_, _, err := cachedStore.QueryRects(name, rects)
			return err
		}))
	}
	// Parallel-crossover rows, as in runServing.
	const bigBatch = 10000
	bigRects := make([]dphist.RectSpec, bigBatch)
	for i := range bigRects {
		x0, y0 := rng.IntN(side), rng.IntN(side)
		bigRects[i] = dphist.RectSpec{
			X0: x0, Y0: y0,
			X1: x0 + 1 + rng.IntN(side-x0),
			Y1: y0 + 1 + rng.IntN(side-y0),
		}
	}
	bigBatches := max(1, batches/5)
	for _, name := range []string{"quadtree", "quadtree-consistent"} {
		row := timeBatches("serving2d", name, side, bigBatch, bigBatches, func() error {
			_, _, err := store.QueryRects(name, bigRects)
			return err
		})
		row.Mode = "batch10k"
		rows = append(rows, row)
	}
	printServingRows(rows)
	return rows
}

// compareTolerance is the CI regression gate: any tracked metric more
// than 30% worse than the committed baseline fails the build.
const compareTolerance = 0.30

// nsNoiseFloor guards the relative gate against scheduler jitter on the
// fastest rows: a prefix-path row at ~5 ns/query moves 30% on an idle
// core's whim, so an ns_per_query regression must also exceed this
// absolute delta. Real regressions (an O(1) path degrading to O(log n),
// a decompose path doubling) clear it by orders of magnitude.
const nsNoiseFloor = 25.0

// loadtestP99FloorNs guards the loadtest p99 gate the same way: a
// closed-loop saturation p99 of a few milliseconds jitters with the
// runner's scheduler, so a regression must move by an absolute 2ms on
// top of the 30% before it fails the build.
const loadtestP99FloorNs = 2e6

// runCompare is the CI regression gate: it loads the committed baseline
// and a freshly measured candidate (the -json file the serving runs
// just wrote) and fails — exit 1 — when any tracked metric regresses by
// more than compareTolerance. Tracked per (experiment, release, mode)
// row: ns_per_query and allocs_per_query (higher is worse; allocs get
// an absolute 0.25 guard so float dust near zero cannot flake) and
// hit_ratio (lower is worse). A baseline row missing from the candidate
// is a dropped metric and also fails.
func runCompare(baselinePath, candidatePath string) {
	if baselinePath == "" || candidatePath == "" {
		fatalf("compare needs -baseline OLD.json and -json NEW.json")
	}
	load := func(path string) servingBaseline {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		var doc servingBaseline
		if err := json.Unmarshal(data, &doc); err != nil {
			fatalf("%s: %v", path, err)
		}
		return doc
	}
	base, cand := load(baselinePath), load(candidatePath)
	find := func(doc servingBaseline, key servingRow) (servingRow, bool) {
		for _, r := range doc.Rows {
			if r.Experiment == key.Experiment && r.Release == key.Release && r.Mode == key.Mode {
				return r, true
			}
		}
		return servingRow{}, false
	}
	fmt.Printf("== Serving regression gate: %s vs baseline %s (tolerance %.0f%%) ==\n",
		candidatePath, baselinePath, compareTolerance*100)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "row\tmetric\tbaseline\tcandidate\tchange\tverdict\t\n")
	failures := 0
	check := func(label, metric string, baseVal, candVal float64, regressed bool) {
		verdict := "ok"
		if regressed {
			verdict = "REGRESSED"
			failures++
		}
		change := "-"
		if baseVal != 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(candVal-baseVal)/baseVal)
		}
		fmt.Fprintf(w, "%s\t%s\t%.4g\t%.4g\t%s\t%s\t\n", label, metric, baseVal, candVal, change, verdict)
	}
	for _, b := range base.Rows {
		c, ok := find(cand, b)
		mode := b.Mode
		if mode == "" {
			mode = "uncached"
		}
		label := fmt.Sprintf("%s/%s/%s", b.Experiment, b.Release, mode)
		if !ok {
			fmt.Fprintf(w, "%s\t(row)\t-\t-\t-\tMISSING\t\n", label)
			failures++
			continue
		}
		if b.Experiment == "loadtest" {
			// Loadtest rows carry wall-clock quantiles and throughput, not
			// per-query ns/allocs: gate p99 (higher is worse, with the
			// absolute floor) and achieved QPS (lower is worse).
			if b.P99Ns > 0 {
				check(label, "p99_ns", b.P99Ns, c.P99Ns,
					c.P99Ns > b.P99Ns*(1+compareTolerance) && c.P99Ns-b.P99Ns > loadtestP99FloorNs)
			}
			check(label, "queries_per_sec", b.QueriesPerSec, c.QueriesPerSec,
				c.QueriesPerSec < b.QueriesPerSec*(1-compareTolerance))
			continue
		}
		check(label, "ns_per_query", b.NsPerQuery, c.NsPerQuery,
			c.NsPerQuery > b.NsPerQuery*(1+compareTolerance) && c.NsPerQuery-b.NsPerQuery > nsNoiseFloor)
		check(label, "allocs_per_query", b.AllocsPerQuery, c.AllocsPerQuery,
			c.AllocsPerQuery > b.AllocsPerQuery*(1+compareTolerance) && c.AllocsPerQuery-b.AllocsPerQuery > 0.25)
		if b.Mode == "cached" {
			check(label, "hit_ratio", b.HitRatio, c.HitRatio,
				c.HitRatio < b.HitRatio*(1-compareTolerance))
		}
	}
	w.Flush()
	if failures > 0 {
		fmt.Printf("\n%d tracked metric(s) regressed beyond %.0f%%\n", failures, compareTolerance*100)
		os.Exit(1)
	}
	fmt.Printf("\nall tracked metrics within %.0f%% of baseline\n", compareTolerance*100)
}

// runIngest measures the streaming write path: sustained events/sec
// through Ingester.Ingest at 1, 4, and 16 worker shards (8 concurrent
// producers posting 1024-event batches), then the epoch mint latency
// over everything absorbed. The epoch interval is set far out so the
// scheduler stays idle and the timed window is pure pipeline; the
// window closes after a full drain, so queued-but-unapplied batches
// cannot inflate the throughput. Mint latency is printed for the eye
// but only the throughput rows join the BENCH_serving.json gate — a
// one-shot millisecond-scale mint is too noisy for a 30% tolerance.
func runIngest(cfg experiments.Config) []servingRow {
	domain := 1 << 10
	totalEvents := 1 << 22 // ~4M events per shard count
	if cfg.Scale == experiments.ScaleSmall {
		// Still millions of events: the timed window must dwarf scheduler
		// jitter or the 30% regression gate turns into a coin flip.
		totalEvents = 1 << 21
	}
	const (
		batchSize = 1024
		producers = 8
		streams   = 4
	)
	fmt.Printf("== Streaming ingest: %d events per shard count, %d producers, %d-event batches (domain %d) ==\n",
		totalEvents, producers, batchSize, domain)

	// Pre-built batches so the timed loop measures the pipeline, not the
	// event generator.
	batchesPer := totalEvents / (producers * batchSize)
	batches := make([][]ingest.Event, producers)
	for p := range batches {
		evs := make([]ingest.Event, batchSize)
		for i := range evs {
			evs[i] = ingest.Event{
				Stream: "stream-" + strconv.Itoa((p+i)%streams),
				Bucket: (p*131 + i*17) % domain,
			}
		}
		batches[p] = evs
	}
	// One repeat: a fresh pipeline absorbs every batch, then mints.
	repeat := func(shardCount int) (row servingRow, mint time.Duration) {
		store := dphist.NewStore(dphist.WithBudget(1e9))
		in, err := ingest.New(ingest.Config{
			Store:     store,
			Mechanism: dphist.MustNew(dphist.WithSeed(cfg.Seed)),
			Domain:    domain,
			Epoch:     time.Hour, // scheduler idle; Flush below mints
			Epsilon:   0.1,
			Shards:    shardCount,
			Seed:      cfg.Seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		in.Start()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for b := 0; b < batchesPer; b++ {
					if _, err := in.Ingest("bench", batches[p]); err != nil {
						fatalf("%v", err)
					}
				}
			}(p)
		}
		wg.Wait()
		mintStart := time.Now()
		if _, err := in.Flush(); err != nil {
			fatalf("%v", err)
		}
		mint = time.Since(mintStart)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err := in.Close(); err != nil {
			fatalf("%v", err)
		}
		events := producers * batchesPer * batchSize
		return servingRow{
			Experiment:      "ingest",
			Release:         "shards-" + strconv.Itoa(shardCount),
			Queries:         events,
			NsPerQuery:      float64(elapsed.Nanoseconds()) / float64(events),
			QueriesPerSec:   float64(events) / elapsed.Seconds(),
			AllocsPerQuery:  float64(after.Mallocs-before.Mallocs) / float64(events),
			ElapsedSeconds:  elapsed.Seconds(),
			DomainOrSide:    domain,
			BatchSize:       batchSize,
			BatchesMeasured: producers * batchesPer,
		}, mint
	}
	var rows []servingRow
	for _, shardCount := range []int{1, 4, 16} {
		// Best of three: a concurrent pipeline's throughput is at the
		// mercy of the scheduler, and the regression gate is one-sided —
		// keep the fastest repeat, the one closest to what the machine
		// can actually do.
		best, bestMint := repeat(shardCount)
		for r := 1; r < 3; r++ {
			if row, mint := repeat(shardCount); row.NsPerQuery < best.NsPerQuery {
				best, bestMint = row, mint
			}
		}
		fmt.Printf("  %2d shards: %d events in %v (%.3g events/sec), epoch mint of %d streams in %v\n",
			shardCount, best.Queries,
			time.Duration(best.ElapsedSeconds*float64(time.Second)).Round(time.Millisecond),
			best.QueriesPerSec, streams, bestMint.Round(time.Millisecond))
		rows = append(rows, best)
	}
	return rows
}

// runReplication measures cluster mode end to end: how fast the
// replication log ships a primary's minted state into a follower over
// HTTP (records/sec through snapshot + stream + Apply), how far a live
// follower trails a minting primary (printed, not gated — it is a
// latency, not a throughput), and what read fan-out through the
// consistent-hash router buys as replicas are added.
func runReplication(cfg experiments.Config) []servingRow {
	domain := 256
	mints := 4096
	routerBatches := 1200
	if cfg.Scale == experiments.ScaleSmall {
		mints = 1024
		routerBatches = 400
	}
	const (
		batchSize = 64 // ranges per query batch through the router
		clients   = 4
		liveMints = 32
	)
	fmt.Printf("== Cluster mode: ship %d releases (%d journal records, domain %d), then route %d-range batches ==\n",
		mints, 2*mints, domain, batchSize)

	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64(i % 23)
	}
	dir, err := os.MkdirTemp("", "dphist-repl-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)
	// The journal must outlive the mint loop uncompacted so the ship
	// measurement streams every record instead of bootstrapping.
	primary, err := dphist.OpenStore(dir, dphist.WithBudget(1e9), dphist.WithoutSync(),
		dphist.WithSnapshotEvery(1<<30))
	if err != nil {
		fatalf("%v", err)
	}
	defer primary.Close()
	for i := 0; i < mints; i++ {
		ns := primary.Namespace(fmt.Sprintf("tenant-%d", i%4))
		session, err := ns.Session(dphist.MustNew(dphist.WithSeed(cfg.Seed + uint64(i))))
		if err != nil {
			fatalf("%v", err)
		}
		if _, _, err := ns.Mint(session, fmt.Sprintf("rel-%d", i/4), dphist.Request{
			Strategy: dphist.StrategyUniversal, Counts: counts, Epsilon: 0.001}); err != nil {
			fatalf("%v", err)
		}
	}
	srv, err := server.New(server.Config{
		Counts: counts, Store: primary, Seed: cfg.Seed, ReplPollWindow: 200 * time.Millisecond,
	})
	if err != nil {
		fatalf("%v", err)
	}
	pts := httptest.NewServer(srv.Handler())
	defer pts.Close()

	waitApplied := func(f *dphist.Store, target uint64) {
		for f.AppliedSeq() < target {
			time.Sleep(200 * time.Microsecond)
		}
	}
	// ship: one follower converging from empty measures the full pipe —
	// NDJSON encode on the primary, decode + Apply on the follower.
	ship := func() (*dphist.Store, *replica.Tailer, servingRow) {
		f := dphist.NewReplica(dphist.WithBudget(1e9))
		tailer, err := replica.New(replica.Config{Primary: pts.URL, Store: f, Retry: 50 * time.Millisecond})
		if err != nil {
			fatalf("%v", err)
		}
		target := primary.JournalSeq()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		startTime := time.Now()
		tailer.Start()
		waitApplied(f, target)
		elapsed := time.Since(startTime)
		runtime.ReadMemStats(&after)
		records := int(target)
		return f, tailer, servingRow{
			Experiment:      "replication",
			Release:         "ship",
			Queries:         records,
			NsPerQuery:      float64(elapsed.Nanoseconds()) / float64(records),
			QueriesPerSec:   float64(records) / elapsed.Seconds(),
			AllocsPerQuery:  float64(after.Mallocs-before.Mallocs) / float64(records),
			ElapsedSeconds:  elapsed.Seconds(),
			DomainOrSide:    domain,
			BatchSize:       1,
			BatchesMeasured: records,
		}
	}
	followers := make([]*dphist.Store, 4)
	var rows []servingRow
	var bestShip servingRow
	for i := range followers {
		f, tailer, row := ship()
		// Four followers are built anyway; keep the fastest ship as the
		// gated row (same one-sided-gate reasoning as the router windows).
		if i == 0 || row.NsPerQuery < bestShip.NsPerQuery {
			bestShip = row
		}
		if i == 0 {
			// Live apply lag: per-mint propagation latency while the first
			// follower keeps tailing.
			var worst, total time.Duration
			for m := 0; m < liveMints; m++ {
				ns := primary.Namespace("tenant-0")
				session, err := ns.Session(dphist.MustNew(dphist.WithSeed(cfg.Seed + uint64(mints+m))))
				if err != nil {
					fatalf("%v", err)
				}
				startTime := time.Now()
				if _, _, err := ns.Mint(session, fmt.Sprintf("live-%d", m), dphist.Request{
					Strategy: dphist.StrategyUniversal, Counts: counts, Epsilon: 0.001}); err != nil {
					fatalf("%v", err)
				}
				waitApplied(f, primary.JournalSeq())
				lag := time.Since(startTime)
				total += lag
				if lag > worst {
					worst = lag
				}
			}
			fmt.Printf("  apply lag over %d live mints: mean %v, worst %v (not gated)\n",
				liveMints, (total / liveMints).Round(time.Microsecond), worst.Round(time.Microsecond))
		}
		// The follower store keeps serving after its tailer stops; later
		// followers converge to a frontier that now includes the live mints.
		tailer.Close()
		followers[i] = f
	}
	fmt.Printf("  ship: %d records in %v (%.3g records/sec)\n", bestShip.Queries,
		time.Duration(bestShip.ElapsedSeconds*float64(time.Second)).Round(time.Millisecond), bestShip.QueriesPerSec)
	rows = append(rows, bestShip)

	// Router fan-out: the same query batch mix pushed through the router
	// by concurrent clients, over 1, 2, and 4 replicas of one shard.
	followerURLs := make([]string, len(followers))
	for i, f := range followers {
		fs, err := server.New(server.Config{Store: f, Follower: true, Seed: cfg.Seed})
		if err != nil {
			fatalf("%v", err)
		}
		fts := httptest.NewServer(fs.Handler())
		defer fts.Close()
		followerURLs[i] = fts.URL
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 29))
	specs := make([]dphist.RangeSpec, batchSize)
	for i := range specs {
		lo := rng.IntN(domain)
		specs[i] = dphist.RangeSpec{Lo: lo, Hi: lo + 1 + rng.IntN(domain-lo)}
	}
	body, err := json.Marshal(map[string]any{"name": "rel-0", "ranges": specs})
	if err != nil {
		fatalf("%v", err)
	}
	for _, replicas := range []int{1, 2, 4} {
		ring, err := cluster.NewRing([]cluster.Shard{
			{Primary: pts.URL, Replicas: followerURLs[:replicas]},
		}, 0)
		if err != nil {
			fatalf("%v", err)
		}
		rts := httptest.NewServer(cluster.NewRouter(ring, nil).Handler())
		post := func() {
			resp, err := http.Post(rts.URL+"/v1/ns/tenant-0/query", "application/json", bytes.NewReader(body))
			if err != nil {
				fatalf("%v", err)
			}
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				fatalf("router query: HTTP %d: %s", resp.StatusCode, data)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		post() // warm up connections before the timed windows
		round := func() servingRow {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			startTime := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < routerBatches/clients; b++ {
						post()
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(startTime)
			runtime.ReadMemStats(&after)
			queries := (routerBatches / clients) * clients * batchSize
			return servingRow{
				Experiment:      "replication",
				Release:         "router-replicas-" + strconv.Itoa(replicas),
				Queries:         queries,
				NsPerQuery:      float64(elapsed.Nanoseconds()) / float64(queries),
				QueriesPerSec:   float64(queries) / elapsed.Seconds(),
				AllocsPerQuery:  float64(after.Mallocs-before.Mallocs) / float64(queries),
				ElapsedSeconds:  elapsed.Seconds(),
				DomainOrSide:    domain,
				BatchSize:       batchSize,
				BatchesMeasured: queries / batchSize,
			}
		}
		// Best of three, like the ingest pipeline: a 4-client HTTP loop is
		// at the scheduler's mercy and the gate is one-sided.
		best := round()
		for r := 1; r < 3; r++ {
			if row := round(); row.NsPerQuery < best.NsPerQuery {
				best = row
			}
		}
		rts.Close()
		fmt.Printf("  router, %d replica(s): %d queries in %v (%.3g queries/sec)\n",
			replicas, best.Queries,
			time.Duration(best.ElapsedSeconds*float64(time.Second)).Round(time.Millisecond), best.QueriesPerSec)
		rows = append(rows, best)
	}
	return rows
}

// runReload measures the two durability costs the paper's serving
// asymmetry makes interesting in production: how long a crashed store
// takes to recover its releases and budget ledger (WAL replay vs
// snapshot load), and what the sharded store buys on the metadata read
// path against the single-mutex layout.
func runReload(cfg experiments.Config) {
	domain := 1 << 12
	mints := 48
	if cfg.Scale == experiments.ScaleSmall {
		domain = 1 << 8
		mints = 16
	}
	fmt.Printf("== Durable store: recovery time and concurrent Get throughput (domain %d, %d releases) ==\n",
		domain, mints)
	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64(i % 13)
	}
	dir, err := os.MkdirTemp("", "dphist-reload-")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)

	// Populate across three tenants, then "crash": the WAL alone holds
	// the state.
	build, err := dphist.OpenStore(dir, dphist.WithBudget(100), dphist.WithoutSync())
	if err != nil {
		fatalf("%v", err)
	}
	for i := 0; i < mints; i++ {
		ns := build.Namespace(fmt.Sprintf("tenant-%d", i%3))
		session, err := ns.Session(dphist.MustNew(dphist.WithSeed(cfg.Seed + uint64(i))))
		if err != nil {
			fatalf("%v", err)
		}
		if _, _, err := ns.Mint(session, fmt.Sprintf("rel-%d", i), dphist.Request{
			Strategy: dphist.StrategyUniversal, Counts: counts, Epsilon: 0.5}); err != nil {
			fatalf("%v", err)
		}
	}
	wantSpent := build.Namespace("tenant-0").Accountant().Spent()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "recovery path\treleases\telapsed\tper release\t\n")
	reopen := func(label string) *dphist.Store {
		startTime := time.Now()
		s, err := dphist.OpenStore(dir, dphist.WithBudget(100), dphist.WithoutSync())
		if err != nil {
			fatalf("%v", err)
		}
		elapsed := time.Since(startTime)
		n := 0
		for _, ns := range s.Namespaces() {
			n += s.Namespace(ns).Len()
		}
		if n != mints {
			fatalf("recovered %d of %d releases", n, mints)
		}
		if got := s.Namespace("tenant-0").Accountant().Spent(); got != wantSpent {
			fatalf("recovered spend %v, want %v", got, wantSpent)
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t\n", label, n, elapsed.Round(time.Microsecond),
			(elapsed / time.Duration(mints)).Round(time.Microsecond))
		return s
	}
	crashed := reopen("WAL replay (crash)")
	if err := crashed.Close(); err != nil { // folds everything into the snapshot
		fatalf("%v", err)
	}
	clean := reopen("snapshot load (clean)")
	clean.Close()
	w.Flush()

	// Concurrent Get throughput, sharded vs single mutex, in memory.
	const (
		goroutines = 8
		getsEach   = 150000
		names      = 64
	)
	rel, err := dphist.MustNew(dphist.WithSeed(cfg.Seed)).UniversalHistogram(counts[:256], 1)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\n-- concurrent Get: %d goroutines x %d lookups (GOMAXPROCS=%d; lock contention needs >1 CPU to show) --\n",
		goroutines, getsEach, runtime.GOMAXPROCS(0))
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "layout\telapsed\tns/get\tgets/sec\t\n")
	for _, layout := range []struct {
		label  string
		shards int
	}{{"single mutex (shards=1)", 1}, {"sharded (default)", 0}} {
		var opts []dphist.StoreOption
		if layout.shards > 0 {
			opts = append(opts, dphist.WithShards(layout.shards))
		}
		s := dphist.NewStore(opts...)
		keys := make([]string, names)
		for i := range keys {
			keys[i] = fmt.Sprintf("rel-%d", i)
			if _, err := s.Put(keys[i], rel); err != nil {
				fatalf("%v", err)
			}
		}
		var wg sync.WaitGroup
		startTime := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < getsEach; i++ {
					if _, _, ok := s.Get(keys[(g+i)%names]); !ok {
						panic("missing release")
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(startTime)
		total := goroutines * getsEach
		fmt.Fprintf(w, "%s\t%v\t%.0f\t%.3g\t\n", layout.label, elapsed.Round(time.Millisecond),
			float64(elapsed.Nanoseconds())/float64(total), float64(total)/elapsed.Seconds())
	}
	w.Flush()
}

func runWavelet(cfg experiments.Config) {
	fmt.Println("== Ablation: Haar wavelet (Xiao et al.) vs H~ and H-bar ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "eps\terror(wavelet)\terror(H~)\terror(H-bar)\t\n")
	for _, r := range experiments.RunWaveletComparison(cfg) {
		fmt.Fprintf(w, "%g\t%.4g\t%.4g\t%.4g\t\n", r.Epsilon, r.ErrWavelet, r.ErrHTilde, r.ErrHBar)
	}
	w.Flush()
}

// runAdvisor measures the auto-strategy serving path. Two things come
// out of it: end-to-end resolve+mint latency per workload sketch — the
// overhead a "strategy": "auto" request adds over a direct mint, which
// joins BENCH_serving.json under the regression gate — and the
// advisor's prediction accuracy, predicted vs measured error for the
// strategy it picks, printed for the eye (a statistical figure; gating
// it at 30% would flake).
func runAdvisor(cfg experiments.Config) []servingRow {
	const domain = 1 << 8
	batches, trials := 400, 60
	if cfg.Scale == experiments.ScaleSmall {
		batches, trials = 150, 30
	}
	eps := 0.5
	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64((i * 13) % 23)
	}

	type sketchCase struct {
		name   string
		sketch *dphist.WorkloadSketch
		ranges [][2]int // the sketch's expansion, for the accuracy measurement
	}
	var cases []sketchCase
	points := sketchCase{name: "points", sketch: &dphist.WorkloadSketch{Preset: "points"}}
	for i := 0; i < domain; i++ {
		points.ranges = append(points.ranges, [2]int{i, i + 1})
	}
	prefixes := sketchCase{name: "prefixes", sketch: &dphist.WorkloadSketch{Preset: "prefixes"}}
	for hi := 1; hi <= domain; hi++ {
		prefixes.ranges = append(prefixes.ranges, [2]int{0, hi})
	}
	coc := sketchCase{name: "count_of_counts", sketch: &dphist.WorkloadSketch{Preset: "count_of_counts"}}
	coc.ranges = append(append(coc.ranges, points.ranges...), prefixes.ranges...)
	wide := sketchCase{name: "wide_ranges", sketch: &dphist.WorkloadSketch{}}
	for lo := 0; lo+64 <= domain; lo += 16 {
		wide.sketch.Ranges = append(wide.sketch.Ranges, dphist.WeightedRange{Lo: lo, Hi: lo + 64})
		wide.ranges = append(wide.ranges, [2]int{lo, lo + 64})
	}
	cases = append(cases, points, prefixes, coc, wide)

	fmt.Printf("== Auto-strategy advisor: resolve+mint latency and prediction accuracy (domain %d, eps %g) ==\n", domain, eps)
	mech := dphist.MustNew(dphist.WithSeed(cfg.Seed))
	var rows []servingRow
	// Latency baseline: the same mint without resolution.
	direct := dphist.Request{Strategy: dphist.StrategyUniversal, Counts: counts, Epsilon: eps}
	rows = append(rows, timeBatches("advisor", "direct_universal", domain, 1, batches, func() error {
		_, err := mech.Release(direct)
		return err
	}))
	for _, c := range cases {
		req := dphist.Request{Strategy: dphist.StrategyAuto, Counts: counts, Epsilon: eps, Workload: c.sketch}
		rows = append(rows, timeBatches("advisor", c.name, domain, 1, batches, func() error {
			_, err := mech.Release(req)
			return err
		}))
	}
	printServingRows(rows)

	// Accuracy: the predictions describe the un-rounded, non-clamped
	// linear mechanism, so measure that one.
	fmt.Println("\nprediction accuracy (measured over", trials, "mints of the un-rounded mechanism):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "sketch\tchosen\tconfidence\tpredicted\tmeasured\tmeasured/predicted\t\n")
	linear := dphist.MustNew(dphist.WithSeed(cfg.Seed+1), dphist.WithoutRounding(), dphist.WithoutNonNegativity())
	prefix := make([]float64, domain+1)
	sortedPrefix := make([]float64, domain+1)
	sorted := append([]float64(nil), counts...)
	slices.Sort(sorted)
	for i := 0; i < domain; i++ {
		prefix[i+1] = prefix[i] + counts[i]
		sortedPrefix[i+1] = sortedPrefix[i] + sorted[i]
	}
	for _, c := range cases {
		req := dphist.Request{Strategy: dphist.StrategyAuto, Counts: counts, Epsilon: eps, Workload: c.sketch}
		total := 0.0
		var dec dphist.AutoDecision
		for trial := 0; trial < trials; trial++ {
			rel, err := linear.Release(req)
			if err != nil {
				fatalf("%v", err)
			}
			dec, _ = dphist.ReleaseDecision(rel)
			truth := prefix
			switch rel.Strategy() {
			case dphist.StrategyUnattributed, dphist.StrategyDegreeSequence:
				truth = sortedPrefix
			}
			for _, q := range c.ranges {
				got, err := rel.Range(q[0], q[1])
				if err != nil {
					fatalf("%v", err)
				}
				d := got - (truth[q[1]] - truth[q[0]])
				total += d * d
			}
		}
		measured := total / float64(trials)
		fmt.Fprintf(w, "%s\t%s\t%s\t%.4g\t%.4g\t%.3f\t\n",
			c.name, dec.Strategy, dec.Confidence, dec.PredictedError, measured, measured/dec.PredictedError)
	}
	w.Flush()
	return rows
}

// runLoadtest measures serving the way production sees it: a live HTTP
// server (in-process listener, real sockets) under a bounded worker
// pool driving a mixed query/mint/ingest load with Zipf release
// popularity and correlated range endpoints. Per op class it reports
// p50/p99 wall-clock latency and achieved throughput; the all-classes
// QPS of an unthrottled run is the saturation row. Each configuration
// runs three times and each metric keeps its best observation (min
// quantile, max QPS) — the repeats bound scheduler noise, which is why
// these rows can sit under the same 30% compare gate as the
// micro-rows.
func runLoadtest(cfg experiments.Config) []servingRow {
	domain := 1 << 10
	side := 64
	duration := 4 * time.Second
	warmup := time.Second
	workers := 8
	const repeats = 3
	if cfg.Scale == experiments.ScaleSmall {
		duration = 1200 * time.Millisecond
		warmup = 300 * time.Millisecond
	}
	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64(i % 23)
	}
	cells := make([][]float64, side)
	for y := range cells {
		row := make([]float64, side)
		for x := range row {
			row[x] = float64((x + y) % 13)
		}
		cells[y] = row
	}
	store := dphist.NewStore(dphist.WithBudget(1e9), dphist.WithQueryCache(1024))
	in, err := ingest.New(ingest.Config{
		Store:     store,
		Mechanism: dphist.MustNew(dphist.WithSeed(cfg.Seed + 1)),
		Domain:    domain,
		Epoch:     time.Hour, // far out: the run measures serving, not epoch mints
		Epsilon:   0.01,
		Shards:    4,
		Seed:      cfg.Seed + 2,
	})
	if err != nil {
		fatalf("%v", err)
	}
	in.Start()
	defer in.Close()
	srv, err := server.New(server.Config{
		Counts: counts, Cells: cells, Store: store, Seed: cfg.Seed, Ingester: in,
	})
	if err != nil {
		fatalf("%v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A popularity spread for the Zipf to bite on: discovery order is
	// mint order, so "hot" takes the bulk of the query traffic.
	for _, mint := range []string{
		`{"name":"hot","strategy":"universal","epsilon":0.1}`,
		`{"name":"grid","strategy":"universal2d","epsilon":0.1}`,
		`{"name":"warm","strategy":"laplace","epsilon":0.1}`,
		`{"name":"cold","strategy":"wavelet","epsilon":0.1}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/releases", "application/json", strings.NewReader(mint))
		if err != nil {
			fatalf("%v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalf("loadtest mint failed: %s", resp.Status)
		}
	}
	targets, err := loadgen.Discover(ts.Client(), ts.URL, "")
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("== HTTP loadtest: %d workers, %v measured after %v warmup, best of %d (domain %d, %dx%d grid) ==\n",
		workers, duration, warmup, repeats, domain, side, side)
	lcfg := loadgen.Config{
		BaseURL:      ts.URL,
		Targets:      targets,
		Workers:      workers,
		Duration:     duration,
		Warmup:       warmup,
		QueryWeight:  0.85,
		MintWeight:   0.10,
		IngestWeight: 0.05,
		Batch:        8,
		Correlation:  0.6,
		MintEpsilon:  0.0001,
		Client:       ts.Client(),
	}
	// best-of-repeats accumulators, keyed by op class plus the
	// saturation total.
	type best struct {
		p50, p99 float64
		qps      float64
		ops      int64
		errs     int64
	}
	classes := map[string]*best{}
	var satQPS float64
	for r := 0; r < repeats; r++ {
		lcfg.Seed = cfg.Seed + uint64(r) + 1
		rep, err := loadgen.Run(lcfg)
		if err != nil {
			fatalf("%v", err)
		}
		if rep.QPS > satQPS {
			satQPS = rep.QPS
		}
		for _, c := range rep.Classes {
			b := classes[c.Op]
			if b == nil {
				b = &best{p50: float64(c.P50Ns), p99: float64(c.P99Ns)}
				classes[c.Op] = b
			}
			if v := float64(c.P50Ns); v < b.p50 {
				b.p50 = v
			}
			if v := float64(c.P99Ns); v < b.p99 {
				b.p99 = v
			}
			if c.QPS > b.qps {
				b.qps = c.QPS
			}
			b.ops += c.Ops
			b.errs += c.Errors
		}
	}

	var rows []servingRow
	for _, op := range []string{"query", "mint", "ingest"} {
		b := classes[op]
		if b == nil {
			continue
		}
		row := servingRow{
			Experiment:     "loadtest",
			Release:        op + "-mixed",
			Queries:        int(b.ops),
			QueriesPerSec:  b.qps,
			P50Ns:          b.p50,
			P99Ns:          b.p99,
			ElapsedSeconds: duration.Seconds() * repeats,
			DomainOrSide:   domain,
			BatchSize:      lcfg.Batch,
		}
		if b.ops > 0 {
			row.ErrorRate = float64(b.errs) / float64(b.ops)
		}
		rows = append(rows, row)
	}
	rows = append(rows, servingRow{
		Experiment:     "loadtest",
		Release:        "saturation",
		QueriesPerSec:  satQPS,
		ElapsedSeconds: duration.Seconds() * repeats,
		DomainOrSide:   domain,
		BatchSize:      lcfg.Batch,
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "row\tops\terr rate\tp50\tp99\tops/sec\t\n")
	for _, r := range rows {
		p50, p99 := "-", "-"
		if r.P99Ns > 0 {
			p50 = fmt.Sprintf("%.3fms", r.P50Ns/1e6)
			p99 = fmt.Sprintf("%.3fms", r.P99Ns/1e6)
		}
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%s\t%s\t%.0f\t\n",
			r.Release, r.Queries, r.ErrorRate, p50, p99, r.QueriesPerSec)
	}
	w.Flush()
	return rows
}
