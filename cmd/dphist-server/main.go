// Command dphist-server runs the private histogram interface of Appendix
// B: it loads a sensitive dataset once, holds a fixed epsilon budget, and
// answers HTTP release requests until the budget is exhausted.
//
// Usage:
//
//	dphist-server -domain 1024 -budget 2.0 [flags] < records.csv
//
// Flags:
//
//	-addr A      listen address (default :8080)
//	-domain N    domain size (required)
//	-col N       0-based CSV column holding the position (default 0)
//	-budget F    total epsilon budget (default 1.0)
//	-cap F       per-request epsilon cap (0 = none)
//	-k N         universal tree branching factor (default 2)
//	-seed N      noise seed (0 = derive from current time)
//
// API:
//
//	GET  /v1/budget   -> {"total":..,"spent":..,"remaining":..}
//	POST /v1/release  {"task":"universal|unattributed|laplace","epsilon":0.1}
//	                  -> {"task":..,"release":{..},"budget_remaining":..}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/dphist/dphist/internal/server"
	"github.com/dphist/dphist/internal/table"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		domainSize = flag.Int("domain", 0, "domain size (required)")
		col        = flag.Int("col", 0, "0-based CSV column holding the position")
		budget     = flag.Float64("budget", 1.0, "total epsilon budget")
		cap        = flag.Float64("cap", 0, "per-request epsilon cap (0 = none)")
		branching  = flag.Int("k", 2, "universal tree branching factor")
		seed       = flag.Uint64("seed", 0, "noise seed (0 = derive from current time)")
	)
	flag.Parse()
	if *domainSize < 1 {
		fmt.Fprintln(os.Stderr, "dphist-server: -domain is required and must be positive")
		os.Exit(2)
	}
	tab, err := table.New(*domainSize)
	if err != nil {
		fatal(err)
	}
	index := func(s string) (int, error) { return strconv.Atoi(s) }
	loaded, skipped, err := table.ReadCSV(os.Stdin, *col, index, tab)
	if err != nil {
		fatal(err)
	}
	s := *seed
	if s == 0 {
		s = uint64(time.Now().UnixNano())
	}
	srv, err := server.New(server.Config{
		Counts:               tab.Histogram(),
		Budget:               *budget,
		Seed:                 s,
		Branching:            *branching,
		MaxEpsilonPerRequest: *cap,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dphist-server: protecting %d records over domain %d (skipped %d rows), budget eps=%g, listening on %s\n",
		loaded, *domainSize, skipped, *budget, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dphist-server: %v\n", err)
	os.Exit(1)
}
