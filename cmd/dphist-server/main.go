// Command dphist-server runs the private histogram interface of Appendix
// B: it loads a sensitive dataset once, holds a fixed epsilon budget, and
// answers HTTP release requests until the budget is exhausted.
//
// Usage:
//
//	dphist-server -domain 1024 -budget 2.0 [flags] < records.csv
//
// Flags:
//
//	-addr A           listen address (default :8080)
//	-domain N         domain size (required)
//	-col N            0-based CSV column holding the position (default 0)
//	-grid W           also serve the dataset as a 2-D grid of width W:
//	                  position p maps to cell (p mod W, p div W), enabling
//	                  the universal2d strategy and POST /v1/query2d
//	                  rectangle batches (0 = 1-D only)
//	-budget F         total epsilon budget per namespace (default 1.0)
//	-cap F            per-request epsilon cap (0 = none)
//	-k N              universal tree branching factor (default 2)
//	-seed N           noise seed (0 = derive from current time)
//	-data-dir D       persist releases and budget ledgers under D; on boot
//	                  the store recovers from its snapshot + write-ahead
//	                  log, so restarts neither lose releases nor forget
//	                  spent budget (empty = in-memory, state dies with
//	                  the process)
//	-shards N         store shard count (0 = auto)
//	-snapshot-every N journal records between snapshots (default 1024)
//	-store-cap N      max stored releases, LRU-evicted past it (0 = unbounded)
//	-store-ttl D      stored-release lifetime, e.g. 1h (0 = forever)
//	-cache-cap N      answer-cache capacity per query family (default
//	                  1024): repeated /v1/query and /v1/query2d batches
//	                  against an unchanged release answer from memory
//	                  (invalidated on re-mint, delete, and TTL expiry;
//	                  hit counters in /v1/stats). 0 disables caching
//	-epoch D          enable streaming ingest: POST /v1/ingest absorbs
//	                  event batches and every D (e.g. 10s, 5m) each
//	                  stream's accumulated histogram is minted as a
//	                  "<stream>@epoch-<n>" release, charged -ingest-eps
//	                  from the namespace budget (0 = ingest off)
//	-window W         also maintain "<stream>@window", the budget-free
//	                  sum of the last W epochs (0 = off)
//	-ingest-shards N  ingest worker shards (default 4)
//	-ingest-domain N  buckets per ingested stream (default -domain)
//	-ingest-eps F     epsilon charged per epoch mint (default 0.1)
//	-ingest-strategy S pipeline for epoch releases (default universal)
//	-live-eps F       enable the continual-count surface at this
//	                  per-stream epsilon: POST /v1/ingest/live answers
//	                  private running totals between mints (0 = off)
//	-follow URL       run as a read replica of the primary at URL: no
//	                  dataset is loaded, minting and ingest are refused
//	                  (403), and the store is fed by tailing the
//	                  primary's replication log (GET /v1/repl/stream).
//	                  With -data-dir the replica persists shipped state
//	                  and resumes the stream where it stopped; replicas
//	                  serve every read route bit-identically to the
//	                  primary. See also cmd/dphist-router
//	-pprof A          serve net/http/pprof on a separate listener at A
//	                  (e.g. 127.0.0.1:6060), kept off the serving mux so
//	                  profiling never rides the public address; works in
//	                  both primary and -follow modes (empty = off)
//
// API:
//
//	GET  /healthz        -> {"status":"ok"} (load-balancer probe)
//	GET  /v1/stats       -> uptime, request counters, answer-cache
//	                        hits/misses/ratio, and per-namespace store
//	                        sizes and budgets
//	GET  /v1/budget      -> {"namespace":..,"total":..,"spent":..,"remaining":..}
//	GET  /v1/strategies  -> {"strategies":["laplace","universal",..]}
//	POST /v1/release     {"strategy":"universal|laplace|unattributed|
//	                       wavelet|degree_sequence","epsilon":0.1}
//	                     -> {"version":2,"strategy":..,"release":{..},
//	                         "budget_remaining":..}
//	POST /v1/releases    {"name":"traffic","strategy":"universal",
//	                      "epsilon":0.1}
//	                     -> mints AND retains the release under the name
//	                        (re-posting a name bumps its version), reply
//	                        as /v1/release plus {"namespace","name",..}
//	GET  /v1/releases    -> {"releases":[{"namespace","name","version",
//	                         "strategy","epsilon","domain","stored_at"},..]}
//	POST /v1/query       {"name":"traffic","ranges":[{"lo":0,"hi":64},..]}
//	                     -> {"namespace","name","version","strategy",
//	                         "answers":[..]} answering the whole batch in
//	                        one round trip; querying spends no budget
//	POST /v1/query2d     {"name":"grid","rects":[{"x0":0,"y0":0,"x1":8,
//	                      "y1":8},..]} -> rectangle answers against a
//	                     stored universal2d release (requires -grid)
//	POST /v1/ingest      {"events":[{"stream":"clicks","bucket":3,
//	                      "weight":2},..]} -> {"accepted","dropped"};
//	                     absorbed into the posting namespace's streams
//	                     and minted on the next epoch tick (requires
//	                     -epoch)
//	POST /v1/ingest/live {"stream":"clicks","buckets":[3,7]} ->
//	                     {"counts":[..]} private running totals between
//	                     mints (requires -epoch and -live-eps)
//
// Every route above also exists namespace-scoped under /v1/ns/{ns}/...,
// giving each tenant its own release keyspace and epsilon budget; the
// unscoped routes are the "default" namespace.
//
// On SIGINT/SIGTERM the server drains in-flight requests, flushes a
// final store snapshot, and exits — with -data-dir, the next boot
// recovers exactly the state acknowledged before shutdown.
//
// The embedded release payload is self-describing and decodes with
// dphist.DecodeRelease. The hierarchy strategy needs a constraint
// forest and is only servable by embedding the server package directly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/ingest"
	"github.com/dphist/dphist/internal/replica"
	"github.com/dphist/dphist/internal/server"
	"github.com/dphist/dphist/internal/table"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		domainSize = flag.Int("domain", 0, "domain size (required)")
		col        = flag.Int("col", 0, "0-based CSV column holding the position")
		gridWidth  = flag.Int("grid", 0, "serve the dataset as a 2-D grid of this width (0 = 1-D only)")
		budget     = flag.Float64("budget", 1.0, "total epsilon budget per namespace")
		epsCap     = flag.Float64("cap", 0, "per-request epsilon cap (0 = none)")
		branching  = flag.Int("k", 2, "universal tree branching factor")
		seed       = flag.Uint64("seed", 0, "noise seed (0 = derive from current time)")
		dataDir    = flag.String("data-dir", "", "persist releases and budget ledgers here (empty = in-memory)")
		shards     = flag.Int("shards", 0, "store shard count (0 = auto)")
		snapEvery  = flag.Int("snapshot-every", 0, "journal records between snapshots (0 = default 1024)")
		storeCap   = flag.Int("store-cap", 0, "max stored releases, LRU-evicted past it (0 = unbounded)")
		storeTTL   = flag.Duration("store-ttl", 0, "stored-release lifetime (0 = forever)")
		cacheCap   = flag.Int("cache-cap", 1024, "answer-cache capacity per query family (0 = caching off)")
		epoch      = flag.Duration("epoch", 0, "streaming ingest epoch interval (0 = ingest off)")
		window     = flag.Int("window", 0, "sliding-window width in epochs (0 = off)")
		ingShards  = flag.Int("ingest-shards", 4, "ingest worker shards")
		ingDomain  = flag.Int("ingest-domain", 0, "buckets per ingested stream (0 = -domain)")
		ingEps     = flag.Float64("ingest-eps", 0.1, "epsilon charged per epoch mint")
		ingStrat   = flag.String("ingest-strategy", "universal", "pipeline for epoch releases")
		liveEps    = flag.Float64("live-eps", 0, "per-stream epsilon for the live continual-count surface (0 = off)")
		follow     = flag.String("follow", "", "run as a read replica of this primary's base URL (no dataset, no minting)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this separate loopback address, e.g. 127.0.0.1:6060 (empty = off)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}
	if *follow != "" {
		// A follower loads no dataset and mints nothing: every flag that
		// shapes the protected counts or the write path is meaningless,
		// and silently accepting them would hide a misconfiguration.
		if *epoch > 0 {
			fmt.Fprintln(os.Stderr, "dphist-server: -epoch cannot be combined with -follow (ingest belongs on the primary)")
			os.Exit(2)
		}
		runFollower(*follow, *addr, *budget, *seed, *branching,
			*dataDir, *shards, *snapEvery, *storeCap, *storeTTL, *cacheCap)
		return
	}
	if *domainSize < 1 {
		fmt.Fprintln(os.Stderr, "dphist-server: -domain is required and must be positive")
		os.Exit(2)
	}
	if !(*budget > 0) || math.IsInf(*budget, 0) {
		fmt.Fprintf(os.Stderr, "dphist-server: -budget %v must be positive and finite\n", *budget)
		os.Exit(2)
	}
	tab, err := table.New(*domainSize)
	if err != nil {
		fatal(err)
	}
	index := func(s string) (int, error) { return strconv.Atoi(s) }
	loaded, skipped, err := table.ReadCSV(os.Stdin, *col, index, tab)
	if err != nil {
		fatal(err)
	}
	s := *seed
	if s == 0 {
		s = uint64(time.Now().UnixNano())
	}
	if *gridWidth < 0 || *gridWidth > *domainSize {
		fmt.Fprintf(os.Stderr, "dphist-server: -grid %d outside [0, domain %d]\n", *gridWidth, *domainSize)
		os.Exit(2)
	}
	cfg := server.Config{
		Counts:               tab.Histogram(),
		Cells:                reshape(tab.Histogram(), *gridWidth),
		Budget:               *budget,
		Seed:                 s,
		Branching:            *branching,
		MaxEpsilonPerRequest: *epsCap,
		StoreCapacity:        *storeCap,
		StoreTTL:             *storeTTL,
		CacheCapacity:        *cacheCap,
	}
	// The store is built here (not inside server.New) whenever something
	// besides the HTTP handler needs to hold it: durability, or an ingest
	// pipeline minting into the same keyspace.
	var store *dphist.Store
	if *dataDir != "" || *epoch > 0 {
		opts := []dphist.StoreOption{
			dphist.WithBudget(*budget),
			dphist.WithCapacity(*storeCap),
			dphist.WithTTL(*storeTTL),
			dphist.WithQueryCache(*cacheCap),
		}
		if *shards > 0 {
			opts = append(opts, dphist.WithShards(*shards))
		}
		if *snapEvery > 0 {
			opts = append(opts, dphist.WithSnapshotEvery(*snapEvery))
		}
		if *dataDir != "" {
			store, err = dphist.OpenStore(*dataDir, opts...)
			if err != nil {
				fatal(err)
			}
			// Recovery summary: what the ledger remembers from before.
			recovered := 0
			for _, ns := range store.Namespaces() {
				n := store.Namespace(ns).Len()
				recovered += n
				acct := store.Namespace(ns).Accountant()
				fmt.Fprintf(os.Stderr, "dphist-server: recovered namespace %q: %d releases, eps spent %g of %g\n",
					ns, n, acct.Spent(), acct.Total())
			}
			fmt.Fprintf(os.Stderr, "dphist-server: data dir %s: %d releases recovered\n", *dataDir, recovered)
		} else {
			store = dphist.NewStore(opts...)
		}
		cfg.Store = store
	}
	var ingester *ingest.Ingester
	if *epoch > 0 {
		strategy, err := dphist.ParseStrategy(*ingStrat)
		if err != nil {
			fatal(fmt.Errorf("-ingest-strategy: %w", err))
		}
		// The ingest pipeline has no workload sketch to resolve against;
		// "auto" only makes sense on the request path.
		if strategy == dphist.StrategyAuto {
			fatal(errors.New("-ingest-strategy: auto is not a pipeline; pick a concrete strategy"))
		}
		domain := *ingDomain
		if domain == 0 {
			domain = *domainSize
		}
		// A separate mechanism (offset seed) keeps the ingest noise
		// streams disjoint from the request-serving ones.
		mech, err := dphist.New(dphist.WithSeed(s+1), dphist.WithBranching(*branching))
		if err != nil {
			fatal(err)
		}
		ingester, err = ingest.New(ingest.Config{
			Store:       store,
			Mechanism:   mech,
			Domain:      domain,
			Epoch:       *epoch,
			Strategy:    strategy,
			Epsilon:     *ingEps,
			Window:      *window,
			Shards:      *ingShards,
			LiveEpsilon: *liveEps,
			Seed:        s + 2,
		})
		if err != nil {
			fatal(err)
		}
		ingester.Start()
		cfg.Ingester = ingester
		fmt.Fprintf(os.Stderr, "dphist-server: streaming ingest on: epoch %v, window %d, %d shards, eps %g/epoch\n",
			*epoch, *window, *ingShards, *ingEps)
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dphist-server: protecting %d records over domain %d (skipped %d rows), budget eps=%g/namespace, listening on %s\n",
		loaded, *domainSize, skipped, *budget, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// requests, then flushes a final snapshot so no acknowledged release
	// or budget charge is left only in the WAL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if ingester != nil {
			_ = ingester.Close()
		}
		if store != nil {
			_ = store.Close()
		}
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "dphist-server: shutting down, draining requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dphist-server: drain: %v\n", err)
	}
	// The ingester closes before the store: its final partial-epoch mint
	// must land while the journal still accepts writes.
	if ingester != nil {
		if err := ingester.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dphist-server: final epoch flush: %v\n", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fatal(fmt.Errorf("final snapshot: %w", err))
		}
		fmt.Fprintln(os.Stderr, "dphist-server: final snapshot flushed")
	}
}

// runFollower runs the process as a read replica: an (optionally
// durable) replica store fed by a replication tailer, served through a
// follower-mode server that refuses writes with 403. Blocks until
// SIGINT/SIGTERM, then stops the tailer BEFORE closing the store.
func runFollower(primary, addr string, budget float64, seed uint64, branching int,
	dataDir string, shards, snapEvery, storeCap int, storeTTL time.Duration, cacheCap int) {
	if !(budget > 0) || math.IsInf(budget, 0) {
		fmt.Fprintf(os.Stderr, "dphist-server: -budget %v must be positive and finite\n", budget)
		os.Exit(2)
	}
	opts := []dphist.StoreOption{
		dphist.WithBudget(budget),
		dphist.WithCapacity(storeCap),
		dphist.WithTTL(storeTTL),
		dphist.WithQueryCache(cacheCap),
	}
	if shards > 0 {
		opts = append(opts, dphist.WithShards(shards))
	}
	if snapEvery > 0 {
		opts = append(opts, dphist.WithSnapshotEvery(snapEvery))
	}
	var store *dphist.Store
	var err error
	if dataDir != "" {
		store, err = dphist.OpenReplica(dataDir, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dphist-server: follower data dir %s: resuming at primary seq %d\n",
			dataDir, store.AppliedSeq())
	} else {
		store = dphist.NewReplica(opts...)
	}
	tailer, err := replica.New(replica.Config{
		Primary: primary,
		Store:   store,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dphist-server: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	s := seed
	if s == 0 {
		s = uint64(time.Now().UnixNano())
	}
	srv, err := server.New(server.Config{
		Store:     store,
		Follower:  true,
		Seed:      s,
		Branching: branching,
		ReplStats: func() server.ReplicationStatus {
			st := tailer.Stats()
			return server.ReplicationStatus{
				State:          st.State,
				PrimarySeq:     st.PrimarySeq,
				RecordsApplied: st.RecordsApplied,
				Snapshots:      st.Snapshots,
				Errors:         st.Errors,
				LastError:      st.LastError,
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	tailer.Start()
	fmt.Fprintf(os.Stderr, "dphist-server: following %s, read-only API on %s\n", primary, addr)
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()
	select {
	case err := <-serveErr:
		tailer.Close()
		_ = store.Close()
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "dphist-server: shutting down, draining requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dphist-server: drain: %v\n", err)
	}
	// The tailer closes before the store — the read-side mirror of the
	// ingester-before-store rule above: Close joins the streaming
	// goroutine, so no half-applied record can race the final snapshot.
	tailer.Close()
	if err := store.Close(); err != nil {
		fatal(fmt.Errorf("final snapshot: %w", err))
	}
	if store.Dir() != "" {
		fmt.Fprintln(os.Stderr, "dphist-server: final snapshot flushed")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dphist-server: %v\n", err)
	os.Exit(1)
}

// startPprof serves net/http/pprof on its own listener, kept off the
// serving mux so profiling stays on a loopback address operators never
// expose. It runs for both primary and follower modes; a dead listener
// is fatal up front rather than silently unprofileable.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fatal(fmt.Errorf("pprof listener %s: %w", addr, err))
		}
	}()
	fmt.Fprintf(os.Stderr, "dphist-server: pprof on http://%s/debug/pprof/\n", addr)
}

// reshape folds a 1-D histogram row-major into rows of the given width,
// zero-padding the final row; width 0 disables the 2-D surface.
func reshape(counts []float64, width int) [][]float64 {
	if width <= 0 {
		return nil
	}
	rows := (len(counts) + width - 1) / width
	cells := make([][]float64, rows)
	for y := range cells {
		lo := y * width
		hi := min(lo+width, len(counts))
		cells[y] = counts[lo:hi]
	}
	return cells
}
