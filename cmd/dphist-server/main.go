// Command dphist-server runs the private histogram interface of Appendix
// B: it loads a sensitive dataset once, holds a fixed epsilon budget, and
// answers HTTP release requests until the budget is exhausted.
//
// Usage:
//
//	dphist-server -domain 1024 -budget 2.0 [flags] < records.csv
//
// Flags:
//
//	-addr A        listen address (default :8080)
//	-domain N      domain size (required)
//	-col N         0-based CSV column holding the position (default 0)
//	-budget F      total epsilon budget (default 1.0)
//	-cap F         per-request epsilon cap (0 = none)
//	-k N           universal tree branching factor (default 2)
//	-seed N        noise seed (0 = derive from current time)
//	-store-cap N   max stored releases, LRU-evicted past it (0 = unbounded)
//	-store-ttl D   stored-release lifetime, e.g. 1h (0 = forever)
//
// API:
//
//	GET  /v1/budget      -> {"total":..,"spent":..,"remaining":..}
//	GET  /v1/strategies  -> {"strategies":["laplace","universal",..]}
//	POST /v1/release     {"strategy":"universal|laplace|unattributed|
//	                       wavelet|degree_sequence","epsilon":0.1}
//	                     -> {"version":2,"strategy":..,"release":{..},
//	                         "budget_remaining":..}
//	POST /v1/releases    {"name":"traffic","strategy":"universal",
//	                      "epsilon":0.1}
//	                     -> mints AND retains the release under the name
//	                        (re-posting a name bumps its version), reply
//	                        as /v1/release plus {"name","version",..}
//	GET  /v1/releases    -> {"releases":[{"name","version","strategy",
//	                         "epsilon","domain","stored_at"},..]}
//	POST /v1/query       {"name":"traffic","ranges":[{"lo":0,"hi":64},..]}
//	                     -> {"name","version","strategy","answers":[..]}
//	                        answering the whole batch in one round trip;
//	                        querying spends no budget
//
// The embedded release payload is self-describing and decodes with
// dphist.DecodeRelease. The hierarchy strategy needs a constraint
// forest and is only servable by embedding the server package directly.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/dphist/dphist/internal/server"
	"github.com/dphist/dphist/internal/table"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		domainSize = flag.Int("domain", 0, "domain size (required)")
		col        = flag.Int("col", 0, "0-based CSV column holding the position")
		budget     = flag.Float64("budget", 1.0, "total epsilon budget")
		epsCap     = flag.Float64("cap", 0, "per-request epsilon cap (0 = none)")
		branching  = flag.Int("k", 2, "universal tree branching factor")
		seed       = flag.Uint64("seed", 0, "noise seed (0 = derive from current time)")
		storeCap   = flag.Int("store-cap", 0, "max stored releases, LRU-evicted past it (0 = unbounded)")
		storeTTL   = flag.Duration("store-ttl", 0, "stored-release lifetime (0 = forever)")
	)
	flag.Parse()
	if *domainSize < 1 {
		fmt.Fprintln(os.Stderr, "dphist-server: -domain is required and must be positive")
		os.Exit(2)
	}
	tab, err := table.New(*domainSize)
	if err != nil {
		fatal(err)
	}
	index := func(s string) (int, error) { return strconv.Atoi(s) }
	loaded, skipped, err := table.ReadCSV(os.Stdin, *col, index, tab)
	if err != nil {
		fatal(err)
	}
	s := *seed
	if s == 0 {
		s = uint64(time.Now().UnixNano())
	}
	srv, err := server.New(server.Config{
		Counts:               tab.Histogram(),
		Budget:               *budget,
		Seed:                 s,
		Branching:            *branching,
		MaxEpsilonPerRequest: *epsCap,
		StoreCapacity:        *storeCap,
		StoreTTL:             *storeTTL,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dphist-server: protecting %d records over domain %d (skipped %d rows), budget eps=%g, listening on %s\n",
		loaded, *domainSize, skipped, *budget, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := httpServer.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dphist-server: %v\n", err)
	os.Exit(1)
}
