package dphist

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestAccountantSequentialSpending(t *testing.T) {
	a := NewAccountant(1.0)
	if a.Total() != 1.0 || a.Spent() != 0 || a.Remaining() != 1.0 {
		t.Fatal("fresh accountant bookkeeping wrong")
	}
	if err := a.Spend("first", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("second", 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 0.75 || math.Abs(a.Remaining()-0.25) > 1e-12 {
		t.Fatalf("spent %v remaining %v", a.Spent(), a.Remaining())
	}
	err := a.Spend("overdraft", 0.5)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraft error = %v", err)
	}
	// The refused charge recorded nothing.
	if a.Spent() != 0.75 || len(a.Log()) != 2 {
		t.Fatal("refused charge mutated state")
	}
	log := a.Log()
	if log[0].Label != "first" || log[0].Epsilon != 0.25 ||
		log[1].Label != "second" || log[1].Epsilon != 0.5 {
		t.Fatalf("log = %+v", log)
	}
}

func TestAccountantExactSplitTolerance(t *testing.T) {
	a := NewAccountant(1.0)
	for i, share := range Split(1.0, 3) {
		if err := a.Spend("share", share); err != nil {
			t.Fatalf("installment %d refused: %v", i, err)
		}
	}
	if a.Remaining() != 0 {
		t.Fatalf("remaining %v after exact split", a.Remaining())
	}
}

func TestAccountantInvalidSpends(t *testing.T) {
	a := NewAccountant(1.0)
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := a.Spend("bad", eps); err == nil {
			t.Errorf("spend of %v accepted", eps)
		}
	}
	if a.Spent() != 0 {
		t.Fatal("invalid spends charged")
	}
}

func TestNewAccountantPanicsOnBadBudget(t *testing.T) {
	for _, total := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budget %v accepted", total)
				}
			}()
			NewAccountant(total)
		}()
	}
}

func TestAccountantConcurrentSpends(t *testing.T) {
	a := NewAccountant(100)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Spend("parallel", 1)
		}()
	}
	wg.Wait()
	if a.Spent() != 64 || len(a.Log()) != 64 {
		t.Fatalf("spent %v with %d charges", a.Spent(), len(a.Log()))
	}
}

func TestSplit(t *testing.T) {
	shares := Split(0.9, 3)
	if len(shares) != 3 {
		t.Fatal("wrong share count")
	}
	for _, s := range shares {
		if math.Abs(s-0.3) > 1e-12 {
			t.Fatalf("share %v", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Split(eps, 0) did not panic")
		}
	}()
	Split(1, 0)
}
