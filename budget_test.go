package dphist

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestAccountantSequentialSpending(t *testing.T) {
	a := NewAccountant(1.0)
	if a.Total() != 1.0 || a.Spent() != 0 || a.Remaining() != 1.0 {
		t.Fatal("fresh accountant bookkeeping wrong")
	}
	if err := a.Spend("first", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("second", 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 0.75 || math.Abs(a.Remaining()-0.25) > 1e-12 {
		t.Fatalf("spent %v remaining %v", a.Spent(), a.Remaining())
	}
	err := a.Spend("overdraft", 0.5)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraft error = %v", err)
	}
	// The refused charge recorded nothing.
	if a.Spent() != 0.75 || len(a.Log()) != 2 {
		t.Fatal("refused charge mutated state")
	}
	log := a.Log()
	if log[0].Label != "first" || log[0].Epsilon != 0.25 ||
		log[1].Label != "second" || log[1].Epsilon != 0.5 {
		t.Fatalf("log = %+v", log)
	}
}

func TestAccountantExactSplitTolerance(t *testing.T) {
	a := NewAccountant(1.0)
	for i, share := range Split(1.0, 3) {
		if err := a.Spend("share", share); err != nil {
			t.Fatalf("installment %d refused: %v", i, err)
		}
	}
	if a.Remaining() != 0 {
		t.Fatalf("remaining %v after exact split", a.Remaining())
	}
}

// Regression: a charge admitted inside the rounding-tolerance window
// must not leave Spent() above Total() — 0.1 + 0.2 sums a hair past 0.3
// in floats, and before the clamp that hair leaked into the public
// accounting so that Spent() + Remaining() != Total().
func TestAccountantClampsSpentToTotal(t *testing.T) {
	cases := []struct {
		total  float64
		spends []float64
	}{
		{0.3, []float64{0.1, 0.2}},
		{1.0, Split(1.0, 3)},
		{1.0, Split(1.0, 7)},
		{2.4, []float64{0.8, 0.8, 0.8}},
	}
	for _, c := range cases {
		a := NewAccountant(c.total)
		for i, eps := range c.spends {
			if err := a.Spend("share", eps); err != nil {
				t.Fatalf("total %v: installment %d refused: %v", c.total, i, err)
			}
		}
		if a.Spent() > a.Total() {
			t.Errorf("total %v: Spent() = %v exceeds Total()", c.total, a.Spent())
		}
		if a.Spent()+a.Remaining() != a.Total() {
			t.Errorf("total %v: Spent()+Remaining() = %v, Total() = %v",
				c.total, a.Spent()+a.Remaining(), a.Total())
		}
	}
}

// The clamp lives in the read accessors, not the admission accumulator:
// if Spend clamped the running sum, every tiny charge admitted through
// the tolerance window would reset it, admitting real epsilon forever
// while Spent() stood still. The window must self-exhaust.
func TestAccountantToleranceWindowSelfExhausts(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("all", 1.0); err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 10; i++ {
		if a.Spend("dust", 1e-12) == nil {
			admitted++
		}
	}
	if admitted > 1 {
		t.Fatalf("%d dust charges admitted after exhaustion; window did not close", admitted)
	}
	if a.Spent() != a.Total() || a.Remaining() != 0 {
		t.Fatalf("Spent = %v, Remaining = %v after exhaustion", a.Spent(), a.Remaining())
	}
}

func TestAccountantInvalidSpends(t *testing.T) {
	a := NewAccountant(1.0)
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := a.Spend("bad", eps); err == nil {
			t.Errorf("spend of %v accepted", eps)
		}
	}
	if a.Spent() != 0 {
		t.Fatal("invalid spends charged")
	}
}

func TestNewAccountantPanicsOnBadBudget(t *testing.T) {
	for _, total := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budget %v accepted", total)
				}
			}()
			NewAccountant(total)
		}()
	}
}

func TestAccountantConcurrentSpends(t *testing.T) {
	a := NewAccountant(100)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Spend("parallel", 1)
		}()
	}
	wg.Wait()
	if a.Spent() != 64 || len(a.Log()) != 64 {
		t.Fatalf("spent %v with %d charges", a.Spent(), len(a.Log()))
	}
}

func TestSplit(t *testing.T) {
	shares := Split(0.9, 3)
	if len(shares) != 3 {
		t.Fatal("wrong share count")
	}
	for _, s := range shares {
		if math.Abs(s-0.3) > 1e-12 {
			t.Fatalf("share %v", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Split(eps, 0) did not panic")
		}
	}()
	Split(1, 0)
}
