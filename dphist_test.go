package dphist

import (
	"math"
	"sort"
	"testing"
)

func TestNewOptionErrors(t *testing.T) {
	if _, err := New(WithBranching(1)); err == nil {
		t.Fatal("branching 1 accepted")
	}
	if _, err := New(WithBranching(4), WithSeed(9)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(WithBranching(0))
}

func TestValidateErrors(t *testing.T) {
	m := MustNew()
	if _, err := m.LaplaceHistogram(nil, 1); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := m.LaplaceHistogram([]float64{1}, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := m.LaplaceHistogram([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN count accepted")
	}
	if _, err := m.UnattributedHistogram([]float64{1}, math.Inf(1)); err == nil {
		t.Error("infinite epsilon accepted")
	}
	if _, err := m.UniversalHistogram([]float64{math.Inf(1)}, 1); err == nil {
		t.Error("infinite count accepted")
	}
	if _, err := m.WaveletHistogram(nil, 1); err == nil {
		t.Error("empty wavelet counts accepted")
	}
}

func TestDeterminismAcrossMechanisms(t *testing.T) {
	counts := []float64{2, 0, 10, 2}
	a, err := MustNew(WithSeed(11)).UnattributedHistogram(counts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(WithSeed(11)).UnattributedHistogram(counts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Noisy {
		if a.Noisy[i] != b.Noisy[i] {
			t.Fatal("same seed, different release")
		}
	}
	c, err := MustNew(WithSeed(12)).UnattributedHistogram(counts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Noisy {
		if a.Noisy[i] != c.Noisy[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds, identical release")
	}
}

func TestSuccessiveReleasesIndependent(t *testing.T) {
	m := MustNew(WithSeed(5))
	counts := []float64{3, 3, 3, 3}
	r1, _ := m.LaplaceHistogram(counts, 1.0)
	r2, _ := m.LaplaceHistogram(counts, 1.0)
	same := true
	for i := range r1.Noisy {
		if r1.Noisy[i] != r2.Noisy[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two releases reused the same noise stream")
	}
}

func TestLaplaceRelease(t *testing.T) {
	m := MustNew(WithSeed(1))
	counts := []float64{5, 0, 7, 1}
	r, err := m.LaplaceHistogram(counts, 10) // tiny noise
	if err != nil {
		t.Fatal(err)
	}
	published := r.Counts()
	if len(published) != 4 {
		t.Fatal("length wrong")
	}
	for _, v := range published {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("rounded count %v not a non-negative integer", v)
		}
	}
	got, err := r.Range(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != r.Total() {
		t.Fatal("Range(0,n) != Total")
	}
	if got, err := r.Range(2, 2); err != nil || got != 0 {
		t.Fatalf("empty range = %v, %v; want 0, nil", got, err)
	}
	// At eps=10 the rounded answer should equal the truth.
	for i, v := range published {
		if math.Abs(v-counts[i]) > 1 {
			t.Fatalf("eps=10 estimate too far: %v vs %v", v, counts[i])
		}
	}
}

func TestLaplaceWithoutRounding(t *testing.T) {
	m := MustNew(WithSeed(1), WithoutRounding())
	r, err := m.LaplaceHistogram([]float64{5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	published := r.Counts()
	rounded := 0
	for _, v := range published {
		if v == math.Trunc(v) {
			rounded++
		}
	}
	if rounded == len(published) {
		t.Fatal("WithoutRounding still produced all-integer counts")
	}
}

func TestUnattributedRelease(t *testing.T) {
	m := MustNew(WithSeed(2))
	counts := []float64{2, 0, 10, 2}
	r, err := m.UnattributedHistogram(counts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(r.Inferred) {
		t.Fatal("inferred answer not sorted")
	}
	if !sort.Float64sAreSorted(r.Counts()) {
		t.Fatal("published answer not sorted")
	}
	for _, v := range r.Counts() {
		if v < 0 || v != math.Trunc(v) {
			t.Fatal("published counts must be non-negative integers")
		}
	}
	base := r.SortRoundBaseline()
	if !sort.Float64sAreSorted(base) {
		t.Fatal("baseline not sorted")
	}
	if len(base) != len(counts) {
		t.Fatal("baseline length wrong")
	}
}

func TestUniversalReleaseConsistencyAndRanges(t *testing.T) {
	m := MustNew(WithSeed(3), WithoutNonNegativity(), WithoutRounding())
	counts := make([]float64, 100)
	for i := range counts {
		counts[i] = float64(i % 11)
	}
	r, err := m.UniversalHistogram(counts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Domain() != 100 {
		t.Fatalf("domain = %d", r.Domain())
	}
	if r.Branching() != 2 {
		t.Fatalf("branching = %d", r.Branching())
	}
	if r.TreeHeight() != 8 { // 128 leaves
		t.Fatalf("height = %d", r.TreeHeight())
	}
	// Range must equal the sum of unit estimates (consistency).
	leaves := r.Counts()
	want := 0.0
	for i := 20; i < 77; i++ {
		want += leaves[i]
	}
	got, err := r.Range(20, 77)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Range = %v, leaf sum = %v", got, want)
	}
	// Inferred tree is internally consistent: the root equals the sum of
	// all 128 leaves (padding included; padding leaves carry noise too).
	tree := r.InferredTree()
	allLeaves := 0.0
	for _, v := range tree[127:] {
		allLeaves += v
	}
	if math.Abs(tree[0]-allLeaves) > 1e-6 {
		t.Fatalf("root %v != sum of all leaves %v", tree[0], allLeaves)
	}
	// Total() covers only the real domain, matching Range(0, 100).
	full, _ := r.Range(0, 100)
	if math.Abs(full-r.Total()) > 1e-9 {
		t.Fatalf("Range(0,100) %v != Total %v", full, r.Total())
	}
	if _, err := r.Range(0, 101); err == nil {
		t.Fatal("overlong range accepted")
	}
	if _, err := r.RangeNoisy(-1, 5); err == nil {
		t.Fatal("negative range accepted")
	}
	// Noisy tree has the right size: 255 nodes for 128 leaves.
	if len(r.NoisyTree()) != 255 {
		t.Fatalf("noisy tree nodes = %d", len(r.NoisyTree()))
	}
}

func TestUniversalNonNegativityZeroesEmptyRegions(t *testing.T) {
	// Sparse domain: all mass in one narrow block. With the heuristic on
	// and eps small, faraway empty regions should publish exact zeros.
	counts := make([]float64, 1024)
	for i := 100; i < 110; i++ {
		counts[i] = 5000
	}
	m := MustNew(WithSeed(4))
	r, err := m.UniversalHistogram(counts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	leaves := r.Counts()
	zeros := 0
	for i := 512; i < 1024; i++ {
		if leaves[i] == 0 {
			zeros++
		}
	}
	if zeros < 400 {
		t.Fatalf("only %d of 512 far-empty positions zeroed", zeros)
	}
}

func TestUniversalBranchingOption(t *testing.T) {
	m := MustNew(WithSeed(6), WithBranching(4))
	r, err := m.UniversalHistogram(make([]float64, 64), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Branching() != 4 || r.TreeHeight() != 4 {
		t.Fatalf("k=%d height=%d, want 4/4", r.Branching(), r.TreeHeight())
	}
}

func TestWaveletRelease(t *testing.T) {
	m := MustNew(WithSeed(7))
	counts := []float64{10, 0, 3, 8, 2, 2, 2, 2}
	r, err := m.WaveletHistogram(counts, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Counts()
	if len(got) != 8 {
		t.Fatal("length wrong")
	}
	s, err := r.Range(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(s-sum) > 1e-9 {
		t.Fatal("Range(0,n) != sum of counts")
	}
	if _, err := r.Range(5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestHierarchyReleaseGrades(t *testing.T) {
	m := MustNew(WithSeed(8))
	h := Grades()
	if h.Sensitivity() != 3 || h.Len() != 7 {
		t.Fatalf("grades hierarchy wrong: sens=%v len=%d", h.Sensitivity(), h.Len())
	}
	leaves := h.Leaves()
	if len(leaves) != 5 {
		t.Fatalf("leaves = %v", leaves)
	}
	r, err := m.HierarchyRelease(h, []float64{120, 180, 90, 40, 25}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Consistency of the inferred answers: xt = xp + xF, xp = sum grades.
	inf := r.Inferred
	if math.Abs(inf[0]-(inf[1]+inf[6])) > 1e-6 {
		t.Fatalf("xt constraint violated: %v", inf)
	}
	if math.Abs(inf[1]-(inf[2]+inf[3]+inf[4]+inf[5])) > 1e-6 {
		t.Fatalf("xp constraint violated: %v", inf)
	}
}

func TestHierarchyReleaseErrors(t *testing.T) {
	m := MustNew()
	if _, err := m.HierarchyRelease(nil, []float64{1}, 1); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := m.HierarchyRelease(Grades(), []float64{1, 2}, 1); err == nil {
		t.Error("wrong leaf count accepted")
	}
	if _, err := NewHierarchy([]int{0}); err == nil {
		t.Error("self-parent accepted")
	}
	if h, err := NewHierarchy([]int{-1, 0, 0}); err != nil || h.Len() != 3 {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
}

func TestAccountantPublicAPI(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("histogram", 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 0.5 || a.Total() != 1.0 {
		t.Fatal("bookkeeping wrong")
	}
	if a.Remaining() != 0.5 {
		t.Fatal("remaining wrong")
	}
	if err := a.Spend("too much", 0.6); err == nil {
		t.Fatal("overdraw accepted")
	}
}

// End-to-end accuracy smoke test: on a heavily duplicated sequence, the
// unattributed release must beat the raw noisy answer by a wide margin.
func TestEndToEndUnattributedAccuracy(t *testing.T) {
	n := 512
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = float64((i / 128) * 7) // 4 distinct values
	}
	truth := append([]float64(nil), counts...)
	sort.Float64s(truth)
	m := MustNew(WithSeed(99), WithoutRounding())
	var errNoisy, errInferred float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r, err := m.UnattributedHistogram(counts, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			dn := r.Noisy[i] - truth[i]
			di := r.Inferred[i] - truth[i]
			errNoisy += dn * dn
			errInferred += di * di
		}
	}
	if errInferred*10 > errNoisy {
		t.Fatalf("inference gain too small: noisy %v vs inferred %v", errNoisy/trials, errInferred/trials)
	}
}

func TestCountsReturnsCopies(t *testing.T) {
	m := MustNew(WithSeed(13))
	r, err := m.UniversalHistogram(make([]float64, 16), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counts()
	c[0] = 12345
	if r.Counts()[0] == 12345 {
		t.Fatal("Counts aliases internal state")
	}
	w, err := m.WaveletHistogram(make([]float64, 16), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wc := w.Counts()
	wc[0] = 54321
	if w.Counts()[0] == 54321 {
		t.Fatal("wavelet Counts aliases internal state")
	}
}
