package dphist

// Regression tests for the answer cache's life-cycle contract: a cached
// batch must die with its release. A Delete, a same-name re-Put
// (version bump), and a TTL expiry must each stop cached answers from
// being served — including across an OpenStore kill-and-reopen, where
// the cache starts cold but versions continue.

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func mintTestRelease(t testing.TB, seed uint64) *UniversalRelease {
	t.Helper()
	counts := make([]float64, 64)
	for i := range counts {
		counts[i] = float64(i % 9)
	}
	rel, err := MustNew(WithSeed(seed)).UniversalHistogram(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

var cacheTestSpecs = []RangeSpec{{Lo: 0, Hi: 64}, {Lo: 3, Hi: 41}, {Lo: 63, Hi: 64}}

func TestQueryCacheHitsAndStats(t *testing.T) {
	s := NewStore(WithQueryCache(32))
	rel := mintTestRelease(t, 51)
	if _, err := s.Put("r", rel); err != nil {
		t.Fatal(err)
	}
	want, err := QueryBatch(rel, cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, _, err := s.Query("r", cacheTestSpecs)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pass %d: answer %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 || st.Capacity != 32 {
		t.Fatalf("stats = %+v", st)
	}
	// The 2-D family caches independently.
	rel2d, err := MustNew(WithSeed(52)).Universal2DHistogram([][]float64{{1, 2}, {3, 4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("grid", rel2d); err != nil {
		t.Fatal(err)
	}
	rects := []RectSpec{{X0: 0, Y0: 0, X1: 2, Y1: 2}}
	for i := 0; i < 2; i++ {
		if _, _, err := s.QueryRects("grid", rects); err != nil {
			t.Fatal(err)
		}
	}
	st = s.CacheStats()
	if st.Misses != 2 || st.Hits != 3 || st.Entries != 2 {
		t.Fatalf("stats after 2-D = %+v", st)
	}
	// A disabled cache reports zeroes.
	if st := NewStore().CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

func TestQueryCacheInvalidatedByRePut(t *testing.T) {
	s := NewStore(WithQueryCache(32))
	relA := mintTestRelease(t, 53)
	relB := mintTestRelease(t, 54) // different noise draw, different answers
	if _, err := s.Put("r", relA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("r", cacheTestSpecs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("r", relB); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("re-Put left %d cached entries alive", st.Entries)
	}
	got, entry, err := s.Query("r", cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 2 {
		t.Fatalf("version = %d, want 2", entry.Version)
	}
	want, err := QueryBatch(relB, cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d = %v, want the re-minted release's %v", i, got[i], want[i])
		}
	}
}

func TestQueryCacheInvalidatedByDelete(t *testing.T) {
	s := NewStore(WithQueryCache(32))
	if _, err := s.Put("r", mintTestRelease(t, 55)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("r", cacheTestSpecs); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("r") {
		t.Fatal("delete missed")
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("delete left %d cached entries alive", st.Entries)
	}
	if _, _, err := s.Query("r", cacheTestSpecs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("query after delete = %v, want ErrReleaseNotFound", err)
	}
}

func TestQueryCacheInvalidatedByTTLExpiry(t *testing.T) {
	s := NewStore(WithQueryCache(32), WithTTL(time.Hour))
	now := time.Now()
	s.now = func() time.Time { return now }
	if _, err := s.Put("r", mintTestRelease(t, 56)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("r", cacheTestSpecs); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 1 {
		t.Fatalf("entries = %d before expiry", st.Entries)
	}
	now = now.Add(2 * time.Hour)
	if _, _, err := s.Query("r", cacheTestSpecs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("query after expiry = %v, want ErrReleaseNotFound", err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("expiry left %d cached entries alive", st.Entries)
	}
}

// Capacity eviction is cache-policy, not analyst-visible state, but its
// cached answers must die with the entry all the same.
func TestQueryCacheInvalidatedByCapacityEviction(t *testing.T) {
	s := NewStore(WithCapacity(1), WithQueryCache(32))
	if _, err := s.Put("a", mintTestRelease(t, 57)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("a", cacheTestSpecs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", mintTestRelease(t, 58)); err != nil { // evicts "a"
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("eviction left %d cached entries alive", st.Entries)
	}
	if _, _, err := s.Query("a", cacheTestSpecs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("query after eviction = %v, want ErrReleaseNotFound", err)
	}
}

// The cache life-cycle contract must hold across a kill-and-reopen: the
// reopened store starts cold, versions continue, and deletes stay
// deleted — no cached answer outlives its release.
func TestQueryCacheAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := OpenStore(filepath.Join(dir, "store"), WithQueryCache(32), WithoutSync())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	relA := mintTestRelease(t, 59)
	if _, err := s.Put("r", relA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("gone", mintTestRelease(t, 60)); err != nil {
		t.Fatal(err)
	}
	before, _, err := s.Query("r", cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	s.Delete("gone")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = open()
	if st := s.CacheStats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("reopened cache not cold: %+v", st)
	}
	got, entry, err := s.Query("r", cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 1 {
		t.Fatalf("recovered version = %d", entry.Version)
	}
	for i := range before {
		if got[i] != before[i] {
			t.Fatalf("recovered answer %d = %v, pre-crash %v", i, got[i], before[i])
		}
	}
	if _, _, err := s.Query("gone", cacheTestSpecs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("deleted release answered after reopen: %v", err)
	}
	// A re-Put after reopen continues the version sequence and serves
	// the new release's answers, not the recovered predecessor's.
	relB := mintTestRelease(t, 61)
	if _, err := s.Put("r", relB); err != nil {
		t.Fatal(err)
	}
	got, entry, err = s.Query("r", cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 2 {
		t.Fatalf("post-reopen re-put version = %d, want 2", entry.Version)
	}
	want, err := QueryBatch(relB, cacheTestSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reopen answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
