package dphist

import (
	"github.com/dphist/dphist/internal/workload"
)

// ErrDomainTooLarge reports that an exact advisor prediction was
// requested over a domain too large for the closed-form computation
// (the inferred-hierarchy prediction factorizes a matrix cubic in the
// padded leaf count). Servers should treat it as an unprocessable
// request, not an internal failure.
var ErrDomainTooLarge = workload.ErrDomainTooLarge

// Workload is a weighted set of queries an analyst plans to ask — range
// queries over a 1-D domain, optionally rectangle queries over a 2-D
// grid. Before spending any privacy budget, the workload can predict
// each strategy's expected error analytically and recommend the best
// release — the paper's Section 7 direction of choosing strategies per
// workload.
type Workload struct {
	inner *workload.Workload
}

// NewWorkload returns an empty workload over the domain [0, domain).
func NewWorkload(domain int) (*Workload, error) {
	w, err := workload.New(domain)
	if err != nil {
		return nil, err
	}
	return &Workload{inner: w}, nil
}

// Add appends a weighted half-open range query [lo, hi).
func (w *Workload) Add(lo, hi int, weight float64) error {
	return w.inner.Add(lo, hi, weight)
}

// Len returns the number of range queries.
func (w *Workload) Len() int { return w.inner.Len() }

// SetGrid declares a 2-D grid so rectangle queries can be added and the
// universal2d strategy enters the comparison.
func (w *Workload) SetGrid(width, height int) error {
	return w.inner.SetGrid(width, height)
}

// AddRect appends a weighted half-open rectangle query
// [x0, x1) x [y0, y1) over the declared grid.
func (w *Workload) AddRect(x0, y0, x1, y1 int, weight float64) error {
	return w.inner.AddRect(x0, y0, x1, y1, weight)
}

// RectLen returns the number of rectangle queries.
func (w *Workload) RectLen() int { return w.inner.RectLen() }

// PredictLaplace returns the expected weighted total squared error of
// answering the workload from a LaplaceHistogram at the given epsilon.
func (w *Workload) PredictLaplace(eps float64) float64 {
	return w.inner.ErrorLaplace(eps)
}

// PredictHierarchical returns the expected weighted total squared error
// of answering the workload from a UniversalHistogram with branching k:
// the noisy-tree cost when inferred is false, the exact post-inference
// cost when true. The exact prediction requires a padded domain of at
// most 2048 leaves and returns an error wrapping ErrDomainTooLarge
// beyond that.
func (w *Workload) PredictHierarchical(k int, eps float64, inferred bool) (float64, error) {
	if inferred {
		return w.inner.ErrorHBar(k, eps)
	}
	return w.inner.ErrorHTilde(k, eps)
}

// Prediction is one strategy's predicted weighted total squared error
// for a workload.
type Prediction struct {
	// Strategy is the serving strategy name ("universal", "laplace",
	// "unattributed", "wavelet", "degree_sequence", "hierarchy",
	// "universal2d").
	Strategy string `json:"strategy"`
	// Branching is the tree fan-out for hierarchical strategies
	// (0 otherwise).
	Branching int `json:"branching,omitempty"`
	// PredictedError is the expected weighted total squared error.
	PredictedError float64 `json:"predicted_error"`
	// Confidence is "exact" for a closed-form expectation of the linear
	// mechanism and "bound" for a one-sided upper bound that
	// post-processing can only improve on.
	Confidence string `json:"confidence"`
}

// Recommendation is the advisor's verdict: the predicted-best strategy
// plus the full ranked field it beat.
type Recommendation struct {
	// Strategy is the winning serving strategy name.
	Strategy string
	// Branching is the tree fan-out for hierarchical strategies
	// (0 otherwise).
	Branching int
	// PredictedError is the winner's expected weighted total squared
	// error.
	PredictedError float64
	// Confidence is the winner's prediction confidence ("exact" or
	// "bound").
	Confidence string
	// Alternatives is the flat ranked list of every evaluated strategy,
	// winner first. It never nests further.
	Alternatives []Prediction
}

// Recommend evaluates every strategy the workload has inputs for — the
// flat, hierarchical (at each candidate branching factor, default 2),
// wavelet, and sorted strategies for range queries, universal2d when a
// grid and rectangles are declared — and returns the predicted-best
// release strategy for this workload at this epsilon. The hierarchical
// prediction is exact up to 2048 padded leaves and falls back to its
// no-inference upper bound beyond.
func (w *Workload) Recommend(eps float64, branchings ...int) (Recommendation, error) {
	preds, err := w.inner.PredictAll(eps, workload.PredictOptions{Branchings: branchings})
	if err != nil {
		return Recommendation{}, err
	}
	return recommendationFrom(preds), nil
}

// recommendationFrom converts a ranked internal prediction list (never
// empty) into the public shape.
func recommendationFrom(preds []workload.Prediction) Recommendation {
	rec := Recommendation{
		Strategy:       string(preds[0].Strategy),
		Branching:      preds[0].Branching,
		PredictedError: preds[0].Error,
		Confidence:     string(preds[0].Confidence),
		Alternatives:   make([]Prediction, 0, len(preds)),
	}
	for _, p := range preds {
		rec.Alternatives = append(rec.Alternatives, Prediction{
			Strategy:       string(p.Strategy),
			Branching:      p.Branching,
			PredictedError: p.Error,
			Confidence:     string(p.Confidence),
		})
	}
	return rec
}
