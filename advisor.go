package dphist

import (
	"github.com/dphist/dphist/internal/workload"
)

// Workload is a weighted set of range queries an analyst plans to ask.
// Before spending any privacy budget, the workload can predict each
// strategy's expected error analytically and recommend the best release
// — the paper's Section 7 direction of choosing strategies per workload.
type Workload struct {
	inner *workload.Workload
}

// NewWorkload returns an empty workload over the domain [0, domain).
func NewWorkload(domain int) (*Workload, error) {
	w, err := workload.New(domain)
	if err != nil {
		return nil, err
	}
	return &Workload{inner: w}, nil
}

// Add appends a weighted half-open range query [lo, hi).
func (w *Workload) Add(lo, hi int, weight float64) error {
	return w.inner.Add(lo, hi, weight)
}

// Len returns the number of queries.
func (w *Workload) Len() int { return w.inner.Len() }

// PredictLaplace returns the expected weighted total squared error of
// answering the workload from a LaplaceHistogram at the given epsilon.
func (w *Workload) PredictLaplace(eps float64) float64 {
	return w.inner.ErrorLaplace(eps)
}

// PredictHierarchical returns the expected weighted total squared error
// of answering the workload from a UniversalHistogram with branching k:
// the noisy-tree cost when inferred is false, the exact post-inference
// cost when true (exact prediction requires a padded domain of at most
// 2048 leaves).
func (w *Workload) PredictHierarchical(k int, eps float64, inferred bool) (float64, error) {
	if inferred {
		return w.inner.ErrorHBar(k, eps)
	}
	return w.inner.ErrorHTilde(k, eps)
}

// Recommendation is the advisor's verdict.
type Recommendation struct {
	// Strategy is "laplace", "htilde", or "hbar".
	Strategy string
	// Branching is the tree fan-out for the hierarchical strategies
	// (0 for laplace).
	Branching int
	// PredictedError is the expected weighted total squared error.
	PredictedError float64
	// Alternatives lists every evaluated option including the winner.
	Alternatives []Recommendation
}

// Recommend evaluates the flat strategy and the hierarchical strategies
// at each candidate branching factor (default 2) and returns the
// predicted-best release strategy for this workload at this epsilon.
func (w *Workload) Recommend(eps float64, branchings ...int) (Recommendation, error) {
	best, all, err := w.inner.Recommend(eps, branchings...)
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{
		Strategy:       string(best.Strategy),
		Branching:      best.Branching,
		PredictedError: best.Error,
	}
	for _, p := range all {
		rec.Alternatives = append(rec.Alternatives, Recommendation{
			Strategy:       string(p.Strategy),
			Branching:      p.Branching,
			PredictedError: p.Error,
		})
	}
	return rec, nil
}
