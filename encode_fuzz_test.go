package dphist

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRelease throws arbitrary payloads at the wire decoder that
// the journal, the snapshot loader, and every HTTP client run on
// untrusted bytes. The invariants:
//
//   - DecodeRelease never panics: it either returns a valid Release or
//     an error, whatever the input.
//   - Decode/encode is a fixed point: any payload that decodes must
//     re-encode and decode again to a release with the same strategy,
//     epsilon, domain, and query answers — recovery through the journal
//     must not drift state.
func FuzzDecodeRelease(f *testing.F) {
	m := MustNew(WithSeed(3))
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5}
	for _, strategy := range Strategies() {
		req := Request{Strategy: strategy, Counts: counts, Epsilon: 0.5}
		switch strategy {
		case StrategyHierarchy:
			req.Hierarchy = Grades()
			req.Counts = make([]float64, len(Grades().Leaves()))
			for i := range req.Counts {
				req.Counts[i] = float64(i)
			}
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = [][]float64{{2, 0, 10}, {2, 5}}
		}
		rel, err := m.Release(req)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(rel)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":2,"strategy":"universal"}`))
	f.Add([]byte(`{"version":1,"strategy":"laplace","epsilon":1}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := DecodeRelease(data)
		if err != nil {
			return
		}
		if rel == nil {
			t.Fatal("nil release without error")
		}
		re, err := json.Marshal(rel)
		if err != nil {
			t.Fatalf("decoded release does not re-encode: %v", err)
		}
		rel2, err := DecodeRelease(re)
		if err != nil {
			t.Fatalf("re-encoded release does not decode: %v", err)
		}
		if rel.Strategy() != rel2.Strategy() || rel.Epsilon() != rel2.Epsilon() {
			t.Fatalf("round trip drifted: %v/%v -> %v/%v",
				rel.Strategy(), rel.Epsilon(), rel2.Strategy(), rel2.Epsilon())
		}
		n := releaseDomain(rel)
		if n != releaseDomain(rel2) {
			t.Fatalf("round trip changed domain: %d -> %d", n, releaseDomain(rel2))
		}
		if n > 0 {
			a1, err1 := QueryBatch(rel, []RangeSpec{{Lo: 0, Hi: n}})
			a2, err2 := QueryBatch(rel2, []RangeSpec{{Lo: 0, Hi: n}})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("round trip changed queryability: %v vs %v", err1, err2)
			}
			if err1 == nil && !sameFloatBits(a1, a2) {
				t.Fatalf("round trip changed answers: %v -> %v", a1, a2)
			}
		}
		re2, err := json.Marshal(rel2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode is not a fixed point after one round trip")
		}
	})
}

// sameFloatBits compares float slices bit-for-bit (NaN == NaN), since
// fuzzed payloads may legally carry NaN counts through the round trip.
func sameFloatBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(a[i] != a[i] && b[i] != b[i]) {
			return false
		}
	}
	return true
}
