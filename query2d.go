package dphist

// The batch rectangle-query engine: the 2-D twin of query.go. Rectangle
// fan-out is where the paper's consistency dividend is largest — a
// W x H rectangle touches W*H cells of a flat histogram but only
// O(W+H) quadtree nodes (perimeter, not area) — so the steady-state
// 2-D workload is many-rectangle batches against one minted release.
// QueryRects amortizes validation over the batch and answers each
// rectangle from the release's compiled plan: O(1) summed-area lookups
// when the post-processed quadtree is exactly consistent, else an
// iterative quadtree decomposition — allocating nothing per query.

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"github.com/dphist/dphist/internal/plan"
)

// ErrNotRectangular reports a rectangle batch against a release that
// cannot answer 2-D queries (it does not implement RectQuerier).
var ErrNotRectangular = errors.New("dphist: release answers no rectangle queries")

// RectSpec names one half-open axis-aligned rectangle query
// [X0, X1) x [Y0, Y1) over a 2-D release's cell grid. Empty rectangles
// (X0 == X1 or Y0 == Y1, within bounds) are valid and answer 0.
type RectSpec struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// RectQuerier is the read side of a 2-D release: the Release methods
// plus the native rectangle query over a Width() x Height() cell grid.
// Universal2DRelease is the in-library implementation; the batch engine
// (QueryRects, Store.QueryRects, POST /v1/query2d) serves any release
// that satisfies it.
type RectQuerier interface {
	Release
	Width() int
	Height() int
	Rect(x0, y0, x1, y1 int) (float64, error)
}

var _ RectQuerier = (*Universal2DRelease)(nil)

// QueryRects answers many rectangle queries against one 2-D release in
// a single call. Answers align with specs by index. The call is
// all-or-nothing: every rectangle is validated against the release's
// grid before any is answered, a malformed spec fails the whole batch
// naming its index, and a release that is not a RectQuerier is refused.
//
// A release whose compiled plan is rectangular answers the batch without
// per-query interface dispatch and without allocating per query. Use
// QueryRectsInto to also amortize the result slice across calls.
func QueryRects(r Release, specs []RectSpec) ([]float64, error) {
	return QueryRectsInto(nil, r, specs)
}

// QueryRectsInto is QueryRects appending into dst, so a serving loop can
// reuse one result buffer and keep the steady-state allocation count at
// zero. dst may be nil. On error dst is returned truncated to its
// original length — never with a partial batch appended.
func QueryRectsInto(dst []float64, r Release, specs []RectSpec) ([]float64, error) {
	return answerRectsInto(dst, releasePlan(r), r, specs)
}

// answerRectsInto is the shared 2-D batch core: refuse non-rectangular
// releases, validate every rectangle against the grid, then answer from
// the plan when one is compiled, else fall back to per-query Rect calls
// for external RectQuerier implementations. Store.queryRects snapshots
// (release, plan) under its shard read lock and calls this outside the
// lock.
func answerRectsInto(dst []float64, pl *plan.Plan, r Release, specs []RectSpec) ([]float64, error) {
	keep := len(dst)
	var w, h int
	var rq RectQuerier
	if pl != nil && pl.Rectangular() {
		w, h = pl.Width(), pl.Height()
	} else {
		var ok bool
		rq, ok = r.(RectQuerier)
		if !ok {
			return dst[:keep], fmt.Errorf("%w: strategy %v", ErrNotRectangular, r.Strategy())
		}
		pl = nil // a 1-D plan answers no rectangles; use the interface
		w, h = rq.Width(), rq.Height()
	}
	// Branch-free batch validation, as in answerRangesInto: all six
	// non-negativity conditions OR into one sign-bit test, and the
	// branchy scan runs only on the error path to name the first
	// offending index.
	acc := 0
	for _, q := range specs {
		acc |= q.X0 | q.Y0 | (w - q.X1) | (h - q.Y1) | (q.X1 - q.X0) | (q.Y1 - q.Y0)
	}
	if acc < 0 {
		for i, q := range specs {
			if q.X0 < 0 || q.Y0 < 0 || q.X1 > w || q.Y1 > h || q.X0 > q.X1 || q.Y0 > q.Y1 {
				return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, badRect(q.X0, q.Y0, q.X1, q.Y1, w, h))
			}
		}
	}
	if pl != nil {
		// Columnar split + one kernel call over the whole batch, mirroring
		// the 1-D engine.
		dst = slices.Grow(dst, len(specs))[:keep+len(specs)]
		cols := rectColsPool.Get().(*rectCols)
		x0 := slices.Grow(cols.x0[:0], len(specs))[:len(specs)]
		y0 := slices.Grow(cols.y0[:0], len(specs))[:len(specs)]
		x1 := slices.Grow(cols.x1[:0], len(specs))[:len(specs)]
		y1 := slices.Grow(cols.y1[:0], len(specs))[:len(specs)]
		for i, q := range specs {
			x0[i], y0[i], x1[i], y1[i] = q.X0, q.Y0, q.X1, q.Y1
		}
		pl.RectBatchInto(dst[keep:], x0, y0, x1, y1)
		cols.x0, cols.y0, cols.x1, cols.y1 = x0, y0, x1, y1
		rectColsPool.Put(cols)
		return dst, nil
	}
	for i, q := range specs {
		v, err := rq.Rect(q.X0, q.Y0, q.X1, q.Y1)
		if err != nil {
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, err)
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rectCols is the 2-D twin of rangeCols: pooled columnar scratch for
// rectangle batches.
type rectCols struct{ x0, y0, x1, y1 []int }

var rectColsPool = sync.Pool{New: func() any { return new(rectCols) }}
