package dphist

// The batch rectangle-query engine: the 2-D twin of query.go. Rectangle
// fan-out is where the paper's consistency dividend is largest — a
// W x H rectangle touches W*H cells of a flat histogram but only
// O(W+H) quadtree nodes (perimeter, not area) — so the steady-state
// 2-D workload is many-rectangle batches against one minted release.
// QueryRects
// amortizes validation over the batch and answers each rectangle in
// O(1) from the summed-area table when the release's post-processed
// quadtree is exactly consistent, mirroring the 1-D leafPrefix path.

import (
	"errors"
	"fmt"
)

// ErrNotRectangular reports a rectangle batch against a release that
// cannot answer 2-D queries (it does not implement RectQuerier).
var ErrNotRectangular = errors.New("dphist: release answers no rectangle queries")

// RectSpec names one half-open axis-aligned rectangle query
// [X0, X1) x [Y0, Y1) over a 2-D release's cell grid. Empty rectangles
// (X0 == X1 or Y0 == Y1, within bounds) are valid and answer 0.
type RectSpec struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// RectQuerier is the read side of a 2-D release: the Release methods
// plus the native rectangle query over a Width() x Height() cell grid.
// Universal2DRelease is the in-library implementation; the batch engine
// (QueryRects, Store.QueryRects, POST /v1/query2d) serves any release
// that satisfies it.
type RectQuerier interface {
	Release
	Width() int
	Height() int
	Rect(x0, y0, x1, y1 int) (float64, error)
}

var _ RectQuerier = (*Universal2DRelease)(nil)

// QueryRects answers many rectangle queries against one 2-D release in
// a single call. Answers align with specs by index. The call is
// all-or-nothing: every rectangle is validated against the release's
// grid before any is answered, a malformed spec fails the whole batch
// naming its index, and a release that is not a RectQuerier is refused.
//
// For a Universal2DRelease the batch is answered on a fast path — O(1)
// summed-area lookups when the post-processed quadtree is exactly
// consistent, otherwise an iterative quadtree decomposition — allocating
// nothing per query. Use QueryRectsInto to also amortize the result
// slice across calls.
func QueryRects(r Release, specs []RectSpec) ([]float64, error) {
	return QueryRectsInto(nil, r, specs)
}

// QueryRectsInto is QueryRects appending into dst, so a serving loop can
// reuse one result buffer and keep the steady-state allocation count at
// zero. dst may be nil. On error dst is returned truncated to its
// original length — never with a partial batch appended.
func QueryRectsInto(dst []float64, r Release, specs []RectSpec) ([]float64, error) {
	keep := len(dst)
	rq, ok := r.(RectQuerier)
	if !ok {
		return dst[:keep], fmt.Errorf("%w: strategy %v", ErrNotRectangular, r.Strategy())
	}
	w, h := rq.Width(), rq.Height()
	for i, q := range specs {
		if q.X0 < 0 || q.Y0 < 0 || q.X1 > w || q.Y1 > h || q.X0 > q.X1 || q.Y0 > q.Y1 {
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, badRect(q.X0, q.Y0, q.X1, q.Y1, w, h))
		}
	}
	if rel, ok := r.(*Universal2DRelease); ok {
		if sat := rel.sat; sat != nil {
			stride := rel.grid.Width() + 1
			for _, q := range specs {
				dst = append(dst, sat[q.Y1*stride+q.X1]-sat[q.Y0*stride+q.X1]-sat[q.Y1*stride+q.X0]+sat[q.Y0*stride+q.X0])
			}
			return dst, nil
		}
		for _, q := range specs {
			// RectSum answers validated rectangles, empties included (0).
			dst = append(dst, rel.grid.RectSum(rel.post, q.X0, q.Y0, q.X1, q.Y1))
		}
		return dst, nil
	}
	for i, q := range specs {
		v, err := rq.Rect(q.X0, q.Y0, q.X1, q.Y1)
		if err != nil {
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, err)
		}
		dst = append(dst, v)
	}
	return dst, nil
}
