package dphist

// FuzzDecodedPlanEquivalence throws arbitrary payloads at the decoder
// and, whenever one decodes, holds the recompiled query plan to the
// batch engine's contract: QueryBatch must answer exactly what
// per-query Range answers (and QueryRects what Rect answers) with no
// panic, for whatever shape the payload produced. This is the plan the
// store snapshots and the cache memoizes, so any divergence here is a
// served wrong answer.

import (
	"encoding/json"
	"testing"
)

func FuzzDecodedPlanEquivalence(f *testing.F) {
	m := MustNew(WithSeed(7))
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5}
	for _, strategy := range Strategies() {
		req := Request{Strategy: strategy, Counts: counts, Epsilon: 0.5}
		switch strategy {
		case StrategyHierarchy:
			req.Hierarchy = Grades()
			req.Counts = make([]float64, len(Grades().Leaves()))
			for i := range req.Counts {
				req.Counts[i] = float64(i)
			}
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = [][]float64{{2, 0, 10}, {2, 5}}
		}
		rel, err := m.Release(req)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(rel)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := DecodeRelease(data)
		if err != nil {
			return // malformed payloads are the decoder tests' problem
		}
		n := len(rel.Counts())
		specs := []RangeSpec{{Lo: 0, Hi: n}, {Lo: 0, Hi: 0}, {Lo: n, Hi: n}}
		if n >= 2 {
			specs = append(specs, RangeSpec{Lo: 1, Hi: n - 1}, RangeSpec{Lo: n / 2, Hi: n})
		}
		answers, err := QueryBatch(rel, specs)
		if err != nil {
			t.Fatalf("decoded release refused valid specs: %v", err)
		}
		for i, q := range specs {
			want, err := rel.Range(q.Lo, q.Hi)
			if err != nil {
				t.Fatalf("Range(%d,%d): %v", q.Lo, q.Hi, err)
			}
			if answers[i] != want {
				t.Fatalf("decoded plan: batch [%d,%d) = %v, Range = %v", q.Lo, q.Hi, answers[i], want)
			}
		}
		rq, ok := rel.(RectQuerier)
		if !ok {
			return
		}
		w, h := rq.Width(), rq.Height()
		rects := []RectSpec{{X1: w, Y1: h}, {}, {X0: w / 2, Y0: h / 2, X1: w, Y1: h}}
		got, err := QueryRects(rel, rects)
		if err != nil {
			t.Fatalf("decoded release refused valid rects: %v", err)
		}
		for i, q := range rects {
			want, err := rq.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatalf("Rect%+v: %v", q, err)
			}
			if got[i] != want {
				t.Fatalf("decoded plan: batch rect %+v = %v, Rect = %v", q, got[i], want)
			}
		}
	})
}
