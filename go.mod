module github.com/dphist/dphist

go 1.23
