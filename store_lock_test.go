package dphist

// Regression tests for the shard-lock contract: Store.Query snapshots
// the release and its compiled plan under a brief read lock and answers
// the batch entirely outside it, so a slow batch — even one blocked
// inside an external release's Range — never stalls a concurrent Put
// on the same shard. Run with -race.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// gatedRelease wraps a release behind the Release *interface* (so no
// compiled plan is promoted and the batch engine must go through Range)
// and blocks every Range call until the gate opens, signalling entry.
type gatedRelease struct {
	Release
	entered chan struct{} // closed when Range is first reached
	gate    chan struct{} // Range blocks until this closes
	once    sync.Once
}

func (g *gatedRelease) Range(lo, hi int) (float64, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.Release.Range(lo, hi)
}

func TestSlowQueryBatchDoesNotBlockPut(t *testing.T) {
	rel, err := MustNew(WithSeed(41)).LaplaceHistogram([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := &gatedRelease{
		Release: rel,
		entered: make(chan struct{}),
		gate:    make(chan struct{}),
	}
	// One shard: the slow release and the concurrent Put share it.
	s := NewStore(WithShards(1))
	if _, err := s.Put("slow", slow); err != nil {
		t.Fatal(err)
	}
	queryDone := make(chan error, 1)
	go func() {
		_, _, err := s.Query("slow", []RangeSpec{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 3}})
		queryDone <- err
	}()
	<-slow.entered // the batch is mid-computation, stuck inside Range

	putDone := make(chan error, 1)
	go func() {
		_, err := s.Put("other", rel)
		putDone <- err
	}()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("Put failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked behind an in-flight query batch on the same shard")
	}
	// Gets must stay live too.
	getDone := make(chan bool, 1)
	go func() {
		_, _, ok := s.Get("other")
		getDone <- ok
	}()
	select {
	case ok := <-getDone:
		if !ok {
			t.Fatal("Get missed the freshly put release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked behind an in-flight query batch on the same shard")
	}

	close(slow.gate)
	if err := <-queryDone; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
}

// The snapshot-then-answer read path and the write path race freely
// here; -race plus the answer check make silent sharing visible.
func TestConcurrentQueryAndPutRace(t *testing.T) {
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(i % 11)
	}
	m := MustNew(WithSeed(43), WithoutNonNegativity(), WithoutRounding())
	rel, err := m.UniversalHistogram(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithShards(1), WithQueryCache(32))
	if _, err := s.Put("hot", rel); err != nil {
		t.Fatal(err)
	}
	specs := []RangeSpec{{Lo: 0, Hi: 256}, {Lo: 10, Hi: 200}, {Lo: 255, Hi: 256}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The delete/re-put window may legitimately miss.
				if _, _, err := s.Query("hot", specs); err != nil && !errors.Is(err, ErrReleaseNotFound) {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Put("hot", rel); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			s.Delete("hot")
			if _, err := s.Put("hot", rel); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
