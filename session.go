package dphist

import (
	"errors"
	"fmt"
)

// Session couples a Mechanism with an Accountant: every release it
// issues is charged against one fixed epsilon budget, so the lifetime
// privacy loss of everything produced through the session is bounded by
// the accountant's total (sequential composition). This is the paper's
// Appendix B server shape as a library value — construct one per
// protected dataset and hand it to whatever serving layer you run.
//
// A Session is safe for concurrent use.
type Session struct {
	mech *Mechanism
	acct *Accountant
}

// NewSession returns a session over the mechanism with a fresh
// accountant holding the given total budget. It panics (like
// NewAccountant) unless the budget is positive and finite, and returns
// an error on a nil mechanism.
func NewSession(m *Mechanism, budget float64) (*Session, error) {
	if m == nil {
		return nil, errors.New("dphist: nil mechanism")
	}
	return &Session{mech: m, acct: NewAccountant(budget)}, nil
}

// NewSessionWithAccountant returns a session charging the supplied
// accountant, which may be shared with other sessions or charged
// directly — the composition bound then covers everything the
// accountant has recorded.
func NewSessionWithAccountant(m *Mechanism, a *Accountant) (*Session, error) {
	if m == nil {
		return nil, errors.New("dphist: nil mechanism")
	}
	if a == nil {
		return nil, errors.New("dphist: nil accountant")
	}
	return &Session{mech: m, acct: a}, nil
}

// Session couples the mechanism with this namespace's accountant, so
// every release it issues draws down the namespace's budget — durably,
// when the namespace belongs to a store opened with OpenStore. This is
// the per-tenant variant of NewSession: one mechanism can serve many
// namespaces, each through its own session.
func (n *Namespace) Session(m *Mechanism) (*Session, error) {
	if n.err != nil {
		return nil, n.err
	}
	return NewSessionWithAccountant(m, n.Accountant())
}

// Mechanism returns the underlying mechanism.
func (s *Session) Mechanism() *Mechanism { return s.mech }

// Accountant returns the underlying accountant for budget inspection.
func (s *Session) Accountant() *Accountant { return s.acct }

// Remaining returns the unspent budget.
func (s *Session) Remaining() float64 { return s.acct.Remaining() }

// Release validates the request, charges its epsilon against the budget
// (labelled "release:<strategy>"), and runs the pipeline. Invalid
// requests and refused charges cost nothing; errors.Is(err,
// ErrBudgetExceeded) identifies refusals. The charge is made before any
// noise is drawn and is never refunded.
//
// A StrategyAuto request is resolved to its concrete strategy before the
// charge, so the ledger label names the strategy actually minted and a
// failed resolution costs nothing.
func (s *Session) Release(req Request) (Release, error) {
	req, dec, err := s.mech.resolveAuto(req)
	if err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := s.acct.Spend("release:"+req.Strategy.String(), req.Epsilon); err != nil {
		return nil, err
	}
	rel, err := s.mech.releaseWith(req, s.mech.nextStream())
	if err != nil {
		return nil, err
	}
	stampDecision(rel, dec)
	return rel, nil
}

// ReleaseBatch charges the whole batch atomically — the sum of all
// request epsilons, after validating every request — and then fans the
// batch across Mechanism.ReleaseBatch's worker pool. If any request is
// invalid or the summed charge would overdraw the budget, nothing is
// charged and nothing is released.
func (s *Session) ReleaseBatch(reqs []Request) ([]Release, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	total := 0.0
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("dphist: batch request %d: %w", i, err)
		}
		total += req.Epsilon
	}
	if err := s.acct.Spend(fmt.Sprintf("batch:%d requests", len(reqs)), total); err != nil {
		return nil, err
	}
	// Already validated above; the fan-out skips re-validation.
	return s.mech.releaseBatch(reqs, false)
}
