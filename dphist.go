package dphist

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
)

// Mechanism issues differentially private histogram releases. The zero
// value is not usable; construct with New. A Mechanism is safe for
// concurrent use; each release consumes an independent, deterministic
// noise stream derived from the seed.
type Mechanism struct {
	seed      uint64
	branching int
	nonNeg    bool
	round     bool

	mu    sync.Mutex
	trial int
}

// Option configures a Mechanism.
type Option func(*Mechanism) error

// WithSeed fixes the noise-stream seed; releases become a reproducible
// function of the call order. The default seed is 0.
func WithSeed(seed uint64) Option {
	return func(m *Mechanism) error {
		m.seed = seed
		return nil
	}
}

// WithBranching sets the fan-out k of the hierarchical query tree used by
// UniversalHistogram (default 2, the paper's experimental setting).
func WithBranching(k int) Option {
	return func(m *Mechanism) error {
		if k < 2 {
			return fmt.Errorf("dphist: branching factor %d < 2", k)
		}
		m.branching = k
		return nil
	}
}

// WithoutNonNegativity disables the Section 4.2 heuristic that zeroes
// subtrees with non-positive inferred counts. Useful for ablations; the
// default keeps it on, as in the paper's experiments.
func WithoutNonNegativity() Option {
	return func(m *Mechanism) error {
		m.nonNeg = false
		return nil
	}
}

// WithoutRounding disables the final rounding of estimates to
// non-negative integers. The default rounds, matching the paper's
// measurement protocol.
func WithoutRounding() Option {
	return func(m *Mechanism) error {
		m.round = false
		return nil
	}
}

// New returns a Mechanism with the given options applied.
func New(opts ...Option) (*Mechanism, error) {
	m := &Mechanism{branching: 2, nonNeg: true, round: true}
	for _, opt := range opts {
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MustNew is New but panics on option errors; convenient in examples and
// tests where options are literals.
func MustNew(opts ...Option) *Mechanism {
	m, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// nextStream returns the next deterministic noise stream.
func (m *Mechanism) nextStream() *rand.Rand {
	return laplace.Stream(m.seed, m.reserveTrials(1))
}

// reserveTrials atomically reserves n consecutive trial numbers and
// returns the first; ReleaseBatch uses a block reservation so each
// request's noise stream is a function of its index, independent of
// worker scheduling.
func (m *Mechanism) reserveTrials(n int) int {
	m.mu.Lock()
	t := m.trial
	m.trial += n
	m.mu.Unlock()
	return t
}

var (
	errEmptyCounts = errors.New("dphist: empty count vector")
	errBadEpsilon  = errors.New("dphist: epsilon must be positive and finite")
)

func validate(counts []float64, eps float64) error {
	if len(counts) == 0 {
		return errEmptyCounts
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("%w, got %v", errBadEpsilon, eps)
	}
	for i, v := range counts {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dphist: count %d is %v", i, v)
		}
	}
	return nil
}

// Each pipeline below exists in two layers: the exported typed method
// validates and draws the next noise stream, then delegates to an
// unexported *With variant taking an explicit stream. Release and
// ReleaseBatch reuse the *With layer so batch fan-out can pre-assign
// streams deterministically.

// LaplaceHistogram releases the flat noisy histogram L~ of the paper:
// independent Lap(1/eps) noise on every unit count (sensitivity 1). This
// is the conventional baseline; it is most accurate for point queries but
// its range-query error grows linearly with range size.
func (m *Mechanism) LaplaceHistogram(counts []float64, eps float64) (*LaplaceRelease, error) {
	if err := validate(counts, eps); err != nil {
		return nil, err
	}
	return m.laplaceWith(counts, eps, m.nextStream())
}

func (m *Mechanism) laplaceWith(counts []float64, eps float64, src *rand.Rand) (*LaplaceRelease, error) {
	noisy := core.ReleaseL(counts, eps, src)
	return newLaplaceRelease(noisy, m.round, eps), nil
}

// UnattributedHistogram releases the multiset of counts (the paper's
// sorted query S with constrained inference S-bar): the positions of the
// input are irrelevant, only the sorted count vector is estimated.
// Sensitivity stays 1, and isotonic regression on the noisy sorted
// answer boosts accuracy by up to orders of magnitude when many counts
// repeat (Theorem 2) — degree sequences and rank-frequency data are the
// motivating cases.
func (m *Mechanism) UnattributedHistogram(counts []float64, eps float64) (*UnattributedRelease, error) {
	if err := validate(counts, eps); err != nil {
		return nil, err
	}
	return m.unattributedWith(counts, eps, m.nextStream())
}

func (m *Mechanism) unattributedWith(counts []float64, eps float64, src *rand.Rand) (*UnattributedRelease, error) {
	noisy := core.ReleaseSorted(counts, eps, src)
	inferred := core.InferSorted(noisy)
	final := append([]float64(nil), inferred...)
	if m.round {
		core.RoundNonNegInt(final)
	}
	return newUnattributedRelease(noisy, inferred, final, eps), nil
}

// UniversalHistogram releases a hierarchical histogram (the paper's H
// query with constrained inference H-bar) able to answer arbitrary
// range-count queries with poly-logarithmic error. The Laplace noise is
// scaled to the tree height (sensitivity ell); Theorem 3's closed form
// projects the noisy tree onto consistency, which by Theorem 4 is the
// minimum-variance linear unbiased estimate.
func (m *Mechanism) UniversalHistogram(counts []float64, eps float64) (*UniversalRelease, error) {
	if err := validate(counts, eps); err != nil {
		return nil, err
	}
	return m.universalWith(counts, eps, m.nextStream())
}

func (m *Mechanism) universalWith(counts []float64, eps float64, src *rand.Rand) (*UniversalRelease, error) {
	tree, err := htree.New(m.branching, len(counts))
	if err != nil {
		return nil, fmt.Errorf("dphist: %w", err)
	}
	noisy := core.ReleaseTree(tree, counts, eps, src)
	inferred := core.InferTree(tree, noisy)
	post := append([]float64(nil), inferred...)
	if m.nonNeg {
		core.ZeroNegativeSubtrees(tree, post)
	}
	if m.round {
		core.RoundNonNegInt(post)
	}
	return newUniversalRelease(tree, noisy, inferred, post, eps), nil
}

// WaveletHistogram releases the Haar-wavelet mechanism of Xiao et al.
// (Privelet), the related-work comparator whose range-query error is
// order-equivalent to a binary UniversalHistogram without inference.
func (m *Mechanism) WaveletHistogram(counts []float64, eps float64) (*WaveletRelease, error) {
	if err := validate(counts, eps); err != nil {
		return nil, err
	}
	return m.waveletWith(counts, eps, m.nextStream())
}

func (m *Mechanism) waveletWith(counts []float64, eps float64, src *rand.Rand) (*WaveletRelease, error) {
	return newWaveletRelease(counts, eps, m.round, src)
}

// DegreeSequence releases the degree sequence of a private graph; see
// extensions.go for the pipeline.

// HierarchyRelease answers a custom constrained query set, such as the
// introduction's student-grades example, under eps-differential privacy:
// the true answers are perturbed with noise scaled to the hierarchy's
// sensitivity and then projected onto the constraints by least squares.
func (m *Mechanism) HierarchyRelease(h *Hierarchy, leafCounts []float64, eps float64) (*HierarchyReleaseResult, error) {
	if err := validateHierarchyInput(h, leafCounts, eps); err != nil {
		return nil, err
	}
	return m.hierarchyWith(h, leafCounts, eps, m.nextStream())
}

func validateHierarchyInput(h *Hierarchy, leafCounts []float64, eps float64) error {
	if err := validate(leafCounts, eps); err != nil {
		return err
	}
	if h == nil || h.inner == nil {
		return errors.New("dphist: nil hierarchy")
	}
	if len(leafCounts) != len(h.inner.Leaves()) {
		return fmt.Errorf("dphist: %d leaf counts for %d leaves", len(leafCounts), len(h.inner.Leaves()))
	}
	return nil
}

func (m *Mechanism) hierarchyWith(h *Hierarchy, leafCounts []float64, eps float64, src *rand.Rand) (*HierarchyReleaseResult, error) {
	truth := h.inner.FromLeaves(leafCounts)
	noisy := core.Perturb(truth, h.inner.Sensitivity(), eps, src)
	inferred, err := h.inner.Infer(noisy)
	if err != nil {
		return nil, err
	}
	return newHierarchyReleaseResult(h.inner, noisy, inferred, eps), nil
}
