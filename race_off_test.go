//go:build !race

package dphist

const raceEnabled = false
