package dphist

// Extensions beyond the paper's core contribution, each one flagged by
// the paper itself: graphical degree sequences (Appendix B future work)
// and private continual counting (the Chan et al. streaming counter of
// Section 6, with the paper's inference idea applied retrospectively).

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/graph"
	"github.com/dphist/dphist/internal/plan"
	"github.com/dphist/dphist/internal/stream"
)

// DegreeSequence releases the degree sequence of a private graph: the
// unattributed-histogram pipeline (sorted query, isotonic inference)
// followed by projection onto graphical sequences — integer degrees in
// [0, n-1] with even total satisfying the Erdős–Gallai condition — so
// the published sequence is realizable by an actual simple graph.
// Appendix B of the paper poses the graphical constraint as future work.
func (m *Mechanism) DegreeSequence(degrees []float64, eps float64) (*DegreeSequenceRelease, error) {
	if err := validate(degrees, eps); err != nil {
		return nil, err
	}
	return m.degreeSequenceWith(degrees, eps, m.nextStream())
}

func (m *Mechanism) degreeSequenceWith(degrees []float64, eps float64, src *rand.Rand) (*DegreeSequenceRelease, error) {
	noisy := core.ReleaseSorted(degrees, eps, src)
	inferred := core.InferSorted(noisy)
	rounded := make([]int, len(inferred))
	for i, v := range inferred {
		rounded[i] = int(math.Round(v))
	}
	graphical := graph.NearestGraphical(rounded)
	counts := make([]float64, len(graphical))
	for i, v := range graphical {
		counts[i] = float64(v)
	}
	return newDegreeSequenceRelease(noisy, inferred, counts, eps), nil
}

// DegreeSequenceRelease is a private degree sequence.
type DegreeSequenceRelease struct {
	// Noisy is the raw noisy sorted query answer s~.
	Noisy []float64
	// Inferred is the isotonic-regression estimate S-bar.
	Inferred []float64

	counts []float64
	plan   *plan.Plan
	eps    float64
	autoStamp
}

func newDegreeSequenceRelease(noisy, inferred, counts []float64, eps float64) *DegreeSequenceRelease {
	// Noisy and Inferred are copied so the release never shares slices
	// with its caller (see the Release doc on aliasing).
	return &DegreeSequenceRelease{
		Noisy:    append([]float64(nil), noisy...),
		Inferred: append([]float64(nil), inferred...),
		counts:   counts,
		plan:     plan.Compile1D(counts),
		eps:      eps,
	}
}

// Strategy returns StrategyDegreeSequence.
func (r *DegreeSequenceRelease) Strategy() Strategy { return StrategyDegreeSequence }

// Epsilon returns the privacy cost spent on this release.
func (r *DegreeSequenceRelease) Epsilon() float64 { return r.eps }

// Counts returns the published sequence (a copy): non-decreasing integer
// degrees forming a graphical sequence. Index i is the i-th smallest
// degree, not a vertex identifier.
func (r *DegreeSequenceRelease) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

func (r *DegreeSequenceRelease) queryPlan() *plan.Plan { return r.plan }

// Range answers the rank-interval query [lo, hi): the estimated sum of
// the lo-th through (hi-1)-th smallest degrees. The empty range
// lo == hi answers 0.
func (r *DegreeSequenceRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo > hi {
		return 0, badRange(lo, hi, len(r.counts))
	}
	return r.plan.Range(lo, hi), nil
}

// Total returns the estimated degree total (twice the edge count).
func (r *DegreeSequenceRelease) Total() float64 { return r.plan.Total() }

// IsGraphical reports whether the published sequence passes the
// Erdős–Gallai test (it always should; exposed for auditability).
func (r *DegreeSequenceRelease) IsGraphical() bool {
	deg := make([]int, len(r.counts))
	for i, v := range r.counts {
		deg[i] = int(v)
	}
	return graph.IsGraphical(deg)
}

// Counter continually releases a private running count: after every
// arrival it publishes an estimate of the total so far, with error
// poly-logarithmic in the stream length (the binary mechanism of Chan et
// al., the streaming relative of the paper's H query). The whole stream
// of releases is eps-differentially private at the event level.
type Counter struct {
	inner *stream.Counter
}

// NewCounter returns a counter for at most horizon arrivals. Noise draws
// come from the mechanism's next deterministic stream. The counter
// retains its full released-estimate history (O(horizon) memory) so
// SmoothedEstimates can post-process it retrospectively; long-lived
// ingest pipelines use the history-free counter in internal/ingest,
// which stays O(log horizon).
func (m *Mechanism) NewCounter(eps float64, horizon int) (*Counter, error) {
	c, err := stream.NewCounter(eps, horizon, m.nextStream(), stream.WithEstimateHistory())
	if err != nil {
		return nil, err
	}
	return &Counter{inner: c}, nil
}

// Feed consumes the next arrival's increment (1 for event counting) and
// returns the private running-total estimate.
func (c *Counter) Feed(increment float64) (float64, error) {
	return c.inner.Feed(increment)
}

// Step returns the number of arrivals consumed.
func (c *Counter) Step() int { return c.inner.Step() }

// Horizon returns the maximum number of arrivals.
func (c *Counter) Horizon() int { return c.inner.Horizon() }

// Estimates returns the history of released estimates, one per arrival.
func (c *Counter) Estimates() []float64 { return c.inner.Estimates() }

// Last returns the most recently released estimate and the step it was
// released at (0, 0 before any arrival). It is safe to call concurrently
// with Feed, so a serving surface can snapshot the live count while the
// stream keeps arriving.
func (c *Counter) Last() (estimate float64, step int) { return c.inner.Last() }

// SmoothedEstimates returns the release history projected onto
// non-decreasing sequences by isotonic regression — valid when
// increments are non-negative, free of privacy cost, and never less
// accurate (the paper's constrained-inference argument applied to
// cumulative counts). It fails if nothing has been fed yet.
func (c *Counter) SmoothedEstimates() ([]float64, error) {
	est := c.inner.Estimates()
	if len(est) == 0 {
		return nil, errors.New("dphist: no estimates released yet")
	}
	return stream.SmoothNonDecreasing(est), nil
}

// String describes the counter state.
func (c *Counter) String() string {
	return fmt.Sprintf("dphist.Counter{step %d of %d}", c.inner.Step(), c.inner.Horizon())
}
