package dphist

import (
	"math"
	"sort"
	"testing"
)

func TestDegreeSequenceRelease(t *testing.T) {
	// Degree sequence of a star K_{1,5} plus an extra edge pair.
	degrees := []float64{5, 1, 1, 1, 1, 1, 2, 2}
	m := MustNew(WithSeed(21))
	rel, err := m.DegreeSequence(degrees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	published := rel.Counts()
	if !rel.IsGraphical() {
		t.Fatalf("published sequence not graphical: %v", published)
	}
	if !sort.Float64sAreSorted(published) {
		t.Fatalf("published sequence not sorted: %v", published)
	}
	for _, v := range published {
		if v != math.Trunc(v) || v < 0 || v > float64(len(degrees)-1) {
			t.Fatalf("degree %v outside [0, n-1] integers", v)
		}
	}
	if len(rel.Noisy) != len(degrees) || len(rel.Inferred) != len(degrees) {
		t.Fatal("lengths wrong")
	}
}

func TestDegreeSequenceValidation(t *testing.T) {
	m := MustNew()
	if _, err := m.DegreeSequence(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := m.DegreeSequence([]float64{1}, -1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestDegreeSequenceAccurateAtHighEps(t *testing.T) {
	// A clean regular graph: at eps=50 the release should be exact.
	degrees := make([]float64, 64)
	for i := range degrees {
		degrees[i] = 6
	}
	m := MustNew(WithSeed(77))
	rel, err := m.DegreeSequence(degrees, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rel.Counts() {
		if v != 6 {
			t.Fatalf("expected exact recovery, got %v", rel.Counts())
		}
	}
}

func TestCounterPublicAPI(t *testing.T) {
	m := MustNew(WithSeed(31))
	c, err := m.NewCounter(2.0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.Horizon() != 128 {
		t.Fatal("horizon wrong")
	}
	truth := 0.0
	for i := 0; i < 128; i++ {
		truth++
		if _, err := c.Feed(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Step() != 128 {
		t.Fatal("step wrong")
	}
	est := c.Estimates()
	if len(est) != 128 {
		t.Fatal("estimate history wrong length")
	}
	if math.Abs(est[127]-truth) > 60 {
		t.Fatalf("final estimate %v too far from %v", est[127], truth)
	}
	smooth, err := c.SmoothedEstimates()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(smooth) {
		t.Fatal("smoothed estimates not monotone")
	}
	if got := c.String(); got != "dphist.Counter{step 128 of 128}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCounterValidationPublic(t *testing.T) {
	m := MustNew()
	if _, err := m.NewCounter(0, 8); err == nil {
		t.Error("zero epsilon accepted")
	}
	c, err := m.NewCounter(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SmoothedEstimates(); err == nil {
		t.Error("SmoothedEstimates on empty counter accepted")
	}
}

func TestUniversal2DRelease(t *testing.T) {
	cells := [][]float64{
		{10, 0, 0, 0},
		{0, 20, 0, 0},
		{0, 0, 30, 0},
		{0, 0, 0, 40},
	}
	m := MustNew(WithSeed(41))
	rel, err := m.Universal2DHistogram(cells, 20) // low noise
	if err != nil {
		t.Fatal(err)
	}
	if rel.Width() != 4 || rel.Height() != 4 {
		t.Fatalf("domain %dx%d", rel.Width(), rel.Height())
	}
	if rel.TreeHeight() != 3 { // 16 cells: 1+4+16 nodes
		t.Fatalf("tree height %d", rel.TreeHeight())
	}
	total := rel.Total()
	if math.Abs(total-100) > 10 {
		t.Fatalf("total %v, want about 100", total)
	}
	diag, err := rel.Rect(0, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diag-30) > 10 {
		t.Fatalf("top-left quadrant %v, want about 30", diag)
	}
	rows := rel.Rows()
	if len(rows) != 4 || len(rows[0]) != 4 {
		t.Fatal("Rows shape wrong")
	}
	if flat := rel.Counts(); len(flat) != 16 || flat[2*4+2] != rows[2][2] {
		t.Fatalf("Counts is not the row-major cell grid: %v vs rows %v", flat, rows)
	}
	if rel.Strategy() != StrategyUniversal2D {
		t.Fatalf("strategy %v", rel.Strategy())
	}
	if rel.Epsilon() != 20 {
		t.Fatalf("epsilon %v", rel.Epsilon())
	}
	if v, err := rel.Cell(2, 2); err != nil || math.Abs(v-30) > 10 {
		t.Fatalf("Cell(2,2) = %v, %v", v, err)
	}
	if _, err := rel.Rect(0, 0, 5, 1); err == nil {
		t.Fatal("oversized rect accepted")
	}
	if v, err := rel.Rect(2, 2, 2, 2); err != nil || v != 0 {
		t.Fatalf("empty rect = %v, %v; want 0, nil", v, err)
	}
	if _, err := rel.Cell(4, 0); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	// The 1-D Release view: Range over row-major order matches sums over
	// Counts by construction.
	wantSum := 0.0
	for _, v := range rel.Counts() {
		wantSum += v
	}
	if v, err := rel.Range(0, 16); err != nil || math.Abs(v-wantSum) > 1e-9 {
		t.Fatalf("Range(0,16) = %v, %v; want sum over Counts %v", v, err, wantSum)
	}
}

func TestUniversal2DValidation(t *testing.T) {
	m := MustNew()
	if _, err := m.Universal2DHistogram(nil, 1); err == nil {
		t.Error("nil cells accepted")
	}
	if _, err := m.Universal2DHistogram([][]float64{{}}, 1); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := m.Universal2DHistogram([][]float64{{1}}, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := m.Universal2DHistogram([][]float64{{math.NaN()}}, 1); err == nil {
		t.Error("NaN cell accepted")
	}
}

func TestUniversal2DRaggedRowsZeroPad(t *testing.T) {
	m := MustNew(WithSeed(43))
	rel, err := m.Universal2DHistogram([][]float64{{5}, {1, 2, 3}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Width() != 3 || rel.Height() != 2 {
		t.Fatalf("domain %dx%d, want 3x2", rel.Width(), rel.Height())
	}
	if v, _ := rel.Cell(2, 0); math.Abs(v) > 2 {
		t.Fatalf("padded cell (2,0) = %v, want about 0", v)
	}
}

// Statistical: the 2D release recovers a sparse hotspot grid far better
// than independent cell noise would at matched epsilon.
func TestUniversal2DSparsityWin(t *testing.T) {
	const side = 32
	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
	}
	cells[5][5] = 4000
	cells[20][20] = 6000
	m := MustNew(WithSeed(47))
	rel, err := m.Universal2DHistogram(cells, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Large empty quadrant should release ~0; naive per-cell Laplace at
	// matched epsilon would carry ~(clipping bias) * 256 cells of mass.
	empty, err := rel.Rect(0, 16, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(empty) > 500 {
		t.Fatalf("empty quadrant estimate %v, want near 0", empty)
	}
	hot, err := rel.Rect(16, 16, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hot-6000) > 1500 {
		t.Fatalf("hot quadrant estimate %v, want about 6000", hot)
	}
}
