// Package dphistio wires the dphist mechanisms to CSV input, serving as
// the testable engine behind cmd/dphist. Records are read from CSV, each
// contributing one count at the position given by the selected column;
// the chosen task's private release is returned as a count vector.
package dphistio

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/domain"
	"github.com/dphist/dphist/internal/table"
)

// Request describes one private histogram computation over CSV records.
type Request struct {
	// DomainSize is the size of the position domain [0, n). Ignored when
	// IPPrefix or TimeStart is set (those imply the domain size).
	DomainSize int
	// Column is the 0-based CSV column holding the range attribute.
	Column int
	// Epsilon is the differential privacy budget for the release.
	Epsilon float64
	// Task selects the release strategy by wire name: "universal",
	// "laplace", "unattributed", "wavelet", or "degree_sequence"
	// (alias "degree"). Empty means "universal". The "hierarchy"
	// strategy is not servable from flat CSV input.
	Task string
	// Branching is the universal tree fan-out; 0 means 2.
	Branching int
	// Seed drives the noise stream.
	Seed uint64

	// IPPrefix, when non-empty, interprets the column as IPv4 addresses
	// inside this CIDR prefix (e.g. "128.119.0.0/16"), the NetTrace
	// shape; the domain is the prefix's address space.
	IPPrefix string
	// TimeStart, when non-zero, interprets the column as RFC 3339
	// timestamps binned at TimeBinWidth from TimeStart over TimeBins
	// bins, the Search Logs shape.
	TimeStart    time.Time
	TimeBinWidth time.Duration
	TimeBins     int
}

// Result is the outcome of Run.
type Result struct {
	// Counts is the released histogram: position -> private count for
	// the universal and laplace tasks, rank -> private count for the
	// unattributed task.
	Counts []float64
	// Loaded and Skipped count input rows accepted and rejected.
	Loaded, Skipped int
}

// Run loads CSV records from r and produces the requested private
// release.
func Run(req Request, r io.Reader) (*Result, error) {
	if req.Column < 0 {
		return nil, fmt.Errorf("dphistio: negative column %d", req.Column)
	}
	index, domainSize, err := req.indexer()
	if err != nil {
		return nil, err
	}
	tab, err := table.New(domainSize)
	if err != nil {
		return nil, err
	}
	loaded, skipped, err := table.ReadCSV(r, req.Column, index, tab)
	if err != nil {
		return nil, err
	}
	counts := tab.Histogram()

	k := req.Branching
	if k == 0 {
		k = 2
	}
	m, err := dphist.New(dphist.WithSeed(req.Seed), dphist.WithBranching(k))
	if err != nil {
		return nil, err
	}
	strategy := dphist.StrategyUniversal
	if req.Task != "" {
		strategy, err = dphist.ParseStrategy(req.Task)
		if err != nil {
			return nil, fmt.Errorf("dphistio: unknown task %q", req.Task)
		}
	}
	if strategy == dphist.StrategyHierarchy {
		return nil, fmt.Errorf("dphistio: the hierarchy strategy needs a constraint forest; use the dphist library API")
	}
	rel, err := m.Release(dphist.Request{Strategy: strategy, Counts: counts, Epsilon: req.Epsilon})
	if err != nil {
		return nil, err
	}
	return &Result{Counts: rel.Counts(), Loaded: loaded, Skipped: skipped}, nil
}

// indexer returns the value-to-position mapping implied by the request,
// together with the domain size.
func (req Request) indexer() (func(string) (int, error), int, error) {
	switch {
	case req.IPPrefix != "":
		d, err := domain.NewIPv4(req.IPPrefix)
		if err != nil {
			return nil, 0, err
		}
		return d.Index, d.Size(), nil
	case !req.TimeStart.IsZero():
		if req.TimeBins < 1 || req.TimeBinWidth <= 0 {
			return nil, 0, fmt.Errorf("dphistio: time domain needs positive TimeBins and TimeBinWidth")
		}
		d, err := domain.NewTimeBins(req.TimeStart, req.TimeBinWidth, req.TimeBins)
		if err != nil {
			return nil, 0, err
		}
		return func(s string) (int, error) {
			ts, err := time.Parse(time.RFC3339, s)
			if err != nil {
				return 0, err
			}
			return d.Index(ts)
		}, d.Size(), nil
	default:
		if req.DomainSize < 1 {
			return nil, 0, fmt.Errorf("dphistio: domain size %d < 1", req.DomainSize)
		}
		return func(s string) (int, error) { return strconv.Atoi(s) }, req.DomainSize, nil
	}
}
