package dphistio

import (
	"sort"
	"strings"
	"testing"
	"time"
)

const sampleCSV = "3,a\n3,b\n1,c\n9,d\nbad,e\n2,f\n"

func TestRunUniversal(t *testing.T) {
	res, err := Run(Request{DomainSize: 8, Epsilon: 100, Task: "universal", Seed: 7}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	// Row "9,d" is outside the domain and "bad,e" unparseable: skipped.
	if res.Loaded != 4 || res.Skipped != 2 {
		t.Fatalf("loaded=%d skipped=%d", res.Loaded, res.Skipped)
	}
	if len(res.Counts) != 8 {
		t.Fatalf("counts len %d", len(res.Counts))
	}
	// eps=100: the release should be exact after rounding.
	want := []float64{0, 1, 1, 2, 0, 0, 0, 0}
	for i := range want {
		if res.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", res.Counts, want)
		}
	}
}

func TestRunUnattributed(t *testing.T) {
	res, err := Run(Request{DomainSize: 8, Epsilon: 100, Task: "unattributed", Seed: 7}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(res.Counts) {
		t.Fatalf("unattributed output not sorted: %v", res.Counts)
	}
	total := 0.0
	for _, v := range res.Counts {
		total += v
	}
	if total != 4 {
		t.Fatalf("total = %v, want 4 at eps=100", total)
	}
}

func TestRunLaplace(t *testing.T) {
	res, err := Run(Request{DomainSize: 8, Epsilon: 100, Task: "laplace", Seed: 7}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[3] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestRunWavelet(t *testing.T) {
	res, err := Run(Request{DomainSize: 8, Epsilon: 100, Task: "wavelet", Seed: 7}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 8 {
		t.Fatalf("counts len %d", len(res.Counts))
	}
	total := 0.0
	for _, v := range res.Counts {
		total += v
	}
	if total != 4 {
		t.Fatalf("total = %v, want 4 at eps=100", total)
	}
}

func TestRunDegreeSequence(t *testing.T) {
	for _, task := range []string{"degree_sequence", "degree"} {
		res, err := Run(Request{DomainSize: 8, Epsilon: 100, Task: task, Seed: 7}, strings.NewReader(sampleCSV))
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if !sort.Float64sAreSorted(res.Counts) {
			t.Fatalf("%s output not sorted: %v", task, res.Counts)
		}
	}
}

func TestRunHierarchyRejected(t *testing.T) {
	if _, err := Run(Request{DomainSize: 8, Epsilon: 1, Task: "hierarchy", Seed: 7},
		strings.NewReader(sampleCSV)); err == nil {
		t.Fatal("hierarchy task accepted from flat CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Request{DomainSize: 0, Epsilon: 1}, strings.NewReader("")); err == nil {
		t.Error("zero domain accepted")
	}
	if _, err := Run(Request{DomainSize: 4, Column: -1, Epsilon: 1}, strings.NewReader("")); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := Run(Request{DomainSize: 4, Epsilon: 1, Task: "nope"}, strings.NewReader("1\n")); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := Run(Request{DomainSize: 4, Epsilon: 0, Task: "laplace"}, strings.NewReader("1\n")); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	a, err := Run(Request{DomainSize: 16, Epsilon: 0.5, Task: "universal", Seed: 42}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Request{DomainSize: 16, Epsilon: 0.5, Task: "universal", Seed: 42}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatal("same seed, different output")
		}
	}
}

func TestRunIPv4Domain(t *testing.T) {
	csv := "10.0.0.3,x\n10.0.0.3,y\n10.0.0.250,z\n192.168.0.1,w\nnot-an-ip,v\n"
	res, err := Run(Request{
		IPPrefix: "10.0.0.0/24",
		Epsilon:  100,
		Task:     "laplace",
		Seed:     9,
	}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded != 3 || res.Skipped != 2 {
		t.Fatalf("loaded=%d skipped=%d", res.Loaded, res.Skipped)
	}
	if len(res.Counts) != 256 {
		t.Fatalf("domain size %d, want 256", len(res.Counts))
	}
	if res.Counts[3] != 2 || res.Counts[250] != 1 {
		t.Fatalf("counts wrong: pos3=%v pos250=%v", res.Counts[3], res.Counts[250])
	}
}

func TestRunTimeDomain(t *testing.T) {
	start := time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)
	csv := "2004-01-01T00:30:00Z,a\n2004-01-01T02:00:00Z,b\n2003-12-31T23:00:00Z,c\nbad-time,d\n"
	res, err := Run(Request{
		TimeStart:    start,
		TimeBinWidth: 90 * time.Minute,
		TimeBins:     16,
		Epsilon:      100,
		Task:         "laplace",
		Seed:         9,
	}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded != 2 || res.Skipped != 2 {
		t.Fatalf("loaded=%d skipped=%d", res.Loaded, res.Skipped)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 1 {
		t.Fatalf("bins wrong: %v", res.Counts[:4])
	}
}

func TestRunTimeDomainValidation(t *testing.T) {
	start := time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := Run(Request{TimeStart: start, TimeBins: 0, TimeBinWidth: time.Hour, Epsilon: 1},
		strings.NewReader("")); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Run(Request{IPPrefix: "garbage", Epsilon: 1}, strings.NewReader("")); err == nil {
		t.Error("garbage prefix accepted")
	}
}

func TestRunDefaultTaskIsUniversal(t *testing.T) {
	res, err := Run(Request{DomainSize: 8, Epsilon: 100, Seed: 7}, strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 8 {
		t.Fatal("default task failed")
	}
}
