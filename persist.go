package dphist

// Durable mode for the release store. The paper's serving asymmetry —
// epsilon is spent once at mint time, queries are free forever after —
// only holds in production if both sides of the ledger survive the
// process: a store that forgets its releases wastes spent budget, and a
// store that forgets its *charges* lets a restart re-spend budget that
// is already gone, silently voiding the sequential-composition bound.
// OpenStore therefore journals every put, delete, and budget charge
// through internal/journal (write-ahead, fsynced by default) and folds
// the log into an atomically-replaced snapshot every snapshotEvery
// records. Recovery replays snapshot + log; a torn final record is
// truncated (it was never acknowledged), anything worse fails loudly.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dphist/dphist/internal/journal"
)

// ErrStoreClosed reports an operation on a store after Close.
var ErrStoreClosed = fmt.Errorf("dphist: store is closed")

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.json"
	// defaultSnapshotEvery bounds WAL growth: after this many journaled
	// records the log is folded into a fresh snapshot.
	defaultSnapshotEvery = 1024
)

// persistState is the durable half of a Store; it stays zero-valued for
// in-memory stores (jnl == nil disables every persistence path).
type persistState struct {
	dir string
	jnl *journal.Journal
	// opMu orders journaled mutations against snapshots: puts, deletes,
	// and charges hold it for read around their journal-append-then-
	// commit critical section, and Snapshot holds it for write so the
	// state it collects exactly matches the WAL it resets.
	opMu   sync.RWMutex
	closed bool // guarded by opMu
	snapMu sync.Mutex
	// appended counts journal records since the last snapshot.
	appended atomic.Int64
	// snapSeq is the journal sequence the newest on-disk snapshot
	// covers — the compaction horizon a replica must bootstrap past.
	snapSeq atomic.Uint64
}

// WithSnapshotEvery sets how many journaled records accumulate before
// the write-ahead log is folded into a snapshot (default 1024). n <= 0
// disables automatic snapshots; the log then grows until Snapshot or
// Close. Only meaningful for stores opened with OpenStore.
func WithSnapshotEvery(n int) StoreOption {
	return func(s *Store) { s.snapEvery = n }
}

// WithoutSync disables the fsync after every journaled record. The
// store still recovers to a consistent prefix after a crash, but the
// prefix may be missing acknowledged events that were buffered in the
// page cache — including budget charges, which weakens the privacy
// ledger. For benchmarks and tests only.
func WithoutSync() StoreOption {
	return func(s *Store) { s.syncWrites = false }
}

// storeSnapshot is the on-disk snapshot: complete store state as of
// journal sequence Seq.
type storeSnapshot struct {
	Seq      uint64        `json:"seq"`
	SavedAt  time.Time     `json:"saved_at"`
	Entries  []snapEntry   `json:"entries"`
	Versions []snapVersion `json:"versions"`
	Charges  []snapCharge  `json:"charges"`
}

// snapEntry is one live release; the payload is the self-describing v2
// wire format, same as the journal's put records.
type snapEntry struct {
	Namespace string          `json:"ns"`
	Name      string          `json:"name"`
	Version   int             `json:"version"`
	StoredAt  time.Time       `json:"stored_at"`
	Release   json.RawMessage `json:"release"`
}

// snapVersion is one per-name Put counter. Counters are persisted
// separately from entries because they survive deletion and eviction.
type snapVersion struct {
	Namespace string `json:"ns"`
	Name      string `json:"name"`
	Version   int    `json:"version"`
}

// snapCharge is one namespace's admitted budget expenditure. Snapshots
// aggregate each namespace's ledger into a single entry — what the
// privacy guarantee needs is the spent total, and folding the history
// keeps snapshot size O(live state) instead of O(lifetime charges).
// Itemized charges still reach Accountant.Log for everything since the
// last snapshot, via the WAL.
type snapCharge struct {
	Namespace string  `json:"ns"`
	Label     string  `json:"label"`
	Epsilon   float64 `json:"epsilon"`
}

// OpenStore opens (creating if needed) a durable store rooted at dir.
// Recovery loads the newest snapshot, replays the write-ahead log on
// top of it, truncates a torn final record, and re-applies the capacity
// bound; after it returns, every release acknowledged before the last
// shutdown or crash is queryable with identical answers, and every
// namespace Accountant reports exactly the budget admitted before the
// crash. Damage that cannot be a torn append — checksum failures
// mid-file, unparseable payloads, a corrupt snapshot — fails loudly
// here rather than silently under-reporting spent budget.
//
// The directory must not be shared between live processes; the store
// assumes it owns dir exclusively.
func OpenStore(dir string, opts ...StoreOption) (*Store, error) {
	return openStore(dir, false, opts...)
}

// openStore is the shared open path behind OpenStore and OpenReplica.
// Recovery is one consumer of the apply pipeline in replica.go; setting
// readOnly before replay matters because accountants materialized during
// replay must be born with the read-only ledger.
func openStore(dir string, readOnly bool, opts ...StoreOption) (*Store, error) {
	s := NewStore(opts...)
	s.readOnly = readOnly
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s.dir = dir
	var snap storeSnapshot
	found, err := journal.ReadSnapshot(filepath.Join(dir, snapshotFile), &snap)
	if err != nil {
		return nil, fmt.Errorf("dphist: open store %s: %w", dir, err)
	}
	if found {
		if err := s.applySnapshot(&snap); err != nil {
			return nil, fmt.Errorf("dphist: open store %s: snapshot: %w", dir, err)
		}
		s.snapSeq.Store(snap.Seq)
	}
	jnl, err := journal.Open(filepath.Join(dir, walFile), func(rec journal.Record) error {
		if rec.Seq <= snap.Seq {
			// Already folded into the snapshot; a crash between snapshot
			// rename and WAL reset leaves such records behind harmlessly.
			return nil
		}
		return s.applyRecord(rec)
	}, journal.WithBaseSeq(snap.Seq), journal.WithSync(s.syncWrites))
	if err != nil {
		return nil, fmt.Errorf("dphist: open store %s: %w", dir, err)
	}
	s.jnl = jnl
	// A replica's WAL carries primary sequence numbers (see Apply), so
	// the recovery point doubles as the replication high-water mark: a
	// restarted follower resumes the stream from applied+1.
	s.applied.Store(jnl.NextSeq() - 1)
	if !readOnly {
		// Accountants materialized during replay predate s.jnl; wire
		// their ledgers now so post-recovery charges are journaled.
		for ns, a := range s.accts {
			a.ledger = &storeLedger{s: s, ns: ns}
		}
	}
	// Capacity evictions are never journaled (recovery re-derives them),
	// so re-run the bound over the replayed state.
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepExpiredLocked(sh, s.now())
		for s.shardCap > 0 && len(sh.items) > s.shardCap {
			s.removeLocked(sh, sh.recency.Back().Value.(nsKey))
		}
		sh.mu.Unlock()
	}
	return s, nil
}

// journalPut appends a put record; the caller must not commit the entry
// to memory (or acknowledge it) unless this returns nil. A no-op for
// in-memory stores.
func (s *Store) journalPut(entry StoreEntry, r Release) error {
	if s.jnl == nil {
		return nil
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = s.jnl.Append(journal.Record{
		Op:        journal.OpPut,
		Namespace: entry.Namespace,
		Name:      entry.Name,
		Version:   entry.Version,
		StoredAt:  entry.StoredAt,
		Payload:   payload,
	})
	if err != nil {
		return err
	}
	s.appended.Add(1)
	return nil
}

// journalDelete appends a delete record. Append failures are swallowed:
// the in-memory delete proceeds (over-retaining after a crash is the
// safe direction for a *removal*), and the journal's sticky error will
// fail the next put or charge loudly.
func (s *Store) journalDelete(ns, name string) {
	if s.jnl == nil {
		return
	}
	if _, err := s.jnl.Append(journal.Record{Op: journal.OpDelete, Namespace: ns, Name: name}); err == nil {
		s.appended.Add(1)
	}
}

// storeLedger is the chargeLedger a durable store wires into its
// namespace accountants: admitted charges are journaled and fsynced
// before Spend acknowledges them.
type storeLedger struct {
	s  *Store
	ns string
}

func (l *storeLedger) begin() { l.s.opMu.RLock() }

func (l *storeLedger) end() {
	l.s.opMu.RUnlock()
	// Runs after Spend has released every lock (its defers unwind the
	// accountant mutex first), so a snapshot can safely trigger here.
	l.s.maybeSnapshot()
}

func (l *storeLedger) record(c Charge) error {
	if l.s.closed { // read under opMu.RLock, held since begin
		return ErrStoreClosed
	}
	if _, err := l.s.jnl.Append(journal.Record{
		Op:        journal.OpCharge,
		Namespace: l.ns,
		Label:     c.Label,
		Epsilon:   c.Epsilon,
	}); err != nil {
		return err
	}
	l.s.appended.Add(1)
	return nil
}

// maybeSnapshot folds the WAL into a snapshot once enough records have
// accumulated. Failures are left for the next trigger (the WAL keeps
// every record, so nothing is lost) and surface loudly on Close.
func (s *Store) maybeSnapshot() {
	if s.jnl == nil || s.snapEvery <= 0 {
		return
	}
	if s.appended.Load() < int64(s.snapEvery) {
		return
	}
	_ = s.snapshot(false)
}

// Snapshot forces the current state onto disk as a fresh snapshot and
// resets the write-ahead log. A no-op for in-memory stores.
func (s *Store) Snapshot() error { return s.snapshot(false) }

func (s *Store) snapshot(closing bool) error {
	if s.jnl == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.closed && !closing {
		return ErrStoreClosed
	}
	snap, err := s.collectSnapshotLocked()
	if err != nil {
		return err
	}
	if err := journal.WriteSnapshot(filepath.Join(s.dir, snapshotFile), snap); err != nil {
		return err
	}
	// The snapshot is durable and covers every journaled record, so the
	// WAL can be discarded. A crash in between leaves records with
	// seq <= snap.Seq in the WAL; recovery skips them.
	if err := s.jnl.Reset(); err != nil {
		return err
	}
	s.appended.Store(0)
	s.snapSeq.Store(snap.Seq)
	return nil
}

// collectSnapshotLocked serializes complete store state; the caller
// holds opMu for write, so no journaled mutation is in flight and the
// WAL's last assigned sequence exactly bounds the collected state.
func (s *Store) collectSnapshotLocked() (*storeSnapshot, error) {
	snap := &storeSnapshot{
		Seq:     s.jnl.NextSeq() - 1,
		SavedAt: s.now(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepExpiredLocked(sh, s.now())
		for k, it := range sh.items {
			payload, err := json.Marshal(it.release)
			if err != nil {
				sh.mu.Unlock()
				return nil, err
			}
			snap.Entries = append(snap.Entries, snapEntry{
				Namespace: k.ns,
				Name:      k.name,
				Version:   it.entry.Version,
				StoredAt:  it.entry.StoredAt,
				Release:   payload,
			})
		}
		for k, v := range sh.versions {
			snap.Versions = append(snap.Versions, snapVersion{Namespace: k.ns, Name: k.name, Version: v})
		}
		sh.mu.Unlock()
	}
	s.acctMu.Lock()
	accts := make(map[string]*Accountant, len(s.accts))
	for ns, a := range s.accts {
		accts[ns] = a
	}
	s.acctMu.Unlock()
	names := make([]string, 0, len(accts))
	for ns := range accts {
		names = append(names, ns)
	}
	sort.Strings(names)
	for _, ns := range names {
		spent, count := accts[ns].rawSpent()
		if count == 0 {
			continue
		}
		snap.Charges = append(snap.Charges, snapCharge{
			Namespace: ns,
			Label:     fmt.Sprintf("recovered: %d charges", count),
			Epsilon:   spent,
		})
	}
	sort.Slice(snap.Entries, func(i, j int) bool {
		a, b := snap.Entries[i], snap.Entries[j]
		if !a.StoredAt.Equal(b.StoredAt) {
			return a.StoredAt.Before(b.StoredAt)
		}
		if a.Namespace != b.Namespace {
			return a.Namespace < b.Namespace
		}
		return a.Name < b.Name
	})
	sort.Slice(snap.Versions, func(i, j int) bool {
		a, b := snap.Versions[i], snap.Versions[j]
		if a.Namespace != b.Namespace {
			return a.Namespace < b.Namespace
		}
		return a.Name < b.Name
	})
	return snap, nil
}

// Close flushes a final snapshot and closes the journal. Every later
// journaled mutation fails with ErrStoreClosed; reads keep working
// against the in-memory state. A no-op for in-memory stores.
func (s *Store) Close() error {
	if s.jnl == nil {
		return nil
	}
	s.opMu.Lock()
	if s.closed {
		s.opMu.Unlock()
		return nil
	}
	s.closed = true
	s.opMu.Unlock()
	snapErr := s.snapshot(true)
	closeErr := s.jnl.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// Dir returns the data directory of a durable store, or "" for an
// in-memory one.
func (s *Store) Dir() string { return s.dir }
