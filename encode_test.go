package dphist

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// releaseFixtures produces one release per strategy from a fixed seed,
// for table-driven coverage of the whole Release interface.
func releaseFixtures(t *testing.T) map[Strategy]Release {
	t.Helper()
	m := MustNew(WithSeed(61))
	counts := make([]float64, 50)
	for i := range counts {
		counts[i] = float64(i % 9)
	}
	out := make(map[Strategy]Release)
	for _, s := range Strategies() {
		req := Request{Strategy: s, Counts: counts, Epsilon: 0.5}
		switch s {
		case StrategyHierarchy:
			req.Counts = []float64{120, 180, 90, 40, 25}
			req.Hierarchy = Grades()
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = [][]float64{
				{0, 1, 2, 3, 4, 5, 6},
				{6, 5, 4, 3, 2, 1},
				{1, 2, 3},
			}
		}
		rel, err := m.Release(req)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		out[s] = rel
	}
	return out
}

// Every implementation must round-trip through JSON via the generic
// decoder: same strategy, same epsilon, same Counts, same Range answers.
func TestEveryReleaseRoundTripsThroughInterface(t *testing.T) {
	for strategy, orig := range releaseFixtures(t) {
		t.Run(strategy.String(), func(t *testing.T) {
			data, err := json.Marshal(orig)
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeRelease(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Strategy() != strategy {
				t.Fatalf("strategy changed: %v", back.Strategy())
			}
			if back.Epsilon() != orig.Epsilon() {
				t.Fatalf("epsilon changed: %v vs %v", back.Epsilon(), orig.Epsilon())
			}
			a, b := orig.Counts(), back.Counts()
			if len(a) != len(b) {
				t.Fatalf("counts length changed: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("count %d changed: %v vs %v", i, a[i], b[i])
				}
			}
			if orig.Total() != back.Total() {
				t.Fatalf("total changed: %v vs %v", orig.Total(), back.Total())
			}
			n := len(a)
			for _, q := range [][2]int{{0, n}, {1, n - 1}, {n / 3, n/3 + 1}} {
				x, err1 := orig.Range(q[0], q[1])
				y, err2 := back.Range(q[0], q[1])
				if err1 != nil || err2 != nil || math.Abs(x-y) > 1e-12 {
					t.Fatalf("range [%d,%d) changed: %v (%v) vs %v (%v)", q[0], q[1], x, err1, y, err2)
				}
			}
			if _, err := back.Range(-1, 1); err == nil {
				t.Fatal("decoded release accepted a negative range")
			}
		})
	}
}

// Corrupted payloads must be rejected by the generic decoder, not
// answered from garbage.
func TestDecodeReleaseRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":          `{{{`,
		"no header":         `{}`,
		"bad version":       `{"version":1,"strategy":"laplace","epsilon":1,"noisy":[1],"counts":[1]}`,
		"unknown strategy":  `{"version":2,"strategy":"nope","epsilon":1}`,
		"missing strategy":  `{"version":2,"epsilon":1,"noisy":[1],"counts":[1]}`,
		"zero epsilon":      `{"version":2,"strategy":"laplace","epsilon":0,"noisy":[1],"counts":[1]}`,
		"negative epsilon":  `{"version":2,"strategy":"laplace","epsilon":-2,"noisy":[1],"counts":[1]}`,
		"length mismatch":   `{"version":2,"strategy":"laplace","epsilon":1,"noisy":[1,2],"counts":[1]}`,
		"empty vectors":     `{"version":2,"strategy":"laplace","epsilon":1,"noisy":[],"counts":[]}`,
		"unsorted counts":   `{"version":2,"strategy":"unattributed","epsilon":1,"noisy":[2,1],"inferred":[2,1],"counts":[2,1]}`,
		"unsorted degrees":  `{"version":2,"strategy":"degree_sequence","epsilon":1,"noisy":[2,1],"inferred":[2,1],"counts":[2,1]}`,
		"bad tree k":        `{"version":2,"strategy":"universal","epsilon":1,"k":1,"domain":4,"noisy":[],"inferred":[],"post":[]}`,
		"short tree":        `{"version":2,"strategy":"universal","epsilon":1,"k":2,"domain":4,"noisy":[1,2],"inferred":[1,2],"post":[1,2]}`,
		"empty wavelet":     `{"version":2,"strategy":"wavelet","epsilon":1,"counts":[]}`,
		"cyclic hierarchy":  `{"version":2,"strategy":"hierarchy","epsilon":1,"parent":[1,0],"noisy":[1,1],"inferred":[1,1]}`,
		"short hierarchy":   `{"version":2,"strategy":"hierarchy","epsilon":1,"parent":[-1,0,0],"noisy":[1],"inferred":[1]}`,
		"strategy mismatch": `{"version":2,"strategy":"laplace","epsilon":1,"parent":[-1],"noisy":[1],"inferred":[1]}`,
		"zero-width grid":   `{"version":2,"strategy":"universal2d","epsilon":1,"width":0,"height":2,"noisy":[1],"inferred":[1],"post":[1]}`,
		"huge grid":         `{"version":2,"strategy":"universal2d","epsilon":1,"width":9999999,"height":9999999,"noisy":[1],"inferred":[1],"post":[1]}`,
		"short quadtree":    `{"version":2,"strategy":"universal2d","epsilon":1,"width":2,"height":2,"noisy":[1,2],"inferred":[1,2],"post":[1,2]}`,
	}
	for name, payload := range cases {
		if name == "strategy mismatch" {
			// Route the laplace-tagged payload into the hierarchy decoder
			// directly: the concrete decoder must reject the wrong tag.
			var r HierarchyReleaseResult
			if err := json.Unmarshal([]byte(payload), &r); err == nil {
				t.Errorf("%s: corrupt payload accepted", name)
			}
			continue
		}
		if _, err := DecodeRelease([]byte(payload)); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
}

// The 2-D release round-trips concretely: grid shape, answers, the raw
// noisy baseline, and the re-derived summed-area fast path all survive.
func TestUniversal2DReleaseRoundTrip(t *testing.T) {
	cells := [][]float64{{3, 1, 4}, {1, 5, 9}, {2, 6, 5}, {3, 5}}
	for _, consistent := range []bool{true, false} {
		opts := []Option{WithSeed(66)}
		if consistent {
			opts = append(opts, WithoutNonNegativity(), WithoutRounding())
		}
		orig, err := MustNew(opts...).Universal2DHistogram(cells, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var back Universal2DRelease
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Width() != orig.Width() || back.Height() != orig.Height() ||
			back.TreeHeight() != orig.TreeHeight() || back.Epsilon() != orig.Epsilon() {
			t.Fatal("shape lost in round trip")
		}
		// The fast path is a pure function of the payload, so the decoded
		// plan must be re-derived identically: the summed-area mode exactly
		// when the original compiled it.
		if back.plan.Mode() != orig.plan.Mode() {
			t.Fatalf("plan mode changed in round trip: %q vs %q", back.plan.Mode(), orig.plan.Mode())
		}
		for _, q := range []RectSpec{{X1: 3, Y1: 4}, {X0: 1, Y0: 1, X1: 3, Y1: 3}, {X0: 2, Y0: 2, X1: 2, Y1: 2}} {
			a, err := orig.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("consistent=%v: Rect%+v changed in round trip: %v vs %v", consistent, q, a, b)
			}
		}
		na, nb := orig.NoisyTree(), back.NoisyTree()
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("noisy baseline lost in round trip")
			}
		}
	}
}

// Concrete-type decoding still works for clients that know what they
// asked for, preserving type-specific baselines.
func TestUniversalReleaseRoundTrip(t *testing.T) {
	m := MustNew(WithSeed(61))
	counts := make([]float64, 50)
	for i := range counts {
		counts[i] = float64(i % 9)
	}
	orig, err := m.UniversalHistogram(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back UniversalRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Domain() != orig.Domain() || back.Branching() != orig.Branching() ||
		back.TreeHeight() != orig.TreeHeight() {
		t.Fatal("shape lost in round trip")
	}
	ra, _ := orig.RangeNoisy(5, 40)
	rb, _ := back.RangeNoisy(5, 40)
	if math.Abs(ra-rb) > 1e-12 {
		t.Fatal("noisy baseline lost in round trip")
	}
	if back.Epsilon() != 0.5 {
		t.Fatalf("epsilon lost: %v", back.Epsilon())
	}
}

func TestUnattributedReleaseRoundTrip(t *testing.T) {
	m := MustNew(WithSeed(62))
	orig, err := m.UnattributedHistogram([]float64{4, 4, 1, 9}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back UnattributedRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	oc, bc := orig.Counts(), back.Counts()
	for i := range oc {
		if bc[i] != oc[i] || back.Noisy[i] != orig.Noisy[i] ||
			back.Inferred[i] != orig.Inferred[i] {
			t.Fatal("values changed in round trip")
		}
	}
	// The baseline remains computable from the decoded release.
	if len(back.SortRoundBaseline()) != 4 {
		t.Fatal("baseline broken after decode")
	}
}

func TestDegreeSequenceRoundTripKeepsGraphical(t *testing.T) {
	m := MustNew(WithSeed(64))
	degrees := make([]float64, 32)
	for i := range degrees {
		degrees[i] = 4
	}
	orig, err := m.DegreeSequence(degrees, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back DegreeSequenceRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.IsGraphical() {
		t.Fatal("graphical property lost in round trip")
	}
}

func TestHierarchyRoundTripKeepsStructure(t *testing.T) {
	m := MustNew(WithSeed(65))
	orig, err := m.HierarchyRelease(Grades(), []float64{120, 180, 90, 40, 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back HierarchyReleaseResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	wantLeaves := Grades().Leaves()
	gotLeaves := back.Leaves()
	if fmt.Sprint(gotLeaves) != fmt.Sprint(wantLeaves) {
		t.Fatalf("leaves changed: %v vs %v", gotLeaves, wantLeaves)
	}
	for i, v := range orig.Inferred {
		if back.Inferred[i] != v {
			t.Fatal("inferred answers changed in round trip")
		}
	}
}
