package dphist

import (
	"encoding/json"
	"math"
	"testing"
)

func TestUniversalReleaseRoundTrip(t *testing.T) {
	m := MustNew(WithSeed(61))
	counts := make([]float64, 50)
	for i := range counts {
		counts[i] = float64(i % 9)
	}
	orig, err := m.UniversalHistogram(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back UniversalRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Domain() != orig.Domain() || back.Branching() != orig.Branching() ||
		back.TreeHeight() != orig.TreeHeight() {
		t.Fatal("shape lost in round trip")
	}
	for _, q := range [][2]int{{0, 50}, {3, 17}, {49, 50}} {
		a, err1 := orig.Range(q[0], q[1])
		b, err2 := back.Range(q[0], q[1])
		if err1 != nil || err2 != nil || math.Abs(a-b) > 1e-12 {
			t.Fatalf("range [%d,%d) changed: %v vs %v", q[0], q[1], a, b)
		}
	}
	ra, _ := orig.RangeNoisy(5, 40)
	rb, _ := back.RangeNoisy(5, 40)
	if math.Abs(ra-rb) > 1e-12 {
		t.Fatal("noisy baseline lost in round trip")
	}
	if back.Total() != orig.Total() {
		t.Fatal("total changed")
	}
}

func TestUniversalReleaseDecodeRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"bad version":  `{"version":9,"k":2,"domain":4,"noisy":[],"inferred":[],"post":[]}`,
		"bad k":        `{"version":1,"k":1,"domain":4,"noisy":[],"inferred":[],"post":[]}`,
		"short counts": `{"version":1,"k":2,"domain":4,"noisy":[1,2],"inferred":[1,2],"post":[1,2]}`,
		"not json":     `{{{`,
	}
	for name, payload := range cases {
		var r UniversalRelease
		if err := json.Unmarshal([]byte(payload), &r); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
}

func TestUnattributedReleaseRoundTrip(t *testing.T) {
	m := MustNew(WithSeed(62))
	orig, err := m.UnattributedHistogram([]float64{4, 4, 1, 9}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back UnattributedRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range orig.Counts {
		if back.Counts[i] != orig.Counts[i] || back.Noisy[i] != orig.Noisy[i] ||
			back.Inferred[i] != orig.Inferred[i] {
			t.Fatal("values changed in round trip")
		}
	}
	// The baseline remains computable from the decoded release.
	if len(back.SortRoundBaseline()) != 4 {
		t.Fatal("baseline broken after decode")
	}
}

func TestUnattributedDecodeRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"version":2,"noisy":[1],"inferred":[1],"counts":[1]}`,
		`{"version":1,"noisy":[1,2],"inferred":[1],"counts":[1]}`,
		`{"version":1,"noisy":[],"inferred":[],"counts":[]}`,
	}
	for _, payload := range cases {
		var r UnattributedRelease
		if err := json.Unmarshal([]byte(payload), &r); err == nil {
			t.Errorf("corrupt payload accepted: %s", payload)
		}
	}
}

func TestLaplaceReleaseRoundTrip(t *testing.T) {
	m := MustNew(WithSeed(63))
	orig, err := m.LaplaceHistogram([]float64{7, 0, 2}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back LaplaceRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	a, _ := orig.Range(0, 3)
	b, _ := back.Range(0, 3)
	if a != b || back.Total() != orig.Total() {
		t.Fatal("range answers changed in round trip")
	}
}

func TestLaplaceDecodeRejectsCorrupt(t *testing.T) {
	var r LaplaceRelease
	if err := json.Unmarshal([]byte(`{"version":1,"noisy":[1],"counts":[]}`), &r); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}
