package dphist

// Regression tests for the Release aliasing and range-semantics
// guarantees: constructors copy the caller-visible raw-answer slices,
// and every release type answers the empty range [k, k) with 0.

import (
	"testing"

	"github.com/dphist/dphist/internal/laplace"
)

// TestConstructorsCopyRawAnswerSlices mutates the slices a release was
// constructed from and the exported fields themselves, checking that
// neither desynchronizes the published Counts/Range/Total.
func TestConstructorsCopyRawAnswerSlices(t *testing.T) {
	noisy := []float64{3.4, -0.2, 10.1, 2.3}
	inferred := []float64{0.1, 0.1, 3.0, 9.9}
	final := []float64{0, 0, 3, 10}

	lap := newLaplaceRelease(noisy, true, 1)
	unat := newUnattributedRelease(noisy, inferred, final, 1)
	deg := newDegreeSequenceRelease(noisy, inferred, final, 1)

	wasNoisy := lap.Noisy[0]
	noisy[0], inferred[0] = 999, 999
	if lap.Noisy[0] != wasNoisy || unat.Noisy[0] != wasNoisy || deg.Noisy[0] != wasNoisy {
		t.Fatal("mutating the constructor input reached a release's Noisy")
	}
	if unat.Inferred[0] == 999 || deg.Inferred[0] == 999 {
		t.Fatal("mutating the constructor input reached a release's Inferred")
	}

	releases := []Release{lap, unat, deg}
	h, err := MustNew(WithSeed(3)).HierarchyRelease(Grades(), []float64{2, 0, 10, 2, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	releases = append(releases, h)

	// Mutating the exported raw-answer fields must not change what the
	// release publishes.
	for _, rel := range releases {
		wantCounts := rel.Counts()
		wantTotal := rel.Total()
		wantRange, err := rel.Range(0, len(wantCounts))
		if err != nil {
			t.Fatal(err)
		}
		switch r := rel.(type) {
		case *LaplaceRelease:
			r.Noisy[0] += 500
		case *UnattributedRelease:
			r.Noisy[0] += 500
			r.Inferred[0] += 500
		case *DegreeSequenceRelease:
			r.Noisy[0] += 500
			r.Inferred[0] += 500
		case *HierarchyReleaseResult:
			r.Noisy[0] += 500
			r.Inferred[0] += 500
		}
		for i, v := range rel.Counts() {
			if v != wantCounts[i] {
				t.Fatalf("%v: Counts changed after mutating raw fields", rel.Strategy())
			}
		}
		if rel.Total() != wantTotal {
			t.Fatalf("%v: Total changed after mutating raw fields", rel.Strategy())
		}
		if got, _ := rel.Range(0, len(wantCounts)); got != wantRange {
			t.Fatalf("%v: Range changed after mutating raw fields", rel.Strategy())
		}
	}
}

// TestExtensionReleasesDoNotAliasInternalState extends the aliasing
// sweep to the types the original pass skipped: the 2-D release (Counts
// vector, Rows grid, tree accessors, and the input cells it was built
// from) and the streaming counter's estimate history.
func TestExtensionReleasesDoNotAliasInternalState(t *testing.T) {
	m := MustNew(WithSeed(53))
	cells := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	rel, err := m.Universal2DHistogram(cells, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := rel.Counts()
	wantTotal := rel.Total()
	wantRect, err := rel.Rect(0, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Mutating the input grid after minting must not reach the release.
	cells[1][1] = 9999
	// Mutating every exported view must not desync later answers.
	rel.Counts()[0] = -100
	for _, row := range rel.Rows() {
		for x := range row {
			row[x] = -200
		}
	}
	rel.NoisyTree()[0] = -300
	rel.InferredTree()[0] = -400

	for i, v := range rel.Counts() {
		if v != wantCounts[i] {
			t.Fatalf("Counts changed after mutating exported views: %v", rel.Counts())
		}
	}
	if rel.Total() != wantTotal {
		t.Fatalf("Total changed after mutating exported views: %v", rel.Total())
	}
	if got, _ := rel.Rect(0, 0, 2, 2); got != wantRect {
		t.Fatalf("Rect changed after mutating exported views: %v", got)
	}

	// The streaming counter's history is a copy, in both accessors.
	c, err := m.NewCounter(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Feed(1); err != nil {
			t.Fatal(err)
		}
	}
	want := c.Estimates()
	c.Estimates()[0] = -1
	smooth, err := c.SmoothedEstimates()
	if err != nil {
		t.Fatal(err)
	}
	smooth[0] = -2
	for i, v := range c.Estimates() {
		if v != want[i] {
			t.Fatalf("Estimates aliases internal state: %v", c.Estimates())
		}
	}

	// The degree-sequence release survives mutation of its inputs and
	// published slices (it was audited clean; this locks it in).
	degrees := []float64{5, 1, 1, 1, 1, 1, 2, 2}
	deg, err := m.DegreeSequence(degrees, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := deg.Counts()
	degrees[0] = 9999
	deg.Counts()[0] = -1
	deg.Noisy[0] = -2
	deg.Inferred[0] = -3
	for i, v := range deg.Counts() {
		if v != wantDeg[i] {
			t.Fatalf("degree-sequence Counts desynced: %v", deg.Counts())
		}
	}
}

// TestEmptyRangeIsZeroForAllReleaseTypes pins the documented half-open
// semantics: Range(k, k) = 0 for every 0 <= k <= len(Counts()), while
// out-of-bounds and inverted ranges still fail.
func TestEmptyRangeIsZeroForAllReleaseTypes(t *testing.T) {
	for _, rel := range sixReleases(t, MustNew(WithSeed(21))) {
		n := len(rel.Counts())
		for _, k := range []int{0, n / 2, n} {
			got, err := rel.Range(k, k)
			if err != nil {
				t.Errorf("%v: Range(%d,%d): %v", rel.Strategy(), k, k, err)
			} else if got != 0 {
				t.Errorf("%v: Range(%d,%d) = %v, want 0", rel.Strategy(), k, k, got)
			}
		}
		for _, bad := range [][2]int{{-1, -1}, {n + 1, n + 1}, {2, 1}, {0, n + 1}} {
			if _, err := rel.Range(bad[0], bad[1]); err == nil {
				t.Errorf("%v: Range(%d,%d) accepted", rel.Strategy(), bad[0], bad[1])
			}
		}
		// Universal releases expose a second query path; hold it to the
		// same contract.
		if uni, ok := rel.(*UniversalRelease); ok {
			if got, err := uni.RangeNoisy(1, 1); err != nil || got != 0 {
				t.Errorf("RangeNoisy(1,1) = %v, %v; want 0, nil", got, err)
			}
			if _, err := uni.RangeNoisy(2, 1); err == nil {
				t.Error("RangeNoisy(2,1) accepted")
			}
		}
	}
}

// The htree fast path and the recursive decomposition must agree on
// public releases end to end (the internal equivalence test lives in
// htree; this guards the wiring above it).
func TestUniversalRangeMatchesDecomposition(t *testing.T) {
	counts := make([]float64, 37) // force padding: 37 < 64 leaves
	src := laplace.NewRand(1, 2)
	for i := range counts {
		counts[i] = float64(src.IntN(50))
	}
	rel, err := MustNew(WithSeed(22)).UniversalHistogram(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo <= len(counts); lo++ {
		for hi := lo; hi <= len(counts); hi++ {
			got, err := rel.Range(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			if lo < hi {
				for _, v := range rel.tree.Decompose(lo, hi) {
					want += rel.post[v]
				}
			}
			if got != want && !rel.plan.Consistent() {
				t.Fatalf("Range(%d,%d) = %v, decomposition sum = %v", lo, hi, got, want)
			}
		}
	}
}
