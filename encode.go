package dphist

// JSON serialization for releases. A data owner computes a release once
// and ships it to analysts (Appendix B: "the server can implement the
// post-processing step"); the wire form carries everything needed to
// answer queries offline, and decoding validates shape invariants so a
// corrupted payload fails loudly rather than answering garbage. Every
// decoder recompiles the release's query plan (internal/plan) from the
// decoded vectors — fast paths are re-derived, never trusted from the
// wire — so a decoded release serves batches exactly like the original.
//
// The wire format is versioned and self-describing: every payload
// carries {"version": 2, "strategy": "...", "epsilon": ...} alongside
// the strategy-specific fields, so DecodeRelease can reconstruct the
// right concrete type without out-of-band knowledge.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/plan"
)

// WireVersion is the current release wire-format version. Version 1 (the
// pre-interface format without strategy tags or epsilon) is no longer
// accepted.
const WireVersion = 2

// releaseCodecs maps each strategy to a factory for its zero concrete
// release, used by DecodeRelease to dispatch on the wire strategy tag.
// Adding a strategy means adding one entry here.
var releaseCodecs = map[Strategy]func() Release{
	StrategyUniversal:      func() Release { return new(UniversalRelease) },
	StrategyLaplace:        func() Release { return new(LaplaceRelease) },
	StrategyUnattributed:   func() Release { return new(UnattributedRelease) },
	StrategyWavelet:        func() Release { return new(WaveletRelease) },
	StrategyDegreeSequence: func() Release { return new(DegreeSequenceRelease) },
	StrategyHierarchy:      func() Release { return new(HierarchyReleaseResult) },
	StrategyUniversal2D:    func() Release { return new(Universal2DRelease) },
}

// DecodeRelease decodes any release payload produced by a Release's
// MarshalJSON, returning the matching concrete type behind the Release
// interface.
func DecodeRelease(data []byte) (Release, error) {
	var header struct {
		Version  int    `json:"version"`
		Strategy string `json:"strategy"`
	}
	if err := json.Unmarshal(data, &header); err != nil {
		return nil, fmt.Errorf("dphist: decode release: %w", err)
	}
	if header.Version != WireVersion {
		return nil, fmt.Errorf("dphist: unsupported release version %d", header.Version)
	}
	strategy, err := ParseStrategy(header.Strategy)
	if err != nil {
		return nil, fmt.Errorf("dphist: decode release: %w", err)
	}
	factory, ok := releaseCodecs[strategy]
	if !ok {
		return nil, fmt.Errorf("dphist: no codec for strategy %v", strategy)
	}
	rel := factory()
	if err := json.Unmarshal(data, rel); err != nil {
		return nil, err
	}
	return rel, nil
}

// checkHeader validates the shared envelope fields of a decoded wire
// struct against the expected strategy.
func checkHeader(version int, strategy string, want Strategy, eps float64) error {
	if version != WireVersion {
		return fmt.Errorf("dphist: unsupported release version %d", version)
	}
	if strategy != want.String() {
		return fmt.Errorf("dphist: payload strategy %q is not %q", strategy, want)
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("dphist: payload epsilon %v is not positive and finite", eps)
	}
	return nil
}

// universalWire is the serialized form of a UniversalRelease.
type universalWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	K        int           `json:"k"`
	Domain   int           `json:"domain"`
	Noisy    []float64     `json:"noisy"`
	Inferred []float64     `json:"inferred"`
	Post     []float64     `json:"post"`
}

// MarshalJSON encodes the release, including the raw noisy tree so
// baseline comparisons survive the round trip.
func (r *UniversalRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(universalWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		K:        r.tree.K(),
		Domain:   r.tree.Domain(),
		Noisy:    r.noisy,
		Inferred: r.inferred,
		Post:     r.post,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON, validating
// the tree shape against the payload.
func (r *UniversalRelease) UnmarshalJSON(data []byte) error {
	var w universalWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode universal release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyUniversal, w.Epsilon); err != nil {
		return err
	}
	tree, err := htree.New(w.K, w.Domain)
	if err != nil {
		return fmt.Errorf("dphist: decode universal release: %w", err)
	}
	n := tree.NumNodes()
	if len(w.Noisy) != n || len(w.Inferred) != n || len(w.Post) != n {
		return fmt.Errorf("dphist: release payload has %d/%d/%d node values, tree has %d",
			len(w.Noisy), len(w.Inferred), len(w.Post), n)
	}
	*r = *newUniversalRelease(tree, w.Noisy, w.Inferred, w.Post, w.Epsilon)
	r.auto = w.Auto
	return nil
}

// universal2DWire is the serialized form of a Universal2DRelease: the
// real domain dimensions plus the three quadtree vectors in BFS order,
// so baseline comparisons and re-derived fast paths survive the round
// trip exactly as they do for the 1-D release.
type universal2DWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Width    int           `json:"width"`
	Height   int           `json:"height"`
	Noisy    []float64     `json:"noisy"`
	Inferred []float64     `json:"inferred"`
	Post     []float64     `json:"post"`
}

// MarshalJSON encodes the release, including the raw noisy quadtree so
// baseline comparisons survive the round trip.
func (r *Universal2DRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(universal2DWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Width:    r.grid.Width(),
		Height:   r.grid.Height(),
		Noisy:    r.noisy,
		Inferred: r.inferred,
		Post:     r.post,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON, rebuilding
// the quadtree shape from the dimensions and validating the payload
// against it. The summed-area fast path is re-derived, not trusted from
// the wire.
func (r *Universal2DRelease) UnmarshalJSON(data []byte) error {
	var w universal2DWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode universal2d release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyUniversal2D, w.Epsilon); err != nil {
		return err
	}
	grid, err := histo2d.New(w.Width, w.Height)
	if err != nil {
		return fmt.Errorf("dphist: decode universal2d release: %w", err)
	}
	n := grid.NumNodes()
	if len(w.Noisy) != n || len(w.Inferred) != n || len(w.Post) != n {
		return fmt.Errorf("dphist: release payload has %d/%d/%d node values, quadtree has %d",
			len(w.Noisy), len(w.Inferred), len(w.Post), n)
	}
	*r = *newUniversal2DRelease(grid, w.Noisy, w.Inferred, w.Post, w.Epsilon)
	r.auto = w.Auto
	return nil
}

// unattributedWire is the serialized form of an UnattributedRelease.
type unattributedWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Noisy    []float64     `json:"noisy"`
	Inferred []float64     `json:"inferred"`
	Counts   []float64     `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *UnattributedRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(unattributedWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Noisy:    r.Noisy,
		Inferred: r.Inferred,
		Counts:   r.counts,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *UnattributedRelease) UnmarshalJSON(data []byte) error {
	var w unattributedWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode unattributed release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyUnattributed, w.Epsilon); err != nil {
		return err
	}
	if err := checkSortedCounts(w.Noisy, w.Inferred, w.Counts); err != nil {
		return err
	}
	*r = *newUnattributedRelease(w.Noisy, w.Inferred, w.Counts, w.Epsilon)
	r.auto = w.Auto
	return nil
}

// checkSortedCounts validates the shared shape of the sorted-query
// releases: three equal-length non-empty vectors whose published counts
// are non-decreasing.
func checkSortedCounts(noisy, inferred, counts []float64) error {
	if len(counts) == 0 {
		return fmt.Errorf("dphist: empty release payload")
	}
	if len(noisy) != len(counts) || len(inferred) != len(counts) {
		return fmt.Errorf("dphist: release payload lengths disagree: %d/%d/%d",
			len(noisy), len(inferred), len(counts))
	}
	if !sort.Float64sAreSorted(counts) {
		return fmt.Errorf("dphist: published sorted-query counts are out of order")
	}
	return nil
}

// laplaceWire is the serialized form of a LaplaceRelease.
type laplaceWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Noisy    []float64     `json:"noisy"`
	Counts   []float64     `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *LaplaceRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(laplaceWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Noisy:    r.Noisy,
		Counts:   r.counts,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *LaplaceRelease) UnmarshalJSON(data []byte) error {
	var w laplaceWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode laplace release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyLaplace, w.Epsilon); err != nil {
		return err
	}
	if len(w.Counts) == 0 || len(w.Noisy) != len(w.Counts) {
		return fmt.Errorf("dphist: release payload lengths disagree: %d/%d",
			len(w.Noisy), len(w.Counts))
	}
	r.Noisy = w.Noisy
	r.counts = w.Counts
	r.plan = plan.Compile1D(w.Counts)
	r.eps = w.Epsilon
	r.auto = w.Auto
	return nil
}

// waveletWire is the serialized form of a WaveletRelease.
type waveletWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Counts   []float64     `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *WaveletRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(waveletWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Counts:   r.counts,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *WaveletRelease) UnmarshalJSON(data []byte) error {
	var w waveletWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode wavelet release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyWavelet, w.Epsilon); err != nil {
		return err
	}
	if len(w.Counts) == 0 {
		return fmt.Errorf("dphist: empty release payload")
	}
	r.counts = w.Counts
	r.plan = plan.Compile1D(w.Counts)
	r.eps = w.Epsilon
	r.auto = w.Auto
	return nil
}

// degreeSequenceWire is the serialized form of a DegreeSequenceRelease.
type degreeSequenceWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Noisy    []float64     `json:"noisy"`
	Inferred []float64     `json:"inferred"`
	Counts   []float64     `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *DegreeSequenceRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(degreeSequenceWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Noisy:    r.Noisy,
		Inferred: r.Inferred,
		Counts:   r.counts,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *DegreeSequenceRelease) UnmarshalJSON(data []byte) error {
	var w degreeSequenceWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode degree-sequence release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyDegreeSequence, w.Epsilon); err != nil {
		return err
	}
	if err := checkSortedCounts(w.Noisy, w.Inferred, w.Counts); err != nil {
		return err
	}
	*r = *newDegreeSequenceRelease(w.Noisy, w.Inferred, w.Counts, w.Epsilon)
	r.auto = w.Auto
	return nil
}

// hierarchyWire is the serialized form of a HierarchyReleaseResult; the
// parent pointers carry the constraint forest so leaf extraction and
// consistency checks survive the round trip.
type hierarchyWire struct {
	Version  int           `json:"version"`
	Strategy string        `json:"strategy"`
	Epsilon  float64       `json:"epsilon"`
	Auto     *AutoDecision `json:"auto,omitempty"`
	Parent   []int         `json:"parent"`
	Noisy    []float64     `json:"noisy"`
	Inferred []float64     `json:"inferred"`
}

// MarshalJSON encodes the release.
func (r *HierarchyReleaseResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(hierarchyWire{
		Version:  WireVersion,
		Strategy: r.Strategy().String(),
		Epsilon:  r.eps,
		Auto:     r.wireAutoDecision(),
		Parent:   r.parent,
		Noisy:    r.Noisy,
		Inferred: r.Inferred,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON, rebuilding
// and revalidating the constraint forest from the parent pointers.
func (r *HierarchyReleaseResult) UnmarshalJSON(data []byte) error {
	var w hierarchyWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode hierarchy release: %w", err)
	}
	if err := checkHeader(w.Version, w.Strategy, StrategyHierarchy, w.Epsilon); err != nil {
		return err
	}
	h, err := core.NewHierarchy(w.Parent)
	if err != nil {
		return fmt.Errorf("dphist: decode hierarchy release: %w", err)
	}
	if len(w.Noisy) != h.Len() || len(w.Inferred) != h.Len() {
		return fmt.Errorf("dphist: release payload has %d/%d answers for %d queries",
			len(w.Noisy), len(w.Inferred), h.Len())
	}
	*r = *newHierarchyReleaseResult(h, w.Noisy, w.Inferred, w.Epsilon)
	r.auto = w.Auto
	return nil
}
