package dphist

// JSON serialization for releases. A data owner computes a release once
// and ships it to analysts (Appendix B: "the server can implement the
// post-processing step"); the wire form carries everything needed to
// answer queries offline, and decoding validates shape invariants so a
// corrupted payload fails loudly rather than answering garbage.

import (
	"encoding/json"
	"fmt"

	"github.com/dphist/dphist/internal/htree"
)

// universalWire is the serialized form of a UniversalRelease.
type universalWire struct {
	Version  int       `json:"version"`
	K        int       `json:"k"`
	Domain   int       `json:"domain"`
	Noisy    []float64 `json:"noisy"`
	Inferred []float64 `json:"inferred"`
	Post     []float64 `json:"post"`
}

const wireVersion = 1

// MarshalJSON encodes the release, including the raw noisy tree so
// baseline comparisons survive the round trip.
func (r *UniversalRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(universalWire{
		Version:  wireVersion,
		K:        r.tree.K(),
		Domain:   r.tree.Domain(),
		Noisy:    r.noisy,
		Inferred: r.inferred,
		Post:     r.post,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON, validating
// the tree shape against the payload.
func (r *UniversalRelease) UnmarshalJSON(data []byte) error {
	var w universalWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode universal release: %w", err)
	}
	if w.Version != wireVersion {
		return fmt.Errorf("dphist: unsupported release version %d", w.Version)
	}
	tree, err := htree.New(w.K, w.Domain)
	if err != nil {
		return fmt.Errorf("dphist: decode universal release: %w", err)
	}
	n := tree.NumNodes()
	if len(w.Noisy) != n || len(w.Inferred) != n || len(w.Post) != n {
		return fmt.Errorf("dphist: release payload has %d/%d/%d node values, tree has %d",
			len(w.Noisy), len(w.Inferred), len(w.Post), n)
	}
	*r = *newUniversalRelease(tree, w.Noisy, w.Inferred, w.Post)
	return nil
}

// unattributedWire is the serialized form of an UnattributedRelease.
type unattributedWire struct {
	Version  int       `json:"version"`
	Noisy    []float64 `json:"noisy"`
	Inferred []float64 `json:"inferred"`
	Counts   []float64 `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *UnattributedRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(unattributedWire{
		Version:  wireVersion,
		Noisy:    r.Noisy,
		Inferred: r.Inferred,
		Counts:   r.Counts,
	})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *UnattributedRelease) UnmarshalJSON(data []byte) error {
	var w unattributedWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode unattributed release: %w", err)
	}
	if w.Version != wireVersion {
		return fmt.Errorf("dphist: unsupported release version %d", w.Version)
	}
	if len(w.Noisy) != len(w.Counts) || len(w.Inferred) != len(w.Counts) {
		return fmt.Errorf("dphist: release payload lengths disagree: %d/%d/%d",
			len(w.Noisy), len(w.Inferred), len(w.Counts))
	}
	if len(w.Counts) == 0 {
		return fmt.Errorf("dphist: empty release payload")
	}
	r.Noisy = w.Noisy
	r.Inferred = w.Inferred
	r.Counts = w.Counts
	return nil
}

// laplaceWire is the serialized form of a LaplaceRelease.
type laplaceWire struct {
	Version int       `json:"version"`
	Noisy   []float64 `json:"noisy"`
	Counts  []float64 `json:"counts"`
}

// MarshalJSON encodes the release.
func (r *LaplaceRelease) MarshalJSON() ([]byte, error) {
	return json.Marshal(laplaceWire{Version: wireVersion, Noisy: r.Noisy, Counts: r.Counts})
}

// UnmarshalJSON decodes a release produced by MarshalJSON.
func (r *LaplaceRelease) UnmarshalJSON(data []byte) error {
	var w laplaceWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dphist: decode laplace release: %w", err)
	}
	if w.Version != wireVersion {
		return fmt.Errorf("dphist: unsupported release version %d", w.Version)
	}
	if len(w.Counts) == 0 || len(w.Noisy) != len(w.Counts) {
		return fmt.Errorf("dphist: release payload lengths disagree: %d/%d",
			len(w.Noisy), len(w.Counts))
	}
	prefix := make([]float64, len(w.Counts)+1)
	for i, v := range w.Counts {
		prefix[i+1] = prefix[i] + v
	}
	r.Noisy = w.Noisy
	r.Counts = w.Counts
	r.prefix = prefix
	return nil
}
