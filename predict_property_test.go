package dphist

import (
	"math"
	"sort"
	"testing"

	"github.com/dphist/dphist/internal/workload"
)

// Property test for the advisor's error model: for every serving
// strategy, the predicted weighted total squared error is compared with
// the error actually measured over repeated mints of the un-rounded,
// non-clamped mechanism (the mechanism the predictions describe).
// Predictions tagged "exact" must match the measurement tightly in both
// directions; predictions tagged "bound" must be one-sided — the
// measurement may be far below the bound but never meaningfully above
// it. Noise streams are seeded, so the measured figures are
// deterministic and the tolerances are not flaky.

const (
	propTrials  = 200
	propEpsilon = 1.0
	// exactTol is the two-sided relative tolerance for "exact"
	// predictions at propTrials seeded trials.
	exactTol = 0.2
	// boundSlack is the one-sided headroom for "bound" predictions:
	// sampling noise in the measurement, not looseness in the bound.
	boundSlack = 1.05
)

// propRanges is the shared 1-D workload: every point plus a spread of
// wider ranges, weighted unevenly so weighting bugs surface.
type propRange struct {
	lo, hi int
	weight float64
}

func propWorkload1D(n int) []propRange {
	var qs []propRange
	for i := 0; i < n; i++ {
		qs = append(qs, propRange{i, i + 1, 1})
	}
	for lo := 0; lo+8 <= n; lo += 4 {
		qs = append(qs, propRange{lo, lo + 8, 2})
	}
	qs = append(qs, propRange{0, n, 3})
	return qs
}

func propCounts(n int) []float64 {
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = float64((i*7)%11) + 1
	}
	return counts
}

// measure1D returns the mean weighted total squared error of answering
// the ranges from mint()'s releases against the given ground truth.
func measure1D(t *testing.T, mint func() Release, truth []float64, qs []propRange) float64 {
	t.Helper()
	prefix := make([]float64, len(truth)+1)
	for i, v := range truth {
		prefix[i+1] = prefix[i] + v
	}
	total := 0.0
	for trial := 0; trial < propTrials; trial++ {
		rel := mint()
		for _, q := range qs {
			got, err := rel.Range(q.lo, q.hi)
			if err != nil {
				t.Fatal(err)
			}
			d := got - (prefix[q.hi] - prefix[q.lo])
			total += q.weight * d * d
		}
	}
	return total / propTrials
}

func checkExact(t *testing.T, strategy string, predicted, measured float64) {
	t.Helper()
	if rel := math.Abs(measured-predicted) / predicted; rel > exactTol {
		t.Errorf("%s: predicted %.1f, measured %.1f (rel %.2f > %.2f)",
			strategy, predicted, measured, rel, exactTol)
	}
}

func checkBound(t *testing.T, strategy string, predicted, measured float64) {
	t.Helper()
	if measured > predicted*boundSlack {
		t.Errorf("%s: bound %.1f exceeded by measurement %.1f",
			strategy, predicted, measured)
	}
}

func TestPredictionMatchesEmpiricalError1D(t *testing.T) {
	const n = 32
	counts := propCounts(n)
	qs := propWorkload1D(n)

	w, err := workload.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if err := w.Add(q.lo, q.hi, q.weight); err != nil {
			t.Fatal(err)
		}
	}

	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)

	newMech := func(seed uint64) *Mechanism {
		m, err := New(WithSeed(seed), WithoutRounding(), WithoutNonNegativity())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	t.Run("laplace exact", func(t *testing.T) {
		m := newMech(101)
		measured := measure1D(t, func() Release {
			r, err := m.LaplaceHistogram(counts, propEpsilon)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, counts, qs)
		checkExact(t, "laplace", w.ErrorLaplace(propEpsilon), measured)
	})

	t.Run("wavelet exact", func(t *testing.T) {
		m := newMech(102)
		measured := measure1D(t, func() Release {
			r, err := m.WaveletHistogram(counts, propEpsilon)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, counts, qs)
		checkExact(t, "wavelet", w.ErrorWavelet(propEpsilon), measured)
	})

	t.Run("universal exact", func(t *testing.T) {
		m := newMech(103)
		predicted, err := w.ErrorHBar(2, propEpsilon)
		if err != nil {
			t.Fatal(err)
		}
		measured := measure1D(t, func() Release {
			r, err := m.UniversalHistogram(counts, propEpsilon)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, counts, qs)
		checkExact(t, "universal", predicted, measured)
	})

	t.Run("unattributed bound", func(t *testing.T) {
		m := newMech(104)
		measured := measure1D(t, func() Release {
			r, err := m.UnattributedHistogram(counts, propEpsilon)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, sorted, qs)
		checkBound(t, "unattributed", w.ErrorSorted(propEpsilon), measured)
	})

	t.Run("degree_sequence bound", func(t *testing.T) {
		// Degrees of an actual simple graph, so the graphical projection
		// has a feasible point at the truth.
		degrees := make([]float64, n)
		for i := range degrees {
			degrees[i] = float64(1 + i%4)
		}
		degrees[0] = 2 // make the total even (sum of 1..4 pattern over 32 is even; keep explicit)
		sortedDeg := append([]float64(nil), degrees...)
		sort.Float64s(sortedDeg)
		m := newMech(105)
		measured := measure1D(t, func() Release {
			r, err := m.DegreeSequence(degrees, propEpsilon)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, sortedDeg, qs)
		checkBound(t, "degree_sequence", w.ErrorSorted(propEpsilon), measured)
	})

	t.Run("hierarchy bound", func(t *testing.T) {
		// A two-level forest over the 32 counts: one root, 8 internal
		// nodes of 4 leaves each.
		parent := make([]int, 1+8+n)
		parent[0] = -1
		for i := 0; i < 8; i++ {
			parent[1+i] = 0
		}
		for i := 0; i < n; i++ {
			parent[9+i] = 1 + i/4
		}
		h, err := NewHierarchy(parent)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := w.ErrorHierarchy(h.Sensitivity(), propEpsilon)
		if err != nil {
			t.Fatal(err)
		}
		m := newMech(106)
		measured := measure1D(t, func() Release {
			r, err := m.Release(Request{
				Strategy:  StrategyHierarchy,
				Counts:    counts,
				Epsilon:   propEpsilon,
				Hierarchy: h,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, counts, qs)
		checkBound(t, "hierarchy", predicted, measured)
	})
}

func TestPredictionMatchesEmpiricalError2D(t *testing.T) {
	const side = 16
	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
		for x := range cells[y] {
			cells[y][x] = float64((x + y*3) % 5)
		}
	}
	rects := []RectQuery2DTest{
		{0, 0, side, side, 1},
		{0, 0, side / 2, side / 2, 2},
		{3, 3, 9, 7, 1},
		{1, 0, 2, side, 1},
	}
	w, err := workload.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetGrid(side, side); err != nil {
		t.Fatal(err)
	}
	for _, q := range rects {
		if err := w.AddRect(q.X0, q.Y0, q.X1, q.Y1, q.W); err != nil {
			t.Fatal(err)
		}
	}
	predicted, err := w.ErrorUniversal2D(propEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	truth := func(q RectQuery2DTest) float64 {
		sum := 0.0
		for y := q.Y0; y < q.Y1; y++ {
			for x := q.X0; x < q.X1; x++ {
				sum += cells[y][x]
			}
		}
		return sum
	}
	m, err := New(WithSeed(107), WithoutRounding(), WithoutNonNegativity())
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for trial := 0; trial < propTrials; trial++ {
		rel, err := m.Universal2DHistogram(cells, propEpsilon)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range rects {
			got, err := rel.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatal(err)
			}
			d := got - truth(q)
			total += q.W * d * d
		}
	}
	checkBound(t, "universal2d", predicted, total/propTrials)
}

// RectQuery2DTest is a local rectangle-query literal for the 2-D
// property test.
type RectQuery2DTest struct {
	X0, Y0, X1, Y1 int
	W              float64
}
