package dphist

// The batch-kernel property: for every strategy, consistent and
// inconsistent post-processing, and batch sizes spanning the scalar,
// columnar, and parallel execution regimes, QueryBatch/QueryRects must
// answer bit-identically to the per-query scalar Range/Rect calls. This
// pins the whole vectorized read path — branch-free validation,
// columnar split, kernel sweep, worker-pool partitioning — to the
// scalar semantics the paper's strategies define.

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/dphist/dphist/internal/plan"
)

// kernelBatchSizes spans scalar dispatch (1), a partial cache line (7),
// the columnar sweep (1000), and the parallel fan-out (10000, above
// every crossover threshold).
var kernelBatchSizes = []int{1, 7, 1000, 10000}

func TestBatchKernelBitExactAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for _, consistent := range []bool{false, true} {
		opts := []Option{WithSeed(61)}
		if consistent {
			opts = append(opts, WithoutNonNegativity(), WithoutRounding())
		}
		for _, rel := range mintAll(t, MustNew(opts...), 48, 0.3) {
			n := len(rel.Counts())
			for _, size := range kernelBatchSizes {
				specs := make([]RangeSpec, size)
				for i := range specs {
					lo := rng.IntN(n + 1)
					specs[i] = RangeSpec{Lo: lo, Hi: lo + rng.IntN(n-lo+1)}
				}
				got, err := QueryBatch(rel, specs)
				if err != nil {
					t.Fatalf("%v consistent=%v size=%d: %v", rel.Strategy(), consistent, size, err)
				}
				for i, q := range specs {
					want, err := rel.Range(q.Lo, q.Hi)
					if err != nil {
						t.Fatalf("%v: Range(%d,%d): %v", rel.Strategy(), q.Lo, q.Hi, err)
					}
					if got[i] != want {
						t.Fatalf("%v consistent=%v size=%d: batch [%d,%d) = %v, scalar Range = %v",
							rel.Strategy(), consistent, size, q.Lo, q.Hi, got[i], want)
					}
				}
				rq, ok := rel.(RectQuerier)
				if !ok {
					continue
				}
				w, h := rq.Width(), rq.Height()
				rects := make([]RectSpec, size)
				for i := range rects {
					x0, y0 := rng.IntN(w+1), rng.IntN(h+1)
					rects[i] = RectSpec{X0: x0, Y0: y0, X1: x0 + rng.IntN(w-x0+1), Y1: y0 + rng.IntN(h-y0+1)}
				}
				gotR, err := QueryRects(rel, rects)
				if err != nil {
					t.Fatalf("%v consistent=%v size=%d: %v", rel.Strategy(), consistent, size, err)
				}
				for i, q := range rects {
					want, err := rq.Rect(q.X0, q.Y0, q.X1, q.Y1)
					if err != nil {
						t.Fatalf("%v: Rect%+v: %v", rel.Strategy(), q, err)
					}
					if gotR[i] != want {
						t.Fatalf("%v consistent=%v size=%d: batch rect %+v = %v, scalar Rect = %v",
							rel.Strategy(), consistent, size, q, gotR[i], want)
					}
				}
			}
		}
	}
}

// The branch-free validation pre-pass must reject exactly what the old
// per-spec scan rejected — including endpoints chosen to overflow the
// subtractions — and still name the first offending index.
func TestBatchValidationRejectsExactly(t *testing.T) {
	rel, err := MustNew(WithSeed(62)).UniversalHistogram(make([]float64, 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	const minInt = -1 << 63
	const maxInt = 1<<63 - 1
	bad := [][]RangeSpec{
		{{Lo: -1, Hi: 4}},
		{{Lo: 0, Hi: 17}},
		{{Lo: 9, Hi: 8}},
		{{Lo: 0, Hi: 16}, {Lo: 3, Hi: 2}},
		{{Lo: minInt, Hi: 4}},
		{{Lo: 0, Hi: maxInt}},
		{{Lo: maxInt, Hi: minInt}},
		{{Lo: 1, Hi: minInt}},
	}
	for _, specs := range bad {
		if _, err := QueryBatch(rel, specs); err == nil {
			t.Errorf("specs %+v accepted", specs)
		}
	}
	if _, err := QueryBatch(rel, []RangeSpec{{Lo: 0, Hi: 16}, {Lo: 16, Hi: 16}, {Lo: 5, Hi: 5}}); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
}

// FuzzBatchKernelEquivalence mints universal 1-D and 2-D releases over
// fuzz-chosen counts and holds the batch kernels bit-exact against the
// scalar path on fuzz-chosen specs — the kernel-level twin of
// FuzzDecodedPlanEquivalence.
func FuzzBatchKernelEquivalence(f *testing.F) {
	f.Add(uint8(8), []byte{3, 1, 4, 1, 5, 9, 2, 6}, []byte{0, 8, 2, 5, 7, 7})
	f.Add(uint8(3), []byte{255, 0, 17}, []byte{1, 2})
	f.Fuzz(func(t *testing.T, domByte uint8, countBytes, specBytes []byte) {
		domain := int(domByte)%32 + 1
		counts := make([]float64, domain)
		for i := range counts {
			if len(countBytes) > 0 {
				counts[i] = float64(countBytes[i%len(countBytes)]) - 100
			}
		}
		rel, err := MustNew(WithSeed(63)).UniversalHistogram(counts, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		rel2d, err := MustNew(WithSeed(63)).Universal2DHistogram(reshapeCells(counts, max(1, domain/3)), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		var specs []RangeSpec
		for i := 0; i+1 < len(specBytes); i += 2 {
			lo, hi := int(specBytes[i])%(domain+1), int(specBytes[i+1])%(domain+1)
			if lo > hi {
				lo, hi = hi, lo
			}
			specs = append(specs, RangeSpec{Lo: lo, Hi: hi})
		}
		// Specs capped at domain are valid for both releases: the 2-D
		// cell grid covers at least the 1-D domain.
		for _, r := range []Release{rel, rel2d} {
			got, err := QueryBatch(r, specs)
			if err != nil {
				t.Fatalf("%v: %v", r.Strategy(), err)
			}
			for i, q := range specs {
				want, err := r.Range(q.Lo, q.Hi)
				if err != nil {
					t.Fatalf("%v: Range(%d,%d): %v", r.Strategy(), q.Lo, q.Hi, err)
				}
				if got[i] != want {
					t.Fatalf("%v: batch [%d,%d) = %v, Range = %v", r.Strategy(), q.Lo, q.Hi, got[i], want)
				}
			}
		}
		w, h := rel2d.Width(), rel2d.Height()
		var rects []RectSpec
		for i := 0; i+3 < len(specBytes); i += 4 {
			x0, x1 := int(specBytes[i])%(w+1), int(specBytes[i+1])%(w+1)
			y0, y1 := int(specBytes[i+2])%(h+1), int(specBytes[i+3])%(h+1)
			if x0 > x1 {
				x0, x1 = x1, x0
			}
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			rects = append(rects, RectSpec{X0: x0, Y0: y0, X1: x1, Y1: y1})
		}
		gotR, err := QueryRects(rel2d, rects)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range rects {
			want, err := rel2d.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatalf("Rect%+v: %v", q, err)
			}
			if gotR[i] != want {
				t.Fatalf("batch rect %+v = %v, Rect = %v", q, gotR[i], want)
			}
		}
	})
}

// BenchmarkRangeKernel measures the 1-D kernels per mode across the
// crossover: batch 1000 stays inline, batch 10000 fans out across the
// worker pool.
func BenchmarkRangeKernel(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	rel, err := MustNew(WithSeed(15)).UniversalHistogram(counts, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	consistent, err := MustNew(WithSeed(15), WithoutNonNegativity(), WithoutRounding()).
		UniversalHistogram(counts, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	rel.plan = plan.TreeOnly(rel.tree, rel.post, len(rel.leaves))
	for _, bench := range []struct {
		name string
		rel  *UniversalRelease
	}{
		{"tree-offset", rel},
		{"prefix", consistent},
	} {
		for _, size := range []int{1000, 10000} {
			specs := benchSpecs(size, len(counts))
			b.Run(fmt.Sprintf("%s/batch=%d", bench.name, size), func(b *testing.B) {
				dst := make([]float64, 0, len(specs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					dst, err = QueryBatchInto(dst[:0], bench.rel, specs)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRectKernel is the 2-D twin of BenchmarkRangeKernel.
func BenchmarkRectKernel(b *testing.B) {
	const side = 128
	cells := grid2D(side, side)
	rng := rand.New(rand.NewPCG(5, 25))
	fallback, err := MustNew(WithSeed(77)).Universal2DHistogram(cells, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	consistent, err := MustNew(WithSeed(77), WithoutNonNegativity(), WithoutRounding()).
		Universal2DHistogram(cells, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	fallback.plan = plan.Grid2DOnly(fallback.grid, fallback.post, fallback.cells)
	for _, bench := range []struct {
		name string
		rel  *Universal2DRelease
	}{
		{"quadtree-offset", fallback},
		{"sat", consistent},
	} {
		for _, size := range []int{1000, 10000} {
			specs := make([]RectSpec, size)
			for i := range specs {
				x0, y0 := rng.IntN(side), rng.IntN(side)
				specs[i] = RectSpec{X0: x0, Y0: y0, X1: x0 + 1 + rng.IntN(side-x0), Y1: y0 + 1 + rng.IntN(side-y0)}
			}
			b.Run(fmt.Sprintf("%s/batch=%d", bench.name, size), func(b *testing.B) {
				dst := make([]float64, 0, len(specs))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					dst, err = QueryRectsInto(dst[:0], bench.rel, specs)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
