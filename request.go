package dphist

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"github.com/dphist/dphist/internal/laplace"
)

// Request describes one private release through the unified entry point
// Mechanism.Release. The zero Strategy is StrategyUniversal, so
// Request{Counts: c, Epsilon: e} asks for the paper's flagship release.
type Request struct {
	// Strategy selects the release pipeline.
	Strategy Strategy
	// Counts is the sensitive input vector: unit counts per position for
	// the positional strategies, vertex degrees for
	// StrategyDegreeSequence, leaf-query counts (in Hierarchy.Leaves
	// order) for StrategyHierarchy. Ignored by StrategyUniversal2D,
	// which reads Cells instead.
	Counts []float64
	// Cells is the sensitive 2-D input grid, Cells[y][x]; required for
	// StrategyUniversal2D (short rows are zero-padded) and ignored
	// otherwise.
	Cells [][]float64
	// Epsilon is the privacy cost of the release.
	Epsilon float64
	// Hierarchy is the constraint forest to answer; required for
	// StrategyHierarchy and ignored otherwise. On a StrategyAuto request
	// it additionally enters the hierarchy strategy as a candidate.
	Hierarchy *Hierarchy
	// Workload sketches the queries the analyst plans to ask; required
	// for StrategyAuto (it drives the resolution) and ignored by
	// concrete strategies.
	Workload *WorkloadSketch
}

// Validate checks the request without spending anything: the strategy is
// known, the counts and epsilon are admissible, and strategy-specific
// requirements (a hierarchy with matching leaf count) hold.
func (req Request) Validate() error {
	if req.Strategy == StrategyAuto {
		// An auto request is valid iff its sketch expands and every
		// candidate's inputs are admissible — the same checks resolution
		// performs, so a validated auto request cannot fail to resolve.
		_, _, err := buildAutoWorkload(req)
		return err
	}
	if !req.Strategy.Valid() {
		return fmt.Errorf("dphist: invalid strategy %d", int(req.Strategy))
	}
	switch req.Strategy {
	case StrategyHierarchy:
		return validateHierarchyInput(req.Hierarchy, req.Counts, req.Epsilon)
	case StrategyUniversal2D:
		return validate2DCells(req.Cells, req.Epsilon)
	default:
		return validate(req.Counts, req.Epsilon)
	}
}

// Release runs the requested pipeline and returns its release behind the
// uniform interface. It is the polymorphic equivalent of the typed
// methods (LaplaceHistogram, UniversalHistogram, ...): the same
// validation, the same noise-stream consumption, the same concrete
// release types underneath.
//
// A StrategyAuto request is first resolved against its Workload sketch:
// the advisor ranks every candidate strategy's predicted error, the
// predicted-best concrete strategy is minted, and the decision is
// stamped on the release (see ReleaseDecision). Resolution draws no
// noise and fails before anything is spent.
func (m *Mechanism) Release(req Request) (Release, error) {
	req, dec, err := m.resolveAuto(req)
	if err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	rel, err := m.releaseWith(req, m.nextStream())
	if err != nil {
		return nil, err
	}
	stampDecision(rel, dec)
	return rel, nil
}

// releaseWith dispatches an already-validated request onto the pipeline
// implementations, using the supplied noise stream.
func (m *Mechanism) releaseWith(req Request, src *rand.Rand) (Release, error) {
	switch req.Strategy {
	case StrategyUniversal:
		return m.universalWith(req.Counts, req.Epsilon, src)
	case StrategyLaplace:
		return m.laplaceWith(req.Counts, req.Epsilon, src)
	case StrategyUnattributed:
		return m.unattributedWith(req.Counts, req.Epsilon, src)
	case StrategyWavelet:
		return m.waveletWith(req.Counts, req.Epsilon, src)
	case StrategyDegreeSequence:
		return m.degreeSequenceWith(req.Counts, req.Epsilon, src)
	case StrategyHierarchy:
		return m.hierarchyWith(req.Hierarchy, req.Counts, req.Epsilon, src)
	case StrategyUniversal2D:
		return m.universal2DWith(req.Cells, req.Epsilon, src)
	default:
		return nil, fmt.Errorf("dphist: invalid strategy %d", int(req.Strategy))
	}
}

// BatchError reports the failures of a ReleaseBatch call: one entry per
// failed request, in request order.
type BatchError struct {
	// Errors maps request index to its failure.
	Errors map[int]error
}

// Error summarizes the failures.
func (e *BatchError) Error() string {
	return fmt.Sprintf("dphist: %d of the batched requests failed", len(e.Errors))
}

// ReleaseBatch fans a slice of requests across a worker pool — the
// multi-tenant serving shape, where many analysts' requests arrive
// together. Results align with requests by index. If any request fails,
// the returned error is a *BatchError naming each failed index and the
// corresponding result entry is nil; the other requests still complete.
//
// Noise streams are reserved as one contiguous block before the workers
// start, so request i's release depends only on the mechanism seed and
// the number of streams consumed before the call — batch results are as
// reproducible as sequential Release calls, regardless of scheduling.
func (m *Mechanism) ReleaseBatch(reqs []Request) ([]Release, error) {
	return m.releaseBatch(reqs, true)
}

// releaseBatch runs the batch fan-out; revalidate is false when the
// caller (Session.ReleaseBatch) has already validated every request.
func (m *Mechanism) releaseBatch(reqs []Request, revalidate bool) ([]Release, error) {
	results := make([]Release, len(reqs))
	if len(reqs) == 0 {
		return results, nil
	}
	base := m.reserveTrials(len(reqs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var (
		mu   sync.Mutex
		errs map[int]error
		wg   sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rel, err := m.releaseOne(reqs[i], base+i, revalidate)
				if err != nil {
					mu.Lock()
					if errs == nil {
						errs = make(map[int]error)
					}
					errs[i] = err
					mu.Unlock()
					continue
				}
				results[i] = rel
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	if errs != nil {
		return results, &BatchError{Errors: errs}
	}
	return results, nil
}

// releaseOne runs one batched request on its reserved trial number,
// resolving StrategyAuto per request so a batch can mix auto and
// explicit strategies.
func (m *Mechanism) releaseOne(req Request, trial int, revalidate bool) (Release, error) {
	if revalidate {
		if err := req.Validate(); err != nil {
			return nil, err
		}
	}
	req, dec, err := m.resolveAuto(req)
	if err != nil {
		return nil, err
	}
	rel, err := m.releaseWith(req, laplace.Stream(m.seed, trial))
	if err != nil {
		return nil, err
	}
	stampDecision(rel, dec)
	return rel, nil
}
