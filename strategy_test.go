package dphist

import (
	"encoding/json"
	"testing"
)

func TestStrategyStringParseRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		back, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if back != s {
			t.Fatalf("%v parsed back as %v", s, back)
		}
	}
}

func TestStrategyZeroValueIsUniversal(t *testing.T) {
	var s Strategy
	if s != StrategyUniversal {
		t.Fatal("zero Strategy is not universal")
	}
}

func TestParseStrategyErrorsAndAliases(t *testing.T) {
	if _, err := ParseStrategy(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := ParseStrategy("htilde"); err == nil {
		t.Error("non-strategy name accepted")
	}
	s, err := ParseStrategy("degree")
	if err != nil || s != StrategyDegreeSequence {
		t.Errorf("degree alias: %v, %v", s, err)
	}
}

func TestStrategyJSONRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Strategy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("%v JSON round-tripped to %v", s, back)
		}
	}
	var s Strategy
	if err := json.Unmarshal([]byte(`"nope"`), &s); err == nil {
		t.Error("unknown JSON strategy accepted")
	}
	if err := json.Unmarshal([]byte(`3`), &s); err == nil {
		t.Error("numeric JSON strategy accepted")
	}
	if _, err := json.Marshal(Strategy(99)); err == nil {
		t.Error("invalid strategy marshalled")
	}
}

func TestStrategyValidAndString(t *testing.T) {
	if Strategy(99).Valid() || Strategy(-1).Valid() {
		t.Error("out-of-range strategy reported valid")
	}
	if got := Strategy(99).String(); got != "strategy(99)" {
		t.Errorf("String on invalid strategy = %q", got)
	}
}
