package dphist

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func testRelease(t testing.TB, seed uint64) Release {
	t.Helper()
	rel, err := MustNew(WithSeed(seed)).UniversalHistogram([]float64{2, 0, 10, 2, 5, 5, 5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestStorePutGetVersioning(t *testing.T) {
	s := NewStore()
	rel := testRelease(t, 1)
	entry, err := s.Put("traffic", rel)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Name != "traffic" || entry.Version != 1 ||
		entry.Strategy != StrategyUniversal || entry.Epsilon != 1 || entry.Domain != 8 {
		t.Fatalf("entry = %+v", entry)
	}
	got, gotEntry, ok := s.Get("traffic")
	if !ok || got != rel || gotEntry != entry {
		t.Fatalf("Get = %v, %+v, %v", got, gotEntry, ok)
	}
	// Replacing bumps the version and serves the new release.
	rel2 := testRelease(t, 2)
	entry2, err := s.Put("traffic", rel2)
	if err != nil {
		t.Fatal(err)
	}
	if entry2.Version != 2 {
		t.Fatalf("version after replace = %d", entry2.Version)
	}
	if got, _, _ := s.Get("traffic"); got != rel2 {
		t.Fatal("Get did not serve the replacement")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Fatal("absent name found")
	}
}

func TestStoreRejectsBadPuts(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("", testRelease(t, 1)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.Put("x", nil); err == nil {
		t.Error("nil release accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after rejected puts", s.Len())
	}
}

// Names that cannot survive as URL path segments — empty, dot segments,
// anything with a slash — must be refused at the store boundary, for
// both release names and namespaces, before any state (entries,
// versions, accountants) springs into being. A release stored under
// "a/b" would be unroutable over /v1/ns/{ns}/... and ambiguous in logs
// and journals.
func TestStoreRejectsUnroutableNames(t *testing.T) {
	bad := []string{"", ".", "..", "a/b", "/", "tenant/../other", "x/"}
	s := NewStore()
	rel := testRelease(t, 1)
	for _, name := range bad {
		if _, err := s.Put(name, rel); !errors.Is(err, ErrBadName) {
			t.Errorf("Put(%q) error = %v, want ErrBadName", name, err)
		}
		if err := ValidateName(name); !errors.Is(err, ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", name, err)
		}
	}
	session, err := NewSession(MustNew(WithSeed(9)), 10)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Counts: []float64{1, 2, 3}, Epsilon: 1}
	for _, name := range bad {
		if name == "" {
			continue // empty aliases the default namespace by design
		}
		ns := s.Namespace(name)
		if ns.Err() == nil {
			t.Fatalf("Namespace(%q).Err() = nil", name)
		}
		if ns.Accountant() != nil {
			t.Fatalf("Namespace(%q) created an accountant", name)
		}
		if _, err := ns.Session(MustNew()); err == nil {
			t.Fatalf("Namespace(%q).Session succeeded", name)
		}
		if _, err := ns.Put("ok", rel); !errors.Is(err, ErrBadName) {
			t.Fatalf("Namespace(%q).Put error = %v", name, err)
		}
		// Minting under a bad release name must not charge the budget.
		before := session.Remaining()
		if _, _, err := s.Mint(session, name, req); !errors.Is(err, ErrBadName) {
			t.Fatalf("Mint(%q) error = %v", name, err)
		}
		if session.Remaining() != before {
			t.Fatalf("Mint(%q) charged the budget despite rejection", name)
		}
		if _, _, err := ns.Mint(session, "ok", req); !errors.Is(err, ErrBadName) {
			t.Fatalf("Namespace(%q).Mint error = %v", name, err)
		}
		if session.Remaining() != before {
			t.Fatalf("Namespace(%q).Mint charged the budget despite rejection", name)
		}
	}
	if s.Len() != 0 || len(s.Namespaces()) != 0 {
		t.Fatalf("rejected names created state: %d entries, namespaces %v",
			s.Len(), s.Namespaces())
	}
	// Dots inside names (versions, domains) stay legal — only the exact
	// dot segments are path hazards.
	if err := ValidateName("geo.analytics-v1.2"); err != nil {
		t.Fatalf("ValidateName(dotted) = %v", err)
	}
	if ns := s.Namespace("geo.analytics"); ns.Err() != nil {
		t.Fatalf("dotted namespace refused: %v", ns.Err())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(WithCapacity(2))
	for i, name := range []string{"a", "b"} {
		if _, err := s.Put(name, testRelease(t, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the eviction candidate.
	if _, _, ok := s.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, err := s.Put("c", testRelease(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
	for _, name := range []string{"a", "c"} {
		if _, _, ok := s.Get(name); !ok {
			t.Fatalf("%s evicted", name)
		}
	}
	// Versions are monotone across eviction: re-storing "b" is v2.
	entry, err := s.Put("b", testRelease(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 2 {
		t.Fatalf("re-stored version = %d, want 2", entry.Version)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStore(WithTTL(time.Minute))
	s.now = func() time.Time { return now }
	if _, err := s.Put("a", testRelease(t, 1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(59 * time.Second)
	if _, _, ok := s.Get("a"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if s.Len() != 0 || len(s.List()) != 0 {
		t.Fatal("expired entry still listed")
	}
	// Expiry is not deletion: the version sequence continues.
	entry, err := s.Put("a", testRelease(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 2 {
		t.Fatalf("post-expiry version = %d, want 2", entry.Version)
	}
}

func TestStoreListAndDelete(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"c", "a", "b"} {
		if _, err := s.Put(name, testRelease(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	list := s.List()
	if len(list) != 3 || list[0].Name != "a" || list[1].Name != "b" || list[2].Name != "c" {
		t.Fatalf("List = %+v", list)
	}
	if !s.Delete("b") {
		t.Fatal("Delete(b) = false")
	}
	if s.Delete("b") {
		t.Fatal("second Delete(b) = true")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreQuery(t *testing.T) {
	s := NewStore()
	rel := testRelease(t, 1)
	if _, err := s.Put("traffic", rel); err != nil {
		t.Fatal(err)
	}
	specs := []RangeSpec{{Lo: 0, Hi: 8}, {Lo: 2, Hi: 2}, {Lo: 3, Hi: 6}}
	answers, entry, err := s.Query("traffic", specs)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 1 {
		t.Fatalf("entry = %+v", entry)
	}
	want, err := QueryBatch(rel, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if answers[i] != want[i] {
			t.Fatalf("answers = %v, want %v", answers, want)
		}
	}
	if _, _, err := s.Query("absent", specs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("missing name error = %v", err)
	}
	if _, _, err := s.Query("traffic", []RangeSpec{{Lo: 0, Hi: 99}}); err == nil {
		t.Fatal("out-of-domain spec accepted")
	}
}

func TestStoreMint(t *testing.T) {
	session, err := NewSession(MustNew(WithSeed(5)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	counts := []float64{1, 2, 3, 4}
	rel, entry, err := s.Mint(session, "hist", Request{Counts: counts, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 1 || entry.Strategy != StrategyUniversal {
		t.Fatalf("entry = %+v", entry)
	}
	if got, _, ok := s.Get("hist"); !ok || got != rel {
		t.Fatal("minted release not stored")
	}
	if rem := session.Remaining(); rem != 0.5 {
		t.Fatalf("remaining = %v", rem)
	}
	// Failed mints charge and store nothing.
	if _, _, err := s.Mint(session, "bad", Request{Counts: nil, Epsilon: 0.1}); err == nil {
		t.Fatal("invalid request minted")
	}
	if _, _, err := s.Mint(session, "", Request{Counts: counts, Epsilon: 0.1}); err == nil {
		t.Fatal("empty name minted")
	}
	if _, _, err := s.Mint(nil, "x", Request{Counts: counts, Epsilon: 0.1}); err == nil {
		t.Fatal("nil session minted")
	}
	if rem := session.Remaining(); rem != 0.5 {
		t.Fatalf("failed mints charged the budget: remaining = %v", rem)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Overdraw refuses with ErrBudgetExceeded and stores nothing.
	if _, _, err := s.Mint(session, "hist", Request{Counts: counts, Epsilon: 0.9}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraw error = %v", err)
	}
	if _, entry, _ := s.Get("hist"); entry.Version != 1 {
		t.Fatal("refused mint replaced the stored release")
	}
}

// The serving-layer torture test: parallel puts, gets, queries, lists,
// and deletes against one bounded store, run under -race.
func TestStoreConcurrency(t *testing.T) {
	s := NewStore(WithCapacity(8), WithTTL(time.Hour))
	rel := testRelease(t, 1)
	specs := []RangeSpec{{Lo: 0, Hi: 8}, {Lo: 1, Hi: 3}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("rel-%d", rng.IntN(12))
				switch rng.IntN(5) {
				case 0:
					if _, err := s.Put(name, rel); err != nil {
						t.Error(err)
						return
					}
				case 1:
					s.Get(name)
				case 2:
					if _, _, err := s.Query(name, specs); err != nil &&
						!errors.Is(err, ErrReleaseNotFound) {
						t.Error(err)
						return
					}
				case 3:
					s.List()
				case 4:
					s.Delete(name)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n > 8 {
		t.Fatalf("capacity 8 store holds %d entries", n)
	}
}
