// Rangeserver: the serving side of the paper. A data owner mints a
// universal histogram ONCE (one budget charge) and then answers
// unlimited range queries against it — the paper's Theorem 4 point is
// precisely that a consistent hierarchy makes every such query accurate,
// so the economics of a deployment are mint-rarely, query-forever.
//
// The demo drives the real HTTP surface: POST /v1/releases stores a
// named release, GET /v1/releases lists it, and POST /v1/query answers
// a batch of ranges in one round trip without touching the budget.
// A second act kills and reopens a durable store to show the other half
// of the economics: the budget ledger survives the process, so a
// restart can neither lose the minted release nor re-spend its epsilon.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/server"
)

func main() {
	// A synthetic day of requests over 256 latency buckets: heavy head,
	// long sparse tail.
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(2000 / (i + 1) % 97)
	}

	srv, err := server.New(server.Config{
		Counts:        counts,
		Budget:        1.0,
		Seed:          42,
		StoreCapacity: 8,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mint and retain one universal release: the only budget charge in
	// this whole program.
	var minted struct {
		Name            string  `json:"name"`
		Version         int     `json:"version"`
		Strategy        string  `json:"strategy"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	postJSON(ts.URL+"/v1/releases",
		`{"name":"latency","strategy":"universal","epsilon":0.5}`, &minted)
	fmt.Printf("minted %q v%d (%s), budget remaining %.2f\n",
		minted.Name, minted.Version, minted.Strategy, minted.BudgetRemaining)

	// The store knows what it holds.
	var listing struct {
		Releases []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
			Domain  int    `json:"domain"`
		} `json:"releases"`
	}
	getJSON(ts.URL+"/v1/releases", &listing)
	for _, r := range listing.Releases {
		fmt.Printf("stored: %s v%d over domain %d\n", r.Name, r.Version, r.Domain)
	}

	// A batch of range queries — wide, narrow, and empty — answered in
	// one round trip, free of privacy cost.
	specs := []dphist.RangeSpec{
		{Lo: 0, Hi: 256}, {Lo: 0, Hi: 16}, {Lo: 16, Hi: 64}, {Lo: 64, Hi: 256}, {Lo: 128, Hi: 128},
	}
	payload, err := json.Marshal(map[string]any{"name": "latency", "ranges": specs})
	if err != nil {
		panic(err)
	}
	var answered struct {
		Answers []float64 `json:"answers"`
	}
	postJSON(ts.URL+"/v1/query", string(payload), &answered)
	fmt.Println("\nrange          private    true")
	for i, q := range specs {
		truth := 0.0
		for _, v := range counts[q.Lo:q.Hi] {
			truth += v
		}
		fmt.Printf("[%3d,%3d)  %9.0f  %6.0f\n", q.Lo, q.Hi, answered.Answers[i], truth)
	}

	// Embedding callers skip HTTP entirely: the same store is a library
	// value, and budget inspection shows querying spent nothing.
	direct, entry, err := srv.Store().Query("latency", specs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndirect store query of %q v%d agrees: %v\n",
		entry.Name, entry.Version, direct[0] == answered.Answers[0])
	fmt.Printf("budget spent %.2f of %.2f — all queries were free\n",
		srv.Session().Accountant().Spent(), srv.Session().Accountant().Total())

	// Act two: durability. Open a file-backed store, mint into a tenant
	// namespace, crash (no Close), and reopen: the release answers
	// identically and the ledger still shows the spend.
	dir, err := os.MkdirTemp("", "rangeserver-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	store, err := dphist.OpenStore(dir, dphist.WithBudget(1.0))
	if err != nil {
		panic(err)
	}
	acme := store.Namespace("acme")
	session, err := acme.Session(dphist.MustNew(dphist.WithSeed(42)))
	if err != nil {
		panic(err)
	}
	if _, _, err := acme.Mint(session, "latency", dphist.Request{
		Counts: counts, Epsilon: 0.5}); err != nil {
		panic(err)
	}
	before, _, err := acme.Query("latency", specs)
	if err != nil {
		panic(err)
	}
	// "Crash": abandon the store without Close — the write-ahead log
	// alone carries the state.
	reopened, err := dphist.OpenStore(dir, dphist.WithBudget(1.0))
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	after, _, err := reopened.Namespace("acme").Query("latency", specs)
	if err != nil {
		panic(err)
	}
	same := true
	for i := range before {
		same = same && before[i] == after[i]
	}
	fmt.Printf("\nafter kill-and-restart: answers identical %v, namespace %q spent %.2f of %.2f\n",
		same, "acme", reopened.Namespace("acme").Accountant().Spent(),
		reopened.Namespace("acme").Accountant().Total())
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("%s: %s", url, resp.Status))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
