// Grades: the paper's introductory example. An analyst needs the total
// number of students, the number passing, and the five letter-grade
// counts. Issuing all seven queries raises the sensitivity to 3, and the
// noisy answers violate the defining constraints (xt = xp + xF,
// xp = xA + xB + xC + xD). Constrained inference reconciles them: the
// inferred answers are exactly consistent and the aggregates are more
// accurate than their raw noisy versions.
package main

import (
	"fmt"

	"github.com/dphist/dphist"
)

func main() {
	// True grade counts: A, B, C, D, F.
	grades := []float64{120, 180, 90, 40, 25}
	const eps = 0.5

	h := dphist.Grades()
	fmt.Printf("query set: (xt, xp, xA, xB, xC, xD, xF), sensitivity %.0f\n\n", h.Sensitivity())

	m := dphist.MustNew(dphist.WithSeed(7))
	rel, err := m.HierarchyRelease(h, grades, eps)
	if err != nil {
		panic(err)
	}

	names := []string{"xt", "xp", "xA", "xB", "xC", "xD", "xF"}
	truth := []float64{455, 430, 120, 180, 90, 40, 25}
	fmt.Printf("%-4s %8s %10s %10s\n", "", "true", "noisy", "inferred")
	for i, name := range names {
		fmt.Printf("%-4s %8.0f %10.2f %10.2f\n", name, truth[i], rel.Noisy[i], rel.Inferred[i])
	}

	// The noisy answers are inconsistent; the inferred ones are not.
	noisyGap := rel.Noisy[0] - (rel.Noisy[1] + rel.Noisy[6])
	inferredGap := rel.Inferred[0] - (rel.Inferred[1] + rel.Inferred[6])
	fmt.Printf("\nxt - (xp + xF):  noisy %+.2f   inferred %+.2f\n", noisyGap, inferredGap)
}
