// Spatial histograms: the multi-dimensional extension the paper's
// Appendix B poses as future work. Check-in locations on a city grid are
// released once as a 2D universal histogram (a quadtree of noisy region
// counts, made consistent by inference); analysts then ask for any
// axis-aligned rectangle — a block, a district, the whole city — without
// further privacy cost.
//
// The second act is the serving side: the same release is minted into a
// namespaced release store and queried over the real HTTP surface
// (POST /v1/ns/{ns}/query2d), a whole batch of rectangles per round
// trip, budget-free.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/server"
)

func main() {
	const side = 128
	cells := cityCheckins(side, rand.New(rand.NewPCG(14, 3)))

	const eps = 0.2
	m := dphist.MustNew(dphist.WithSeed(2024))
	rel, err := m.Universal2DHistogram(cells, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released %dx%d grid, quadtree height %d, eps=%g\n\n",
		rel.Width(), rel.Height(), rel.TreeHeight(), eps)

	queries := []struct {
		name string
		spec dphist.RectSpec
	}{
		{"whole city", dphist.RectSpec{X0: 0, Y0: 0, X1: side, Y1: side}},
		{"downtown (16x16)", dphist.RectSpec{X0: 56, Y0: 56, X1: 72, Y1: 72}},
		{"harbor strip (128x8)", dphist.RectSpec{X0: 0, Y0: 120, X1: 128, Y1: 128}},
		{"one block", dphist.RectSpec{X0: 60, Y0: 60, X1: 61, Y1: 61}},
		{"empty outskirts (32x32)", dphist.RectSpec{X0: 0, Y0: 0, X1: 32, Y1: 32}},
	}
	specs := make([]dphist.RectSpec, len(queries))
	for i, q := range queries {
		specs[i] = q.spec
	}
	answers, err := dphist.QueryRects(rel, specs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-26s %10s %10s %10s\n", "region", "true", "estimate", "|error|")
	for i, q := range queries {
		truth := 0.0
		for y := q.spec.Y0; y < q.spec.Y1; y++ {
			for x := q.spec.X0; x < q.spec.X1; x++ {
				truth += cells[y][x]
			}
		}
		fmt.Printf("%-26s %10.0f %10.0f %10.0f\n", q.name, truth, answers[i], math.Abs(answers[i]-truth))
	}

	// Act two: the HTTP serving surface. The server protects the same
	// grid; a tenant mints one 2-D release by name and then answers
	// rectangle batches over POST /v1/ns/{ns}/query2d. The namespace is
	// a URL path segment, so clients percent-escape it.
	srv, err := server.New(server.Config{
		Counts: flatten(cells),
		Cells:  cells,
		Budget: 1.0,
		Seed:   2024,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const tenant = "geo.analytics"
	nsURL := ts.URL + "/v1/ns/" + url.PathEscape(tenant)
	var minted struct {
		Name            string  `json:"name"`
		Strategy        string  `json:"strategy"`
		BudgetRemaining float64 `json:"budget_remaining"`
	}
	postJSON(nsURL+"/releases",
		`{"name":"checkins","strategy":"universal2d","epsilon":0.5}`, &minted)
	fmt.Printf("\nminted %q (%s) for tenant %q, budget remaining %.2f\n",
		minted.Name, minted.Strategy, tenant, minted.BudgetRemaining)

	payload, err := json.Marshal(map[string]any{"name": "checkins", "rects": specs})
	if err != nil {
		panic(err)
	}
	var answered struct {
		Answers []float64 `json:"answers"`
	}
	postJSON(nsURL+"/query2d", string(payload), &answered)
	fmt.Printf("served %d rectangle answers over HTTP; whole-city estimate %.0f\n",
		len(answered.Answers), answered.Answers[0])
	fmt.Printf("tenant budget spent %.2f — every rectangle batch was free\n",
		srv.Store().Namespace(tenant).Accountant().Spent())
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("POST %s: %s", url, resp.Status))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

// flatten lays the grid out row-major for the server's 1-D strategies.
func flatten(cells [][]float64) []float64 {
	out := make([]float64, 0, len(cells)*len(cells[0]))
	for _, row := range cells {
		out = append(out, row...)
	}
	return out
}

// cityCheckins fabricates a realistic check-in density: two Gaussian
// hotspots (downtown, harbor) over a mostly-empty grid.
func cityCheckins(side int, rng *rand.Rand) [][]float64 {
	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
	}
	hotspots := []struct {
		cx, cy, sigma, weight float64
	}{
		{64, 64, 6, 40000},
		{96, 124, 10, 25000},
	}
	for _, h := range hotspots {
		n := int(h.weight)
		for i := 0; i < n; i++ {
			x := int(h.cx + rng.NormFloat64()*h.sigma)
			y := int(h.cy + rng.NormFloat64()*h.sigma)
			if x >= 0 && x < side && y >= 0 && y < side {
				cells[y][x]++
			}
		}
	}
	return cells
}
