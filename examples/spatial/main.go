// Spatial histograms: the multi-dimensional extension the paper's
// Appendix B poses as future work. Check-in locations on a city grid are
// released once as a 2D universal histogram (a quadtree of noisy region
// counts, made consistent by inference); analysts then ask for any
// axis-aligned rectangle — a block, a district, the whole city — without
// further privacy cost.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist"
)

func main() {
	const side = 128
	cells := cityCheckins(side, rand.New(rand.NewPCG(14, 3)))

	const eps = 0.2
	m := dphist.MustNew(dphist.WithSeed(2024))
	rel, err := m.Universal2DHistogram(cells, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released %dx%d grid, quadtree height %d, eps=%g\n\n",
		rel.Width(), rel.Height(), rel.TreeHeight(), eps)

	queries := []struct {
		name           string
		x0, y0, x1, y1 int
	}{
		{"whole city", 0, 0, side, side},
		{"downtown (16x16)", 56, 56, 72, 72},
		{"harbor strip (128x8)", 0, 120, 128, 128},
		{"one block", 60, 60, 61, 61},
		{"empty outskirts (32x32)", 0, 0, 32, 32},
	}
	fmt.Printf("%-26s %10s %10s %10s\n", "region", "true", "estimate", "|error|")
	for _, q := range queries {
		truth := 0.0
		for y := q.y0; y < q.y1; y++ {
			for x := q.x0; x < q.x1; x++ {
				truth += cells[y][x]
			}
		}
		got, err := rel.Range(q.x0, q.y0, q.x1, q.y1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-26s %10.0f %10.0f %10.0f\n", q.name, truth, got, math.Abs(got-truth))
	}
}

// cityCheckins fabricates a realistic check-in density: two Gaussian
// hotspots (downtown, harbor) over a mostly-empty grid.
func cityCheckins(side int, rng *rand.Rand) [][]float64 {
	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
	}
	hotspots := []struct {
		cx, cy, sigma, weight float64
	}{
		{64, 64, 6, 40000},
		{96, 124, 10, 25000},
	}
	for _, h := range hotspots {
		n := int(h.weight)
		for i := 0; i < n; i++ {
			x := int(h.cx + rng.NormFloat64()*h.sigma)
			y := int(h.cy + rng.NormFloat64()*h.sigma)
			if x >= 0 && x < side && y >= 0 && y < side {
				cells[y][x]++
			}
		}
	}
	return cells
}
