// Social network degree sequences: the paper's headline application of
// unattributed histograms (Section 5.1). The degree sequence of a
// friendship graph is released under differential privacy; because real
// degree sequences contain long runs of duplicate values (power laws!),
// constrained inference slashes the error by an order of magnitude
// compared to the raw noisy release.
package main

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/dphist/dphist"
)

func main() {
	degrees := preferentialAttachmentDegrees(5000, 4, rand.New(rand.NewPCG(11, 13)))
	truth := append([]float64(nil), degrees...)
	sort.Float64s(truth)

	m := dphist.MustNew(dphist.WithSeed(5))
	for _, eps := range []float64{1.0, 0.1, 0.01} {
		rel, err := m.UnattributedHistogram(degrees, eps)
		if err != nil {
			panic(err)
		}
		var errNoisy, errInferred float64
		for i := range truth {
			dn := rel.Noisy[i] - truth[i]
			di := rel.Inferred[i] - truth[i]
			errNoisy += dn * dn
			errInferred += di * di
		}
		n := float64(len(truth))
		fmt.Printf("eps=%-5g  error/position: noisy %.3g, inferred %.3g  (%.0fx better)\n",
			eps, errNoisy/n, errInferred/n, errNoisy/errInferred)
	}

	// The published sequence preserves shape statistics of the graph.
	rel, err := m.UnattributedHistogram(degrees, 0.1)
	if err != nil {
		panic(err)
	}
	published := rel.Counts()
	fmt.Printf("\ntrue median degree %v, private median %v\n",
		truth[len(truth)/2], published[len(published)/2])
	fmt.Printf("true max degree %v, private max %v\n",
		truth[len(truth)-1], published[len(published)-1])
}

// preferentialAttachmentDegrees grows a Barabasi-Albert graph and returns
// its degree sequence. Inline here so the example depends only on the
// public dphist API.
func preferentialAttachmentDegrees(n, m int, rng *rand.Rand) []float64 {
	deg := make([]float64, n)
	var pool []int // vertex ids, one entry per incident edge end
	for v := 1; v <= m; v++ {
		deg[0]++
		deg[v]++
		pool = append(pool, 0, v)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := pool[rng.IntN(len(pool))]
			if t != v {
				chosen[t] = true
			}
		}
		targets := make([]int, 0, m)
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			deg[v]++
			deg[t]++
			pool = append(pool, v, t)
		}
	}
	return deg
}
