// Quickstart: the paper's running example (Figure 2) through the public
// API. A tiny network trace — four source addresses with packet counts
// <2, 0, 10, 2> — is released three ways under eps-differential privacy:
// as a flat noisy histogram, as an unattributed histogram (sorted counts
// with isotonic inference), and as a universal histogram (hierarchical
// counts with tree inference) that answers range queries.
package main

import (
	"fmt"

	"github.com/dphist/dphist"
)

func main() {
	// True unit counts per source address 000, 001, 010, 011.
	counts := []float64{2, 0, 10, 2}
	const eps = 1.0

	m := dphist.MustNew(dphist.WithSeed(2010))

	// Baseline: flat Laplace histogram L~ (sensitivity 1).
	lap, err := m.LaplaceHistogram(counts, eps)
	if err != nil {
		panic(err)
	}
	fmt.Println("L(I)  =", counts)
	fmt.Printf("L~(I) = %.2f\n\n", lap.Noisy)

	// Unattributed histogram: the multiset of counts. The noisy sorted
	// answer is generally out of order; inference restores order and
	// boosts accuracy at zero privacy cost.
	unat, err := m.UnattributedHistogram(counts, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("S(I)   = [0 2 2 10]\n")
	fmt.Printf("S~(I)  = %.2f   (noisy, possibly out of order)\n", unat.Noisy)
	fmt.Printf("S-bar  = %.2f   (closest sorted vector)\n", unat.Inferred)
	fmt.Printf("published: %v\n\n", unat.Counts())

	// Universal histogram: supports arbitrary range queries. The tree of
	// interval counts (Fig. 4) gets noise scaled to its height, and
	// inference makes it consistent and more accurate.
	uni, err := m.UniversalHistogram(counts, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("universal histogram over %d addresses (tree height %d, k=%d)\n",
		uni.Domain(), uni.TreeHeight(), uni.Branching())
	fmt.Printf("H~(I)  = %.2f\n", uni.NoisyTree())
	fmt.Printf("H-bar  = %.2f   (consistent: root = left + right)\n", uni.InferredTree())
	total, _ := uni.Range(0, 4)
	prefix01, _ := uni.Range(2, 4)
	fmt.Printf("count(*)                  ~= %.0f (true 14)\n", total)
	fmt.Printf("count(src matches 01*)    ~= %.0f (true 12)\n\n", prefix01)

	// The same releases through the unified entry point: every strategy
	// is one Request away and comes back behind the uniform Release
	// interface, so serving code never switches on concrete types.
	session, err := dphist.NewSession(m, 2.0)
	if err != nil {
		panic(err)
	}
	for _, strategy := range []dphist.Strategy{
		dphist.StrategyLaplace, dphist.StrategyUnattributed, dphist.StrategyUniversal,
	} {
		rel, err := session.Release(dphist.Request{Strategy: strategy, Counts: counts, Epsilon: 0.5})
		if err != nil {
			panic(err)
		}
		fmt.Printf("session release %-13v eps=%g total~=%.0f (budget left %.1f)\n",
			rel.Strategy(), rel.Epsilon(), rel.Total(), session.Remaining())
	}
}
