// Cluster mode, end to end and in-process: one durable primary, two
// followers replaying its replication log, and a consistent-hash
// router fanning reads across them. The paper's serving asymmetry —
// minting spends epsilon once, querying is free forever — is what
// makes the topology sound: replication ships already-noised releases
// and ledger charges, so adding replicas multiplies read capacity
// without touching the privacy budget.
//
// The demo mints through the router (writes pin to the primary),
// waits for both followers to converge, shows the answers are
// bit-identical on every node, then kills the primary and keeps
// serving reads from the replicas.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/cluster"
	"github.com/dphist/dphist/internal/replica"
	"github.com/dphist/dphist/internal/server"
)

const domain = 128

func main() {
	// The primary must be durable: the replication surface is the WAL,
	// so an in-memory store has nothing to ship.
	dir, err := os.MkdirTemp("", "dphist-cluster-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	primary, err := dphist.OpenStore(dir, dphist.WithBudget(4.0), dphist.WithoutSync())
	if err != nil {
		panic(err)
	}
	defer primary.Close()

	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64((i * 7) % 31)
	}
	psrv, err := server.New(server.Config{
		Counts: counts, Store: primary, Seed: 42,
		ReplPollWindow: 250 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	pts := httptest.NewServer(psrv.Handler())
	// Not deferred: act 3 kills it on purpose.

	// Two followers: a replica store (read-only, Apply-only) fed by a
	// tailer that bootstraps from the primary's snapshot and then
	// long-polls its record stream.
	followers := make([]*dphist.Store, 2)
	followerURLs := make([]string, 2)
	for i := range followers {
		f := dphist.NewReplica(dphist.WithBudget(4.0))
		tailer, err := replica.New(replica.Config{Primary: pts.URL, Store: f})
		if err != nil {
			panic(err)
		}
		tailer.Start()
		defer tailer.Close() // tailer stops BEFORE its store is garbage
		fsrv, err := server.New(server.Config{
			Store: f, Follower: true, Seed: 42,
			ReplStats: func() server.ReplicationStatus {
				st := tailer.Stats()
				return server.ReplicationStatus{State: st.State, PrimarySeq: st.PrimarySeq,
					RecordsApplied: st.RecordsApplied, Snapshots: st.Snapshots,
					Errors: st.Errors, LastError: st.LastError}
			},
		})
		if err != nil {
			panic(err)
		}
		fts := httptest.NewServer(fsrv.Handler())
		defer fts.Close()
		followers[i] = f
		followerURLs[i] = fts.URL
	}

	// The router: one shard, primary first, reads rotating across the
	// two replicas with failover.
	ring, err := cluster.NewRing([]cluster.Shard{
		{Primary: pts.URL, Replicas: followerURLs},
	}, 0)
	if err != nil {
		panic(err)
	}
	rts := httptest.NewServer(cluster.NewRouter(ring, nil).Handler())
	defer rts.Close()
	fmt.Printf("topology: 1 primary, %d followers, router in front\n\n", len(followers))

	// Act 1: mint through the router. Writes pin to the primary — the
	// only node that spends epsilon.
	postJSON(rts.URL+"/v1/releases", `{"name":"traffic","strategy":"universal","epsilon":0.5}`, nil)
	postJSON(rts.URL+"/v1/releases", `{"name":"latency","strategy":"wavelet","epsilon":0.25}`, nil)
	fmt.Println("minted traffic (eps 0.5) and latency (eps 0.25) through the router")

	// Act 2: wait for both followers to converge on the primary's
	// journal frontier, then show the replicas are bit-identical.
	target := primary.JournalSeq()
	for _, f := range followers {
		for f.AppliedSeq() < target {
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Printf("followers converged at journal seq %d\n", target)

	query := `{"name":"traffic","ranges":[{"lo":0,"hi":128},{"lo":16,"hi":48},{"lo":100,"hi":101}]}`
	var fromPrimary, fromRouter struct {
		Answers []float64 `json:"answers"`
	}
	postJSON(pts.URL+"/v1/query", query, &fromPrimary)
	postJSON(rts.URL+"/v1/query", query, &fromRouter)
	for i := range fromPrimary.Answers {
		if fromPrimary.Answers[i] != fromRouter.Answers[i] {
			panic("replica answer diverged from primary")
		}
	}
	fmt.Printf("query via router == query via primary, bit for bit: %.2f\n", fromRouter.Answers)

	// A follower refuses to mint: budget is spent in exactly one place.
	resp, err := http.Post(followerURLs[0]+"/v1/releases", "application/json",
		bytes.NewBufferString(`{"name":"rogue","strategy":"laplace","epsilon":1}`))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("minting directly on a follower: HTTP %d (read-only)\n\n", resp.StatusCode)

	// Act 3: kill the primary. Reads keep serving from the replicas;
	// writes — correctly — have nowhere to go.
	pts.Close()
	fmt.Println("primary killed")
	for i := 0; i < 4; i++ {
		var reply struct {
			Answers []float64 `json:"answers"`
		}
		postJSON(rts.URL+"/v1/query", query, &reply)
		if reply.Answers[0] != fromPrimary.Answers[0] {
			panic("post-failover answer diverged")
		}
	}
	fmt.Println("4 query batches served through the router after the kill, answers unchanged")
	wr, err := http.Post(rts.URL+"/v1/releases", "application/json",
		bytes.NewBufferString(`{"name":"orphan","strategy":"laplace","epsilon":1}`))
	if err != nil {
		panic(err)
	}
	wr.Body.Close()
	fmt.Printf("mint attempt with no primary: HTTP %d — reads survive a primary outage, spending pauses\n", wr.StatusCode)
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("POST %s: status %d: %s", url, resp.StatusCode, e.Error))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			panic(err)
		}
	}
}
