// Search-log time series: the paper's second universal-histogram
// workload (Section 5.2). The temporal frequency of one query term
// ("Obama", Jan 2004 onward at 16 bins/day) is released once; analysts
// can then ask for any time window — a day, a month, the campaign season
// — without further privacy cost. A privacy budget accountant tracks the
// total epsilon spent across the releases.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist"
)

func main() {
	const bins = 1 << 13 // ~1.4 years at 16 bins/day
	series := syntheticTermSeries(bins, rand.New(rand.NewPCG(8, 2)))

	budget := dphist.NewAccountant(1.0)
	m := dphist.MustNew(dphist.WithSeed(123))

	// Spend part of the budget on the term's series.
	const eps = 0.5
	if err := budget.Spend("term=obama", eps); err != nil {
		panic(err)
	}
	rel, err := m.UniversalHistogram(series, eps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released %d-bin series at eps=%g (budget left %.2f)\n\n",
		bins, eps, budget.Remaining())

	truthPrefix := make([]float64, bins+1)
	for i, v := range series {
		truthPrefix[i+1] = truthPrefix[i] + v
	}
	day := 16
	windows := []struct {
		name   string
		lo, hi int
	}{
		{"one day (early, quiet)", 100 * day, 101 * day},
		{"one week (early)", 100 * day, 107 * day},
		{"one day (campaign peak)", 450 * day, 451 * day},
		{"campaign month", 440 * day, 470 * day},
		{"entire series", 0, bins},
	}
	fmt.Printf("%-26s %12s %12s %10s\n", "window", "true", "estimate", "|error|")
	for _, w := range windows {
		truth := truthPrefix[w.hi] - truthPrefix[w.lo]
		got, _ := rel.Range(w.lo, w.hi)
		fmt.Printf("%-26s %12.0f %12.0f %10.0f\n", w.name, truth, got, math.Abs(got-truth))
	}

	// A second, unrelated release must fit in the remaining budget.
	if err := budget.Spend("term=election", 0.5); err != nil {
		panic(err)
	}
	if err := budget.Spend("term=overdraft", 0.1); err != nil {
		fmt.Printf("\nbudget enforcement: %v\n", err)
	}
}

// syntheticTermSeries fabricates a bursty interest curve: silence, an
// exponential ramp, a spiky peak, and a decaying tail, with Poisson-ish
// integer counts.
func syntheticTermSeries(bins int, rng *rand.Rand) []float64 {
	out := make([]float64, bins)
	for i := range out {
		frac := float64(i) / float64(bins)
		var rate float64
		switch {
		case frac < 0.5:
			rate = 0.1
		case frac < 0.85:
			rate = 0.1 * math.Pow(2000, (frac-0.5)/0.35)
		default:
			rate = 200 * math.Exp(-8*(frac-0.85))
		}
		// Diurnal modulation at 16 bins/day.
		rate *= 1 + 0.5*math.Sin(2*math.Pi*float64(i%16)/16)
		out[i] = math.Round(math.Max(0, rate+rng.NormFloat64()*math.Sqrt(rate+0.01)))
	}
	return out
}
