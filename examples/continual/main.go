// Continual release: the streaming deployment of the paper's serving
// asymmetry. Events POST to /v1/ingest as they happen; on an epoch
// schedule the pipeline drains its shards and mints each stream's
// histogram as a versioned release ("clicks@epoch-1", "clicks@epoch-2",
// ...) through the normal budgeted path, with "clicks@window" — the
// budget-free sum of the last W epochs (parallel composition: each
// event lands in exactly one epoch) — tracking the recent past. Between
// mints, a per-bucket continual counter (Chan et al., the streaming
// relative of the paper's H query) answers /v1/ingest/live with private
// running totals.
//
// The final act is the paper's inference idea applied retrospectively:
// a running count never decreases, so projecting a counter's released
// estimates onto non-decreasing sequences tightens them at zero privacy
// cost.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/ingest"
	"github.com/dphist/dphist/internal/server"
)

const domain = 64 // buckets per stream

func main() {
	// One store serves both sides: the ingest pipeline mints into it,
	// the HTTP read path queries out of it.
	store := dphist.NewStore(dphist.WithBudget(10), dphist.WithQueryCache(64))
	pipe, err := ingest.New(ingest.Config{
		Store:       store,
		Mechanism:   dphist.MustNew(dphist.WithSeed(7)),
		Domain:      domain,
		Epoch:       time.Hour, // this demo mints explicitly, not on the clock
		Epsilon:     0.5,       // charged per epoch mint
		Window:      3,         // "clicks@window" = last 3 epochs, free
		Shards:      4,
		LiveEpsilon: 2.0,     // one per-stream charge for the live surface
		LiveHorizon: 1 << 12, // short horizon = fewer dyadic levels = less live noise
		Seed:        99,
	})
	if err != nil {
		panic(err)
	}
	pipe.Start()
	defer pipe.Close()

	srv, err := server.New(server.Config{
		Counts:   make([]float64, domain), // the one-shot routes need a dataset; unused here
		Store:    store,
		Seed:     42,
		Ingester: pipe,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Act 1: three "days" of click traffic, one epoch each. Every event
	// is POSTed over the wire; each day ends with an epoch mint.
	rng := rand.New(rand.NewPCG(1, 2))
	for day := 1; day <= 3; day++ {
		posted := 0
		for batch := 0; batch < 20; batch++ {
			events := make([]map[string]any, 50)
			for i := range events {
				// Traffic drifts right as the days pass.
				bucket := (rng.IntN(domain/2) + (day-1)*8) % domain
				events[i] = map[string]any{"stream": "clicks", "bucket": bucket}
			}
			body, _ := json.Marshal(map[string]any{"events": events})
			var reply struct {
				Accepted int `json:"accepted"`
			}
			postJSON(ts.URL+"/v1/ingest", string(body), &reply)
			posted += reply.Accepted
		}
		// Mid-day, the live surface already knows the running totals.
		if day == 1 {
			var live struct {
				Counts []float64 `json:"counts"`
			}
			postJSON(ts.URL+"/v1/ingest/live", `{"stream":"clicks","buckets":[0,8,16]}`, &live)
			fmt.Printf("day 1 live counts (buckets 0/8/16, between mints): %.0f %.0f %.0f\n",
				live.Counts[0], live.Counts[1], live.Counts[2])
		}
		// The epoch tick (here: explicit, so the demo is deterministic).
		if _, err := pipe.Flush(); err != nil {
			panic(err)
		}
		fmt.Printf("day %d: %d events absorbed, epoch %d minted\n", day, posted, day)
	}

	// Act 2: the minted epochs are ordinary stored releases — query them
	// over the wire, spending nothing.
	total := func(name string) float64 {
		var reply struct {
			Answers []float64 `json:"answers"`
		}
		postJSON(ts.URL+"/v1/query",
			fmt.Sprintf(`{"name":%q,"ranges":[{"lo":0,"hi":%d}]}`, name, domain), &reply)
		return reply.Answers[0]
	}
	for day := 1; day <= 3; day++ {
		fmt.Printf("total(%s) = %.0f\n", ingest.EpochName("clicks", day), total(ingest.EpochName("clicks", day)))
	}
	fmt.Printf("total(%s) = %.0f (latest epoch alias)\n", ingest.LatestName("clicks"), total(ingest.LatestName("clicks")))
	fmt.Printf("total(%s) = %.0f (3-epoch sum, zero extra budget)\n", ingest.WindowName("clicks"), total(ingest.WindowName("clicks")))
	var budget struct {
		Spent     float64 `json:"spent"`
		Remaining float64 `json:"remaining"`
	}
	getJSON(ts.URL+"/v1/budget", &budget)
	fmt.Printf("budget: spent %.1f (3 epochs x 0.5 + live 2.0), remaining %.1f; queries and windows were free\n\n",
		budget.Spent, budget.Remaining)

	// Act 3: the paper's inference idea on a standalone counter — a
	// running count never decreases, so isotonic projection of the
	// released estimates is free accuracy.
	const horizon = 4096
	counter, err := dphist.MustNew(dphist.WithSeed(5)).NewCounter(1.0, horizon)
	if err != nil {
		panic(err)
	}
	truth := make([]float64, horizon)
	running := 0.0
	for t := 0; t < horizon; t++ {
		var inc float64
		switch {
		case t < 1000: // quiet
			if rng.Float64() < 0.05 {
				inc = 1
			}
		case t < 1500: // flash crowd
			inc = float64(rng.IntN(4))
		default: // steady
			if rng.Float64() < 0.3 {
				inc = 1
			}
		}
		running += inc
		truth[t] = running
		if _, err := counter.Feed(inc); err != nil {
			panic(err)
		}
	}
	raw := counter.Estimates()
	smooth, err := counter.SmoothedEstimates()
	if err != nil {
		panic(err)
	}
	var rawErr, smoothErr float64
	for t := range truth {
		rawErr += math.Abs(raw[t] - truth[t])
		smoothErr += math.Abs(smooth[t] - truth[t])
	}
	fmt.Printf("standalone counter over %d arrivals: mean |error| released %.2f, smoothed %.2f\n",
		horizon, rawErr/horizon, smoothErr/horizon)
	fmt.Printf("(a naive per-step noisy sum would drift to ~sqrt(t)/eps ~ %.0f)\n", math.Sqrt(horizon))
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("POST %s: status %d: %s", url, resp.StatusCode, e.Error))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
