// Continual counting: the streaming relative of the paper's hierarchical
// histogram (Section 6, Chan et al.). A counter publishes a private
// running total after every arrival; dyadic aggregation keeps the error
// poly-logarithmic in the stream length instead of linear, and — in the
// spirit of the paper — a retrospective isotonic projection of the
// released estimates (running counts never decrease) tightens them
// further at zero privacy cost.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist"
)

func main() {
	const horizon = 4096
	const eps = 1.0

	m := dphist.MustNew(dphist.WithSeed(99))
	counter, err := m.NewCounter(eps, horizon)
	if err != nil {
		panic(err)
	}

	// A bursty arrival stream: quiet, then a flash crowd, then steady.
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make([]float64, horizon)
	running := 0.0
	for t := 0; t < horizon; t++ {
		var inc float64
		switch {
		case t < 1000:
			if rng.Float64() < 0.05 {
				inc = 1
			}
		case t < 1500:
			inc = float64(rng.IntN(4))
		default:
			if rng.Float64() < 0.3 {
				inc = 1
			}
		}
		running += inc
		truth[t] = running
		if _, err := counter.Feed(inc); err != nil {
			panic(err)
		}
	}

	raw := counter.Estimates()
	smooth, err := counter.SmoothedEstimates()
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-10s %10s %12s %12s\n", "time", "true", "released", "smoothed")
	for _, t := range []int{63, 511, 1023, 1499, 2047, 4095} {
		fmt.Printf("%-10d %10.0f %12.1f %12.1f\n", t+1, truth[t], raw[t], smooth[t])
	}

	var rawErr, smoothErr float64
	for t := range truth {
		rawErr += math.Abs(raw[t] - truth[t])
		smoothErr += math.Abs(smooth[t] - truth[t])
	}
	fmt.Printf("\nmean |error| over the stream: released %.2f, smoothed %.2f\n",
		rawErr/horizon, smoothErr/horizon)
	fmt.Printf("(a naive per-step noisy sum would drift with error ~sqrt(t)/eps ~ %.0f by the end)\n",
		math.Sqrt(horizon)/eps)
}
