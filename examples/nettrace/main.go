// Network trace analysis: the paper's universal-histogram task (Section
// 5.2). A gateway trace over a /16 of external addresses is released as
// a universal histogram; arbitrary range queries — per-subnet totals,
// prefix counts, whole-trace volume — are answered from one release with
// poly-logarithmic error, where the flat Laplace histogram's error grows
// linearly with range size.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist"
)

func main() {
	const domain = 1 << 14 // a /18's worth of external addresses
	counts := syntheticTrace(domain, rand.New(rand.NewPCG(3, 9)))
	truthPrefix := make([]float64, domain+1)
	for i, v := range counts {
		truthPrefix[i+1] = truthPrefix[i] + v
	}

	const eps = 0.1
	m := dphist.MustNew(dphist.WithSeed(77))
	uni, err := m.UniversalHistogram(counts, eps)
	if err != nil {
		panic(err)
	}
	lap, err := m.LaplaceHistogram(counts, eps)
	if err != nil {
		panic(err)
	}

	fmt.Printf("domain %d addresses, tree height %d, eps=%g\n\n", domain, uni.TreeHeight(), eps)
	fmt.Printf("%-28s %12s %12s %12s\n", "query", "true", "universal", "flat L~")
	queries := []struct {
		name   string
		lo, hi int
	}{
		{"whole trace", 0, domain},
		{"first /20 (4096 addrs)", 0, 4096},
		{"a /22 (1024 addrs)", 8192, 9216},
		{"a /26 (64 addrs)", 12288, 12352},
		{"one address", 5000, 5001},
	}
	for _, q := range queries {
		truth := truthPrefix[q.hi] - truthPrefix[q.lo]
		u, _ := uni.Range(q.lo, q.hi)
		l, _ := lap.Range(q.lo, q.hi)
		fmt.Printf("%-28s %12.0f %12.0f %12.0f\n", q.name, truth, u, l)
	}

	// Average absolute error over random wide ranges: the universal
	// histogram's advantage compounds with range width.
	rng := rand.New(rand.NewPCG(4, 4))
	var errU, errL float64
	const trials = 300
	for i := 0; i < trials; i++ {
		size := 2048
		lo := rng.IntN(domain - size)
		truth := truthPrefix[lo+size] - truthPrefix[lo]
		u, _ := uni.Range(lo, lo+size)
		l, _ := lap.Range(lo, lo+size)
		errU += math.Abs(u - truth)
		errL += math.Abs(l - truth)
	}
	fmt.Printf("\nmean |error| on 2048-wide ranges: universal %.1f vs flat %.1f\n",
		errU/trials, errL/trials)
}

// syntheticTrace builds a sparse, clustered per-address connection-count
// vector: a few active subnets with heavy-tailed host activity.
func syntheticTrace(domain int, rng *rand.Rand) []float64 {
	counts := make([]float64, domain)
	for _, block := range []int{3, 7, 20, 21, 40} {
		start := block * 512
		for i := 0; i < 512 && start+i < domain; i++ {
			if rng.Float64() < 0.6 {
				// Heavy-tailed activity: mostly small, occasionally huge.
				u := rng.Float64()
				counts[start+i] = math.Floor(1 / math.Sqrt(u+1e-9))
			}
		}
	}
	return counts
}
