// Advisor: letting the server pick the strategy. The paper's two
// estimators trade places depending on the workload — L~ wins on point
// queries, the consistent hierarchies win once ranges get wide — and an
// analyst should not have to re-derive Section 4's variance algebra to
// choose. This demo drives "strategy": "auto" over the real HTTP
// surface: the caller describes the queries it intends to run (a
// workload sketch), the advisor predicts the expected error of every
// pipeline, and the mint proceeds with the winner. The response carries
// the full ranked decision so the choice is auditable, and the durable
// journal records the concrete strategy — never the sentinel.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/server"
)

func main() {
	// 256 latency buckets with a heavy head and a long sparse tail —
	// the same shape rangeserver mints by hand.
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(2000 / (i + 1) % 97)
	}

	srv, err := server.New(server.Config{
		Counts:        counts,
		Budget:        2.0,
		Seed:          42,
		StoreCapacity: 8,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The server advertises the sentinel alongside the concrete
	// pipelines.
	var sr struct {
		Strategies []string `json:"strategies"`
	}
	getJSON(ts.URL+"/v1/strategies", &sr)
	fmt.Printf("strategies: %v\n\n", sr.Strategies)

	// An analyst planning a dashboard of prefix sums describes that
	// workload and lets the advisor choose. Wide nested ranges reward a
	// consistent hierarchy, so expect a tree strategy to win.
	var minted struct {
		Name            string               `json:"name"`
		Version         int                  `json:"version"`
		Strategy        string               `json:"strategy"`
		Auto            *dphist.AutoDecision `json:"auto"`
		BudgetRemaining float64              `json:"budget_remaining"`
	}
	postJSON(ts.URL+"/v1/releases",
		`{"name":"latency","strategy":"auto","epsilon":0.5,
		  "workload":{"preset":"prefixes"}}`, &minted)
	fmt.Printf("prefix workload minted %q v%d as %s (budget remaining %.2f)\n",
		minted.Name, minted.Version, minted.Strategy, minted.BudgetRemaining)
	fmt.Println("ranked alternatives, winner first:")
	for _, p := range minted.Auto.Alternatives {
		fmt.Printf("  %-15s branching=%d  predicted=%12.1f  (%s)\n",
			p.Strategy, p.Branching, p.PredictedError, p.Confidence)
	}

	// A different caller only ever reads single buckets. Point queries
	// gain nothing from a hierarchy's extra noise per level, so the
	// same endpoint resolves to plain Laplace.
	var point struct {
		Strategy string               `json:"strategy"`
		Auto     *dphist.AutoDecision `json:"auto"`
	}
	postJSON(ts.URL+"/v1/release",
		`{"strategy":"auto","epsilon":0.5,"workload":{"preset":"points"}}`,
		&point)
	fmt.Printf("\npoint workload resolved to %s (predicted %.1f, %s)\n",
		point.Strategy, point.Auto.PredictedError, point.Auto.Confidence)

	// The journal records what was actually minted: a concrete
	// strategy, never "auto". A restart replays this listing, so the
	// decision is as durable as the release itself.
	var listing struct {
		Releases []struct {
			Name     string `json:"name"`
			Strategy string `json:"strategy"`
		} `json:"releases"`
	}
	getJSON(ts.URL+"/v1/releases", &listing)
	for _, r := range listing.Releases {
		fmt.Printf("journaled: %s as %s\n", r.Name, r.Strategy)
	}

	// Operators can watch how often the advisor picks each pipeline.
	var stats struct {
		Requests struct {
			AutoResolved map[string]int64 `json:"auto_resolved"`
		} `json:"requests"`
	}
	getJSON(ts.URL+"/v1/stats", &stats)
	fmt.Printf("auto resolutions by strategy: %v\n", stats.Requests.AutoResolved)
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("POST %s: %d %s", url, resp.StatusCode, e.Error))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
