package dphist_test

import (
	"fmt"

	"github.com/dphist/dphist"
)

// The paper's running example: release the 4-address trace histogram
// three ways and answer the prefix query "01*".
func Example() {
	counts := []float64{2, 0, 10, 2}
	m := dphist.MustNew(dphist.WithSeed(2010))

	r, err := m.UniversalHistogram(counts, 100) // huge eps: near-exact
	if err != nil {
		panic(err)
	}
	total, _ := r.Range(0, 4)
	prefix01, _ := r.Range(2, 4)
	fmt.Printf("total=%.0f prefix01=%.0f\n", total, prefix01)
	// Output: total=14 prefix01=12
}

func ExampleMechanism_UnattributedHistogram() {
	degrees := []float64{2, 0, 10, 2}
	m := dphist.MustNew(dphist.WithSeed(1))
	r, err := m.UnattributedHistogram(degrees, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Counts())
	// Output: [0 2 2 10]
}

// One-call polymorphic release: any strategy through the same entry
// point, consumed through the uniform Release interface.
func ExampleMechanism_Release() {
	m := dphist.MustNew(dphist.WithSeed(2010))
	rel, err := m.Release(dphist.Request{
		Strategy: dphist.StrategyUniversal,
		Counts:   []float64{2, 0, 10, 2},
		Epsilon:  100, // huge eps: near-exact
	})
	if err != nil {
		panic(err)
	}
	prefix01, _ := rel.Range(2, 4)
	fmt.Printf("strategy=%v eps=%g total=%.0f prefix01=%.0f\n",
		rel.Strategy(), rel.Epsilon(), rel.Total(), prefix01)
	// Output: strategy=universal eps=100 total=14 prefix01=12
}

// Budgeted serving: a Session charges every release against one fixed
// epsilon budget, refusing requests that would overdraw it.
func ExampleSession() {
	s, err := dphist.NewSession(dphist.MustNew(dphist.WithSeed(7)), 1.0)
	if err != nil {
		panic(err)
	}
	counts := []float64{2, 0, 10, 2}
	if _, err := s.Release(dphist.Request{Counts: counts, Epsilon: 0.6}); err != nil {
		panic(err)
	}
	_, err = s.Release(dphist.Request{Counts: counts, Epsilon: 0.6})
	fmt.Printf("remaining=%.1f overdraft refused=%v\n", s.Remaining(), err != nil)
	// Output: remaining=0.4 overdraft refused=true
}

func ExampleMechanism_HierarchyRelease() {
	m := dphist.MustNew(dphist.WithSeed(3))
	rel, err := m.HierarchyRelease(dphist.Grades(), []float64{120, 180, 90, 40, 25}, 100)
	if err != nil {
		panic(err)
	}
	// The inferred answers satisfy xt = xp + xF exactly.
	gap := rel.Inferred[0] - (rel.Inferred[1] + rel.Inferred[6])
	fmt.Printf("consistent=%v sensitivity=%.0f\n", gap < 1e-9 && gap > -1e-9, dphist.Grades().Sensitivity())
	// Output: consistent=true sensitivity=3
}

func ExampleNewAccountant() {
	budget := dphist.NewAccountant(1.0)
	_ = budget.Spend("histogram", 0.6)
	err := budget.Spend("second histogram", 0.6)
	fmt.Printf("remaining=%.1f overdraft refused=%v\n", budget.Remaining(), err != nil)
	// Output: remaining=0.4 overdraft refused=true
}

func ExampleMechanism_DegreeSequence() {
	m := dphist.MustNew(dphist.WithSeed(77))
	// A 6-regular graph's degree sequence, released privately.
	degrees := make([]float64, 64)
	for i := range degrees {
		degrees[i] = 6
	}
	rel, err := m.DegreeSequence(degrees, 50)
	if err != nil {
		panic(err)
	}
	published := rel.Counts()
	fmt.Printf("graphical=%v first=%v last=%v\n",
		rel.IsGraphical(), published[0], published[63])
	// Output: graphical=true first=6 last=6
}

func ExampleMechanism_NewCounter() {
	m := dphist.MustNew(dphist.WithSeed(9))
	c, err := m.NewCounter(100, 8) // huge eps: near-exact
	if err != nil {
		panic(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Feed(1); err != nil {
			panic(err)
		}
	}
	smooth, _ := c.SmoothedEstimates()
	fmt.Printf("final=%.0f\n", smooth[7])
	// Output: final=8
}

func ExampleWorkload_Recommend() {
	// An analyst planning only point queries should use the flat
	// histogram; planning wide scans should use the hierarchy.
	points, _ := dphist.NewWorkload(256)
	for i := 0; i < 256; i++ {
		_ = points.Add(i, i+1, 1)
	}
	p, _ := points.Recommend(1.0, 2)

	scans, _ := dphist.NewWorkload(1024)
	for i := 0; i < 8; i++ {
		_ = scans.Add(i*16, i*16+768, 1)
	}
	s, _ := scans.Recommend(1.0, 2)
	fmt.Printf("points=%s scans=%s\n", p.Strategy, s.Strategy)
	// Output: points=laplace scans=universal
}

func ExampleMechanism_Universal2DHistogram() {
	cells := [][]float64{
		{5, 0, 0, 0},
		{0, 5, 0, 0},
		{0, 0, 5, 0},
		{0, 0, 0, 5},
	}
	m := dphist.MustNew(dphist.WithSeed(4))
	rel, err := m.Universal2DHistogram(cells, 100)
	if err != nil {
		panic(err)
	}
	diag, _ := rel.Rect(0, 0, 2, 2)
	fmt.Printf("total=%.0f topleft=%.0f\n", rel.Total(), diag)
	// Output: total=20 topleft=10
}
