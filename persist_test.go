package dphist

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dphist/dphist/internal/journal"
)

// mintInto issues one universal release of eps through the namespace's
// own accountant and stores it under name.
func mintInto(t *testing.T, ns *Namespace, name string, counts []float64, eps float64, seed uint64) Release {
	t.Helper()
	session, err := ns.Session(MustNew(WithSeed(seed)))
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := ns.Mint(session, name, Request{Counts: counts, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// The acceptance test of the durable ledger: kill the process (no Close,
// no snapshot — the WAL alone carries the state), reopen the directory,
// and require every minted release to answer identically and every
// namespace to report exactly its pre-crash spend.
func TestStoreKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	specs := []RangeSpec{{Lo: 0, Hi: 8}, {Lo: 2, Hi: 5}, {Lo: 7, Hi: 8}, {Lo: 3, Hi: 3}}

	s1, err := OpenStore(dir, WithBudget(2.0))
	if err != nil {
		t.Fatal(err)
	}
	type minted struct {
		ns, name string
		answers  []float64
		version  int
	}
	var want []minted
	spent := map[string]float64{}
	for _, tc := range []struct {
		ns, name string
		eps      float64
	}{
		{"default", "traffic", 0.5},
		{"default", "traffic", 0.25}, // re-mint: version 2
		{"tenant-a", "grades", 1.0},
		{"tenant-b", "degrees", 0.125},
	} {
		ns := s1.Namespace(tc.ns)
		mintInto(t, ns, tc.name, counts, tc.eps, uint64(len(want)+1))
		answers, entry, err := ns.Query(tc.name, specs)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, minted{tc.ns, tc.name, answers, entry.Version})
		spent[tc.ns] += tc.eps
	}
	// Deleted entries must stay deleted after recovery.
	if _, err := s1.Namespace("tenant-a").Put("doomed", want0Release(t)); err != nil {
		t.Fatal(err)
	}
	if !s1.Namespace("tenant-a").Delete("doomed") {
		t.Fatal("delete failed")
	}
	// Crash: the store is abandoned without Close or Snapshot.

	s2, err := OpenStore(dir, WithBudget(2.0))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, m := range want[1:] { // want[0] was replaced by the re-mint
		ns := s2.Namespace(m.ns)
		answers, entry, err := ns.Query(m.name, specs)
		if err != nil {
			t.Fatalf("%s/%s after restart: %v", m.ns, m.name, err)
		}
		if entry.Version != m.version {
			t.Fatalf("%s/%s version = %d, want %d", m.ns, m.name, entry.Version, m.version)
		}
		for i := range answers {
			if answers[i] != m.answers[i] {
				t.Fatalf("%s/%s answers changed across restart: %v != %v", m.ns, m.name, answers, m.answers)
			}
		}
	}
	if _, _, ok := s2.Namespace("tenant-a").Get("doomed"); ok {
		t.Fatal("deleted release resurrected by recovery")
	}
	for ns, eps := range spent {
		got := s2.Namespace(ns).Accountant().Spent()
		if math.Abs(got-eps) > 1e-12 {
			t.Fatalf("namespace %s Spent() = %v after restart, want %v", ns, got, eps)
		}
	}
	// The recovered ledger keeps enforcing: tenant-a spent 1.0 of 2.0,
	// so 1.5 more must be refused — the restart is not a budget reset.
	if err := s2.Namespace("tenant-a").Accountant().Spend("again", 1.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("post-restart overdraw error = %v", err)
	}
	// Version counters continue across the restart even for the deleted
	// name: a re-mint is always distinguishable from a re-read.
	entry, err := s2.Namespace("tenant-a").Put("doomed", want0Release(t))
	if err != nil {
		t.Fatal(err)
	}
	if entry.Version != 2 {
		t.Fatalf("post-restart version for deleted name = %d, want 2", entry.Version)
	}
}

func want0Release(t *testing.T) Release {
	t.Helper()
	rel, err := MustNew(WithSeed(77)).UniversalHistogram([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// Clean shutdown folds everything into the snapshot; recovery must work
// from the snapshot alone (the WAL is empty after Close).
func TestStoreCloseSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, WithBudget(3.0))
	if err != nil {
		t.Fatal(err)
	}
	mintInto(t, s1.Namespace("a"), "x", []float64{5, 5, 5, 5}, 0.5, 1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent, and journaled mutations now refuse.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Namespace("a").Put("y", want0Release(t)); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if err := s1.Namespace("a").Accountant().Spend("late", 0.1); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("spend after close: %v", err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 0 {
		t.Fatalf("WAL holds %d bytes after Close; snapshot should have absorbed it", len(wal))
	}

	s2, err := OpenStore(dir, WithBudget(3.0))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, ok := s2.Namespace("a").Get("x"); !ok {
		t.Fatal("release lost across clean shutdown")
	}
	if got := s2.Namespace("a").Accountant().Spent(); got != 0.5 {
		t.Fatalf("Spent() = %v across clean shutdown", got)
	}
	// Sequence numbering continued past the snapshot: new mutations after
	// reopen recover correctly too.
	mintInto(t, s2.Namespace("a"), "z", []float64{1, 1, 1, 1}, 0.25, 2)
	s2.Close()
	s3, err := OpenStore(dir, WithBudget(3.0))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Namespace("a").Accountant().Spent(); got != 0.75 {
		t.Fatalf("Spent() = %v after second generation", got)
	}
}

// The store-level damage matrix: recovery restores a consistent prefix
// for torn tails and fails loudly for real corruption — it must never
// silently under-report spent budget.
func TestStoreRecoveryDamage(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		s, err := OpenStore(dir, WithBudget(5.0))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			mintInto(t, s.Namespace("t"), fmt.Sprintf("r%d", i), []float64{2, 2, 2, 2}, 0.5, uint64(i+1))
		}
		// Abandon without Close: all state lives in the WAL.
		return dir
	}
	cases := []struct {
		name    string
		mutate  func(t *testing.T, dir string)
		check   func(t *testing.T, s *Store)
		corrupt bool
	}{
		{
			name:   "truncated tail drops only the final record",
			mutate: func(t *testing.T, dir string) { truncateFile(t, filepath.Join(dir, walFile), 7) },
			check: func(t *testing.T, s *Store) {
				// Mint i journals a charge then a put; chopping 7 bytes
				// tears the final put, so r3's put is lost while earlier
				// releases and charges survive.
				if _, _, ok := s.Namespace("t").Get("r2"); !ok {
					t.Fatal("r2 lost")
				}
				if _, _, ok := s.Namespace("t").Get("r3"); ok {
					t.Fatal("torn r3 resurrected")
				}
			},
		},
		{
			name: "mid-file bit flip fails loudly",
			mutate: func(t *testing.T, dir string) {
				flipByte(t, filepath.Join(dir, walFile), 40)
			},
			corrupt: true,
		},
		{
			name: "missing snapshot replays the full WAL",
			mutate: func(t *testing.T, dir string) {
				// No snapshot was ever written; also assert that explicitly.
				if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
					t.Fatalf("unexpected snapshot: %v", err)
				}
			},
			check: func(t *testing.T, s *Store) {
				if got := s.Namespace("t").Accountant().Spent(); got != 2.0 {
					t.Fatalf("Spent() = %v, want 2.0", got)
				}
				if n := s.Namespace("t").Len(); n != 4 {
					t.Fatalf("Len = %d, want 4", n)
				}
			},
		},
		{
			name: "partial snapshot fails loudly",
			mutate: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(`{"seq":3,"entr`), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			corrupt: true,
		},
		{
			name: "unparseable release payload fails loudly",
			mutate: func(t *testing.T, dir string) {
				// Rewrite the WAL with a put whose payload passes framing
				// but is not a decodable release.
				writeBadPutWAL(t, filepath.Join(dir, walFile))
			},
			corrupt: true,
		},
		{
			name:   "empty data dir opens empty",
			mutate: func(t *testing.T, dir string) { cleanDir(t, dir) },
			check: func(t *testing.T, s *Store) {
				if n := s.Namespace("t").Len(); n != 0 {
					t.Fatalf("Len = %d in fresh dir", n)
				}
				if got := s.Namespace("t").Accountant().Spent(); got != 0 {
					t.Fatalf("Spent() = %v in fresh dir", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := build(t)
			tc.mutate(t, dir)
			s, err := OpenStore(dir, WithBudget(5.0))
			if tc.corrupt {
				if err == nil {
					s.Close()
					t.Fatal("corrupt store opened silently")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			tc.check(t, s)
		})
	}
}

func truncateFile(t *testing.T, path string, bytesOff int) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-int64(bytesOff)); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func cleanDir(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
}

// writeBadPutWAL replaces the WAL with a single put record that passes
// framing (valid checksums, valid JSON record) but whose release
// payload is not a decodable release.
func writeBadPutWAL(t *testing.T, path string) {
	t.Helper()
	frame, err := journal.Marshal(journal.Record{
		Seq: 1, Op: journal.OpPut, Namespace: "t", Name: "bad", Version: 1,
		StoredAt: time.Unix(1, 0), Payload: json.RawMessage(`{"version":99,"strategy":"universal"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Automatic snapshots: once enough records accumulate the WAL is folded
// away, and recovery from the snapshot matches recovery from the log.
// TTL-expired entries must not resurrect through crash recovery: expiry
// is never journaled (it is a pure function of StoredAt and the TTL
// option — see sweepExpiredLocked), so OpenStore must re-derive it from
// the persisted StoredAt. A store that forgot to would serve analysts
// releases the deployment promised were gone.
func TestTTLExpiryReDerivedAcrossCrashRecovery(t *testing.T) {
	for _, clean := range []bool{false, true} {
		name := "crash (WAL replay)"
		if clean {
			name = "clean (snapshot load)"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir, WithTTL(time.Hour), WithoutSync())
			if err != nil {
				t.Fatal(err)
			}
			// Backdate the clock so "stale" is journaled with a StoredAt
			// already beyond the TTL at reopen time, while "fresh" is
			// current. Only the injected clock is synthetic — the bytes
			// on disk are exactly what a real store would have written
			// two hours ago.
			past := time.Now().Add(-2 * time.Hour)
			s.now = func() time.Time { return past }
			if _, err := s.Put("stale", testRelease(t, 1)); err != nil {
				t.Fatal(err)
			}
			s.now = time.Now
			if _, err := s.Put("fresh", testRelease(t, 2)); err != nil {
				t.Fatal(err)
			}
			if clean {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			} // else: kill — no Close, no snapshot; the WAL carries both puts

			re, err := OpenStore(dir, WithTTL(time.Hour), WithoutSync())
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if _, _, ok := re.Get("stale"); ok {
				t.Fatal("TTL-expired entry resurrected through recovery")
			}
			if _, _, ok := re.Get("fresh"); !ok {
				t.Fatal("unexpired entry lost in recovery")
			}
			if re.Len() != 1 {
				t.Fatalf("Len = %d after recovery, want 1", re.Len())
			}
			// Expiry is not deletion: the stale name's version sequence
			// continues, proving the entry existed and was expired (not
			// silently dropped).
			entry, err := re.Put("stale", testRelease(t, 3))
			if err != nil {
				t.Fatal(err)
			}
			if entry.Version != 2 {
				t.Fatalf("post-recovery version = %d, want 2", entry.Version)
			}
		})
	}
}

func TestStoreAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, WithBudget(100), WithSnapshotEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mintInto(t, s.Namespace("n"), fmt.Sprintf("r%d", i), []float64{1, 2, 3, 4}, 0.5, uint64(i+1))
	}
	// 8 mints = 16 records with threshold 5: at least one snapshot fired.
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot after threshold: %v", err)
	}
	// Crash without Close; snapshot + WAL suffix must reconstruct all 8.
	s2, err := OpenStore(dir, WithBudget(100))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Namespace("n").Len(); n != 8 {
		t.Fatalf("recovered %d releases, want 8", n)
	}
	if got := s2.Namespace("n").Accountant().Spent(); got != 4.0 {
		t.Fatalf("Spent() = %v, want 4.0", got)
	}
}

// Namespaces are isolated: keyspaces do not collide and budgets are
// accounted independently.
func TestNamespaceIsolation(t *testing.T) {
	s := NewStore(WithBudget(1.0))
	relA := want0Release(t)
	if _, err := s.Namespace("a").Put("x", relA); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Namespace("b").Get("x"); ok {
		t.Fatal("namespace b sees a's release")
	}
	if _, _, ok := s.Namespace("a").Get("x"); !ok {
		t.Fatal("namespace a lost its release")
	}
	// The default namespace is its own keyspace, aliased by "".
	if _, _, ok := s.Get("x"); ok {
		t.Fatal("default namespace sees a's release")
	}
	if s.Namespace("").Name() != DefaultNamespace {
		t.Fatal(`Namespace("") is not the default`)
	}
	// Budgets are independent: exhausting a leaves b untouched.
	if err := s.Namespace("a").Accountant().Spend("all", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Namespace("a").Accountant().Spend("more", 0.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraw in a: %v", err)
	}
	if err := s.Namespace("b").Accountant().Spend("fresh", 0.5); err != nil {
		t.Fatalf("b's budget tainted by a: %v", err)
	}
	if got := s.Namespace("b").Remaining(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("b remaining = %v", got)
	}
	// Same name in two namespaces: versions count independently.
	if _, err := s.Namespace("b").Put("x", relA); err != nil {
		t.Fatal(err)
	}
	entryA, err := s.Namespace("a").Put("x", relA)
	if err != nil {
		t.Fatal(err)
	}
	entryB, err := s.Namespace("b").Put("x", relA)
	if err != nil {
		t.Fatal(err)
	}
	if entryA.Version != 2 || entryB.Version != 2 {
		t.Fatalf("versions = %d/%d, want 2/2", entryA.Version, entryB.Version)
	}
	if got := s.Namespaces(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Namespaces() = %v", got)
	}
}

// The sharded store preserves the Store contract under every shard
// count, including capacity splitting and cross-shard List/Len.
func TestStoreSharding(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := NewStore(WithShards(shards))
			rel := want0Release(t)
			const n = 64
			for i := 0; i < n; i++ {
				if _, err := s.Put(fmt.Sprintf("name-%d", i), rel); err != nil {
					t.Fatal(err)
				}
			}
			if s.Len() != n {
				t.Fatalf("Len = %d", s.Len())
			}
			list := s.List()
			if len(list) != n {
				t.Fatalf("List len = %d", len(list))
			}
			for i := 1; i < len(list); i++ {
				if list[i-1].Name >= list[i].Name {
					t.Fatal("List not sorted across shards")
				}
			}
			for i := 0; i < n; i++ {
				if _, _, ok := s.Get(fmt.Sprintf("name-%d", i)); !ok {
					t.Fatalf("name-%d missing", i)
				}
			}
			if !s.Delete("name-7") || s.Len() != n-1 {
				t.Fatal("delete across shards broken")
			}
		})
	}
	// Capacity with explicit shards: the bound is enforced per shard, so
	// the store-wide count stays within ceil(cap/shards)*shards.
	s := NewStore(WithShards(4), WithCapacity(8))
	rel := want0Release(t)
	for i := 0; i < 100; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), rel); err != nil {
			t.Fatal(err)
		}
	}
	if n, limit := s.Len(), 8; n > limit {
		t.Fatalf("capacity 8 over 4 shards holds %d entries", n)
	}
}

// Durable stores stay correct under concurrent multi-namespace traffic;
// run under -race. Spends and puts race against snapshots triggered by
// a tiny threshold.
func TestStoreDurableConcurrency(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, WithBudget(1000), WithSnapshotEvery(16), WithoutSync(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rel := want0Release(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := s.Namespace(fmt.Sprintf("tenant-%d", g%3))
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("rel-%d", i%7)
				switch i % 4 {
				case 0:
					if _, err := ns.Put(name, rel); err != nil {
						t.Error(err)
						return
					}
				case 1:
					ns.Get(name)
				case 2:
					if err := ns.Accountant().Spend("load", 0.01); err != nil {
						t.Error(err)
						return
					}
				case 3:
					ns.Delete(name)
				}
			}
		}(g)
	}
	wg.Wait()
	wantSpent := map[string]float64{}
	for g := 0; g < 6; g++ {
		wantSpent[fmt.Sprintf("tenant-%d", g%3)] += 10 * 0.01
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, WithBudget(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for ns, want := range wantSpent {
		if got := s2.Namespace(ns).Accountant().Spent(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s Spent() = %v, want %v", ns, got, want)
		}
	}
}
