package dphist

import (
	"fmt"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/wavelet"
)

// LaplaceRelease is a flat noisy histogram (the paper's L~).
type LaplaceRelease struct {
	// Noisy holds the raw perturbed unit counts, one per input position.
	Noisy []float64
	// Counts holds the published estimates: Noisy rounded to
	// non-negative integers when rounding is enabled, else equal to
	// Noisy.
	Counts []float64

	prefix []float64
}

func newLaplaceRelease(noisy []float64, round bool) *LaplaceRelease {
	final := append([]float64(nil), noisy...)
	if round {
		core.RoundNonNegInt(final)
	}
	prefix := make([]float64, len(final)+1)
	for i, v := range final {
		prefix[i+1] = prefix[i] + v
	}
	return &LaplaceRelease{Noisy: noisy, Counts: final, prefix: prefix}
}

// Range answers the half-open range-count query [lo, hi) by summing unit
// estimates; its error grows linearly with hi-lo.
func (r *LaplaceRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.Counts) || lo >= hi {
		return 0, fmt.Errorf("dphist: bad range [%d,%d) for domain %d", lo, hi, len(r.Counts))
	}
	return r.prefix[hi] - r.prefix[lo], nil
}

// Total returns the estimated number of records.
func (r *LaplaceRelease) Total() float64 { return r.prefix[len(r.prefix)-1] }

// UnattributedRelease is a private unattributed histogram: the multiset
// of counts, published in non-decreasing order.
type UnattributedRelease struct {
	// Noisy is the raw noisy sorted query answer s~ (generally out of
	// order: order violations are pure noise artifacts).
	Noisy []float64
	// Inferred is the constrained-inference estimate S-bar: the closest
	// non-decreasing vector to Noisy (Theorem 1).
	Inferred []float64
	// Counts is the published estimate: Inferred, rounded to
	// non-negative integers when rounding is enabled.
	Counts []float64
}

// SortRoundBaseline returns the paper's S~r baseline computed from the
// same noisy answer: sort and round, without least-squares inference.
func (r *UnattributedRelease) SortRoundBaseline() []float64 {
	return core.SortRound(r.Noisy)
}

// UniversalRelease is a private universal histogram: a consistent
// hierarchy of range counts able to answer any interval query.
//
// Range queries are answered from the post-processed tree by minimal
// subtree decomposition. When the non-negativity heuristic is enabled it
// truncates negative estimates, so the post-processed tree is no longer
// exactly consistent: Range answers may differ slightly from sums over
// Counts. The decomposition touches only O(log n) nodes, which keeps the
// truncation bias bounded independent of range width; summing truncated
// unit counts instead would accumulate bias linearly in range size. With
// WithoutNonNegativity and WithoutRounding the tree is exactly
// consistent and the two agree to the last bit.
type UniversalRelease struct {
	tree     *htree.Tree
	noisy    []float64 // h~, BFS order
	inferred []float64 // h-bar before post-processing, BFS order
	post     []float64 // h-bar after non-negativity and rounding, BFS order
	leaves   []float64 // published unit estimates over the real domain
}

func newUniversalRelease(tree *htree.Tree, noisy, inferred, post []float64) *UniversalRelease {
	leaves := append([]float64(nil), tree.Leaves(post)...)
	return &UniversalRelease{tree: tree, noisy: noisy, inferred: inferred, post: post, leaves: leaves}
}

// Counts returns the published unit-count estimates over the real domain
// (a copy).
func (r *UniversalRelease) Counts() []float64 {
	return append([]float64(nil), r.leaves...)
}

// Domain returns the size of the real (unpadded) domain.
func (r *UniversalRelease) Domain() int { return r.tree.Domain() }

// TreeHeight returns the height ell of the underlying query tree; the
// release used sensitivity ell.
func (r *UniversalRelease) TreeHeight() int { return r.tree.Height() }

// Branching returns the fan-out k of the underlying query tree.
func (r *UniversalRelease) Branching() int { return r.tree.K() }

// Range answers the half-open range-count query [lo, hi) from the
// post-processed tree via minimal subtree decomposition (O(log n) nodes).
func (r *UniversalRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.leaves) || lo >= hi {
		return 0, fmt.Errorf("dphist: bad range [%d,%d) for domain %d", lo, hi, len(r.leaves))
	}
	return r.tree.RangeSum(r.post, lo, hi), nil
}

// RangeNoisy answers [lo, hi) from the raw noisy tree using the paper's
// H~ strategy (summing the minimal subtree decomposition), bypassing
// inference. It exists for baseline comparisons.
func (r *UniversalRelease) RangeNoisy(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.leaves) || lo >= hi {
		return 0, fmt.Errorf("dphist: bad range [%d,%d) for domain %d", lo, hi, len(r.leaves))
	}
	return core.TreeRangeHTilde(r.tree, r.noisy, lo, hi), nil
}

// Total returns the estimated number of records in the real domain.
func (r *UniversalRelease) Total() float64 {
	return r.tree.RangeSum(r.post, 0, len(r.leaves))
}

// NoisyTree returns a copy of the raw noisy hierarchical answer h~ in BFS
// order (root first).
func (r *UniversalRelease) NoisyTree() []float64 {
	return append([]float64(nil), r.noisy...)
}

// InferredTree returns a copy of the consistent inferred tree h-bar in
// BFS order, before non-negativity and rounding post-processing.
func (r *UniversalRelease) InferredTree() []float64 {
	return append([]float64(nil), r.inferred...)
}

// WaveletRelease is a private histogram produced by the Haar-wavelet
// mechanism (Xiao et al.).
type WaveletRelease struct {
	counts []float64
	prefix []float64
}

func newWaveletRelease(counts []float64, eps float64, round bool, src *rand.Rand) (*WaveletRelease, error) {
	noisy, err := wavelet.Release(counts, eps, src)
	if err != nil {
		return nil, fmt.Errorf("dphist: %w", err)
	}
	if round {
		core.RoundNonNegInt(noisy)
	}
	prefix := make([]float64, len(noisy)+1)
	for i, v := range noisy {
		prefix[i+1] = prefix[i] + v
	}
	return &WaveletRelease{counts: noisy, prefix: prefix}, nil
}

// Counts returns the published unit-count estimates (a copy).
func (r *WaveletRelease) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

// Range answers the half-open range-count query [lo, hi).
func (r *WaveletRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo >= hi {
		return 0, fmt.Errorf("dphist: bad range [%d,%d) for domain %d", lo, hi, len(r.counts))
	}
	return r.prefix[hi] - r.prefix[lo], nil
}

// HierarchyReleaseResult is a private answer to a custom constrained
// query set.
type HierarchyReleaseResult struct {
	// Noisy is the raw perturbed answer vector, generally inconsistent.
	Noisy []float64
	// Inferred is the minimum-L2 consistent answer vector.
	Inferred []float64
}
