package dphist

import (
	"fmt"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/plan"
	"github.com/dphist/dphist/internal/wavelet"
)

// Release is the uniform read side of every private histogram the
// library can publish. All seven strategies produce a Release, so
// servers, caches, and analysis code can handle them polymorphically:
//
//   - Strategy identifies the pipeline that produced the release.
//   - Epsilon is the privacy cost that was spent on it.
//   - Counts returns the published unit estimates (a copy): position ->
//     count for positional strategies, rank -> count for the sorted
//     strategies, leaf-query answers for StrategyHierarchy.
//   - Total estimates the number of records.
//   - Range answers the half-open interval query [lo, hi) over the same
//     index space as Counts. The empty query lo == hi (with 0 <= lo <=
//     len(Counts())) is valid and answers 0 for every release type.
//
// Releases are self-contained: the exported raw-answer slices (Noisy,
// Inferred) are copies made at construction, so mutating them never
// desynchronizes Counts, Range, or Total, and mutating the inputs a
// release was built from never changes the release.
//
// Every in-library release compiles an immutable query plan
// (internal/plan) at construction and at decode, so Range — and the
// batch engines QueryBatch/QueryRects built on the plans — answers in
// O(1) or O(log n) without allocating, for every strategy.
//
// Every Release also round-trips through JSON (encoding/json.Marshaler
// and Unmarshaler); DecodeRelease turns the wire form back into the
// right concrete type without knowing it in advance.
type Release interface {
	Strategy() Strategy
	Epsilon() float64
	Counts() []float64
	Total() float64
	Range(lo, hi int) (float64, error)
}

// All seven release types satisfy the interface, and each exposes its
// compiled query plan to the batch engine (see planner in query.go).
var (
	_ Release = (*LaplaceRelease)(nil)
	_ Release = (*UnattributedRelease)(nil)
	_ Release = (*UniversalRelease)(nil)
	_ Release = (*WaveletRelease)(nil)
	_ Release = (*DegreeSequenceRelease)(nil)
	_ Release = (*HierarchyReleaseResult)(nil)
	_ Release = (*Universal2DRelease)(nil)
	_ planner = (*LaplaceRelease)(nil)
	_ planner = (*UnattributedRelease)(nil)
	_ planner = (*UniversalRelease)(nil)
	_ planner = (*WaveletRelease)(nil)
	_ planner = (*DegreeSequenceRelease)(nil)
	_ planner = (*HierarchyReleaseResult)(nil)
	_ planner = (*Universal2DRelease)(nil)
)

func badRange(lo, hi, n int) error {
	return fmt.Errorf("dphist: bad range [%d,%d) for domain %d", lo, hi, n)
}

// LaplaceRelease is a flat noisy histogram (the paper's L~).
type LaplaceRelease struct {
	// Noisy holds the raw perturbed unit counts, one per input position.
	Noisy []float64

	counts []float64
	plan   *plan.Plan
	eps    float64
	autoStamp
}

func newLaplaceRelease(noisy []float64, round bool, eps float64) *LaplaceRelease {
	final := append([]float64(nil), noisy...)
	if round {
		core.RoundNonNegInt(final)
	}
	// Copy Noisy so the release does not alias the caller's slice:
	// counts and the compiled plan are derived copies, and a shared
	// Noisy would let later mutations desynchronize them silently.
	return &LaplaceRelease{
		Noisy:  append([]float64(nil), noisy...),
		counts: final,
		plan:   plan.Compile1D(final),
		eps:    eps,
	}
}

// Strategy returns StrategyLaplace.
func (r *LaplaceRelease) Strategy() Strategy { return StrategyLaplace }

// Epsilon returns the privacy cost spent on this release.
func (r *LaplaceRelease) Epsilon() float64 { return r.eps }

// Counts returns the published estimates (a copy): Noisy rounded to
// non-negative integers when rounding is enabled, else equal to Noisy.
func (r *LaplaceRelease) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

func (r *LaplaceRelease) queryPlan() *plan.Plan { return r.plan }

// Range answers the half-open range-count query [lo, hi) by summing unit
// estimates; its error grows linearly with hi-lo. The empty range
// lo == hi answers 0.
func (r *LaplaceRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo > hi {
		return 0, badRange(lo, hi, len(r.counts))
	}
	return r.plan.Range(lo, hi), nil
}

// Total returns the estimated number of records.
func (r *LaplaceRelease) Total() float64 { return r.plan.Total() }

// UnattributedRelease is a private unattributed histogram: the multiset
// of counts, published in non-decreasing order.
type UnattributedRelease struct {
	// Noisy is the raw noisy sorted query answer s~ (generally out of
	// order: order violations are pure noise artifacts).
	Noisy []float64
	// Inferred is the constrained-inference estimate S-bar: the closest
	// non-decreasing vector to Noisy (Theorem 1).
	Inferred []float64

	counts []float64
	plan   *plan.Plan
	eps    float64
	autoStamp
}

func newUnattributedRelease(noisy, inferred, final []float64, eps float64) *UnattributedRelease {
	// Noisy and Inferred are copied so the release never shares slices
	// with its caller (see the Release doc on aliasing).
	return &UnattributedRelease{
		Noisy:    append([]float64(nil), noisy...),
		Inferred: append([]float64(nil), inferred...),
		counts:   final,
		plan:     plan.Compile1D(final),
		eps:      eps,
	}
}

// Strategy returns StrategyUnattributed.
func (r *UnattributedRelease) Strategy() Strategy { return StrategyUnattributed }

// Epsilon returns the privacy cost spent on this release.
func (r *UnattributedRelease) Epsilon() float64 { return r.eps }

// Counts returns the published estimate (a copy): Inferred, rounded to
// non-negative integers when rounding is enabled. Index i is the i-th
// smallest count, not a domain position.
func (r *UnattributedRelease) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

func (r *UnattributedRelease) queryPlan() *plan.Plan { return r.plan }

// Range answers the rank-interval query [lo, hi): the estimated sum of
// the lo-th through (hi-1)-th smallest counts. The empty range lo == hi
// answers 0.
func (r *UnattributedRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo > hi {
		return 0, badRange(lo, hi, len(r.counts))
	}
	return r.plan.Range(lo, hi), nil
}

// Total returns the estimated number of records.
func (r *UnattributedRelease) Total() float64 { return r.plan.Total() }

// SortRoundBaseline returns the paper's S~r baseline computed from the
// same noisy answer: sort and round, without least-squares inference.
func (r *UnattributedRelease) SortRoundBaseline() []float64 {
	return core.SortRound(r.Noisy)
}

// UniversalRelease is a private universal histogram: a consistent
// hierarchy of range counts able to answer any interval query.
//
// Range queries are answered from the compiled query plan. When the
// non-negativity heuristic is enabled it truncates negative estimates,
// so the post-processed tree is no longer exactly consistent: Range
// answers may differ slightly from sums over Counts. The plan then uses
// minimal subtree decomposition — O(log n) nodes per query, keeping the
// truncation bias bounded independent of range width, where summing
// truncated unit counts would accumulate bias linearly in range size.
// With WithoutNonNegativity and WithoutRounding the tree is exactly
// consistent, and the plan answers from precomputed prefix sums over the
// leaves — O(1) per query, bit-identical to sums over Counts.
type UniversalRelease struct {
	tree     *htree.Tree
	noisy    []float64 // h~, BFS order
	inferred []float64 // h-bar before post-processing, BFS order
	post     []float64 // h-bar after non-negativity and rounding, BFS order
	leaves   []float64 // published unit estimates over the real domain

	plan *plan.Plan
	eps  float64
	autoStamp
}

func newUniversalRelease(tree *htree.Tree, noisy, inferred, post []float64, eps float64) *UniversalRelease {
	leaves := append([]float64(nil), tree.Leaves(post)...)
	return &UniversalRelease{
		tree:     tree,
		noisy:    noisy,
		inferred: inferred,
		post:     post,
		leaves:   leaves,
		plan:     plan.CompileTree(tree, post, leaves),
		eps:      eps,
	}
}

// Strategy returns StrategyUniversal.
func (r *UniversalRelease) Strategy() Strategy { return StrategyUniversal }

// Epsilon returns the privacy cost spent on this release.
func (r *UniversalRelease) Epsilon() float64 { return r.eps }

// Counts returns the published unit-count estimates over the real domain
// (a copy).
func (r *UniversalRelease) Counts() []float64 {
	return append([]float64(nil), r.leaves...)
}

// Domain returns the size of the real (unpadded) domain.
func (r *UniversalRelease) Domain() int { return r.tree.Domain() }

func (r *UniversalRelease) queryPlan() *plan.Plan { return r.plan }

// TreeHeight returns the height ell of the underlying query tree; the
// release used sensitivity ell.
func (r *UniversalRelease) TreeHeight() int { return r.tree.Height() }

// Branching returns the fan-out k of the underlying query tree.
func (r *UniversalRelease) Branching() int { return r.tree.K() }

// Range answers the half-open range-count query [lo, hi) from the
// compiled plan: minimal subtree decomposition (O(log n) nodes,
// allocation-free), or precomputed leaf prefix sums in O(1) when the
// tree is exactly consistent. The empty range lo == hi answers 0.
func (r *UniversalRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.leaves) || lo > hi {
		return 0, badRange(lo, hi, len(r.leaves))
	}
	return r.plan.Range(lo, hi), nil
}

// RangeNoisy answers [lo, hi) from the raw noisy tree using the paper's
// H~ strategy (summing the minimal subtree decomposition), bypassing
// inference. It exists for baseline comparisons. The empty range
// lo == hi answers 0.
func (r *UniversalRelease) RangeNoisy(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.leaves) || lo > hi {
		return 0, badRange(lo, hi, len(r.leaves))
	}
	return core.TreeRangeHTilde(r.tree, r.noisy, lo, hi), nil
}

// Total returns the estimated number of records in the real domain.
func (r *UniversalRelease) Total() float64 { return r.plan.Total() }

// NoisyTree returns a copy of the raw noisy hierarchical answer h~ in BFS
// order (root first).
func (r *UniversalRelease) NoisyTree() []float64 {
	return append([]float64(nil), r.noisy...)
}

// InferredTree returns a copy of the consistent inferred tree h-bar in
// BFS order, before non-negativity and rounding post-processing.
func (r *UniversalRelease) InferredTree() []float64 {
	return append([]float64(nil), r.inferred...)
}

// WaveletRelease is a private histogram produced by the Haar-wavelet
// mechanism (Xiao et al.).
type WaveletRelease struct {
	counts []float64
	plan   *plan.Plan
	eps    float64
	autoStamp
}

func newWaveletRelease(counts []float64, eps float64, round bool, src *rand.Rand) (*WaveletRelease, error) {
	noisy, err := wavelet.Release(counts, eps, src)
	if err != nil {
		return nil, fmt.Errorf("dphist: %w", err)
	}
	if round {
		core.RoundNonNegInt(noisy)
	}
	return &WaveletRelease{counts: noisy, plan: plan.Compile1D(noisy), eps: eps}, nil
}

// Strategy returns StrategyWavelet.
func (r *WaveletRelease) Strategy() Strategy { return StrategyWavelet }

// Epsilon returns the privacy cost spent on this release.
func (r *WaveletRelease) Epsilon() float64 { return r.eps }

// Counts returns the published unit-count estimates (a copy).
func (r *WaveletRelease) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

func (r *WaveletRelease) queryPlan() *plan.Plan { return r.plan }

// Range answers the half-open range-count query [lo, hi). The empty
// range lo == hi answers 0.
func (r *WaveletRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo > hi {
		return 0, badRange(lo, hi, len(r.counts))
	}
	return r.plan.Range(lo, hi), nil
}

// Total returns the estimated number of records.
func (r *WaveletRelease) Total() float64 { return r.plan.Total() }

// HierarchyReleaseResult is a private answer to a custom constrained
// query set.
type HierarchyReleaseResult struct {
	// Noisy is the raw perturbed answer vector, generally inconsistent.
	Noisy []float64
	// Inferred is the minimum-L2 consistent answer vector.
	Inferred []float64

	parent []int // forest shape, parent[i] or -1, for serialization
	leaves []int // leaf query indices, ascending
	counts []float64
	plan   *plan.Plan
	eps    float64
	autoStamp
}

func newHierarchyReleaseResult(h *core.Hierarchy, noisy, inferred []float64, eps float64) *HierarchyReleaseResult {
	leaves := append([]int(nil), h.Leaves()...)
	counts := make([]float64, len(leaves))
	for i, leaf := range leaves {
		counts[i] = inferred[leaf]
	}
	// Noisy and Inferred are copied so the release never shares slices
	// with its caller (see the Release doc on aliasing).
	return &HierarchyReleaseResult{
		Noisy:    append([]float64(nil), noisy...),
		Inferred: append([]float64(nil), inferred...),
		parent:   append([]int(nil), h.Parents()...),
		leaves:   leaves,
		counts:   counts,
		plan:     plan.Compile1D(counts),
		eps:      eps,
	}
}

// Strategy returns StrategyHierarchy.
func (r *HierarchyReleaseResult) Strategy() Strategy { return StrategyHierarchy }

// Epsilon returns the privacy cost spent on this release.
func (r *HierarchyReleaseResult) Epsilon() float64 { return r.eps }

// Counts returns the inferred answers of the leaf queries (a copy), in
// Hierarchy.Leaves order.
func (r *HierarchyReleaseResult) Counts() []float64 {
	return append([]float64(nil), r.counts...)
}

func (r *HierarchyReleaseResult) queryPlan() *plan.Plan { return r.plan }

// Leaves returns the indices of the leaf queries whose answers Counts
// reports, in ascending order.
func (r *HierarchyReleaseResult) Leaves() []int {
	return append([]int(nil), r.leaves...)
}

// Range answers the interval query [lo, hi) over the leaf sequence: the
// estimated sum of leaf answers lo through hi-1 in Leaves order. The
// empty range lo == hi answers 0.
func (r *HierarchyReleaseResult) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.counts) || lo > hi {
		return 0, badRange(lo, hi, len(r.counts))
	}
	return r.plan.Range(lo, hi), nil
}

// Total returns the estimated sum of all leaf answers; by consistency
// this equals the estimated root totals of the constraint forest.
func (r *HierarchyReleaseResult) Total() float64 { return r.plan.Total() }
