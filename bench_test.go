package dphist

// One benchmark per table/figure of the paper, plus benches for the
// closed-form inference algorithms whose efficiency the paper highlights
// (Theorems 1 and 3 give linear-time solutions; the benches document
// that). Full paper-scale sweeps live in cmd/dphist-bench; each bench
// here runs one trial of the corresponding experiment pipeline at test
// scale so `go test -bench=.` stays fast while still exercising the
// exact code paths that regenerate the figures.

import (
	"testing"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/experiments"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/wavelet"
)

func benchCfg() experiments.Config {
	return experiments.Config{
		Seed:          42,
		Scale:         experiments.ScaleSmall,
		Trials:        3,
		RangesPerSize: 50,
	}
}

// Figure 2(b): the running example, all three query pipelines.
func BenchmarkFig2Example(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig2(cfg, 1.0)
	}
}

// Figure 3: one sample on the mostly-uniform 25-sequence.
func BenchmarkFig3Sample(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig3(cfg)
	}
}

// Figure 5: the unattributed-histogram sweep (3 datasets x 3 epsilons).
func BenchmarkFig5Unattributed(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig5(cfg)
	}
}

// Figure 6: the universal-histogram range sweep (2 datasets x 3 epsilons).
func BenchmarkFig6Universal(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig6(cfg)
	}
}

// Figure 7: the positional error profile on NetTrace.
func BenchmarkFig7Profile(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig7(cfg)
	}
}

// Theorem 2: the d-scaling study for S-bar.
func BenchmarkTheorem2Scaling(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunTheorem2(cfg)
	}
}

// Theorem 4(iv): the all-but-endpoints gap experiment.
func BenchmarkTheorem4Gap(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunTheorem4(cfg)
	}
}

// Appendix E: the usefulness-bound table and the database-size growth
// comparison against the equi-depth baseline.
func BenchmarkBlumComparison(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.BlumBounds(0.05, 0.01)
		_ = experiments.RunBlumEmpirical(cfg)
	}
}

// Ablation: branching-factor sweep for the H tree.
func BenchmarkBranchingFactor(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunBranching(cfg)
	}
}

// Ablation: Section 4.2 non-negativity heuristic.
func BenchmarkNonNegativityAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunNonNegativity(cfg)
	}
}

// Ablation: wavelet mechanism vs the H strategies.
func BenchmarkWaveletVsHTree(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunWaveletComparison(cfg)
	}
}

// Extension: 2D universal histograms (Appendix B future work).
func Benchmark2DExtension(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunExt2D(cfg)
	}
}

// Theorem 1's solution via PAVA is linear time: full 65536-element
// isotonic inference per iteration.
func BenchmarkInferSorted64K(b *testing.B) {
	truth := make([]float64, 1<<16)
	for i := range truth {
		truth[i] = float64(i / 64)
	}
	noisy := core.Perturb(truth, 1, 0.1, laplace.NewRand(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.InferSorted(noisy)
	}
}

// Theorem 3's two-pass inference is linear time: a height-17 binary tree
// (131071 nodes) per iteration.
func BenchmarkInferTree64K(b *testing.B) {
	tree := htree.MustNew(2, 1<<16)
	unit := make([]float64, 1<<16)
	noisy := core.ReleaseTree(tree, unit, 0.1, laplace.NewRand(2, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.InferTree(tree, noisy)
	}
}

// The Laplace mechanism itself at figure scale.
func BenchmarkRelease64K(b *testing.B) {
	unit := make([]float64, 1<<16)
	src := laplace.NewRand(3, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ReleaseL(unit, 1.0, src)
	}
}

// The Haar decomposition at figure scale.
func BenchmarkWaveletDecompose64K(b *testing.B) {
	unit := make([]float64, 1<<16)
	for i := range unit {
		unit[i] = float64(i % 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Decompose(unit); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end public API: one universal release over a 16K domain.
func BenchmarkUniversalHistogram16K(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	m := MustNew(WithSeed(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.UniversalHistogram(counts, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end public API: one unattributed release over a 16K multiset.
func BenchmarkUnattributedHistogram16K(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 100)
	}
	m := MustNew(WithSeed(10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.UnattributedHistogram(counts, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
