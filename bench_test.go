package dphist

// One benchmark per table/figure of the paper, plus benches for the
// closed-form inference algorithms whose efficiency the paper highlights
// (Theorems 1 and 3 give linear-time solutions; the benches document
// that). Full paper-scale sweeps live in cmd/dphist-bench; each bench
// here runs one trial of the corresponding experiment pipeline at test
// scale so `go test -bench=.` stays fast while still exercising the
// exact code paths that regenerate the figures.

import (
	"container/list"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/experiments"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/wavelet"
)

func benchCfg() experiments.Config {
	return experiments.Config{
		Seed:          42,
		Scale:         experiments.ScaleSmall,
		Trials:        3,
		RangesPerSize: 50,
	}
}

// Figure 2(b): the running example, all three query pipelines.
func BenchmarkFig2Example(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig2(cfg, 1.0)
	}
}

// Figure 3: one sample on the mostly-uniform 25-sequence.
func BenchmarkFig3Sample(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig3(cfg)
	}
}

// Figure 5: the unattributed-histogram sweep (3 datasets x 3 epsilons).
func BenchmarkFig5Unattributed(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig5(cfg)
	}
}

// Figure 6: the universal-histogram range sweep (2 datasets x 3 epsilons).
func BenchmarkFig6Universal(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig6(cfg)
	}
}

// Figure 7: the positional error profile on NetTrace.
func BenchmarkFig7Profile(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunFig7(cfg)
	}
}

// Theorem 2: the d-scaling study for S-bar.
func BenchmarkTheorem2Scaling(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunTheorem2(cfg)
	}
}

// Theorem 4(iv): the all-but-endpoints gap experiment.
func BenchmarkTheorem4Gap(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunTheorem4(cfg)
	}
}

// Appendix E: the usefulness-bound table and the database-size growth
// comparison against the equi-depth baseline.
func BenchmarkBlumComparison(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.BlumBounds(0.05, 0.01)
		_ = experiments.RunBlumEmpirical(cfg)
	}
}

// Ablation: branching-factor sweep for the H tree.
func BenchmarkBranchingFactor(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunBranching(cfg)
	}
}

// Ablation: Section 4.2 non-negativity heuristic.
func BenchmarkNonNegativityAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunNonNegativity(cfg)
	}
}

// Ablation: wavelet mechanism vs the H strategies.
func BenchmarkWaveletVsHTree(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunWaveletComparison(cfg)
	}
}

// Extension: 2D universal histograms (Appendix B future work).
func Benchmark2DExtension(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunExt2D(cfg)
	}
}

// Theorem 1's solution via PAVA is linear time: full 65536-element
// isotonic inference per iteration.
func BenchmarkInferSorted64K(b *testing.B) {
	truth := make([]float64, 1<<16)
	for i := range truth {
		truth[i] = float64(i / 64)
	}
	noisy := core.Perturb(truth, 1, 0.1, laplace.NewRand(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.InferSorted(noisy)
	}
}

// Theorem 3's two-pass inference is linear time: a height-17 binary tree
// (131071 nodes) per iteration.
func BenchmarkInferTree64K(b *testing.B) {
	tree := htree.MustNew(2, 1<<16)
	unit := make([]float64, 1<<16)
	noisy := core.ReleaseTree(tree, unit, 0.1, laplace.NewRand(2, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.InferTree(tree, noisy)
	}
}

// The Laplace mechanism itself at figure scale.
func BenchmarkRelease64K(b *testing.B) {
	unit := make([]float64, 1<<16)
	src := laplace.NewRand(3, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ReleaseL(unit, 1.0, src)
	}
}

// The Haar decomposition at figure scale.
func BenchmarkWaveletDecompose64K(b *testing.B) {
	unit := make([]float64, 1<<16)
	for i := range unit {
		unit[i] = float64(i % 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Decompose(unit); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end public API: one universal release over a 16K domain.
func BenchmarkUniversalHistogram16K(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	m := MustNew(WithSeed(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.UniversalHistogram(counts, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// singleMutexStore replicates the seed release store's read path — one
// global mutex, a TTL clock read, and an LRU touch on every Get — as
// the baseline BenchmarkStoreGetParallel measures the sharded store
// against.
type singleMutexStore struct {
	mu      sync.Mutex
	items   map[string]*storeItem
	recency *list.List
}

func newSingleMutexStore() *singleMutexStore {
	return &singleMutexStore{items: make(map[string]*storeItem), recency: list.New()}
}

func (s *singleMutexStore) put(name string, r Release) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[name] = &storeItem{release: r, elem: s.recency.PushFront(name)}
}

func (s *singleMutexStore) get(name string) (Release, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[name]
	if !ok {
		return nil, false
	}
	_ = time.Now() // the seed store consulted the TTL clock on every read
	s.recency.MoveToFront(it.elem)
	return it.release, true
}

// The serving metadata hot path under concurrent readers: the seed
// store serialized every Get on one mutex and touched the LRU list and
// clock each time. The sharded store hashes to an independent shard and
// skips recency/clock work it does not need; it must beat the baseline
// here, and it additionally removes cross-core lock contention that
// this box (or any single-core runner) cannot exhibit.
func BenchmarkStoreGetParallel(b *testing.B) {
	rel, err := MustNew(WithSeed(11)).UniversalHistogram([]float64{2, 0, 10, 2, 5, 5, 5, 5}, 1)
	if err != nil {
		b.Fatal(err)
	}
	const names = 64
	keys := make([]string, names)
	for i := range keys {
		keys[i] = fmt.Sprintf("rel-%d", i)
	}
	b.Run("single-mutex-baseline", func(b *testing.B) {
		s := newSingleMutexStore()
		for _, k := range keys {
			s.put(k, rel)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := s.get(keys[i%names]); !ok {
					b.Fail()
				}
				i++
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		s := NewStore() // default: defaultShards shards, unbounded
		for _, k := range keys {
			if _, err := s.Put(k, rel); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, _, ok := s.Get(keys[i%names]); !ok {
					b.Fail()
				}
				i++
			}
		})
	})
}

// The write side of the durable store: one journaled, fsync-free put.
// (Fsync cost is the disk's, not the code's; WithoutSync isolates the
// framing and bookkeeping overhead.)
func BenchmarkStorePutDurable(b *testing.B) {
	rel, err := MustNew(WithSeed(12)).UniversalHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := OpenStore(b.TempDir(), WithoutSync(), WithSnapshotEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("hot", rel); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end public API: one unattributed release over a 16K multiset.
func BenchmarkUnattributedHistogram16K(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 100)
	}
	m := MustNew(WithSeed(10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.UnattributedHistogram(counts, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
