package dphist

// The plan-equivalence property: for every strategy, over a sweep of
// domains and epsilons, the plan-based batch engines must answer
// exactly — bit-identically — what the per-query Release.Range and
// RectQuerier.Rect calls answer, before and after a JSON round trip
// through DecodeRelease (which recompiles the plan from the wire form).
// This is the contract that lets the store cache batch answers and
// serve them interchangeably with live computation.

import (
	"encoding/json"
	"math/rand/v2"
	"testing"
)

// chainHierarchy builds a one-root forest with n leaf queries, so the
// hierarchy strategy can join domain sweeps of any size.
func chainHierarchy(t testing.TB, n int) *Hierarchy {
	t.Helper()
	parent := make([]int, n+1)
	parent[0] = -1
	for i := 1; i <= n; i++ {
		parent[i] = 0
	}
	h, err := NewHierarchy(parent)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// reshapeCells folds a count vector into rows of width w for the 2-D
// strategy.
func reshapeCells(counts []float64, w int) [][]float64 {
	var cells [][]float64
	for lo := 0; lo < len(counts); lo += w {
		hi := min(lo+w, len(counts))
		cells = append(cells, counts[lo:hi])
	}
	return cells
}

// mintAll mints one release of every strategy over a domain-sized input.
func mintAll(t testing.TB, m *Mechanism, domain int, eps float64) []Release {
	t.Helper()
	counts := make([]float64, domain)
	for i := range counts {
		counts[i] = float64((i*13 + 5) % 17)
	}
	out := make([]Release, 0, len(Strategies()))
	for _, strategy := range Strategies() {
		req := Request{Strategy: strategy, Counts: counts, Epsilon: eps}
		switch strategy {
		case StrategyHierarchy:
			req.Hierarchy = chainHierarchy(t, domain)
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = reshapeCells(counts, max(1, domain/2))
		}
		rel, err := m.Release(req)
		if err != nil {
			t.Fatalf("domain %d, %v: %v", domain, strategy, err)
		}
		out = append(out, rel)
	}
	return out
}

// rangeSweep enumerates every (lo, hi) pair for small domains and a
// deterministic random sample for larger ones.
func rangeSweep(n int, rng *rand.Rand) []RangeSpec {
	if n <= 24 {
		var specs []RangeSpec
		for lo := 0; lo <= n; lo++ {
			for hi := lo; hi <= n; hi++ {
				specs = append(specs, RangeSpec{Lo: lo, Hi: hi})
			}
		}
		return specs
	}
	specs := make([]RangeSpec, 300)
	for i := range specs {
		lo := rng.IntN(n + 1)
		specs[i] = RangeSpec{Lo: lo, Hi: lo + rng.IntN(n-lo+1)}
	}
	return specs
}

func TestPlanEquivalenceAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for _, consistent := range []bool{false, true} {
		opts := []Option{WithSeed(91)}
		if consistent {
			opts = append(opts, WithoutNonNegativity(), WithoutRounding())
		}
		for _, domain := range []int{1, 2, 5, 16, 33, 64} {
			for _, eps := range []float64{1.0, 0.1} {
				for _, rel := range mintAll(t, MustNew(opts...), domain, eps) {
					checkPlanEquivalence(t, rel, rng)
				}
			}
		}
	}
}

// checkPlanEquivalence holds one release to the contract: batch ==
// per-query exactly, and a decoded copy answers bit-identically.
func checkPlanEquivalence(t *testing.T, rel Release, rng *rand.Rand) {
	t.Helper()
	n := len(rel.Counts())
	specs := rangeSweep(n, rng)
	got, err := QueryBatch(rel, specs)
	if err != nil {
		t.Fatalf("%v: %v", rel.Strategy(), err)
	}
	for i, q := range specs {
		want, err := rel.Range(q.Lo, q.Hi)
		if err != nil {
			t.Fatalf("%v: Range(%d,%d): %v", rel.Strategy(), q.Lo, q.Hi, err)
		}
		if got[i] != want {
			t.Fatalf("%v: batch [%d,%d) = %v, Range = %v", rel.Strategy(), q.Lo, q.Hi, got[i], want)
		}
	}

	data, err := json.Marshal(rel)
	if err != nil {
		t.Fatalf("%v: %v", rel.Strategy(), err)
	}
	back, err := DecodeRelease(data)
	if err != nil {
		t.Fatalf("%v: decode: %v", rel.Strategy(), err)
	}
	decoded, err := QueryBatch(back, specs)
	if err != nil {
		t.Fatalf("%v: decoded batch: %v", rel.Strategy(), err)
	}
	for i := range got {
		if decoded[i] != got[i] {
			t.Fatalf("%v: decoded plan answers %v, original %v (spec %+v)",
				rel.Strategy(), decoded[i], got[i], specs[i])
		}
	}

	rq, ok := rel.(RectQuerier)
	if !ok {
		return
	}
	w, h := rq.Width(), rq.Height()
	var rects []RectSpec
	for i := 0; i < 60; i++ {
		x0, y0 := rng.IntN(w+1), rng.IntN(h+1)
		rects = append(rects, RectSpec{X0: x0, Y0: y0, X1: x0 + rng.IntN(w-x0+1), Y1: y0 + rng.IntN(h-y0+1)})
	}
	gotR, err := QueryRects(rel, rects)
	if err != nil {
		t.Fatalf("%v: %v", rel.Strategy(), err)
	}
	for i, q := range rects {
		want, err := rq.Rect(q.X0, q.Y0, q.X1, q.Y1)
		if err != nil {
			t.Fatalf("%v: Rect%+v: %v", rel.Strategy(), q, err)
		}
		if gotR[i] != want {
			t.Fatalf("%v: batch rect %+v = %v, Rect = %v", rel.Strategy(), q, gotR[i], want)
		}
	}
	decodedR, err := QueryRects(back, rects)
	if err != nil {
		t.Fatalf("%v: decoded rects: %v", rel.Strategy(), err)
	}
	for i := range gotR {
		if decodedR[i] != gotR[i] {
			t.Fatalf("%v: decoded rect plan answers %v, original %v", rel.Strategy(), decodedR[i], gotR[i])
		}
	}
}

// auditedRelease embeds a concrete in-library release and overrides
// Range — the shape of user code that wraps a release to log, deny, or
// transform queries.
type auditedRelease struct {
	*UniversalRelease
	calls int
}

func (a *auditedRelease) Range(lo, hi int) (float64, error) {
	a.calls++
	v, err := a.UniversalRelease.Range(lo, hi)
	return v + 1000, err // visibly different from the plan's answer
}

// A wrapper embedding an in-library release promotes the unexported
// queryPlan method, but the batch engine must NOT take that plan: it
// would silently bypass the wrapper's Range override. releasePlan
// dispatches on exact concrete types, so wrappers fall back to Range.
func TestWrappedReleaseKeepsItsRangeOverride(t *testing.T) {
	rel, err := MustNew(WithSeed(95)).UniversalHistogram([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &auditedRelease{UniversalRelease: rel}
	got, err := QueryBatch(wrapped, []RangeSpec{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.calls != 2 {
		t.Fatalf("wrapper Range called %d times, want 2 (plan bypassed the override)", wrapped.calls)
	}
	for i, q := range []RangeSpec{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}} {
		base, err := rel.Range(q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != base+1000 {
			t.Fatalf("answer %d = %v, want the override's %v", i, got[i], base+1000)
		}
	}
}

// Every one of the seven strategies must answer batches without
// allocating in steady state — the acceptance bar the old engine only
// met for UniversalRelease.
func TestBatchPathZeroAllocAllStrategies(t *testing.T) {
	if raceEnabled {
		t.Skip("race-enabled sync.Pool drops Puts, so the columnar scratch shows spurious allocations")
	}
	rng := rand.New(rand.NewPCG(3, 9))
	for _, rel := range mintAll(t, MustNew(WithSeed(92)), 64, 0.5) {
		n := len(rel.Counts())
		specs := make([]RangeSpec, 200)
		for i := range specs {
			lo := rng.IntN(n)
			specs[i] = RangeSpec{Lo: lo, Hi: lo + 1 + rng.IntN(n-lo)}
		}
		dst := make([]float64, 0, len(specs))
		allocs := testing.AllocsPerRun(50, func() {
			var err error
			dst, err = QueryBatchInto(dst[:0], rel, specs)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: QueryBatchInto allocates %v per batch", rel.Strategy(), allocs)
		}
		rq, ok := rel.(RectQuerier)
		if !ok {
			continue
		}
		w, h := rq.Width(), rq.Height()
		rects := make([]RectSpec, 200)
		for i := range rects {
			x0, y0 := rng.IntN(w), rng.IntN(h)
			rects[i] = RectSpec{X0: x0, Y0: y0, X1: x0 + 1 + rng.IntN(w-x0), Y1: y0 + 1 + rng.IntN(h-y0)}
		}
		rdst := make([]float64, 0, len(rects))
		allocs = testing.AllocsPerRun(50, func() {
			var err error
			rdst, err = QueryRectsInto(rdst[:0], rel, rects)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: QueryRectsInto allocates %v per batch", rel.Strategy(), allocs)
		}
	}
}
