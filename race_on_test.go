//go:build race

package dphist

// raceEnabled gates allocation-count assertions: the race-enabled
// sync.Pool deliberately drops a fraction of Puts to shake out races,
// so pool-backed paths show spurious allocations under -race.
const raceEnabled = true
