// Package dphist releases differentially private histograms whose
// accuracy is boosted by constrained inference, implementing
//
//	Michael Hay, Vibhor Rastogi, Gerome Miklau, Dan Suciu.
//	Boosting the Accuracy of Differentially Private Histograms Through
//	Consistency. PVLDB 3(1), 2010.
//
// The core idea: instead of adding Laplace noise to the plain histogram,
// ask a query whose true answer satisfies known constraints — the counts
// in sorted order (constraints: non-decreasing) or a hierarchy of range
// counts (constraints: parent equals sum of children) — and then project
// the noisy answer onto the constraint set. The projection is pure
// post-processing, so the differential privacy guarantee is untouched,
// yet the result is often dramatically more accurate.
//
// # Requests, Releases, Sessions
//
// The public API is organized around three types:
//
//   - Request names a Strategy (one of the seven release pipelines, or
//     StrategyAuto to let the advisor pick one), the
//     sensitive counts, and an epsilon. Mechanism.Release runs any of
//     them through one entry point; Mechanism.ReleaseBatch fans a slice
//     of requests across a worker pool with deterministic per-request
//     noise streams.
//   - Release is the uniform read side every pipeline produces:
//     Strategy, Epsilon, Counts, Total, and Range queries, plus a
//     versioned JSON wire format. DecodeRelease reconstructs the right
//     concrete type from a payload without out-of-band knowledge.
//   - Session couples a Mechanism with an Accountant so every release is
//     charged against one fixed epsilon budget under sequential
//     composition — the paper's Appendix B server shape as a library
//     value.
//
// The seven strategies:
//
//   - StrategyUniversal (Mechanism.UniversalHistogram): a hierarchical
//     release answering arbitrary range-count queries with
//     poly-logarithmic error in the domain size instead of linear.
//   - StrategyUnattributed (Mechanism.UnattributedHistogram): the
//     multiset of counts, e.g. the degree distribution of a graph. Error
//     drops from Theta(n/eps^2) to O(d log^3 n / eps^2) where d is the
//     number of distinct counts.
//   - StrategyLaplace (Mechanism.LaplaceHistogram): the flat noisy
//     histogram L~, the conventional baseline.
//   - StrategyWavelet (Mechanism.WaveletHistogram): the Haar-wavelet
//     mechanism of Xiao et al., the related-work comparator.
//   - StrategyDegreeSequence (Mechanism.DegreeSequence): the
//     unattributed pipeline projected onto graphical degree sequences.
//   - StrategyHierarchy (Mechanism.HierarchyRelease): a custom
//     constraint forest, such as the introduction's student-grades
//     query set.
//   - StrategyUniversal2D (Mechanism.Universal2DHistogram): the
//     two-dimensional universal histogram of Appendix B — a quadtree of
//     noisy region counts over a Request.Cells grid, made consistent by
//     the same Theorem 3 inference (the quadtree over Morton-ordered
//     cells is the H query with branching factor 4), answering arbitrary
//     axis-aligned rectangle queries.
//
// The typed methods remain available and return the concrete release
// types with their strategy-specific extras (noisy baselines, tree
// shape, graphicality checks); Release(Request) is the polymorphic
// equivalent serving layers should build on.
//
// # Choosing a strategy
//
// Which pipeline answers a given query mix most accurately depends on
// the workload, not the data: point lookups favor the flat Laplace
// histogram, broad range scans favor the hierarchical strategies, and
// the crossover moves with the domain size and epsilon. Section 7 of
// the paper poses strategy selection as the open problem; the advisor
// answers it analytically, before any budget is spent.
//
// Workload collects the weighted queries an analyst plans to ask —
// Add for ranges, SetGrid/AddRect for rectangles — and Recommend ranks
// every strategy the workload has inputs for by predicted expected
// total squared error. Each Prediction carries a Confidence tag:
// "exact" means a closed-form expectation of the linear mechanism
// (laplace, wavelet, and universal up to 2048 padded leaves — beyond,
// PredictHierarchical fails with ErrDomainTooLarge and Recommend
// degrades to the H~ upper bound); "bound" means a one-sided figure
// that post-processing can only improve on (the sorted strategies'
// pre-isotonic noise cost, the hierarchy and quadtree per-node costs).
// Predictions describe the un-rounded, non-clamped mechanism; rounding
// adds at most 1/4 per cell.
//
// StrategyAuto wires the advisor through the mint path: a Request
// carrying StrategyAuto plus a WorkloadSketch (weighted ranges, rects,
// or a named preset — "points", "prefixes", "all_ranges", or the
// count-of-counts workload "count_of_counts") is resolved to the
// predicted-best concrete strategy before any budget is charged, then
// minted normally. The resolution is stamped on the release as an
// AutoDecision — chosen strategy, predicted error, the full ranked
// field it beat — retrievable via ReleaseDecision and carried through
// the JSON wire form, so provenance survives round-trips and durable
// store recovery. Over HTTP, POST /v1/release and /v1/releases accept
// "strategy": "auto" with a "workload" sketch, GET /v1/strategies
// advertises "auto", and /v1/stats counts resolutions per chosen
// strategy. Journals and store entries always record the concrete
// strategy, never the sentinel.
//
// # Serving range queries: mint, compile, serve
//
// Minting a release spends budget; querying it afterwards is free, so a
// deployment mints rarely and queries at traffic. The read path is a
// three-stage pipeline:
//
//   - Mint (or decode, or recover): a pipeline produces a Release — the
//     only step that costs epsilon.
//   - Compile: every in-library release compiles an immutable query
//     plan (internal/plan) at construction and again on DecodeRelease,
//     into one of four execution modes — "prefix" (O(1) prefix-sum
//     lookups, the positional and sorted strategies and exactly
//     consistent hierarchies), "tree-offset" (a branch-free O(log n)
//     walk over per-level prefix tables when post-processing left the
//     hierarchy inconsistent), "sat" (O(1) summed-area lookups for a
//     consistent quadtree), and "quadtree-offset" (the per-level walk
//     with one summed-area table per quadtree level). Plans answer
//     validated queries without allocating, for all seven strategies.
//   - Serve: QueryBatch answers many RangeSpec queries [Lo, Hi) against
//     one release in a single call. The batch is the unit of execution:
//     one branch-free validation pre-pass over every spec, then a
//     columnar split into pooled lo/hi arrays swept by the plan's batch
//     kernels (plan.RangeBatchInto/RectBatchInto). Batches at or above
//     a per-mode crossover threshold (1024 specs for the offset-table
//     modes, 8192 for the O(1) modes) are partitioned across a bounded
//     process-wide worker pool of GOMAXPROCS goroutines on cache-line-
//     aligned chunk boundaries; answers are bit-identical to the scalar
//     path either way. QueryBatchInto reuses a caller-owned result
//     buffer so steady-state serving allocates nothing at all.
//
// Store carries the retention side: releases behind names — versioned
// (every Put under a name bumps its version, monotonically, even across
// eviction), bounded by LRU capacity (WithCapacity) and TTL (WithTTL),
// and safe for concurrent use. Store.Mint charges a Session and retains
// the result in one step; Store.Query answers a range batch against a
// stored release by name. Each shard entry keeps the compiled plan next
// to the release, and the query paths snapshot both under a brief read
// lock and compute the whole batch outside it — a 100k-range batch
// never stalls a concurrent Put on the same shard.
//
// On top of the plans, WithQueryCache(n) bounds a sharded LRU answer
// cache: whole batch answers keyed by (namespace, name, version, spec
// batch), verified against the full spec batch on every hit (hash
// collisions degrade to misses, never wrong answers), with single-
// flight stampede protection so concurrent misses for one batch share
// a single computation. Entries are invalidated on Put, Delete, TTL
// expiry, and capacity eviction — and version keying makes a re-minted
// release unreachable from stale entries even before invalidation runs
// — so a cached answer is always the answer the live release would
// give. Store.CacheStats reports hits, misses, occupancy, and capacity.
//
// Range semantics are uniform across all release types: intervals are
// half-open, the empty query lo == hi answers 0, and out-of-bounds or
// inverted ranges fail. Releases are self-contained — the exported
// raw-answer slices (Noisy, Inferred) are copies, so nothing an analyst
// mutates can desynchronize Counts, Range, or Total.
//
// # Serving rectangle queries (2-D)
//
// The 2-D release is a first-class citizen of the same serving engine.
// A RectSpec names the half-open axis-aligned rectangle
// [X0, X1) x [Y0, Y1) over the release's Width() x Height() cell grid;
// empty rectangles answer 0, and every answer equals the sum of the
// published cells it covers (exactly when the post-processed quadtree
// is consistent). QueryRects and QueryRectsInto are the batch engine —
// all-or-nothing validation, then a per-rectangle fast path:
//
//   - With WithoutNonNegativity and WithoutRounding the quadtree is
//     exactly consistent and the compiled plan carries a summed-area
//     table, answering any rectangle in O(1) with four lookups and zero
//     allocations — the 2-D analogue of the 1-D prefix-sum path.
//   - Otherwise the plan answers each rectangle by the quadtree-offset
//     walk — eight summed-area lookups per quadtree level, O(log side)
//     total, still allocation-free — which keeps the non-negativity
//     truncation bias bounded per query instead of growing with the
//     rectangle's area.
//
// Rectangle batches flow through the same store snapshot and answer
// cache as range batches (Store.QueryRects, WithQueryCache).
//
// Store.QueryRects serves rectangle batches against a stored release by
// name, and Universal2DRelease also answers the 1-D Release interface
// (Counts row-major, Range over row-major order), so generic tooling —
// listing, budgets, journaling, recovery — needs no special cases.
//
// The internal/server package (run it via cmd/dphist-server) exposes
// this layer over HTTP: POST /v1/releases mints-and-stores, GET
// /v1/releases lists, POST /v1/query answers a whole range batch in one
// round trip, and POST /v1/query2d does the same for rectangle batches
// against universal2d releases. Every route also exists
// namespace-scoped under /v1/ns/{ns}/..., plus GET /healthz and GET
// /v1/stats for ops.
//
// Namespace and release names are validated at the store boundary
// (ValidateName): empty names, the dot segments "." and "..", and names
// containing "/" are refused with ErrBadName before any state — or any
// budget — is spent on them, because such names cannot survive as URL
// path segments under /v1/ns/{ns}/.... Anything else is legal; clients
// composing URLs percent-escape the segment (server.NamespacePath).
//
// # Operations: durability, namespaces, and the budget ledger
//
// Minting is permanent in the privacy sense — epsilon, once spent, never
// comes back — so the bookkeeping must be permanent in the systems sense
// too. An in-memory Store that forgets Accountant state on restart turns
// every crash into a budget-reset oracle: the restarted server would
// happily re-admit spending that already happened, and the deployment's
// sequential-composition bound would be fiction. OpenStore closes that
// hole:
//
//	store, err := dphist.OpenStore("/var/lib/dphist", dphist.WithBudget(2.0))
//	defer store.Close()
//
// Every put, delete, and budget charge is appended to a checksummed
// write-ahead log (internal/journal) and fsynced before it is
// acknowledged; the log is periodically folded into an atomically
// replaced snapshot (WithSnapshotEvery). Reopening the directory
// replays snapshot + log: all acknowledged releases answer identically,
// all version counters continue, and every namespace's Spent() is
// exactly what was admitted before the crash. Recovery truncates a torn
// final record (indistinguishable from a crashed, unacknowledged
// append) and fails loudly on corruption anywhere else — a store that
// cannot prove its ledger refuses to serve rather than under-report
// spent budget. WithoutSync trades the
// fsync-per-record for speed in tests and benchmarks.
//
// Store.Namespace(name) scopes a view with its own release keyspace and
// its own Accountant (budget total from WithBudget), so one store
// serves many tenants with independent ledgers; the plain Store methods
// are the "default" namespace. Get/Query traffic spreads across hash
// shards (WithShards) so hot metadata reads do not serialize on one
// mutex; capacity-bounded stores default to a single shard because
// exact LRU order is global state.
//
// # Streaming ingest and continual release
//
// The store serves histograms that exist; internal/ingest is the write
// path that keeps making them. A sharded pipeline absorbs event streams
// (each event a (namespace, stream, bucket, weight) arrival) and on an
// epoch schedule drains its accumulators, minting each stream's
// histogram as a versioned release — "clicks@epoch-42" — through the
// same Session path as any other mint: one budget charge per epoch,
// journaled on a durable store so a restart resumes the epoch sequence
// exactly, without re-charging. Disjoint epochs compose in parallel, so
// a sliding window summing the last W epoch releases (ComposeSum) is
// pure post-processing: "clicks@window" costs nothing and carries the
// maximum member epsilon, not the sum. Between mints, an optional
// continual-count surface (internal/stream, the binary mechanism of
// Chan et al. from Section 6's streaming discussion) answers private
// running totals per bucket at one extra per-stream charge.
//
// ComposeSum is the library-level piece: it sums already-minted
// releases of equal domain into a flat histogram release, drawing no
// noise and charging no budget.
//
// # Cluster mode: replication and read fan-out
//
// The write-ahead log, read forward, is a complete recipe for becoming
// the store that wrote it — so cluster mode promotes it to a
// replication log. NewReplica (in-memory) and OpenReplica (durable)
// open a read-only follower store whose only mutator is Apply: it
// admits primary-sequenced journal records in order, routing each
// through the same code path boot recovery uses, and refuses local
// writes with ErrReadOnly. The internal/replica tailer feeds it over
// HTTP — bootstrapping from GET /v1/repl/snapshot, then long-polling
// GET /v1/repl/stream?from=seq for NDJSON records — and converges to a
// bit-identical replica: same noisy answers, same version counters,
// same Spent() to the last float bit. JournalSeq, AppliedSeq, and
// SnapshotSeq expose the frontiers on both sides; /v1/stats reports
// them plus replication_lag_records, so lag is a subtraction, not a
// guess. A torn tail in a shipped chunk is discarded and re-polled
// exactly like boot recovery truncating a torn WAL record; a corrupt
// or gap-sequence record fails the tailer loudly and permanently — a
// replica that cannot prove it mirrors the ledger refuses to drift
// silently. If the primary has compacted past the follower's cursor
// the stream answers 410 and the tailer re-bootstraps from a fresh
// snapshot.
//
// internal/cluster adds the read fan-out: a consistent-hash ring maps
// namespaces to shards (stable under shard addition and removal), and
// a reverse-proxy router (cmd/dphist-router) pins writes to each
// shard's primary while rotating reads across its replicas, failing
// over to the next replica — and finally the primary — on connection
// errors or 5xx. Replication is privacy-neutral: the log ships
// already-noised releases and ledger charges, nothing is
// re-randomized on replay, and adding replicas or routers changes
// where a fixed release is served from, never how many times epsilon
// is spent.
//
// # Serving performance
//
// The HTTP query hot path (POST /v1/query and /v1/query2d in
// internal/server) allocates once per request at steady state: request
// bodies land in pooled buffers, a hand-rolled streaming parser —
// fuzz-proven equivalent to encoding/json on the request grammar,
// including field-name folding, duplicate-key and null semantics,
// string escapes, and integer range — fills pooled spec slices, batch
// answers flow through Namespace.QueryInto into pooled result slices,
// and the response is encoded with an append-based writer that matches
// json.Encoder byte for byte. The one remaining allocation is the
// Content-Type header write inside net/http.
//
// cmd/dphist-loadgen measures that path under production-shaped load:
// a bounded worker pool over real sockets, Zipf popularity across
// stored releases, correlated range endpoints, and a weighted
// query/mint/ingest mix, reporting p50/p99/p99.9 per op class from
// allocation-free log-linear histograms. Unthrottled (-qps 0) the
// achieved QPS is the closed-loop saturation throughput and the
// quantiles include queueing; paced (-qps N) they read service latency
// at a fixed arrival rate. dphist-bench loadtest commits the same
// measurements to BENCH_serving.json, where CI gates p99 and
// saturation QPS against the committed baseline.
//
// Baselines from the paper are included for comparison: the
// sort-and-round estimator S~r (UnattributedRelease.SortRoundBaseline)
// and the no-inference tree H~ (UniversalRelease.RangeNoisy).
//
// All randomness is deterministic given the Mechanism seed, which makes
// experiments reproducible; distinct releases from one Mechanism use
// independent noise streams.
package dphist
