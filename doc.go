// Package dphist releases differentially private histograms whose
// accuracy is boosted by constrained inference, implementing
//
//	Michael Hay, Vibhor Rastogi, Gerome Miklau, Dan Suciu.
//	Boosting the Accuracy of Differentially Private Histograms Through
//	Consistency. PVLDB 3(1), 2010.
//
// The core idea: instead of adding Laplace noise to the plain histogram,
// ask a query whose true answer satisfies known constraints — the counts
// in sorted order (constraints: non-decreasing) or a hierarchy of range
// counts (constraints: parent equals sum of children) — and then project
// the noisy answer onto the constraint set. The projection is pure
// post-processing, so the differential privacy guarantee is untouched,
// yet the result is often dramatically more accurate.
//
// Two histogram tasks are supported end to end:
//
//   - Unattributed histograms (Mechanism.UnattributedHistogram): the
//     multiset of counts, e.g. the degree sequence of a graph. Error
//     drops from Theta(n/eps^2) to O(d log^3 n / eps^2) where d is the
//     number of distinct counts.
//   - Universal histograms (Mechanism.UniversalHistogram): a release
//     that answers arbitrary range-count queries, with poly-logarithmic
//     error in the domain size instead of linear.
//
// Baselines from the paper are included for comparison: the flat Laplace
// histogram L~ (Mechanism.LaplaceHistogram), the sort-and-round estimator
// S~r (UnattributedRelease.SortRoundBaseline), the no-inference tree H~
// (UniversalRelease.RangeNoisy), and the Haar-wavelet mechanism of Xiao
// et al. (Mechanism.WaveletHistogram).
//
// All randomness is deterministic given the Mechanism seed, which makes
// experiments reproducible; distinct releases from one Mechanism use
// independent noise streams.
package dphist
