package dphist

// Auto-strategy resolution: a Request may carry StrategyAuto plus a
// WorkloadSketch describing the queries the analyst plans to ask. Before
// any budget is charged or noise drawn, the mechanism expands the sketch
// into an advisor workload, predicts every candidate strategy's expected
// error (internal/workload), rewrites the request to the predicted-best
// concrete strategy, and stamps the decision — chosen strategy,
// predicted error, ranked alternatives — onto the minted release, where
// it survives JSON round-trips and store recovery. The paper's Section 7
// poses strategy selection as the open problem; this is its serving
// shape.

import (
	"errors"
	"fmt"
	"math"

	"github.com/dphist/dphist/internal/workload"
)

// ErrBadSketch reports a malformed or unusable workload sketch on a
// StrategyAuto request: unknown preset, queries outside the domain,
// missing inputs for the query kinds present, or a sketch too large to
// expand. Servers should map it to a client error, not an internal one.
var ErrBadSketch = errors.New("dphist: bad workload sketch")

// maxSketchQueries caps the total number of queries a sketch may expand
// to (presets included), so a hostile sketch cannot consume unbounded
// memory or CPU on the request path.
const maxSketchQueries = 4096

// autoMaxExactLeaves caps the padded tree size for the exact universal
// prediction during auto resolution; beyond it the cheap H~ upper bound
// is used instead, keeping resolution sub-millisecond on the mint path.
const autoMaxExactLeaves = 512

// WeightedRange is one weighted half-open range query [Lo, Hi) in a
// workload sketch. A zero Weight means 1.
type WeightedRange struct {
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	Weight float64 `json:"weight,omitempty"`
}

// WeightedRect is one weighted half-open rectangle query
// [X0, X1) x [Y0, Y1) in a workload sketch. A zero Weight means 1.
type WeightedRect struct {
	X0     int     `json:"x0"`
	Y0     int     `json:"y0"`
	X1     int     `json:"x1"`
	Y1     int     `json:"y1"`
	Weight float64 `json:"weight,omitempty"`
}

// WorkloadSketch describes the queries an analyst plans to ask of a
// release, so StrategyAuto can pick the strategy that answers them most
// accurately. Range queries (and 1-D presets) index the request's Counts
// positions — or leaf positions for a request carrying a Hierarchy;
// rectangle queries index the request's Cells grid. A preset and
// explicit queries may be combined; the expansion is capped at 4096
// queries total.
type WorkloadSketch struct {
	// Preset names a canned 1-D query set over the Counts domain:
	//
	//   - "points": every unit count individually.
	//   - "prefixes": every prefix range [0, i) — the CDF workload.
	//   - "all_ranges": every non-empty range (quadratic; only modest
	//     domains fit under the expansion cap).
	//   - "count_of_counts": the hierarchical count-of-counts workload of
	//     Kuo et al. — every multiplicity individually plus every
	//     cumulative prefix, the query mix degree-histogram analyses ask.
	Preset string `json:"preset,omitempty"`
	// Ranges lists explicit weighted range queries.
	Ranges []WeightedRange `json:"ranges,omitempty"`
	// Rects lists explicit weighted rectangle queries over Cells.
	Rects []WeightedRect `json:"rects,omitempty"`
}

// presetSize returns the number of queries a preset expands to over a
// 1-D domain of size n, without expanding it.
func presetSize(preset string, n int) (int, error) {
	switch preset {
	case "":
		return 0, nil
	case "points", "prefixes":
		return n, nil
	case "all_ranges":
		return n * (n + 1) / 2, nil
	case "count_of_counts":
		return 2 * n, nil
	default:
		return 0, fmt.Errorf("%w: unknown preset %q", ErrBadSketch, preset)
	}
}

// expandPreset adds the preset's queries to the workload.
func expandPreset(w *workload.Workload, preset string, n int) error {
	addPoints := func() error {
		for i := 0; i < n; i++ {
			if err := w.Add(i, i+1, 1); err != nil {
				return err
			}
		}
		return nil
	}
	addPrefixes := func() error {
		for hi := 1; hi <= n; hi++ {
			if err := w.Add(0, hi, 1); err != nil {
				return err
			}
		}
		return nil
	}
	switch preset {
	case "":
		return nil
	case "points":
		return addPoints()
	case "prefixes":
		return addPrefixes()
	case "all_ranges":
		for lo := 0; lo < n; lo++ {
			for hi := lo + 1; hi <= n; hi++ {
				if err := w.Add(lo, hi, 1); err != nil {
					return err
				}
			}
		}
		return nil
	case "count_of_counts":
		if err := addPoints(); err != nil {
			return err
		}
		return addPrefixes()
	default:
		return fmt.Errorf("%w: unknown preset %q", ErrBadSketch, preset)
	}
}

// buildAutoWorkload validates a StrategyAuto request end to end —
// sketch shape, the inputs each query kind needs, and per-candidate
// input admissibility — and returns the expanded advisor workload plus
// the hierarchy sensitivity (0 when no hierarchy candidate). Everything
// a later resolution step could choke on is rejected here, so
// Request.Validate on an auto request catches the same failures
// resolution would.
func buildAutoWorkload(req Request) (*workload.Workload, float64, error) {
	sk := req.Workload
	if sk == nil {
		return nil, 0, fmt.Errorf("%w: strategy auto requires a workload sketch", ErrBadSketch)
	}
	has1D := sk.Preset != "" || len(sk.Ranges) > 0
	if !has1D && len(sk.Rects) == 0 {
		return nil, 0, fmt.Errorf("%w: sketch has no queries", ErrBadSketch)
	}
	if has1D {
		if err := validate(req.Counts, req.Epsilon); err != nil {
			return nil, 0, fmt.Errorf("range queries need counts: %w", err)
		}
	}
	if len(sk.Rects) > 0 {
		if err := validate2DCells(req.Cells, req.Epsilon); err != nil {
			return nil, 0, fmt.Errorf("rectangle queries need cells: %w", err)
		}
	}
	n := len(req.Counts)
	pn, err := presetSize(sk.Preset, n)
	if err != nil {
		return nil, 0, err
	}
	if total := pn + len(sk.Ranges) + len(sk.Rects); total > maxSketchQueries {
		return nil, 0, fmt.Errorf("%w: sketch expands to %d queries, limit %d",
			ErrBadSketch, total, maxSketchQueries)
	}
	domain := n
	if domain == 0 {
		domain = 1 // rects-only sketch; no range queries will be added
	}
	w, err := workload.New(domain)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
	}
	if has1D {
		if err := expandPreset(w, sk.Preset, n); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
		}
		for _, r := range sk.Ranges {
			if err := w.Add(r.Lo, r.Hi, weightOr1(r.Weight)); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
			}
		}
	}
	if len(sk.Rects) > 0 {
		if err := w.SetGrid(cellsWidth(req.Cells), len(req.Cells)); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
		}
		for _, r := range sk.Rects {
			if err := w.AddRect(r.X0, r.Y0, r.X1, r.Y1, weightOr1(r.Weight)); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
			}
		}
		// The quadtree itself must be constructible (the grid caps at
		// side 2^20); surface that here rather than at resolution.
		if _, err := w.ErrorUniversal2D(req.Epsilon); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSketch, err)
		}
	}
	hierSens := 0.0
	if req.Hierarchy != nil && has1D {
		if err := validateHierarchyInput(req.Hierarchy, req.Counts, req.Epsilon); err != nil {
			return nil, 0, err
		}
		hierSens = req.Hierarchy.Sensitivity()
	}
	return w, hierSens, nil
}

func weightOr1(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}

// AutoDecision records how a StrategyAuto request was resolved: the
// chosen strategy, its predicted error, and the full ranked field it
// beat. It is stamped on the minted release (see ReleaseDecision) and
// carried through the release's JSON wire form, so the provenance of an
// auto-minted release survives round-trips and durable store recovery.
type AutoDecision struct {
	// Strategy is the canonical name of the chosen concrete strategy.
	Strategy string `json:"strategy"`
	// Branching is the tree fan-out when the chosen strategy is
	// hierarchical (0 otherwise).
	Branching int `json:"branching,omitempty"`
	// PredictedError is the winner's predicted weighted total squared
	// error on the sketch.
	PredictedError float64 `json:"predicted_error"`
	// Confidence is "exact" or "bound" (see Prediction.Confidence).
	Confidence string `json:"confidence"`
	// Alternatives is the flat ranked list of every evaluated strategy,
	// winner first.
	Alternatives []Prediction `json:"alternatives"`
}

// clone returns a copy sharing no mutable state with d.
func (d *AutoDecision) clone() AutoDecision {
	out := *d
	out.Alternatives = append([]Prediction(nil), d.Alternatives...)
	return out
}

// resolveAuto resolves a StrategyAuto request into a concrete one,
// returning the rewritten request and the decision to stamp on the
// release. Concrete requests pass through untouched with a nil decision.
// Nothing is spent and no noise is drawn: resolution is pure analysis of
// the sketch, so callers charge budget against the resolved strategy.
func (m *Mechanism) resolveAuto(req Request) (Request, *AutoDecision, error) {
	if req.Strategy != StrategyAuto {
		return req, nil, nil
	}
	if !(req.Epsilon > 0) || math.IsInf(req.Epsilon, 0) {
		return Request{}, nil, fmt.Errorf("%w, got %v", errBadEpsilon, req.Epsilon)
	}
	w, hierSens, err := buildAutoWorkload(req)
	if err != nil {
		return Request{}, nil, err
	}
	preds, err := w.PredictAll(req.Epsilon, workload.PredictOptions{
		Branchings:           []int{m.branching},
		HierarchySensitivity: hierSens,
		MaxExactLeaves:       autoMaxExactLeaves,
	})
	if err != nil {
		return Request{}, nil, fmt.Errorf("%w: %v", ErrBadSketch, err)
	}
	chosen, err := ParseStrategy(string(preds[0].Strategy))
	if err != nil || !chosen.Valid() {
		return Request{}, nil, fmt.Errorf("dphist: internal: advisor chose unservable strategy %q", preds[0].Strategy)
	}
	dec := &AutoDecision{
		Strategy:       string(preds[0].Strategy),
		Branching:      preds[0].Branching,
		PredictedError: preds[0].Error,
		Confidence:     string(preds[0].Confidence),
		Alternatives:   make([]Prediction, 0, len(preds)),
	}
	for _, p := range preds {
		dec.Alternatives = append(dec.Alternatives, Prediction{
			Strategy:       string(p.Strategy),
			Branching:      p.Branching,
			PredictedError: p.Error,
			Confidence:     string(p.Confidence),
		})
	}
	req.Strategy = chosen
	return req, dec, nil
}

// autoStamp is embedded in every concrete release type to carry the
// advisor decision when the release was minted through StrategyAuto. It
// contributes nothing to directly-minted releases (nil pointer, omitted
// from the wire form).
type autoStamp struct {
	auto *AutoDecision
}

// setAutoDecision stamps the decision; called once at mint or decode.
func (a *autoStamp) setAutoDecision(d *AutoDecision) { a.auto = d }

// wireAutoDecision returns the pointer for serialization (nil when the
// release was minted directly).
func (a *autoStamp) wireAutoDecision() *AutoDecision { return a.auto }

// Decision returns the auto-resolution decision stamped on the release
// and true, or a zero decision and false when the release was minted
// with an explicit strategy. The returned value shares no state with the
// release.
func (a *autoStamp) Decision() (AutoDecision, bool) {
	if a.auto == nil {
		return AutoDecision{}, false
	}
	return a.auto.clone(), true
}

// stamper lets stampDecision reach the embedded autoStamp through the
// Release interface.
type stamper interface{ setAutoDecision(*AutoDecision) }

// stampDecision attaches a resolution decision to a freshly minted
// release; a nil decision (direct mint) is a no-op.
func stampDecision(r Release, d *AutoDecision) {
	if d == nil {
		return
	}
	if s, ok := r.(stamper); ok {
		s.setAutoDecision(d)
	}
}

// ReleaseDecision returns the advisor decision stamped on a release that
// was minted through StrategyAuto, and true; for releases minted with an
// explicit strategy it returns a zero decision and false. The decision
// survives JSON round-trips (DecodeRelease) and durable store recovery.
func ReleaseDecision(r Release) (AutoDecision, bool) {
	if s, ok := r.(interface{ Decision() (AutoDecision, bool) }); ok {
		return s.Decision()
	}
	return AutoDecision{}, false
}
