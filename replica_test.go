package dphist

// Tests for the replica apply pipeline: read-only enforcement, shipped-
// record replay parity with the primary, snapshot bootstrap and
// post-compaction resync, and durable resume without double-apply.

import (
	"errors"
	"math"
	"testing"

	"github.com/dphist/dphist/internal/journal"
)

func TestReplicaRefusesLocalMutation(t *testing.T) {
	r := NewReplica(WithBudget(2.0))
	if !r.ReadOnly() {
		t.Fatal("NewReplica store is not read-only")
	}
	if _, err := r.Put("x", want0Release(t)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on replica: %v, want ErrReadOnly", err)
	}
	if r.Delete("x") {
		t.Fatal("Delete on replica reported success")
	}
	ns := r.Namespace("tenant")
	session, err := ns.Session(MustNew(WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ns.Mint(session, "x", Request{Counts: []float64{1, 2}, Epsilon: 0.5}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Mint on replica: %v, want ErrReadOnly", err)
	}
	// The refused mint must not have charged anything.
	if spent := ns.Accountant().Spent(); spent != 0 {
		t.Fatalf("refused mint charged %v", spent)
	}
	// Direct spends are vetoed by the read-only ledger.
	if err := ns.Accountant().Spend("local", 0.5); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Spend on replica accountant: %v, want ErrReadOnly", err)
	}
}

func TestApplyRequiresReplica(t *testing.T) {
	s := NewStore()
	if err := s.Apply(journal.Record{Seq: 1, Op: journal.OpCharge, Epsilon: 1}); err == nil {
		t.Fatal("Apply accepted on a writable store")
	}
	if err := s.Bootstrap([]byte(`{"seq":1}`)); err == nil {
		t.Fatal("Bootstrap accepted on a writable store")
	}
}

// primaryWithState opens a durable primary and mints a small multi-
// namespace workload, returning the store and the range specs used for
// parity checks.
func primaryWithState(t *testing.T, dir string) (*Store, []RangeSpec) {
	t.Helper()
	p, err := OpenStore(dir, WithBudget(2.0))
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	mintInto(t, p.Namespace("default"), "traffic", counts, 0.5, 1)
	mintInto(t, p.Namespace("default"), "traffic", counts, 0.25, 2) // version 2
	mintInto(t, p.Namespace("tenant-a"), "grades", counts, 1.0, 3)
	if _, err := p.Namespace("tenant-a").Put("doomed", want0Release(t)); err != nil {
		t.Fatal(err)
	}
	if !p.Namespace("tenant-a").Delete("doomed") {
		t.Fatal("delete failed")
	}
	return p, []RangeSpec{{Lo: 0, Hi: 8}, {Lo: 2, Hi: 5}, {Lo: 7, Hi: 8}, {Lo: 3, Hi: 3}}
}

// requireParity asserts the replica answers every live release bit-
// identically to the primary and reports bit-identical Spent totals.
func requireParity(t *testing.T, p, r *Store, specs []RangeSpec) {
	t.Helper()
	for _, ns := range p.Namespaces() {
		for _, entry := range p.Namespace(ns).List() {
			want, wentry, err := p.Namespace(ns).Query(entry.Name, specs)
			if err != nil {
				t.Fatal(err)
			}
			got, gentry, err := r.Namespace(ns).Query(entry.Name, specs)
			if err != nil {
				t.Fatalf("replica %s/%s: %v", ns, entry.Name, err)
			}
			if gentry.Version != wentry.Version {
				t.Fatalf("%s/%s version = %d, want %d", ns, entry.Name, gentry.Version, wentry.Version)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s/%s answers diverge: %v != %v", ns, entry.Name, got, want)
				}
			}
		}
		ps, rs := p.Namespace(ns).Accountant().Spent(), r.Namespace(ns).Accountant().Spent()
		if math.Float64bits(ps) != math.Float64bits(rs) {
			t.Fatalf("namespace %s Spent diverges: %v != %v", ns, rs, ps)
		}
	}
}

func TestReplicaApplyParity(t *testing.T) {
	p, specs := primaryWithState(t, t.TempDir())
	defer p.Close()
	recs, err := p.ReplicationRead(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records to ship")
	}
	r := NewReplica(WithBudget(2.0))
	for _, rec := range recs {
		if err := r.Apply(rec); err != nil {
			t.Fatalf("apply seq %d: %v", rec.Seq, err)
		}
	}
	if r.AppliedSeq() != p.JournalSeq() {
		t.Fatalf("applied %d, primary at %d", r.AppliedSeq(), p.JournalSeq())
	}
	requireParity(t, p, r, specs)
	// The deleted name stays deleted on the replica too.
	if _, _, ok := r.Namespace("tenant-a").Get("doomed"); ok {
		t.Fatal("deleted release alive on replica")
	}
	// Reconnect overlap: re-applying an old record is a silent no-op.
	spent := r.Namespace("tenant-a").Accountant().Spent()
	if err := r.Apply(recs[len(recs)-1]); err != nil {
		t.Fatal(err)
	}
	if got := r.Namespace("tenant-a").Accountant().Spent(); got != spent {
		t.Fatalf("overlap re-apply changed Spent: %v != %v", got, spent)
	}
	// A gap is stream corruption and must fail loudly.
	gap := journal.Record{Seq: r.AppliedSeq() + 2, Op: journal.OpCharge, Namespace: "default", Epsilon: 0.01}
	if err := r.Apply(gap); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("gap apply error = %v, want ErrCorrupt", err)
	}
}

func TestReplicaBootstrapAndResync(t *testing.T) {
	p, specs := primaryWithState(t, t.TempDir())
	defer p.Close()
	// Compact: the early records now live only in the snapshot, so a
	// fresh replica cannot stream from 1.
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReplicationRead(1); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("read below horizon: %v, want ErrCompacted", err)
	}
	snap, seq, err := p.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != p.JournalSeq() || seq != p.SnapshotSeq() {
		t.Fatalf("snapshot seq %d, journal %d, on-disk %d", seq, p.JournalSeq(), p.SnapshotSeq())
	}
	r := NewReplica(WithBudget(2.0))
	// Hand out an accountant before the bootstrap: the pointer must keep
	// observing the ledger afterwards.
	acct := r.Namespace("tenant-a").Accountant()
	if err := r.Bootstrap(snap); err != nil {
		t.Fatal(err)
	}
	if r.AppliedSeq() != seq {
		t.Fatalf("applied %d after bootstrap, want %d", r.AppliedSeq(), seq)
	}
	requireParity(t, p, r, specs)
	if acct != r.Namespace("tenant-a").Accountant() {
		t.Fatal("bootstrap replaced the accountant object")
	}
	// Live tail after the bootstrap: new primary writes stream over.
	mintInto(t, p.Namespace("tenant-b"), "degrees", []float64{1, 2, 3, 4, 5, 6, 7, 8}, 0.125, 9)
	recs, err := p.ReplicationRead(r.AppliedSeq() + 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := r.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	requireParity(t, p, r, specs)
	// Replication never moves backwards: a stale snapshot is refused.
	if err := r.Bootstrap(snap); err != nil && r.AppliedSeq() == seq {
		t.Fatalf("equal-seq bootstrap should be accepted idempotently: %v", err)
	}
	old := r.AppliedSeq()
	stale, _, err := p.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_ = stale
	if err := r.Apply(journal.Record{Seq: old + 1, Op: journal.OpCharge, Namespace: "default", Epsilon: 0.0625}); err != nil {
		t.Fatal(err)
	}
	if err := r.Bootstrap(snap); err == nil {
		t.Fatal("bootstrap behind applied seq accepted")
	}
	// Garbage bytes are corruption, loudly.
	if err := r.Bootstrap([]byte("{broken")); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("garbage bootstrap error = %v, want ErrCorrupt", err)
	}
}

// A durable replica's WAL carries primary sequence numbers, so killing
// and reopening it resumes the stream exactly where it stopped — and
// re-shipping the whole log afterwards must not double-apply anything.
func TestReplicaDurableResumeNoDoubleApply(t *testing.T) {
	p, specs := primaryWithState(t, t.TempDir())
	defer p.Close()
	recs, err := p.ReplicationRead(1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r1, err := OpenReplica(dir, WithBudget(2.0))
	if err != nil {
		t.Fatal(err)
	}
	half := len(recs) / 2
	for _, rec := range recs[:half] {
		if err := r1.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Crash-like stop mid-stream (Close flushes; the WAL alone would
	// also do — persist_test covers that path for the shared journal).
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReplica(dir, WithBudget(2.0))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !r2.ReadOnly() {
		t.Fatal("reopened replica is writable")
	}
	if r2.AppliedSeq() != recs[half-1].Seq {
		t.Fatalf("reopened applied seq = %d, want %d", r2.AppliedSeq(), recs[half-1].Seq)
	}
	// Ship the entire log again, as a reconnecting tailer might after an
	// overlap: already-applied records drop, the rest apply once.
	for _, rec := range recs {
		if err := r2.Apply(rec); err != nil {
			t.Fatalf("apply seq %d after reopen: %v", rec.Seq, err)
		}
	}
	requireParity(t, p, r2, specs)
}

// An in-memory primary has no log to ship; the replication surface says
// so rather than pretending.
func TestReplicationRequiresJournal(t *testing.T) {
	s := NewStore()
	if _, _, err := s.ReplicationSnapshot(); !errors.Is(err, ErrNotReplicable) {
		t.Fatalf("ReplicationSnapshot: %v, want ErrNotReplicable", err)
	}
	if _, err := s.ReplicationRead(1); !errors.Is(err, ErrNotReplicable) {
		t.Fatalf("ReplicationRead: %v, want ErrNotReplicable", err)
	}
	select {
	case <-s.ReplicationSignal():
	default:
		t.Fatal("ReplicationSignal on in-memory store should be ready")
	}
}
