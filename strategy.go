package dphist

import (
	"encoding"
	"fmt"
)

// Strategy identifies one of the release pipelines the library
// implements. The zero value is StrategyUniversal, the paper's flagship
// mechanism, so a zero Request asks for a universal histogram.
type Strategy int

const (
	// StrategyUniversal is the hierarchical histogram H with constrained
	// inference (Sections 3-4): answers arbitrary range queries with
	// poly-logarithmic error.
	StrategyUniversal Strategy = iota
	// StrategyLaplace is the flat noisy histogram L~, the conventional
	// baseline.
	StrategyLaplace
	// StrategyUnattributed is the sorted query S with isotonic inference:
	// the multiset of counts.
	StrategyUnattributed
	// StrategyWavelet is the Haar-wavelet mechanism of Xiao et al.
	// (Privelet), the related-work comparator.
	StrategyWavelet
	// StrategyDegreeSequence is the unattributed pipeline followed by
	// projection onto graphical degree sequences (Appendix B).
	StrategyDegreeSequence
	// StrategyHierarchy answers a custom constraint forest, such as the
	// introduction's student-grades query set.
	StrategyHierarchy
	// StrategyUniversal2D is the two-dimensional universal histogram: a
	// quadtree of noisy region counts with constrained inference
	// (Appendix B's multi-dimensional extension), answering arbitrary
	// axis-aligned rectangle queries.
	StrategyUniversal2D

	numStrategies // sentinel; keep last
)

// StrategyAuto asks the mechanism to choose the strategy itself from the
// request's Workload sketch (see WorkloadSketch): the advisor predicts
// every candidate strategy's expected error and the request is resolved
// to the predicted-best concrete strategy before any noise is drawn. It
// is a resolution sentinel, not a release pipeline: Valid reports false,
// it never appears in Strategies, release payloads, or store journals —
// by the time anything is minted or persisted the strategy is concrete.
const StrategyAuto Strategy = -1

var strategyNames = [numStrategies]string{
	StrategyUniversal:      "universal",
	StrategyLaplace:        "laplace",
	StrategyUnattributed:   "unattributed",
	StrategyWavelet:        "wavelet",
	StrategyDegreeSequence: "degree_sequence",
	StrategyHierarchy:      "hierarchy",
	StrategyUniversal2D:    "universal2d",
}

// Strategies returns every defined strategy in a fixed order, for
// registries and table-driven code that must cover them all.
func Strategies() []Strategy {
	out := make([]Strategy, numStrategies)
	for i := range out {
		out[i] = Strategy(i)
	}
	return out
}

// Valid reports whether s is one of the defined strategies.
func (s Strategy) Valid() bool { return s >= 0 && s < numStrategies }

// String returns the canonical wire name of the strategy.
func (s Strategy) String() string {
	if s == StrategyAuto {
		return "auto"
	}
	if !s.Valid() {
		return fmt.Sprintf("strategy(%d)", int(s))
	}
	return strategyNames[s]
}

// ParseStrategy maps a wire name back to its Strategy. It accepts the
// canonical names from String plus the alias "degree" for
// "degree_sequence", and "auto" for the StrategyAuto resolution
// sentinel (note Valid is false for the sentinel: it must be resolved,
// never minted).
func ParseStrategy(name string) (Strategy, error) {
	if name == "auto" {
		return StrategyAuto, nil
	}
	if name == "degree" {
		return StrategyDegreeSequence, nil
	}
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("dphist: unknown strategy %q", name)
}

// MarshalText encodes the strategy as its canonical name, so Strategy
// fields serialize as strings in JSON and text formats. StrategyAuto
// encodes as "auto" — useful for echoing requests — but release and
// journal payloads only ever carry concrete strategies.
func (s Strategy) MarshalText() ([]byte, error) {
	if s != StrategyAuto && !s.Valid() {
		return nil, fmt.Errorf("dphist: cannot encode invalid strategy %d", int(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText decodes a canonical strategy name.
func (s *Strategy) UnmarshalText(data []byte) error {
	parsed, err := ParseStrategy(string(data))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

var (
	_ encoding.TextMarshaler   = Strategy(0)
	_ encoding.TextUnmarshaler = (*Strategy)(nil)
)
