package dphist

// The batch range-query engine: the read side of the serving layer.
// Minting a release is a one-time O(n log n) event, but answering range
// queries against it is the steady-state workload — the paper's headline
// result (Theorem 4, Figure 6) is precisely that a consistent hierarchy
// answers arbitrary ranges with polylogarithmic error, so a deployment
// mints few releases and serves many queries. QueryBatch amortizes
// validation and dispatch over a whole batch and, for UniversalRelease,
// bypasses the interface to answer each range allocation-free.

import "fmt"

// RangeSpec names one half-open range query [Lo, Hi) over the index
// space of a release's Counts: positions for the positional strategies,
// ranks for the sorted ones, leaf-query order for StrategyHierarchy.
// The empty range Lo == Hi is valid and answers 0.
type RangeSpec struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// QueryBatch answers many range queries against one release in a single
// call. Answers align with specs by index. The call is all-or-nothing:
// every spec is validated against the release's domain before any is
// answered, and a malformed spec fails the whole batch naming its index.
//
// For a UniversalRelease the batch is answered on a fast path — O(1)
// prefix-sum lookups when the post-processed tree is exactly consistent,
// otherwise an iterative O(log n) subtree decomposition — allocating
// nothing per query. Use QueryBatchInto to also amortize the result
// slice across calls.
func QueryBatch(r Release, specs []RangeSpec) ([]float64, error) {
	return QueryBatchInto(nil, r, specs)
}

// QueryBatchInto is QueryBatch appending into dst, so a serving loop can
// reuse one result buffer and keep the steady-state allocation count at
// zero. dst may be nil. On error dst is returned truncated to its
// original length — never with a partial batch appended, so a
// buffer-reusing serving loop cannot mistake half-answered garbage for
// answers.
func QueryBatchInto(dst []float64, r Release, specs []RangeSpec) ([]float64, error) {
	keep := len(dst)
	n := releaseDomain(r)
	for i, q := range specs {
		if q.Lo < 0 || q.Hi > n || q.Lo > q.Hi {
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, badRange(q.Lo, q.Hi, n))
		}
	}
	if rel, ok := r.(*UniversalRelease); ok {
		if p := rel.leafPrefix; p != nil {
			for _, q := range specs {
				dst = append(dst, p[q.Hi]-p[q.Lo])
			}
			return dst, nil
		}
		for _, q := range specs {
			dst = append(dst, rel.tree.RangeSum(rel.post, q.Lo, q.Hi))
		}
		return dst, nil
	}
	for i, q := range specs {
		v, err := r.Range(q.Lo, q.Hi)
		if err != nil {
			// A release may refuse a spec that passed domain validation
			// (external Release implementations, or domains that shift
			// under the caller's feet): drop the partial answers so the
			// reused buffer never carries garbage.
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, err)
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// domainer is implemented by every in-library release (enforced at
// compile time in results.go) so batch validation can learn the query
// domain without copying Counts. New release types must add the
// one-line domain method next to their Counts.
type domainer interface{ domain() int }

// releaseDomain returns the size of a release's query domain — what
// len(r.Counts()) reports — without paying for the Counts copy when the
// concrete type advertises it.
func releaseDomain(r Release) int {
	if d, ok := r.(domainer); ok {
		return d.domain()
	}
	return len(r.Counts())
}
