package dphist

// The batch range-query engine: the read side of the serving layer.
// Minting a release is a one-time O(n log n) event, but answering range
// queries against it is the steady-state workload — the paper's headline
// result (Theorem 4, Figure 6) is precisely that a consistent hierarchy
// answers arbitrary ranges with polylogarithmic error, so a deployment
// mints few releases and serves many queries. QueryBatch amortizes
// validation and dispatch over a whole batch and answers each range from
// the release's compiled query plan (internal/plan) — O(1) prefix-sum
// lookups or an iterative O(log n) subtree decomposition — allocating
// nothing per query, for every in-library strategy.

import (
	"fmt"
	"slices"
	"sync"

	"github.com/dphist/dphist/internal/plan"
)

// RangeSpec names one half-open range query [Lo, Hi) over the index
// space of a release's Counts: positions for the positional strategies,
// ranks for the sorted ones, leaf-query order for StrategyHierarchy.
// The empty range Lo == Hi is valid and answers 0.
type RangeSpec struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// QueryBatch answers many range queries against one release in a single
// call. Answers align with specs by index. The call is all-or-nothing:
// every spec is validated against the release's domain before any is
// answered, and a malformed spec fails the whole batch naming its index.
//
// Every in-library release carries a compiled plan, so the batch is
// answered without per-query interface dispatch and without allocating
// per query. Use QueryBatchInto to also amortize the result slice
// across calls.
func QueryBatch(r Release, specs []RangeSpec) ([]float64, error) {
	return QueryBatchInto(nil, r, specs)
}

// QueryBatchInto is QueryBatch appending into dst, so a serving loop can
// reuse one result buffer and keep the steady-state allocation count at
// zero. dst may be nil. On error dst is returned truncated to its
// original length — never with a partial batch appended, so a
// buffer-reusing serving loop cannot mistake half-answered garbage for
// answers.
func QueryBatchInto(dst []float64, r Release, specs []RangeSpec) ([]float64, error) {
	return answerRangesInto(dst, releasePlan(r), r, specs)
}

// answerRangesInto is the shared batch core: validate every spec against
// the domain, then answer from the plan when one is compiled, else fall
// back to per-query Range calls for external Release implementations.
// Store.query snapshots (release, plan) under its shard read lock and
// calls this outside the lock.
func answerRangesInto(dst []float64, pl *plan.Plan, r Release, specs []RangeSpec) ([]float64, error) {
	keep := len(dst)
	n := releaseDomainWithPlan(pl, r)
	// Validation is one branch-free pre-pass over the batch: spec i is
	// valid iff Lo, n-Hi, and Hi-Lo are all non-negative, so OR-ing the
	// three leaves the accumulator's sign bit clear exactly when the
	// whole batch is valid (signed overflow on adversarial endpoints can
	// only set the sign bit on a spec that is already invalid, never
	// clear it). The branchy scan runs only on the error path, to name
	// the first offending index.
	acc := 0
	for _, q := range specs {
		acc |= q.Lo | (n - q.Hi) | (q.Hi - q.Lo)
	}
	if acc < 0 {
		for i, q := range specs {
			if q.Lo < 0 || q.Hi > n || q.Lo > q.Hi {
				return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, badRange(q.Lo, q.Hi, n))
			}
		}
	}
	if pl != nil {
		// Split the specs into pooled columnar arrays and hand the whole
		// batch to the plan's kernel: dst is grown once, so the append
		// loop's amortized doubling is gone from the hot path.
		dst = slices.Grow(dst, len(specs))[:keep+len(specs)]
		cols := rangeColsPool.Get().(*rangeCols)
		lo := slices.Grow(cols.lo[:0], len(specs))[:len(specs)]
		hi := slices.Grow(cols.hi[:0], len(specs))[:len(specs)]
		for i, q := range specs {
			lo[i], hi[i] = q.Lo, q.Hi
		}
		pl.RangeBatchInto(dst[keep:], lo, hi)
		cols.lo, cols.hi = lo, hi
		rangeColsPool.Put(cols)
		return dst, nil
	}
	for i, q := range specs {
		v, err := r.Range(q.Lo, q.Hi)
		if err != nil {
			// A release may refuse a spec that passed domain validation
			// (external Release implementations, or domains that shift
			// under the caller's feet): drop the partial answers so the
			// reused buffer never carries garbage.
			return dst[:keep], fmt.Errorf("dphist: query %d: %w", i, err)
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rangeCols is the columnar scratch a batch is split into before the
// plan kernels sweep it; pooled so steady-state serving allocates
// nothing per batch.
type rangeCols struct{ lo, hi []int }

var rangeColsPool = sync.Pool{New: func() any { return new(rangeCols) }}

// planner is implemented by every in-library release (enforced at
// compile time in results.go): it exposes the immutable query plan
// compiled at construction or decode. New release types compile a plan
// in their constructor, add the one-line method next to their Counts,
// and add a case to releasePlan.
type planner interface{ queryPlan() *plan.Plan }

// releasePlan returns a release's compiled query plan, or nil for an
// external Release implementation (which the batch engines serve through
// its Range/Rect methods instead). The dispatch is an exact type switch,
// not a planner assertion: a user struct embedding an in-library release
// promotes queryPlan, and trusting it would silently bypass the
// wrapper's own Range/Rect overrides.
func releasePlan(r Release) *plan.Plan {
	switch rel := r.(type) {
	case *UniversalRelease:
		return rel.queryPlan()
	case *LaplaceRelease:
		return rel.queryPlan()
	case *UnattributedRelease:
		return rel.queryPlan()
	case *WaveletRelease:
		return rel.queryPlan()
	case *DegreeSequenceRelease:
		return rel.queryPlan()
	case *HierarchyReleaseResult:
		return rel.queryPlan()
	case *Universal2DRelease:
		return rel.queryPlan()
	default:
		return nil
	}
}

// releaseDomain returns the size of a release's query domain — what
// len(r.Counts()) reports — without paying for the Counts copy when the
// release carries a compiled plan.
func releaseDomain(r Release) int {
	return releaseDomainWithPlan(releasePlan(r), r)
}

func releaseDomainWithPlan(pl *plan.Plan, r Release) int {
	if pl != nil {
		return pl.Domain()
	}
	return len(r.Counts())
}
