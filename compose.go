package dphist

import (
	"errors"
	"fmt"
)

// ComposeSum sums the published counts of already-minted releases into
// one flat histogram release. Because every input is already
// differentially private, the sum is pure post-processing: no noise is
// drawn and no budget needs to be charged. The resulting release carries
// the maximum epsilon of its members — the right bound when the members
// cover pairwise-disjoint event sets (parallel composition), which is
// exactly the sliding-window case the ingest engine uses it for: each
// event lands in one epoch, so a window summing W epoch releases costs
// no more than the most expensive member. Members drawn from the *same*
// underlying data compose sequentially instead; there the caller's
// accountant, which already recorded each member's charge, carries the
// bound.
//
// All members must have the same domain size. The result is served as a
// flat histogram (StrategyLaplace wire form — position-indexed counts
// with linear-in-width range error), round-trips through DecodeRelease,
// and its Counts are exactly the element-wise sum of the members'
// Counts.
func ComposeSum(rels ...Release) (Release, error) {
	if len(rels) == 0 {
		return nil, errors.New("dphist: ComposeSum of no releases")
	}
	var sum []float64
	maxEps := 0.0
	for i, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("dphist: ComposeSum member %d is nil", i)
		}
		counts := r.Counts()
		if sum == nil {
			sum = counts // Counts() returned a fresh copy; safe to own
		} else {
			if len(counts) != len(sum) {
				return nil, fmt.Errorf("dphist: ComposeSum member %d has domain %d, want %d",
					i, len(counts), len(sum))
			}
			for j, v := range counts {
				sum[j] += v
			}
		}
		if eps := r.Epsilon(); eps > maxEps {
			maxEps = eps
		}
	}
	return newLaplaceRelease(sum, false, maxEps), nil
}
