package dphist

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/dphist/dphist/internal/plan"
)

// sixReleases mints one release of every strategy from the given
// mechanism over a five-count input (five is the Grades leaf count, so
// the hierarchy strategy joins the table; the 2-D strategy reads the
// same numbers as a grid).
func sixReleases(t *testing.T, m *Mechanism) []Release {
	t.Helper()
	counts := []float64{2, 0, 10, 2, 5}
	out := make([]Release, 0, len(Strategies()))
	for _, strategy := range Strategies() {
		req := Request{Strategy: strategy, Counts: counts, Epsilon: 1.0}
		switch strategy {
		case StrategyHierarchy:
			req.Hierarchy = Grades()
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = [][]float64{{2, 0, 10}, {2, 5}}
		}
		rel, err := m.Release(req)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		out = append(out, rel)
	}
	return out
}

func TestQueryBatchMatchesRange(t *testing.T) {
	for _, rel := range sixReleases(t, MustNew(WithSeed(11))) {
		n := len(rel.Counts())
		var specs []RangeSpec
		for lo := 0; lo <= n; lo++ {
			for hi := lo; hi <= n; hi++ {
				specs = append(specs, RangeSpec{Lo: lo, Hi: hi})
			}
		}
		answers, err := QueryBatch(rel, specs)
		if err != nil {
			t.Fatalf("%v: %v", rel.Strategy(), err)
		}
		if len(answers) != len(specs) {
			t.Fatalf("%v: %d answers for %d specs", rel.Strategy(), len(answers), len(specs))
		}
		for i, q := range specs {
			want, err := rel.Range(q.Lo, q.Hi)
			if err != nil {
				t.Fatalf("%v: Range(%d,%d): %v", rel.Strategy(), q.Lo, q.Hi, err)
			}
			if answers[i] != want {
				t.Errorf("%v: batch [%d,%d) = %v, Range = %v",
					rel.Strategy(), q.Lo, q.Hi, answers[i], want)
			}
		}
	}
}

// The Release contract made checkable: for exactly-consistent
// configurations (no non-negativity truncation, no rounding) every
// strategy's Range agrees with summing its published Counts.
func TestRangeEqualsSumOfCountsWhenConsistent(t *testing.T) {
	m := MustNew(WithSeed(12), WithoutNonNegativity(), WithoutRounding())
	rng := rand.New(rand.NewPCG(5, 6))
	for _, rel := range sixReleases(t, m) {
		counts := rel.Counts()
		n := len(counts)
		for trial := 0; trial < 200; trial++ {
			lo := rng.IntN(n + 1)
			hi := lo + rng.IntN(n-lo+1)
			got, err := rel.Range(lo, hi)
			if err != nil {
				t.Fatalf("%v: Range(%d,%d): %v", rel.Strategy(), lo, hi, err)
			}
			want := 0.0
			for _, v := range counts[lo:hi] {
				want += v
			}
			tol := 1e-9 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("%v: Range(%d,%d) = %v, sum(Counts[lo:hi]) = %v",
					rel.Strategy(), lo, hi, got, want)
			}
		}
	}
}

func TestUniversalConsistentConfigUsesPrefixPath(t *testing.T) {
	counts := make([]float64, 100)
	for i := range counts {
		counts[i] = float64(i % 9)
	}
	consistent, err := MustNew(WithSeed(13), WithoutNonNegativity(), WithoutRounding()).
		UniversalHistogram(counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !consistent.plan.Consistent() {
		t.Fatal("exactly-consistent release did not compile a prefix plan")
	}
	// The prefix plan and the tree decomposition must answer alike.
	for lo := 0; lo <= len(counts); lo += 7 {
		for hi := lo; hi <= len(counts); hi += 5 {
			fast, err := consistent.Range(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			slow := consistent.tree.RangeSum(consistent.post, lo, hi)
			if math.Abs(fast-slow) > 1e-6*(1+math.Abs(slow)) {
				t.Fatalf("prefix [%d,%d) = %v, decomposition = %v", lo, hi, fast, slow)
			}
		}
	}
}

func TestQueryBatchRejectsBadSpecs(t *testing.T) {
	rel, err := MustNew(WithSeed(14)).UniversalHistogram([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []RangeSpec{{Lo: -1, Hi: 2}, {Lo: 0, Hi: 5}, {Lo: 3, Hi: 1}} {
		specs := []RangeSpec{{Lo: 0, Hi: 4}, bad}
		if _, err := QueryBatch(rel, specs); err == nil {
			t.Errorf("spec %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "query 1") {
			t.Errorf("spec %+v: error %q does not name the offending index", bad, err)
		}
	}
	// Empty batches and empty ranges are fine.
	if answers, err := QueryBatch(rel, nil); err != nil || len(answers) != 0 {
		t.Fatalf("empty batch = %v, %v", answers, err)
	}
	answers, err := QueryBatch(rel, []RangeSpec{{Lo: 2, Hi: 2}, {Lo: 4, Hi: 4}, {Lo: 0, Hi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range answers {
		if v != 0 {
			t.Fatalf("empty range %d answered %v", i, v)
		}
	}
}

// flakyRange is an external Release whose Range fails past a budget of
// calls, despite every spec passing domain validation — the shape of an
// implementation whose domain shifts under the batch engine's feet.
type flakyRange struct {
	Release
	calls, failAfter int
}

func (f *flakyRange) Range(lo, hi int) (float64, error) {
	f.calls++
	if f.calls > f.failAfter {
		return 0, ErrReleaseNotFound
	}
	return f.Release.Range(lo, hi)
}

// QueryBatchInto must never hand back a partially-appended buffer: a
// serving loop reusing dst across batches would otherwise read the
// failed batch's garbage as answers.
func TestQueryBatchIntoTruncatesOnMidBatchError(t *testing.T) {
	rel, err := MustNew(WithSeed(19)).LaplaceHistogram([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyRange{Release: rel, failAfter: 2}
	dst := append(make([]float64, 0, 16), 7, 8)
	specs := []RangeSpec{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}, {Lo: 3, Hi: 4}}
	out, err := QueryBatchInto(dst, f, specs)
	if err == nil {
		t.Fatal("mid-batch failure not reported")
	}
	if !strings.Contains(err.Error(), "query 2") {
		t.Fatalf("error %q does not name the offending index", err)
	}
	if len(out) != 2 || out[0] != 7 || out[1] != 8 {
		t.Fatalf("dst carries partial batch after error: %v", out)
	}
	// Validation failures leave dst untouched too.
	out, err = QueryBatchInto(dst, rel, []RangeSpec{{Lo: 0, Hi: 9}})
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if len(out) != 2 {
		t.Fatalf("dst grew on validation failure: %v", out)
	}
}

// benchSpecs pregenerates a deterministic batch of mixed-width ranges.
func benchSpecs(n, domain int) []RangeSpec {
	rng := rand.New(rand.NewPCG(7, 8))
	specs := make([]RangeSpec, n)
	for i := range specs {
		lo := rng.IntN(domain)
		specs[i] = RangeSpec{Lo: lo, Hi: lo + 1 + rng.IntN(domain-lo)}
	}
	return specs
}

// BenchmarkBatchRange measures the serving hot path: a 1000-range batch
// against one stored UniversalRelease. With -benchmem both sub-paths
// must report zero allocations per operation (the result buffer is
// amortized via QueryBatchInto).
func BenchmarkBatchRange(b *testing.B) {
	counts := make([]float64, 1<<14)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	specs := benchSpecs(1000, len(counts))

	rel, err := MustNew(WithSeed(15)).UniversalHistogram(counts, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	consistent, err := MustNew(WithSeed(15), WithoutNonNegativity(), WithoutRounding()).
		UniversalHistogram(counts, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	if !consistent.plan.Consistent() {
		b.Fatal("consistent release did not compile a prefix plan")
	}
	// Force the decomposition plan even if this draw happens to leave
	// the default release consistent.
	rel.plan = plan.TreeOnly(rel.tree, rel.post, len(rel.leaves))

	for _, bench := range []struct {
		name string
		rel  *UniversalRelease
	}{
		{"decompose", rel},
		{"prefix", consistent},
	} {
		b.Run(bench.name, func(b *testing.B) {
			dst := make([]float64, 0, len(specs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = QueryBatchInto(dst[:0], bench.rel, specs)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
