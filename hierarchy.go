package dphist

import (
	"github.com/dphist/dphist/internal/core"
)

// Hierarchy is a custom constraint forest over a query set: query i's
// true answer equals the sum of its children's answers. Build one with
// NewHierarchy from parent pointers, then answer it privately with
// Mechanism.HierarchyRelease.
type Hierarchy struct {
	inner *core.Hierarchy
}

// NewHierarchy builds a Hierarchy from parent pointers: parent[i] is the
// index of query i's parent, or -1 for a root. The structure must be a
// forest.
func NewHierarchy(parent []int) (*Hierarchy, error) {
	h, err := core.NewHierarchy(parent)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{inner: h}, nil
}

// Grades returns the paper's introductory student-grades query set
// (xt, xp, xA, xB, xC, xD, xF) with constraints xt = xp + xF and
// xp = xA + xB + xC + xD.
func Grades() *Hierarchy {
	return &Hierarchy{inner: core.GradesHierarchy()}
}

// Sensitivity returns the L1 sensitivity of the query set: the longest
// leaf-to-root path measured in nodes (3 for Grades, matching the paper).
func (h *Hierarchy) Sensitivity() float64 { return h.inner.Sensitivity() }

// Len returns the number of queries in the set.
func (h *Hierarchy) Len() int { return h.inner.Len() }

// Leaves returns the indices of the leaf queries in ascending order; leaf
// counts passed to HierarchyRelease follow this order.
func (h *Hierarchy) Leaves() []int {
	return append([]int(nil), h.inner.Leaves()...)
}

// Parents returns the parent-pointer representation the hierarchy was
// built from: Parents()[i] is query i's parent index, or -1 for a root.
func (h *Hierarchy) Parents() []int {
	return append([]int(nil), h.inner.Parents()...)
}
