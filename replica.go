package dphist

// The applier layer: one pipeline that folds journal records and
// snapshots into store state, shared by its three consumers —
//
//   - boot recovery (openStore replays snapshot + WAL),
//   - snapshot bootstrap (Bootstrap replaces a replica's whole state
//     from a primary snapshot), and
//   - live follower replay (Apply folds shipped records one at a time).
//
// A replica store is read-only: local Put/Delete/Mint fail with
// ErrReadOnly and its accountants refuse to admit charges, so the only
// way state changes is through this pipeline. Replication ships
// already-noised releases in their wire form — the same payloads the
// WAL holds — so it is privacy-neutral: no budget is charged on the
// replica, and the replica's accountants mirror the primary's ledger
// via shipped charge records.
//
// Durable replicas re-journal each shipped record under its primary
// sequence number (journal.AppendRecord), which makes the replica's
// recovery point a primary sequence: after a crash, openStore replays
// the local WAL and the tailer resumes the stream at applied+1 with no
// double-apply window. Charges restore in primary order on top of the
// snapshot's aggregated total, so Accountant.Spent() is bit-identical
// to the primary's at every shared sequence.

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"github.com/dphist/dphist/internal/journal"
)

// ErrReadOnly reports a local mutation attempted on a replica store.
// Replicas change state only through Apply and Bootstrap.
var ErrReadOnly = errors.New("dphist: store is a read-only replica")

// ErrNotReplicable reports a replication read against a store with no
// journal — an in-memory store has no log to ship.
var ErrNotReplicable = errors.New("dphist: in-memory store has no replication log")

// readOnlyLedger is the chargeLedger wired into a replica's
// accountants: it vetoes every locally admitted charge. Shipped charges
// arrive through Accountant.restore, which bypasses the ledger.
type readOnlyLedger struct{}

func (readOnlyLedger) begin()              {}
func (readOnlyLedger) end()                {}
func (readOnlyLedger) record(Charge) error { return ErrReadOnly }

// NewReplica returns an empty in-memory replica store: read-only, fed
// exclusively through Bootstrap and Apply. State dies with the process;
// see OpenReplica for the durable variant.
func NewReplica(opts ...StoreOption) *Store {
	s := NewStore(opts...)
	s.readOnly = true
	return s
}

// OpenReplica opens (creating if needed) a durable replica store rooted
// at dir. Recovery follows OpenStore exactly — snapshot, WAL replay,
// torn-tail truncation — but the recovered store is read-only and its
// WAL carries primary sequence numbers, so AppliedSeq() after recovery
// is the primary sequence to resume streaming from.
func OpenReplica(dir string, opts ...StoreOption) (*Store, error) {
	return openStore(dir, true, opts...)
}

// ReadOnly reports whether the store is a replica.
func (s *Store) ReadOnly() bool { return s.readOnly }

// AppliedSeq returns the highest primary journal sequence folded into
// this store — on a replica, the replication high-water mark.
func (s *Store) AppliedSeq() uint64 { return s.applied.Load() }

// JournalSeq returns the last sequence assigned by the store's journal,
// or 0 for an in-memory store. On a primary this is the replication
// frontier followers converge toward.
func (s *Store) JournalSeq() uint64 {
	if s.jnl == nil {
		return 0
	}
	return s.jnl.NextSeq() - 1
}

// SnapshotSeq returns the journal sequence covered by the newest
// on-disk snapshot — the compaction horizon below which ReplicationRead
// reports ErrCompacted — or 0 when no snapshot has been written.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq.Load() }

// Apply folds one shipped journal record into a replica store. Records
// must arrive in primary order: a record at or below the applied
// horizon is a harmless reconnect overlap and is dropped silently; a
// record that skips past applied+1 fails with an error wrapping
// journal.ErrCorrupt, because a gap means the stream lost data and the
// replica can no longer claim to mirror the primary. On a durable
// replica the record is re-journaled (and fsynced) under its primary
// sequence before it is applied, so durability-before-visibility holds
// on the replica exactly as on the primary.
func (s *Store) Apply(rec journal.Record) error {
	if !s.readOnly {
		return errors.New("dphist: Apply on a writable store (use NewReplica or OpenReplica)")
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	applied := s.applied.Load()
	if rec.Seq <= applied {
		return nil
	}
	if rec.Seq != applied+1 {
		return fmt.Errorf("%w: shipped record %d leaves a gap after %d", journal.ErrCorrupt, rec.Seq, applied)
	}
	if s.jnl == nil {
		if err := s.applyRecord(rec); err != nil {
			return err
		}
		s.applied.Store(rec.Seq)
		return nil
	}
	s.opMu.RLock()
	if s.closed {
		s.opMu.RUnlock()
		return ErrStoreClosed
	}
	err := s.jnl.AppendRecord(rec)
	if err == nil {
		s.appended.Add(1)
		err = s.applyRecord(rec)
	}
	if err == nil {
		s.applied.Store(rec.Seq)
	}
	s.opMu.RUnlock()
	if err == nil {
		// Outside every lock: Snapshot takes the op write lock itself.
		s.maybeSnapshot()
	}
	return err
}

// Bootstrap replaces the replica's entire state with a primary
// snapshot, as served by ReplicationSnapshot. It is the first-sync path
// for an empty replica and the resync path after the primary compacted
// the stream past the replica's position (ErrCompacted). A snapshot
// older than what the replica already applied is refused — replication
// never moves backwards. Existing accountants are reset in place, so
// pointers handed out before the bootstrap keep observing the ledger.
func (s *Store) Bootstrap(data []byte) error {
	if !s.readOnly {
		return errors.New("dphist: Bootstrap on a writable store (use NewReplica or OpenReplica)")
	}
	var snap storeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%w: bootstrap snapshot: %v", journal.ErrCorrupt, err)
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if snap.Seq < s.applied.Load() {
		return fmt.Errorf("dphist: bootstrap snapshot at seq %d is behind applied seq %d", snap.Seq, s.applied.Load())
	}
	if s.jnl != nil {
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		s.opMu.Lock()
		defer s.opMu.Unlock()
		if s.closed {
			return ErrStoreClosed
		}
		// Durability order: the snapshot file lands before the WAL is
		// rebased past it. A crash between the two replays the fresh
		// snapshot and skips any leftover WAL records at or below its
		// seq, so every window recovers consistently.
		if err := journal.WriteSnapshot(filepath.Join(s.dir, snapshotFile), json.RawMessage(data)); err != nil {
			return err
		}
		if err := s.jnl.Rebase(snap.Seq); err != nil {
			return err
		}
		s.appended.Store(0)
		s.snapSeq.Store(snap.Seq)
	}
	s.clearStateForBootstrap()
	if err := s.applySnapshot(&snap); err != nil {
		return err
	}
	s.applied.Store(snap.Seq)
	return nil
}

// clearStateForBootstrap empties every shard (invalidating cached
// answers as it goes) and zeroes every accountant in place, keeping
// accountant pointer identity for callers that cached one.
func (s *Store) clearStateForBootstrap() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k := range sh.items {
			s.removeLocked(sh, k)
		}
		clear(sh.versions)
		sh.mu.Unlock()
	}
	s.acctMu.Lock()
	for _, a := range s.accts {
		a.resetCharges()
	}
	s.acctMu.Unlock()
}

// ReplicationSnapshot serializes the store's complete current state for
// a bootstrapping replica, returning the snapshot bytes and the journal
// sequence they cover. Unlike Snapshot it does not reset the WAL, so a
// replica can stream from seq+1 immediately after loading it.
func (s *Store) ReplicationSnapshot() ([]byte, uint64, error) {
	if s.jnl == nil {
		return nil, 0, ErrNotReplicable
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.closed {
		return nil, 0, ErrStoreClosed
	}
	snap, err := s.collectSnapshotLocked()
	if err != nil {
		return nil, 0, err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, 0, err
	}
	return data, snap.Seq, nil
}

// ReplicationRead returns every journal record with sequence >= from.
// An empty slice means the caller is caught up and should wait on
// ReplicationSignal. It fails with journal.ErrCompacted when from is at
// or below the compaction horizon — the caller must bootstrap from
// ReplicationSnapshot instead.
func (s *Store) ReplicationRead(from uint64) ([]journal.Record, error) {
	if s.jnl == nil {
		return nil, ErrNotReplicable
	}
	return s.jnl.ReadFrom(from)
}

// closedSignal is the permanently-ready channel ReplicationSignal hands
// out when there is no journal to wait on.
var closedSignal = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// ReplicationSignal returns a channel closed on the journal's next
// append (or on Close), for long-polling readers: take the channel
// *before* ReplicationRead, read, and wait on it only if the read came
// back empty — that order cannot miss an append.
func (s *Store) ReplicationSignal() <-chan struct{} {
	if s.jnl == nil {
		return closedSignal
	}
	return s.jnl.Updated()
}

// applySnapshot loads complete store state. Entries are inserted oldest
// StoredAt first so the recovered recency order approximates the
// pre-crash one.
func (s *Store) applySnapshot(snap *storeSnapshot) error {
	for _, v := range snap.Versions {
		k := nsKey{v.Namespace, v.Name}
		sh := s.shard(k)
		if v.Version > sh.versions[k] {
			sh.versions[k] = v.Version
		}
	}
	entries := append([]snapEntry(nil), snap.Entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].StoredAt.Before(entries[j].StoredAt) })
	for _, e := range entries {
		if err := s.recoverPut(e.Namespace, e.Name, e.Version, e.StoredAt, e.Release); err != nil {
			return err
		}
	}
	for _, c := range snap.Charges {
		s.accountant(c.Namespace).restore(Charge{Label: c.Label, Epsilon: c.Epsilon})
	}
	return nil
}

// applyRecord folds one journal record into the store — the single
// code path behind recovery replay and live follower replay.
func (s *Store) applyRecord(rec journal.Record) error {
	switch rec.Op {
	case journal.OpPut:
		return s.recoverPut(rec.Namespace, rec.Name, rec.Version, rec.StoredAt, rec.Payload)
	case journal.OpDelete:
		k := nsKey{rec.Namespace, rec.Name}
		sh := s.shard(k)
		sh.mu.Lock()
		if _, ok := sh.items[k]; ok {
			s.removeLocked(sh, k)
		}
		sh.mu.Unlock()
		return nil
	case journal.OpCharge:
		s.accountant(rec.Namespace).restore(Charge{Label: rec.Label, Epsilon: rec.Epsilon})
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", journal.ErrCorrupt, rec.Op)
	}
}

// recoverPut re-inserts one release from its journaled wire form,
// re-deriving the entry metadata from the decoded release exactly as
// the original Put did.
func (s *Store) recoverPut(ns, name string, version int, storedAt time.Time, payload json.RawMessage) error {
	rel, err := DecodeRelease(payload)
	if err != nil {
		return fmt.Errorf("release %s/%s v%d: %w", ns, name, version, err)
	}
	k := nsKey{ns, name}
	entry := StoreEntry{
		Namespace: ns,
		Name:      name,
		Version:   version,
		Strategy:  rel.Strategy(),
		Epsilon:   rel.Epsilon(),
		Domain:    releaseDomain(rel),
		StoredAt:  storedAt,
	}
	sh := s.shard(k)
	sh.mu.Lock()
	if version > sh.versions[k] {
		sh.versions[k] = version
	}
	// DecodeRelease recompiled the query plan from the wire vectors, so
	// a recovered release serves batches exactly like the original did.
	if it, ok := sh.items[k]; ok {
		it.release = rel
		it.plan = releasePlan(rel)
		it.entry = entry
		sh.recency.MoveToFront(it.elem)
	} else {
		sh.items[k] = &storeItem{release: rel, plan: releasePlan(rel), entry: entry, elem: sh.recency.PushFront(k)}
	}
	// Answer caches key by version, so a shipped re-put would already
	// miss — but a replica applying while serving must still drop the
	// stale version's answers promptly rather than waiting for LRU.
	s.invalidateCached(ns, name)
	sh.mu.Unlock()
	return nil
}
