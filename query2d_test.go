package dphist

// Tests for the batch rectangle-query engine: the property that every
// rectangle answer equals the sum of post-processed cells, the
// all-or-nothing batch contract, the summed-area fast path, and the
// store/HTTP plumbing above them.

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/dphist/dphist/internal/plan"
)

// grid2D builds a deterministic test grid with structure (hotspots over
// sparse background).
func grid2D(w, h int) [][]float64 {
	cells := make([][]float64, h)
	for y := range cells {
		cells[y] = make([]float64, w)
		for x := range cells[y] {
			cells[y][x] = float64((x*7 + y*13) % 5)
		}
	}
	cells[h/2][w/2] = 500
	return cells
}

// TestRectEqualsSumOfCells is the acceptance property: for a release
// whose post-processed quadtree is exactly consistent, every rectangle
// answer — single Rect calls and QueryRects batches, summed-area path
// included — equals the sum of the published cells in
// [x0, x1) x [y0, y1).
func TestRectEqualsSumOfCells(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {5, 3}, {1, 7}, {16, 9}} {
		w, h := dims[0], dims[1]
		rel, err := MustNew(WithSeed(71), WithoutNonNegativity(), WithoutRounding()).
			Universal2DHistogram(grid2D(w, h), 5)
		if err != nil {
			t.Fatal(err)
		}
		if !rel.plan.Consistent() {
			t.Fatalf("%dx%d: consistent release did not compile a summed-area plan", w, h)
		}
		cells := rel.Counts()
		var specs []RectSpec
		var want []float64
		for x0 := 0; x0 <= w; x0++ {
			for x1 := x0; x1 <= w; x1++ {
				for y0 := 0; y0 <= h; y0++ {
					for y1 := y0; y1 <= h; y1++ {
						specs = append(specs, RectSpec{X0: x0, Y0: y0, X1: x1, Y1: y1})
						sum := 0.0
						for y := y0; y < y1; y++ {
							for x := x0; x < x1; x++ {
								sum += cells[y*w+x]
							}
						}
						want = append(want, sum)
					}
				}
			}
		}
		got, err := QueryRects(rel, specs)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * (1 + math.Abs(rel.Total()))
		for i, q := range specs {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("%dx%d: batch rect %+v = %v, cell sum %v", w, h, q, got[i], want[i])
			}
			single, err := rel.Rect(q.X0, q.Y0, q.X1, q.Y1)
			if err != nil {
				t.Fatalf("%dx%d: Rect%+v: %v", w, h, q, err)
			}
			if single != got[i] {
				t.Fatalf("%dx%d: Rect%+v = %v, batch = %v", w, h, q, single, got[i])
			}
		}
	}
}

// TestRectDecompositionPathAgreesWithRect holds the quadtree fallback
// (non-negativity truncation leaves the tree inconsistent, so sat is
// nil) to the same batch-equals-single contract, and pins that the
// decomposition answers the full domain with the root.
func TestRectDecompositionPathAgreesWithRect(t *testing.T) {
	// eps low enough that truncation actually fires.
	rel, err := MustNew(WithSeed(73)).Universal2DHistogram(grid2D(16, 16), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rel.plan.Consistent() {
		t.Skip("draw happened to stay consistent; fallback not reachable")
	}
	rng := rand.New(rand.NewPCG(7, 7))
	var specs []RectSpec
	for i := 0; i < 200; i++ {
		x0, y0 := rng.IntN(16), rng.IntN(16)
		specs = append(specs, RectSpec{X0: x0, Y0: y0, X1: x0 + 1 + rng.IntN(16-x0), Y1: y0 + 1 + rng.IntN(16-y0)})
	}
	specs = append(specs, RectSpec{X0: 3, Y0: 4, X1: 3, Y1: 9}, RectSpec{}) // empties
	got, err := QueryRects(rel, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range specs {
		single, err := rel.Rect(q.X0, q.Y0, q.X1, q.Y1)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != single {
			t.Fatalf("batch rect %+v = %v, Rect = %v", q, got[i], single)
		}
	}
	if full, _ := rel.Rect(0, 0, 16, 16); full != rel.Total() {
		t.Fatalf("full-domain rect %v != Total %v", full, rel.Total())
	}
}

func TestQueryRectsBatchContract(t *testing.T) {
	rel, err := MustNew(WithSeed(74)).Universal2DHistogram(grid2D(8, 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	// All-or-nothing: one bad spec fails the whole batch, naming its
	// index, and an amortized buffer comes back truncated, not partial.
	dst := []float64{42}
	out, err := QueryRectsInto(dst, rel, []RectSpec{
		{X0: 0, Y0: 0, X1: 8, Y1: 4},
		{X0: 0, Y0: 0, X1: 9, Y1: 4}, // out of bounds
	})
	if err == nil || !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("bad spec error = %v", err)
	}
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("dst not truncated to original length on error: %v", out)
	}
	for _, bad := range []RectSpec{
		{X0: -1, Y0: 0, X1: 1, Y1: 1},
		{X0: 0, Y0: -1, X1: 1, Y1: 1},
		{X0: 2, Y0: 0, X1: 1, Y1: 1},
		{X0: 0, Y0: 3, X1: 1, Y1: 2},
		{X0: 0, Y0: 0, X1: 1, Y1: 5},
	} {
		if _, err := QueryRects(rel, []RectSpec{bad}); err == nil {
			t.Errorf("bad rect %+v accepted", bad)
		}
	}
	// Empty batches and empty rects answer cleanly.
	if out, err := QueryRects(rel, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	if out, err := QueryRects(rel, []RectSpec{{X0: 5, Y0: 2, X1: 5, Y1: 2}}); err != nil || out[0] != 0 {
		t.Fatalf("empty rect = %v, %v", out, err)
	}
	// A 1-D release answers no rectangles.
	lap, err := MustNew(WithSeed(74)).LaplaceHistogram([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryRects(lap, []RectSpec{{X1: 1, Y1: 1}}); !errors.Is(err, ErrNotRectangular) {
		t.Fatalf("1-D release rect query error = %v, want ErrNotRectangular", err)
	}
}

// flakyRect is an external RectQuerier whose Rect fails past a budget of
// calls — the generic path must hand back a truncated dst. It embeds
// the RectQuerier *interface* (not the concrete release) so it does not
// inherit a compiled plan: it models a third-party implementation the
// batch engine can only reach through Rect.
type flakyRect struct {
	RectQuerier
	calls, failAfter int
}

func (f *flakyRect) Rect(x0, y0, x1, y1 int) (float64, error) {
	f.calls++
	if f.calls > f.failAfter {
		return 0, ErrReleaseNotFound
	}
	return f.RectQuerier.Rect(x0, y0, x1, y1)
}

func TestQueryRectsIntoTruncatesOnMidBatchError(t *testing.T) {
	rel, err := MustNew(WithSeed(75)).Universal2DHistogram(grid2D(4, 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyRect{RectQuerier: rel, failAfter: 2}
	dst := make([]float64, 0, 16)
	dst = append(dst, 7, 8)
	specs := []RectSpec{{X1: 1, Y1: 1}, {X1: 2, Y1: 2}, {X1: 3, Y1: 3}, {X1: 4, Y1: 4}}
	out, err := QueryRectsInto(dst, f, specs)
	if err == nil {
		t.Fatal("mid-batch failure not reported")
	}
	if len(out) != 2 || out[0] != 7 || out[1] != 8 {
		t.Fatalf("dst carries partial batch after error: %v", out)
	}
}

func TestStoreQueryRects(t *testing.T) {
	store := NewStore()
	session, err := NewSession(MustNew(WithSeed(76)), 100)
	if err != nil {
		t.Fatal(err)
	}
	cells := grid2D(8, 8)
	rel, _, err := store.Namespace("geo").Mint(session, "city", Request{
		Strategy: StrategyUniversal2D, Cells: cells, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := []RectSpec{{X0: 0, Y0: 0, X1: 8, Y1: 8}, {X0: 2, Y0: 2, X1: 6, Y1: 6}}
	got, entry, err := store.Namespace("geo").QueryRects("city", specs)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Strategy != StrategyUniversal2D || entry.Domain != 64 {
		t.Fatalf("entry = %+v", entry)
	}
	want, err := QueryRects(rel, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store answer %d = %v, direct = %v", i, got[i], want[i])
		}
	}
	// Missing names and 1-D releases map to the sentinel errors the HTTP
	// layer dispatches on.
	if _, _, err := store.QueryRects("nope", specs); !errors.Is(err, ErrReleaseNotFound) {
		t.Fatalf("missing name error = %v", err)
	}
	if _, _, err := store.Mint(session, "flat", Request{
		Strategy: StrategyLaplace, Counts: []float64{1, 2}, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.QueryRects("flat", specs); !errors.Is(err, ErrNotRectangular) {
		t.Fatalf("1-D release error = %v", err)
	}
}

// BenchmarkBatchRect measures the 2-D serving hot path: a 1000-rect
// batch against one release. With -benchmem the summed-area path must
// report zero allocations per operation (the result buffer is amortized
// via QueryRectsInto).
func BenchmarkBatchRect(b *testing.B) {
	const side = 128
	cells := grid2D(side, side)
	rng := rand.New(rand.NewPCG(5, 25))
	specs := make([]RectSpec, 1000)
	for i := range specs {
		x0, y0 := rng.IntN(side), rng.IntN(side)
		specs[i] = RectSpec{X0: x0, Y0: y0, X1: x0 + 1 + rng.IntN(side-x0), Y1: y0 + 1 + rng.IntN(side-y0)}
	}
	fallback, err := MustNew(WithSeed(77)).Universal2DHistogram(cells, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	consistent, err := MustNew(WithSeed(77), WithoutNonNegativity(), WithoutRounding()).
		Universal2DHistogram(cells, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	if !consistent.plan.Consistent() {
		b.Fatal("consistent release did not compile a summed-area plan")
	}
	// Force the decomposition plan even if this draw happens to leave
	// the default release consistent.
	fallback.plan = plan.Grid2DOnly(fallback.grid, fallback.post, fallback.cells)

	for _, bench := range []struct {
		name string
		rel  *Universal2DRelease
	}{
		{"decompose", fallback},
		{"summed-area", consistent},
	} {
		b.Run(bench.name, func(b *testing.B) {
			dst := make([]float64, 0, len(specs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = QueryRectsInto(dst[:0], bench.rel, specs)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
