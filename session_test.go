package dphist

import (
	"errors"
	"math"
	"testing"
)

// Release must behave exactly like the typed method it wraps: same
// validation, same noise stream consumption, same concrete type.
func TestReleaseMatchesTypedMethods(t *testing.T) {
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5}
	for _, strategy := range Strategies() {
		req := Request{Strategy: strategy, Counts: counts, Epsilon: 0.5}
		switch strategy {
		case StrategyHierarchy:
			req.Counts = []float64{120, 180, 90, 40, 25}
			req.Hierarchy = Grades()
		case StrategyUniversal2D:
			req.Counts = nil
			req.Cells = [][]float64{{2, 0, 10}, {2, 5, 5}, {5, 5}}
		}
		a, err := MustNew(WithSeed(17)).Release(req)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if a.Strategy() != strategy {
			t.Fatalf("release reports strategy %v, want %v", a.Strategy(), strategy)
		}
		if a.Epsilon() != 0.5 {
			t.Fatalf("%v: epsilon %v", strategy, a.Epsilon())
		}

		// A fresh mechanism with the same seed must produce identical
		// results through the typed path.
		m := MustNew(WithSeed(17))
		var b Release
		switch strategy {
		case StrategyUniversal:
			b, err = m.UniversalHistogram(req.Counts, req.Epsilon)
		case StrategyLaplace:
			b, err = m.LaplaceHistogram(req.Counts, req.Epsilon)
		case StrategyUnattributed:
			b, err = m.UnattributedHistogram(req.Counts, req.Epsilon)
		case StrategyWavelet:
			b, err = m.WaveletHistogram(req.Counts, req.Epsilon)
		case StrategyDegreeSequence:
			b, err = m.DegreeSequence(req.Counts, req.Epsilon)
		case StrategyHierarchy:
			b, err = m.HierarchyRelease(req.Hierarchy, req.Counts, req.Epsilon)
		case StrategyUniversal2D:
			b, err = m.Universal2DHistogram(req.Cells, req.Epsilon)
		}
		if err != nil {
			t.Fatalf("%v typed: %v", strategy, err)
		}
		ac, bc := a.Counts(), b.Counts()
		if len(ac) != len(bc) {
			t.Fatalf("%v: lengths differ", strategy)
		}
		for i := range ac {
			if ac[i] != bc[i] {
				t.Fatalf("%v: Release and typed method disagree at %d: %v vs %v",
					strategy, i, ac[i], bc[i])
			}
		}
	}
}

func TestReleaseValidation(t *testing.T) {
	m := MustNew()
	if _, err := m.Release(Request{Counts: nil, Epsilon: 1}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := m.Release(Request{Counts: []float64{1}, Epsilon: 0}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := m.Release(Request{Strategy: Strategy(42), Counts: []float64{1}, Epsilon: 1}); err == nil {
		t.Error("invalid strategy accepted")
	}
	if _, err := m.Release(Request{Strategy: StrategyHierarchy, Counts: []float64{1}, Epsilon: 1}); err == nil {
		t.Error("hierarchy strategy without hierarchy accepted")
	}
	if _, err := m.Release(Request{Strategy: StrategyHierarchy, Counts: []float64{1, 2},
		Epsilon: 1, Hierarchy: Grades()}); err == nil {
		t.Error("hierarchy leaf-count mismatch accepted")
	}
}

// ReleaseBatch must produce the same releases regardless of worker
// scheduling: results are a function of seed and request index.
func TestReleaseBatchDeterministic(t *testing.T) {
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = Request{Strategy: Strategies()[i%4], Counts: counts, Epsilon: 1}
	}
	run := func() [][]float64 {
		rels, err := MustNew(WithSeed(33)).ReleaseBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, len(rels))
		for i, r := range rels {
			out[i] = r.Counts()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch nondeterministic at request %d position %d", i, j)
			}
		}
	}
	// Distinct requests draw distinct noise: two identical laplace
	// requests in one batch must not collide.
	lap := []Request{
		{Strategy: StrategyLaplace, Counts: counts, Epsilon: 1},
		{Strategy: StrategyLaplace, Counts: counts, Epsilon: 1},
	}
	rels, err := MustNew(WithSeed(33)).ReleaseBatch(lap)
	if err != nil {
		t.Fatal(err)
	}
	x, y := rels[0].(*LaplaceRelease).Noisy, rels[1].(*LaplaceRelease).Noisy
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two batched requests shared a noise stream")
	}
}

func TestReleaseBatchPartialFailure(t *testing.T) {
	counts := []float64{1, 2, 3}
	reqs := []Request{
		{Strategy: StrategyLaplace, Counts: counts, Epsilon: 1},
		{Strategy: StrategyLaplace, Counts: counts, Epsilon: -1}, // invalid
		{Strategy: StrategyUniversal, Counts: counts, Epsilon: 1},
	}
	rels, err := MustNew(WithSeed(1)).ReleaseBatch(reqs)
	if err == nil {
		t.Fatal("invalid request not reported")
	}
	var batchErr *BatchError
	if !errors.As(err, &batchErr) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(batchErr.Errors) != 1 || batchErr.Errors[1] == nil {
		t.Fatalf("errors = %v", batchErr.Errors)
	}
	if rels[0] == nil || rels[2] == nil || rels[1] != nil {
		t.Fatal("result alignment wrong")
	}
	if len(rels) != 3 {
		t.Fatal("result length wrong")
	}
}

func TestReleaseBatchEmpty(t *testing.T) {
	rels, err := MustNew().ReleaseBatch(nil)
	if err != nil || len(rels) != 0 {
		t.Fatalf("empty batch: %v, %v", rels, err)
	}
}

func TestSessionChargesAndRefuses(t *testing.T) {
	s, err := NewSession(MustNew(WithSeed(3)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{5, 5}
	if _, err := s.Release(Request{Counts: counts, Epsilon: 0.75}); err != nil {
		t.Fatal(err)
	}
	if got := s.Accountant().Spent(); got != 0.75 {
		t.Fatalf("spent %v", got)
	}
	log := s.Accountant().Log()
	if log[0].Label != "release:universal" {
		t.Fatalf("charge label %q", log[0].Label)
	}
	_, err = s.Release(Request{Counts: counts, Epsilon: 0.5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraw error = %v", err)
	}
	// Refusals and invalid requests charge nothing.
	if _, err := s.Release(Request{Counts: nil, Epsilon: 0.1}); err == nil {
		t.Fatal("invalid request accepted")
	}
	if got := s.Accountant().Spent(); got != 0.75 {
		t.Fatalf("failed requests charged the budget: %v", got)
	}
	if rem := s.Remaining(); math.Abs(rem-0.25) > 1e-12 {
		t.Fatalf("remaining %v", rem)
	}
}

func TestSessionBatchAtomicCharge(t *testing.T) {
	s, err := NewSession(MustNew(WithSeed(4)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{1, 2, 3, 4}
	// Batch that fits: charged as one lump.
	rels, err := s.ReleaseBatch([]Request{
		{Counts: counts, Epsilon: 0.25},
		{Strategy: StrategyLaplace, Counts: counts, Epsilon: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 || rels[0] == nil || rels[1] == nil {
		t.Fatal("batch results wrong")
	}
	if got := s.Accountant().Spent(); got != 0.5 {
		t.Fatalf("spent %v, want 0.5", got)
	}
	// Batch that would overdraw: refused outright, nothing charged, no
	// release computed.
	_, err = s.ReleaseBatch([]Request{
		{Counts: counts, Epsilon: 0.4},
		{Counts: counts, Epsilon: 0.4},
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraw batch error = %v", err)
	}
	if got := s.Accountant().Spent(); got != 0.5 {
		t.Fatalf("refused batch charged the budget: %v", got)
	}
	// Batch with an invalid member: refused before charging.
	_, err = s.ReleaseBatch([]Request{
		{Counts: counts, Epsilon: 0.1},
		{Counts: nil, Epsilon: 0.1},
	})
	if err == nil {
		t.Fatal("invalid batch member accepted")
	}
	if got := s.Accountant().Spent(); got != 0.5 {
		t.Fatalf("invalid batch charged the budget: %v", got)
	}
}

func TestSessionConstructors(t *testing.T) {
	if _, err := NewSession(nil, 1); err == nil {
		t.Error("nil mechanism accepted")
	}
	if _, err := NewSessionWithAccountant(MustNew(), nil); err == nil {
		t.Error("nil accountant accepted")
	}
	shared := NewAccountant(2)
	a, err := NewSessionWithAccountant(MustNew(WithSeed(1)), shared)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSessionWithAccountant(MustNew(WithSeed(2)), shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Release(Request{Counts: []float64{1}, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Release(Request{Counts: []float64{1}, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	// The shared accountant saw both sessions' charges.
	if shared.Spent() != 2 {
		t.Fatalf("shared accountant spent %v", shared.Spent())
	}
	if _, err := a.Release(Request{Counts: []float64{1}, Epsilon: 0.1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("shared budget not enforced: %v", err)
	}
}
