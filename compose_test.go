package dphist

import (
	"encoding/json"
	"testing"
)

func TestComposeSumValidation(t *testing.T) {
	if _, err := ComposeSum(); err == nil {
		t.Error("empty composition accepted")
	}
	a := newLaplaceRelease([]float64{1, 2}, false, 0.5)
	if _, err := ComposeSum(a, nil); err == nil {
		t.Error("nil member accepted")
	}
	b := newLaplaceRelease([]float64{1, 2, 3}, false, 0.5)
	if _, err := ComposeSum(a, b); err == nil {
		t.Error("mismatched domains accepted")
	}
}

func TestComposeSumExactAndMaxEpsilon(t *testing.T) {
	a := newLaplaceRelease([]float64{1.5, -2, 0}, false, 0.25)
	b := newLaplaceRelease([]float64{0.5, 3, 7}, false, 1.0)
	c := newLaplaceRelease([]float64{1, 1, 1}, false, 0.5)
	sum, err := ComposeSum(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 8}
	got := sum.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts %v, want %v", got, want)
		}
	}
	// Parallel composition over disjoint members: max, not sum.
	if sum.Epsilon() != 1.0 {
		t.Fatalf("epsilon %v, want max member 1.0", sum.Epsilon())
	}
	// The inputs are untouched.
	if a.Counts()[0] != 1.5 {
		t.Fatal("composition mutated a member")
	}
}

func TestComposeSumRoundTripsWire(t *testing.T) {
	a := newLaplaceRelease([]float64{4, 5}, false, 0.5)
	b := newLaplaceRelease([]float64{1, -1}, false, 0.5)
	sum, err := ComposeSum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRelease(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Strategy() != StrategyLaplace {
		t.Fatalf("decoded strategy %v", back.Strategy())
	}
	got, want := back.Counts(), sum.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded counts %v, want %v", got, want)
		}
	}
	if v, err := back.Range(0, 2); err != nil || v != 9 {
		t.Fatalf("decoded Range(0,2) = %v, %v; want 9", v, err)
	}
}

// TestNamespaceVersion pins the sequence-cursor contract the ingest
// engine leans on: versions count Puts under a name, survive Delete,
// and report 0 for names never stored.
func TestNamespaceVersion(t *testing.T) {
	store := NewStore()
	ns := store.Namespace("acme")
	if v := ns.Version("traffic"); v != 0 {
		t.Fatalf("unstored name version %d", v)
	}
	rel := newLaplaceRelease([]float64{1, 2}, false, 0.5)
	for want := 1; want <= 3; want++ {
		if _, err := ns.Put("traffic", rel); err != nil {
			t.Fatal(err)
		}
		if v := ns.Version("traffic"); v != want {
			t.Fatalf("after put %d: version %d", want, v)
		}
	}
	if !ns.Delete("traffic") {
		t.Fatal("delete failed")
	}
	if v := ns.Version("traffic"); v != 3 {
		t.Fatalf("version rewound to %d after delete", v)
	}
	if _, err := ns.Put("traffic", rel); err != nil {
		t.Fatal(err)
	}
	if v := ns.Version("traffic"); v != 4 {
		t.Fatalf("re-put after delete: version %d, want 4", v)
	}
	// Other namespaces and names are independent cursors.
	if v := store.Namespace("globex").Version("traffic"); v != 0 {
		t.Fatal("version leaked across namespaces")
	}
}
