package dphist

import (
	"encoding/json"
	"testing"
)

// FuzzWorkloadSketchDecode throws arbitrary payloads at the workload
// sketch — the one request field an HTTP analyst controls end to end on
// the auto-mint path. The invariants:
//
//   - Decoding a sketch and resolving a StrategyAuto request around it
//     never panics, whatever the bytes: it either mints a valid release
//     or returns an error.
//   - Validate and Release agree: a sketch that validates must mint, and
//     a sketch that fails validation must not.
//   - Anything minted reports a concrete strategy and carries a decision
//     whose winner matches it.
func FuzzWorkloadSketchDecode(f *testing.F) {
	f.Add([]byte(`{"preset":"points"}`))
	f.Add([]byte(`{"preset":"count_of_counts"}`))
	f.Add([]byte(`{"preset":"all_ranges"}`))
	f.Add([]byte(`{"ranges":[{"lo":0,"hi":8,"weight":2},{"lo":2,"hi":5}]}`))
	f.Add([]byte(`{"rects":[{"x0":0,"y0":0,"x1":2,"y1":2}]}`))
	f.Add([]byte(`{"preset":"prefixes","ranges":[{"lo":0,"hi":1}],"rects":[{"x1":1,"y1":1}]}`))
	f.Add([]byte(`{"preset":"nope"}`))
	f.Add([]byte(`{"ranges":[{"lo":-1,"hi":99999}]}`))
	f.Add([]byte(`{"ranges":[{"lo":0,"hi":1,"weight":-5}]}`))
	f.Add([]byte(`{"rects":[{"x0":5,"y0":5,"x1":1,"y1":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	m := MustNew(WithSeed(17))
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5}
	cells := [][]float64{{1, 2, 3, 4}, {0, 5, 0, 1}, {2, 2, 2, 2}, {9, 0, 0, 1}}

	f.Fuzz(func(t *testing.T, data []byte) {
		var sketch WorkloadSketch
		if err := json.Unmarshal(data, &sketch); err != nil {
			return
		}
		req := Request{
			Strategy: StrategyAuto,
			Counts:   counts,
			Cells:    cells,
			Epsilon:  0.5,
			Workload: &sketch,
		}
		valErr := req.Validate()
		rel, err := m.Release(req)
		if valErr != nil {
			if err == nil {
				t.Fatalf("sketch %s failed Validate (%v) but minted", data, valErr)
			}
			return
		}
		if err != nil {
			t.Fatalf("sketch %s validated but failed to mint: %v", data, err)
		}
		if !rel.Strategy().Valid() {
			t.Fatalf("sketch %s minted strategy %v", data, rel.Strategy())
		}
		dec, ok := ReleaseDecision(rel)
		if !ok {
			t.Fatalf("sketch %s minted without a decision", data)
		}
		if dec.Strategy != rel.Strategy().String() {
			t.Fatalf("sketch %s decision %q vs release %v", data, dec.Strategy, rel.Strategy())
		}
	})
}
