package dphist

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"sort"
	"testing"
)

func autoCounts() []float64 {
	return []float64{2, 0, 10, 2, 5, 5, 5, 5, 1, 3, 0, 7, 4, 4, 2, 6}
}

func pointsSketch() *WorkloadSketch {
	return &WorkloadSketch{Preset: "points"}
}

func TestAutoResolvesAndStampsDecision(t *testing.T) {
	m, err := New(WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.5,
		Workload: pointsSketch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Strategy() == StrategyAuto || !rel.Strategy().Valid() {
		t.Fatalf("auto release reports strategy %v", rel.Strategy())
	}
	dec, ok := ReleaseDecision(rel)
	if !ok {
		t.Fatal("no decision stamped on auto-minted release")
	}
	if dec.Strategy != rel.Strategy().String() {
		t.Fatalf("decision strategy %q, release %v", dec.Strategy, rel.Strategy())
	}
	// A point workload is the laplace strategy's home turf: unit ranges
	// cost one cell's noise each, while trees spend their higher
	// sensitivity for range structure the workload never uses.
	if dec.Strategy != "laplace" {
		t.Fatalf("points workload resolved to %q", dec.Strategy)
	}
	if dec.Confidence != "exact" {
		t.Fatalf("laplace prediction confidence %q", dec.Confidence)
	}
	if len(dec.Alternatives) < 5 {
		t.Fatalf("only %d alternatives evaluated", len(dec.Alternatives))
	}
	if !sort.SliceIsSorted(dec.Alternatives, func(i, j int) bool {
		return dec.Alternatives[i].PredictedError < dec.Alternatives[j].PredictedError
	}) {
		t.Fatalf("alternatives not ranked: %+v", dec.Alternatives)
	}
	if dec.Alternatives[0].Strategy != dec.Strategy {
		t.Fatalf("winner %q not first alternative %q", dec.Strategy, dec.Alternatives[0].Strategy)
	}
}

func TestDirectMintHasNoDecision(t *testing.T) {
	m, err := New(WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{Strategy: StrategyLaplace, Counts: autoCounts(), Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ReleaseDecision(rel); ok {
		t.Fatal("explicit mint carries an auto decision")
	}
}

func TestAutoWideRangesPickTree(t *testing.T) {
	m, err := New(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// The CDF workload over a larger domain: prefix widths average n/2,
	// so the flat strategy's linear-in-width cost loses to the
	// polylogarithmic tree strategies.
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	sk := &WorkloadSketch{Preset: "prefixes"}
	rel, err := m.Release(Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5, Workload: sk})
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := ReleaseDecision(rel)
	if dec.Strategy != "universal" && dec.Strategy != "wavelet" {
		t.Fatalf("wide-range workload resolved to %q", dec.Strategy)
	}
}

func TestAutoSessionChargesConcreteLabel(t *testing.T) {
	m, err := New(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sess.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.25,
		Workload: pointsSketch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	log := sess.Accountant().Log()
	if len(log) != 1 {
		t.Fatalf("%d charges after one release", len(log))
	}
	want := "release:" + rel.Strategy().String()
	if log[0].Label != want {
		t.Fatalf("ledger label %q, want %q", log[0].Label, want)
	}
}

func TestAutoFailedResolutionSpendsNothing(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.25,
		Workload: &WorkloadSketch{Preset: "no_such_preset"},
	})
	if !errors.Is(err, ErrBadSketch) {
		t.Fatalf("err = %v, want ErrBadSketch", err)
	}
	if spent := sess.Accountant().Spent(); spent != 0 {
		t.Fatalf("failed resolution spent %v", spent)
	}
}

func TestAutoSketchValidation(t *testing.T) {
	counts := autoCounts()
	cases := []struct {
		name string
		req  Request
	}{
		{"no sketch", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5}},
		{"empty sketch", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5,
			Workload: &WorkloadSketch{}}},
		{"unknown preset", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5,
			Workload: &WorkloadSketch{Preset: "bogus"}}},
		{"range outside domain", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5,
			Workload: &WorkloadSketch{Ranges: []WeightedRange{{Lo: 0, Hi: 1000}}}}},
		{"negative weight", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5,
			Workload: &WorkloadSketch{Ranges: []WeightedRange{{Lo: 0, Hi: 2, Weight: -1}}}}},
		{"rects without cells", Request{Strategy: StrategyAuto, Counts: counts, Epsilon: 0.5,
			Workload: &WorkloadSketch{Rects: []WeightedRect{{X1: 1, Y1: 1}}}}},
		{"ranges without counts", Request{Strategy: StrategyAuto, Epsilon: 0.5,
			Workload: pointsSketch()}},
		{"oversized expansion", Request{Strategy: StrategyAuto,
			Counts: make([]float64, 200), Epsilon: 0.5,
			Workload: &WorkloadSketch{Preset: "all_ranges"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); err == nil {
				t.Fatal("validated")
			}
		})
	}
}

func TestAutoCountOfCountsPreset(t *testing.T) {
	m, err := New(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.5,
		Workload: &WorkloadSketch{Preset: "count_of_counts"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := ReleaseDecision(rel)
	if !ok {
		t.Fatal("no decision")
	}
	if dec.PredictedError <= 0 || math.IsInf(dec.PredictedError, 0) {
		t.Fatalf("predicted error %v", dec.PredictedError)
	}
}

func TestAutoRectsOnlyResolvesUniversal2D(t *testing.T) {
	m, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	cells := [][]float64{{1, 2, 3, 4}, {0, 5, 0, 1}, {2, 2, 2, 2}, {9, 0, 0, 1}}
	rel, err := m.Release(Request{
		Strategy: StrategyAuto,
		Cells:    cells,
		Epsilon:  0.5,
		Workload: &WorkloadSketch{Rects: []WeightedRect{{X0: 0, Y0: 0, X1: 2, Y1: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Strategy() != StrategyUniversal2D {
		t.Fatalf("rects-only sketch resolved to %v", rel.Strategy())
	}
	dec, ok := ReleaseDecision(rel)
	if !ok || dec.Strategy != "universal2d" {
		t.Fatalf("decision %+v ok=%v", dec, ok)
	}
}

func TestAutoHierarchyEntersComparison(t *testing.T) {
	m, err := New(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	// One root over two leaves: leaves are nodes 1 and 2.
	h, err := NewHierarchy([]int{-1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{
		Strategy:  StrategyAuto,
		Counts:    []float64{3, 4},
		Epsilon:   0.5,
		Hierarchy: h,
		Workload:  pointsSketch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := ReleaseDecision(rel)
	found := false
	for _, alt := range dec.Alternatives {
		if alt.Strategy == "hierarchy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hierarchy missing from alternatives: %+v", dec.Alternatives)
	}
}

func TestAutoDecisionSurvivesJSONRoundTrip(t *testing.T) {
	m, err := New(WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.5,
		Workload: pointsSketch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rel)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRelease(data)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ReleaseDecision(rel)
	got, ok := ReleaseDecision(decoded)
	if !ok {
		t.Fatal("decision lost in round-trip")
	}
	if got.Strategy != want.Strategy || got.PredictedError != want.PredictedError ||
		got.Confidence != want.Confidence || len(got.Alternatives) != len(want.Alternatives) {
		t.Fatalf("decision mutated: got %+v want %+v", got, want)
	}
	// Bit-stability: re-encoding the decoded release reproduces the bytes.
	again, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoded release differs from original bytes")
	}
}

func TestAutoDecisionSurvivesDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.Release(Request{
		Strategy: StrategyAuto,
		Counts:   autoCounts(),
		Epsilon:  0.5,
		Workload: pointsSketch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ReleaseDecision(rel)
	entry, err := store.Put("advised", rel)
	if err != nil {
		t.Fatal(err)
	}
	// The journal records the concrete strategy, never the sentinel.
	if entry.Strategy != rel.Strategy() {
		t.Fatalf("journaled strategy %v, minted %v", entry.Strategy, rel.Strategy())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenStore(dir, WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, entry2, ok := reopened.Get("advised")
	if !ok {
		t.Fatal("release lost across restart")
	}
	if entry2.Strategy != rel.Strategy() {
		t.Fatalf("recovered entry strategy %v", entry2.Strategy)
	}
	dec, ok := ReleaseDecision(got)
	if !ok {
		t.Fatal("decision lost across restart")
	}
	if dec.Strategy != want.Strategy || dec.PredictedError != want.PredictedError {
		t.Fatalf("recovered decision %+v, want %+v", dec, want)
	}
}

func TestAutoInBatchMintsAndStamps(t *testing.T) {
	m, err := New(WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Strategy: StrategyAuto, Counts: autoCounts(), Epsilon: 0.5, Workload: pointsSketch()},
		{Strategy: StrategyUniversal, Counts: autoCounts(), Epsilon: 0.5},
	}
	rels, err := m.ReleaseBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ReleaseDecision(rels[0]); !ok {
		t.Fatal("batched auto release missing decision")
	}
	if _, ok := ReleaseDecision(rels[1]); ok {
		t.Fatal("batched explicit release carries decision")
	}
}

func TestStrategyAutoParsesButIsNotServable(t *testing.T) {
	s, err := ParseStrategy("auto")
	if err != nil {
		t.Fatal(err)
	}
	if s != StrategyAuto {
		t.Fatalf("parsed %v", s)
	}
	if s.Valid() {
		t.Fatal("StrategyAuto reports Valid")
	}
	if s.String() != "auto" {
		t.Fatalf("String() = %q", s.String())
	}
	for _, concrete := range Strategies() {
		if concrete == StrategyAuto {
			t.Fatal("StrategyAuto listed among concrete strategies")
		}
	}
	text, err := s.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Strategy
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != StrategyAuto {
		t.Fatalf("text round-trip gave %v", back)
	}
}
