package dphist

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/plan"
)

// Universal2DHistogram releases a two-dimensional universal histogram:
// a quadtree of noisy region counts, made consistent by constrained
// inference, able to answer arbitrary axis-aligned rectangle queries.
// This is the multi-dimensional extension Appendix B of the paper poses
// as future work; the quadtree over Morton-ordered cells is exactly the
// paper's H query with branching factor 4, so Theorem 3's inference and
// the sensitivity argument carry over unchanged.
//
// cells[y][x] holds the true count of cell (x, y); short rows are
// treated as zero-padded. The branching option does not apply (the
// quadtree fan-out is inherently 4).
func (m *Mechanism) Universal2DHistogram(cells [][]float64, eps float64) (*Universal2DRelease, error) {
	if err := validate2DCells(cells, eps); err != nil {
		return nil, err
	}
	return m.universal2DWith(cells, eps, m.nextStream())
}

// validate2DCells checks a 2-D release input without spending anything:
// a non-empty grid of finite cells and an admissible epsilon.
func validate2DCells(cells [][]float64, eps float64) error {
	if len(cells) == 0 {
		return errEmptyCounts
	}
	width := 0
	for y, row := range cells {
		if len(row) > width {
			width = len(row)
		}
		for x, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dphist: cell (%d,%d) is %v", x, y, v)
			}
		}
	}
	if width == 0 {
		return errEmptyCounts
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("%w, got %v", errBadEpsilon, eps)
	}
	return nil
}

// cellsWidth returns the widest row of an already-validated cell grid.
func cellsWidth(cells [][]float64) int {
	width := 0
	for _, row := range cells {
		if len(row) > width {
			width = len(row)
		}
	}
	return width
}

func (m *Mechanism) universal2DWith(cells [][]float64, eps float64, src *rand.Rand) (*Universal2DRelease, error) {
	grid, err := histo2d.New(cellsWidth(cells), len(cells))
	if err != nil {
		return nil, fmt.Errorf("dphist: %w", err)
	}
	noisy := grid.Release(cells, eps, src)
	inferred := grid.Infer(noisy)
	post := append([]float64(nil), inferred...)
	if m.nonNeg {
		grid.ZeroNegativeSubtrees(post)
	}
	if m.round {
		core.RoundNonNegInt(post)
	}
	return newUniversal2DRelease(grid, noisy, inferred, post, eps), nil
}

// Universal2DRelease is a private 2-D histogram answering axis-aligned
// rectangle queries. It satisfies the uniform Release interface — the
// cell grid is published row-major through Counts, and Range answers
// half-open intervals over that row-major order — while Rect answers
// the native rectangle query [x0, x1) x [y0, y1).
//
// Rectangles are answered from the compiled query plan: when the
// non-negativity heuristic truncated the tree, the plan decomposes each
// rectangle over the post-processed quadtree, keeping its bias bounded
// in the number of covering nodes — O(W+H) worst case, perimeter-
// proportional rather than area-proportional like summing truncated
// cells would be; with WithoutNonNegativity and WithoutRounding the
// tree is exactly consistent, and the plan answers from a precomputed
// summed-area table — O(1) per rectangle, bit-identical (up to float
// rounding) to summing the published cells.
type Universal2DRelease struct {
	grid     *histo2d.Grid
	noisy    []float64 // h~ over the quadtree, BFS order
	inferred []float64 // h-bar before post-processing, BFS order
	post     []float64 // h-bar after non-negativity and rounding, BFS order
	cells    []float64 // published cell estimates, row-major over W x H

	plan *plan.Plan
	eps  float64
	autoStamp
}

// newUniversal2DRelease assembles the release from freshly built
// quadtree vectors; callers must not retain the slices they pass in
// (the mechanism and decoder both hand over ownership).
func newUniversal2DRelease(grid *histo2d.Grid, noisy, inferred, post []float64, eps float64) *Universal2DRelease {
	w, h := grid.Width(), grid.Height()
	cells := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v, err := grid.Cell(post, x, y)
			if err != nil {
				panic(err) // unreachable: loop bounds match the grid
			}
			cells[y*w+x] = v
		}
	}
	return &Universal2DRelease{
		grid:     grid,
		noisy:    noisy,
		inferred: inferred,
		post:     post,
		cells:    cells,
		plan:     plan.Compile2D(grid, post, cells),
		eps:      eps,
	}
}

// Strategy returns StrategyUniversal2D.
func (r *Universal2DRelease) Strategy() Strategy { return StrategyUniversal2D }

// Epsilon returns the privacy cost spent on this release.
func (r *Universal2DRelease) Epsilon() float64 { return r.eps }

// Width returns the real domain width.
func (r *Universal2DRelease) Width() int { return r.grid.Width() }

// Height returns the real domain height.
func (r *Universal2DRelease) Height() int { return r.grid.Height() }

// TreeHeight returns the quadtree height; the release used sensitivity
// equal to it.
func (r *Universal2DRelease) TreeHeight() int { return r.grid.TreeHeight() }

// Counts returns the published cell estimates row-major (a copy): index
// y*Width()+x holds cell (x, y).
func (r *Universal2DRelease) Counts() []float64 {
	return append([]float64(nil), r.cells...)
}

func (r *Universal2DRelease) queryPlan() *plan.Plan { return r.plan }

// Rows returns the published cell grid as rows, Rows()[y][x]. Every call
// builds fresh rows, so mutating the result never touches the release.
func (r *Universal2DRelease) Rows() [][]float64 {
	out := make([][]float64, r.grid.Height())
	w := r.grid.Width()
	for y := range out {
		out[y] = append([]float64(nil), r.cells[y*w:(y+1)*w]...)
	}
	return out
}

// Range answers the half-open interval [lo, hi) over the row-major cell
// order — the 1-D view the uniform batch engine queries. Answers equal
// sums over Counts by construction. The empty range lo == hi answers 0.
func (r *Universal2DRelease) Range(lo, hi int) (float64, error) {
	if lo < 0 || hi > len(r.cells) || lo > hi {
		return 0, badRange(lo, hi, len(r.cells))
	}
	return r.plan.Range(lo, hi), nil
}

// Rect answers the half-open rectangle query [x0, x1) x [y0, y1): from
// the summed-area table in O(1) when the post-processed quadtree is
// exactly consistent, else by iterative quadtree decomposition. Empty
// rectangles (x0 == x1 or y0 == y1, within bounds) answer 0.
func (r *Universal2DRelease) Rect(x0, y0, x1, y1 int) (float64, error) {
	w, h := r.grid.Width(), r.grid.Height()
	if x0 < 0 || y0 < 0 || x1 > w || y1 > h || x0 > x1 || y0 > y1 {
		return 0, badRect(x0, y0, x1, y1, w, h)
	}
	return r.plan.Rect(x0, y0, x1, y1), nil
}

// Cell returns the estimate for cell (x, y).
func (r *Universal2DRelease) Cell(x, y int) (float64, error) {
	if x < 0 || x >= r.grid.Width() || y < 0 || y >= r.grid.Height() {
		return 0, fmt.Errorf("dphist: cell (%d,%d) outside %dx%d", x, y, r.grid.Width(), r.grid.Height())
	}
	return r.cells[y*r.grid.Width()+x], nil
}

// Total returns the estimated number of records in the real domain.
func (r *Universal2DRelease) Total() float64 { return r.plan.Total() }

// NoisyTree returns a copy of the raw noisy quadtree answer h~ in BFS
// order (root first).
func (r *Universal2DRelease) NoisyTree() []float64 {
	return append([]float64(nil), r.noisy...)
}

// InferredTree returns a copy of the consistent inferred quadtree h-bar
// in BFS order, before non-negativity and rounding post-processing.
func (r *Universal2DRelease) InferredTree() []float64 {
	return append([]float64(nil), r.inferred...)
}

func badRect(x0, y0, x1, y1, w, h int) error {
	return fmt.Errorf("dphist: bad rectangle [%d,%d)x[%d,%d) for domain %dx%d", x0, x1, y0, y1, w, h)
}
