package dphist

import (
	"fmt"
	"math"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/histo2d"
)

// Universal2DHistogram releases a two-dimensional universal histogram:
// a quadtree of noisy region counts, made consistent by constrained
// inference, able to answer arbitrary axis-aligned rectangle queries.
// This is the multi-dimensional extension Appendix B of the paper poses
// as future work; the quadtree over Morton-ordered cells is exactly the
// paper's H query with branching factor 4, so Theorem 3's inference and
// the sensitivity argument carry over unchanged.
//
// cells[y][x] holds the true count of cell (x, y); short rows are
// treated as zero-padded. The branching option does not apply (the
// quadtree fan-out is inherently 4).
func (m *Mechanism) Universal2DHistogram(cells [][]float64, eps float64) (*Universal2DRelease, error) {
	if len(cells) == 0 {
		return nil, errEmptyCounts
	}
	width := 0
	for y, row := range cells {
		if len(row) > width {
			width = len(row)
		}
		for x, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dphist: cell (%d,%d) is %v", x, y, v)
			}
		}
	}
	if width == 0 {
		return nil, errEmptyCounts
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w, got %v", errBadEpsilon, eps)
	}
	grid, err := histo2d.New(width, len(cells))
	if err != nil {
		return nil, fmt.Errorf("dphist: %w", err)
	}
	noisy := grid.Release(cells, eps, m.nextStream())
	inferred := grid.Infer(noisy)
	post := append([]float64(nil), inferred...)
	if m.nonNeg {
		grid.ZeroNegativeSubtrees(post)
	}
	if m.round {
		core.RoundNonNegInt(post)
	}
	return &Universal2DRelease{grid: grid, post: post}, nil
}

// Universal2DRelease is a private 2D histogram answering rectangle
// queries.
type Universal2DRelease struct {
	grid *histo2d.Grid
	post []float64
}

// Width returns the real domain width.
func (r *Universal2DRelease) Width() int { return r.grid.Width() }

// Height returns the real domain height.
func (r *Universal2DRelease) Height() int { return r.grid.Height() }

// TreeHeight returns the quadtree height; the release used sensitivity
// equal to it.
func (r *Universal2DRelease) TreeHeight() int { return r.grid.TreeHeight() }

// Range answers the half-open rectangle query [x0, x1) x [y0, y1).
func (r *Universal2DRelease) Range(x0, y0, x1, y1 int) (float64, error) {
	return r.grid.RangeSum(r.post, x0, y0, x1, y1)
}

// Cell returns the estimate for cell (x, y).
func (r *Universal2DRelease) Cell(x, y int) (float64, error) {
	return r.grid.Cell(r.post, x, y)
}

// Counts returns the full released cell grid, Counts()[y][x].
func (r *Universal2DRelease) Counts() [][]float64 {
	out := make([][]float64, r.grid.Height())
	for y := range out {
		out[y] = make([]float64, r.grid.Width())
		for x := range out[y] {
			v, err := r.grid.Cell(r.post, x, y)
			if err != nil {
				panic(err) // unreachable: loop bounds match the grid
			}
			out[y][x] = v
		}
	}
	return out
}

// Total returns the estimated number of records in the real domain.
func (r *Universal2DRelease) Total() float64 {
	v, err := r.grid.RangeSum(r.post, 0, 0, r.grid.Width(), r.grid.Height())
	if err != nil {
		panic(err) // unreachable: full-domain rectangle is always valid
	}
	return v
}
