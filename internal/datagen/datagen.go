// Package datagen synthesizes stand-ins for the paper's three private
// evaluation datasets (Section 5, Appendix C), which cannot be
// redistributed. Each generator reproduces the *distributional* property
// that drives the corresponding experiment — heavy-tailed counts with
// massive duplication for the unattributed task (Theorem 2 depends only
// on run lengths), and sparse clustered domains for the universal task
// (which drives the Section 4.2 non-negativity win). See DESIGN.md
// section 4 for the substitution rationale.
package datagen

import (
	"math"
	"math/rand/v2"
)

// Poisson samples a Poisson random variate with the given mean. Knuth's
// product method is used for small means and a clamped normal
// approximation for large ones.
func Poisson(mean float64, rng *rand.Rand) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := math.Round(mean + math.Sqrt(mean)*rng.NormFloat64())
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

// ParetoDegree samples a discrete power-law value: floor of a continuous
// Pareto with minimum xmin and tail exponent alpha, capped at max.
// P(X >= x) ~ (x/xmin)^(1-alpha), so smaller alpha means heavier tails.
// Requires alpha > 1, xmin >= 1, max >= xmin.
func ParetoDegree(alpha float64, xmin, max int, rng *rand.Rand) int {
	if alpha <= 1 || xmin < 1 || max < xmin {
		panic("datagen: ParetoDegree requires alpha > 1, 1 <= xmin <= max")
	}
	for {
		u := rng.Float64()
		if u == 0 {
			continue
		}
		v := int(math.Floor(float64(xmin) * math.Pow(u, -1/(alpha-1))))
		if v <= max {
			return v
		}
		// Resample rather than clamp so the cap does not pile mass at max.
	}
}

// HillAlpha estimates the power-law tail exponent alpha of a sample by
// the Hill maximum-likelihood estimator over values >= xmin:
//
//	alpha = 1 + n / sum_i ln(x_i / xmin).
//
// It lets experiments confirm that generated degree data actually has
// the heavy tail the paper's datasets exhibit. Returns 0 when fewer than
// two observations reach xmin.
func HillAlpha(xs []float64, xmin float64) float64 {
	if xmin <= 0 {
		panic("datagen: HillAlpha requires xmin > 0")
	}
	n := 0
	logSum := 0.0
	for _, x := range xs {
		if x >= xmin {
			n++
			logSum += math.Log(x / xmin)
		}
	}
	if n < 2 || logSum == 0 {
		return 0
	}
	return 1 + float64(n)/logSum
}

// ZipfFrequencies returns the deterministic rank-frequency vector
// f[i] = round(top / (i+1)^s) for i = 0..n-1: the classic shape of
// search-query popularity. The result is non-increasing; the tail
// contains long runs of equal small values, exactly the duplication
// structure the unattributed histogram exploits.
func ZipfFrequencies(n int, s, top float64) []float64 {
	if n < 1 || s <= 0 || top <= 0 {
		panic("datagen: ZipfFrequencies requires n >= 1, s > 0, top > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(top / math.Pow(float64(i+1), s))
	}
	return out
}
