package datagen

import (
	"math"
	"math/rand/v2"
)

// SearchLogKeywordCounts synthesizes the Search Logs unattributed task:
// the 3-month search frequencies of the top n keywords, rank-ordered
// descending (position i is the count of the i-th most popular keyword).
// A Zipf backbone with multiplicative Poisson jitter gives a smooth head
// and a long tail with heavy count duplication. The top frequency scales
// with n (100n, i.e. 2e6 at the paper's 20K keywords) so that the
// duplicated tail — which starts around rank sqrt(top) — covers a
// comparable fraction of the vector at every scale.
func SearchLogKeywordCounts(n int, rng *rand.Rand) []float64 {
	base := ZipfFrequencies(n, 1.05, 100*float64(n))
	out := make([]float64, n)
	for i, f := range base {
		out[i] = Poisson(f, rng)
	}
	// Restore the rank ordering the task reports (jitter may swap
	// neighbors).
	for i := 1; i < n; i++ {
		if out[i] > out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// SeriesConfig shapes the synthetic temporal frequency of one query term,
// standing in for the paper's "Obama" series from Jan 1, 2004 at 16 bins
// per day. Zero fields take defaults mirroring that shape: a near-zero
// baseline for the first years, a steep ramp through the 2008 campaign, a
// spike at the election, and a decaying but elevated tail.
type SeriesConfig struct {
	Bins      int     // number of time bins; default 32768 (about 5.6 years)
	BaseRate  float64 // expected searches/bin before the ramp; default 0.2
	RampStart int     // bin where interest starts growing; default 60% of Bins
	PeakBin   int     // bin of maximum interest; default 85% of Bins
	PeakRate  float64 // expected searches/bin at the peak; default 400
	TailRate  float64 // steady rate after the peak decays; default 60
	DailyAmp  float64 // relative amplitude of the diurnal cycle; default 0.5
}

func (c SeriesConfig) withDefaults() SeriesConfig {
	if c.Bins == 0 {
		c.Bins = 32768
	}
	if c.BaseRate == 0 {
		c.BaseRate = 0.2
	}
	if c.RampStart == 0 {
		c.RampStart = c.Bins * 60 / 100
	}
	if c.PeakBin == 0 {
		c.PeakBin = c.Bins * 85 / 100
	}
	if c.PeakRate == 0 {
		c.PeakRate = 400
	}
	if c.TailRate == 0 {
		c.TailRate = 60
	}
	if c.DailyAmp == 0 {
		c.DailyAmp = 0.5
	}
	if c.PeakBin <= c.RampStart {
		c.PeakBin = c.RampStart + 1
	}
	return c
}

// QueryTermSeries synthesizes the per-bin search counts of a query term
// under cfg. Counts are Poisson draws around a deterministic intensity
// curve with a 16-bin diurnal cycle, so early bins are mostly zeros
// (sparse) and campaign-era bins are in the hundreds.
func QueryTermSeries(cfg SeriesConfig, rng *rand.Rand) []float64 {
	cfg = cfg.withDefaults()
	out := make([]float64, cfg.Bins)
	for i := range out {
		out[i] = Poisson(seriesIntensity(cfg, i), rng)
	}
	return out
}

// seriesIntensity is the deterministic expected rate for bin i.
func seriesIntensity(cfg SeriesConfig, i int) float64 {
	var level float64
	switch {
	case i < cfg.RampStart:
		level = cfg.BaseRate
	case i <= cfg.PeakBin:
		// Exponential ramp from BaseRate to PeakRate.
		frac := float64(i-cfg.RampStart) / float64(cfg.PeakBin-cfg.RampStart)
		level = cfg.BaseRate * math.Pow(cfg.PeakRate/cfg.BaseRate, frac)
	default:
		// Exponential decay from PeakRate toward TailRate.
		decay := float64(i-cfg.PeakBin) / float64(cfg.Bins)
		level = cfg.TailRate + (cfg.PeakRate-cfg.TailRate)*math.Exp(-12*decay)
	}
	// Diurnal cycle over the paper's 16 bins/day.
	phase := 2 * math.Pi * float64(i%16) / 16
	return level * (1 + cfg.DailyAmp*math.Sin(phase))
}
