package datagen

import (
	"math/rand/v2"

	"github.com/dphist/dphist/internal/graph"
)

// NetTraceConfig shapes the synthetic IP-trace dataset standing in for
// the paper's NetTrace (a gateway-level bipartite connection graph with
// about 65K external hosts). Zero fields take the defaults below, which
// mirror the paper's scale.
type NetTraceConfig struct {
	// DomainSize is the size of the external address space (the range
	// attribute's domain). Default 65536 (a /16, padding-free for a
	// binary tree of height 17).
	DomainSize int
	// ActiveHosts is the number of external hosts with at least one
	// connection. Default 20000; the rest of the domain is empty, making
	// the unit-count histogram sparse as in real gateway traces.
	ActiveHosts int
	// Alpha is the power-law tail exponent of the per-host connection
	// count. Default 2.0: most hosts touch one or two internal hosts, a
	// few touch thousands.
	Alpha float64
	// MaxDegree caps per-host connection counts. Default 8192.
	MaxDegree int
	// ClusterBlocks is the number of contiguous address blocks the
	// active hosts concentrate in, emulating allocated subnets. Default
	// 64. Clustering leaves large empty regions, the case where the
	// Section 4.2 heuristic shines.
	ClusterBlocks int
}

func (c NetTraceConfig) withDefaults() NetTraceConfig {
	if c.DomainSize == 0 {
		c.DomainSize = 65536
	}
	if c.ActiveHosts == 0 {
		c.ActiveHosts = 20000
	}
	if c.Alpha == 0 {
		c.Alpha = 2.0
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = 8192
	}
	if c.ClusterBlocks == 0 {
		c.ClusterBlocks = 64
	}
	if c.ActiveHosts > c.DomainSize {
		c.ActiveHosts = c.DomainSize
	}
	if c.ClusterBlocks > c.ActiveHosts {
		c.ClusterBlocks = c.ActiveHosts
	}
	return c
}

// NetTraceCounts synthesizes the unit-count histogram of the NetTrace
// task: position i holds the number of distinct internal hosts external
// host i connected to (its degree in the bipartite connection graph), or
// zero for inactive addresses.
func NetTraceCounts(cfg NetTraceConfig, rng *rand.Rand) []float64 {
	cfg = cfg.withDefaults()
	counts := make([]float64, cfg.DomainSize)
	placed := 0
	// Carve the domain into equal block slots; fill ClusterBlocks of
	// them (chosen at random) with contiguous runs of active hosts.
	perBlock := (cfg.ActiveHosts + cfg.ClusterBlocks - 1) / cfg.ClusterBlocks
	blockSlots := cfg.DomainSize / perBlock
	if blockSlots < 1 {
		blockSlots = 1
	}
	order := rng.Perm(blockSlots)
	for _, slot := range order {
		if placed >= cfg.ActiveHosts {
			break
		}
		start := slot * perBlock
		for i := 0; i < perBlock && placed < cfg.ActiveHosts; i++ {
			pos := start + i
			if pos >= cfg.DomainSize || counts[pos] != 0 {
				continue
			}
			counts[pos] = float64(ParetoDegree(cfg.Alpha, 1, cfg.MaxDegree, rng))
			placed++
		}
	}
	return counts
}

// NetTraceGraph materializes the bipartite connection graph behind a
// NetTrace count vector: external host i gains counts[i] distinct
// internal neighbors chosen uniformly from [0, nInternal). The left
// degree sequence of the result equals the count vector (clamped at
// nInternal).
func NetTraceGraph(counts []float64, nInternal int, rng *rand.Rand) (*graph.Bipartite, error) {
	g, err := graph.NewBipartite(len(counts), nInternal)
	if err != nil {
		return nil, err
	}
	for l, c := range counts {
		want := int(c)
		if want > nInternal {
			want = nInternal
		}
		have := 0
		for have < want {
			if added, err := g.AddEdge(l, rng.IntN(nInternal)); err != nil {
				return nil, err
			} else if added {
				have++
			}
		}
	}
	return g, nil
}

// SocialNetworkDegrees synthesizes the Social Network task's degree
// sequence: a preferential-attachment friendship graph on n vertices
// (default scale in the paper: about 11000 students) with m edges per
// arriving vertex.
func SocialNetworkDegrees(n, m int, rng *rand.Rand) ([]float64, error) {
	g, err := graph.PreferentialAttachment(n, m, rng)
	if err != nil {
		return nil, err
	}
	return g.DegreeSequence(), nil
}
