package datagen

import (
	"math"
	"sort"
	"testing"

	"github.com/dphist/dphist/internal/laplace"
)

func TestPoissonMoments(t *testing.T) {
	rng := laplace.NewRand(1, 2)
	for _, mean := range []float64{0.3, 3, 25, 400} {
		const n = 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := Poisson(mean, rng)
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("Poisson(%v) produced %v", mean, v)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) mean %v", mean, m)
		}
		if math.Abs(variance-mean)/mean > 0.1 {
			t.Errorf("Poisson(%v) variance %v", mean, variance)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	rng := laplace.NewRand(3, 3)
	if Poisson(0, rng) != 0 || Poisson(-5, rng) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestParetoDegreeBoundsAndTail(t *testing.T) {
	rng := laplace.NewRand(4, 4)
	const n = 50000
	ones := 0
	big := 0
	for i := 0; i < n; i++ {
		v := ParetoDegree(2.0, 1, 10000, rng)
		if v < 1 || v > 10000 {
			t.Fatalf("out of bounds: %d", v)
		}
		if v == 1 {
			ones++
		}
		if v >= 100 {
			big++
		}
	}
	// For alpha=2: P(X=1) = 1 - 1/2 = 0.5; P(X >= 100) = 1/100.
	if f := float64(ones) / n; math.Abs(f-0.5) > 0.02 {
		t.Errorf("P(deg=1) = %v, want about 0.5", f)
	}
	if f := float64(big) / n; math.Abs(f-0.01) > 0.005 {
		t.Errorf("P(deg>=100) = %v, want about 0.01", f)
	}
}

func TestParetoDegreePanics(t *testing.T) {
	rng := laplace.NewRand(5, 5)
	for _, c := range []struct {
		alpha      float64
		xmin, xmax int
	}{{1.0, 1, 10}, {2, 0, 10}, {2, 5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParetoDegree(%v,%d,%d) did not panic", c.alpha, c.xmin, c.xmax)
				}
			}()
			ParetoDegree(c.alpha, c.xmin, c.xmax, rng)
		}()
	}
}

func TestHillAlphaRecoversExponent(t *testing.T) {
	rng := laplace.NewRand(21, 4)
	const want = 2.5
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = float64(ParetoDegree(want, 1, 1<<30, rng))
	}
	// The discrete floor biases the raw estimate; measuring on the tail
	// (xmin=10) keeps the continuous approximation accurate.
	got := HillAlpha(xs, 10)
	if math.Abs(got-want) > 0.2 {
		t.Fatalf("Hill alpha = %v, want about %v", got, want)
	}
}

func TestHillAlphaEdgeCases(t *testing.T) {
	if got := HillAlpha([]float64{5}, 1); got != 0 {
		t.Errorf("single observation gave %v", got)
	}
	if got := HillAlpha([]float64{1, 1, 1}, 1); got != 0 {
		t.Errorf("all-xmin sample gave %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("xmin=0 did not panic")
			}
		}()
		HillAlpha([]float64{1}, 0)
	}()
}

func TestNetTraceTailIsHeavy(t *testing.T) {
	counts := NetTraceCounts(NetTraceConfig{DomainSize: 32768, ActiveHosts: 12000}, laplace.NewRand(22, 5))
	var active []float64
	for _, c := range counts {
		if c > 0 {
			active = append(active, c)
		}
	}
	alpha := HillAlpha(active, 5)
	// Generated with alpha=2.0; accept the discretization bias band.
	if alpha < 1.6 || alpha > 2.6 {
		t.Fatalf("NetTrace degree tail exponent %v, want near 2", alpha)
	}
}

func TestZipfFrequencies(t *testing.T) {
	f := ZipfFrequencies(1000, 1.0, 1e6)
	if f[0] != 1e6 {
		t.Fatalf("top frequency %v", f[0])
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(f))) {
		t.Fatal("frequencies not non-increasing")
	}
	if f[999] != math.Round(1e6/1000) {
		t.Fatalf("tail frequency %v", f[999])
	}
	// Duplication emerges once consecutive ranks round to the same value
	// (i > sqrt(top)): with top=1e4, ranks 500..999 span values 20..10.
	small := ZipfFrequencies(1000, 1.0, 1e4)
	distinct := map[float64]bool{}
	for _, v := range small[500:] {
		distinct[v] = true
	}
	if len(distinct) > 15 {
		t.Fatalf("tail not duplicated enough: %d distinct values", len(distinct))
	}
}

func TestZipfFrequenciesPanics(t *testing.T) {
	for _, c := range []struct {
		n   int
		s   float64
		top float64
	}{{0, 1, 1}, {5, 0, 1}, {5, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZipfFrequencies(%d,%v,%v) did not panic", c.n, c.s, c.top)
				}
			}()
			ZipfFrequencies(c.n, c.s, c.top)
		}()
	}
}

func TestNetTraceCountsShape(t *testing.T) {
	cfg := NetTraceConfig{DomainSize: 16384, ActiveHosts: 5000}
	counts := NetTraceCounts(cfg, laplace.NewRand(6, 6))
	if len(counts) != 16384 {
		t.Fatalf("len = %d", len(counts))
	}
	active := 0
	maxv := 0.0
	for _, c := range counts {
		if c < 0 || c != math.Trunc(c) {
			t.Fatalf("count %v not a non-negative integer", c)
		}
		if c > 0 {
			active++
		}
		if c > maxv {
			maxv = c
		}
	}
	if active != 5000 {
		t.Fatalf("active hosts = %d, want 5000", active)
	}
	if maxv < 50 {
		t.Fatalf("max degree %v: tail not heavy", maxv)
	}
	// Sparsity with clustering: many long empty stretches. Count empty
	// positions; at least half the domain must be empty.
	if empty := len(counts) - active; empty < len(counts)/2 {
		t.Fatal("domain not sparse")
	}
}

func TestNetTraceCountsDeterministic(t *testing.T) {
	cfg := NetTraceConfig{DomainSize: 4096, ActiveHosts: 1000}
	a := NetTraceCounts(cfg, laplace.NewRand(7, 9))
	b := NetTraceCounts(cfg, laplace.NewRand(7, 9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different data")
		}
	}
}

func TestNetTraceCountsDuplicationForTheorem2(t *testing.T) {
	counts := NetTraceCounts(NetTraceConfig{DomainSize: 16384, ActiveHosts: 8000}, laplace.NewRand(8, 8))
	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)
	distinct := map[float64]bool{}
	for _, v := range sorted {
		distinct[v] = true
	}
	// d << n is the regime where S-bar wins (Theorem 2).
	if len(distinct) > len(sorted)/20 {
		t.Fatalf("d = %d not << n = %d", len(distinct), len(sorted))
	}
}

func TestNetTraceGraphDegreesMatchCounts(t *testing.T) {
	counts := []float64{2, 0, 5, 1}
	g, err := NetTraceGraph(counts, 64, laplace.NewRand(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	left := g.LeftDegrees()
	for i := range counts {
		if left[i] != counts[i] {
			t.Fatalf("left degrees %v, want %v", left, counts)
		}
	}
}

func TestSocialNetworkDegrees(t *testing.T) {
	ds, err := SocialNetworkDegrees(1100, 5, laplace.NewRand(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1100 {
		t.Fatalf("len = %d", len(ds))
	}
	if _, err := SocialNetworkDegrees(5, 5, laplace.NewRand(1, 1)); err == nil {
		t.Fatal("n <= m accepted")
	}
}

func TestSearchLogKeywordCounts(t *testing.T) {
	counts := SearchLogKeywordCounts(2000, laplace.NewRand(11, 11))
	if len(counts) != 2000 {
		t.Fatalf("len = %d", len(counts))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(counts))) {
		t.Fatal("keyword counts not rank-ordered")
	}
	if counts[0] < 1e5 {
		t.Fatalf("head count %v too small", counts[0])
	}
}

func TestQueryTermSeriesShape(t *testing.T) {
	cfg := SeriesConfig{Bins: 8192}
	s := QueryTermSeries(cfg, laplace.NewRand(12, 12))
	if len(s) != 8192 {
		t.Fatalf("len = %d", len(s))
	}
	// Early era nearly silent, campaign era loud.
	var early, peak float64
	for _, v := range s[:2048] {
		early += v
	}
	peakStart := 8192 * 80 / 100
	for _, v := range s[peakStart : peakStart+1024] {
		peak += v
	}
	if early/2048 > 1 {
		t.Fatalf("early era mean %v too high", early/2048)
	}
	if peak/1024 < 50 {
		t.Fatalf("peak era mean %v too low", peak/1024)
	}
	for _, v := range s {
		if v < 0 || v != math.Trunc(v) {
			t.Fatal("series values must be non-negative integers")
		}
	}
}

func TestQueryTermSeriesDefaultsValid(t *testing.T) {
	cfg := SeriesConfig{}.withDefaults()
	if cfg.Bins != 32768 || cfg.PeakBin <= cfg.RampStart {
		t.Fatalf("defaults invalid: %+v", cfg)
	}
	// Degenerate override: PeakBin before RampStart gets repaired.
	c2 := SeriesConfig{Bins: 100, RampStart: 90, PeakBin: 10}.withDefaults()
	if c2.PeakBin <= c2.RampStart {
		t.Fatal("PeakBin not repaired")
	}
}
