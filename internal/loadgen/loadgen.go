package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op classes the generator drives and reports separately: answering
// range queries dominates real traffic, minting spends budget, ingest
// feeds the streaming pipeline.
const (
	OpQuery = iota
	OpMint
	OpIngest
	numOps
)

var opNames = [numOps]string{OpQuery: "query", OpMint: "mint", OpIngest: "ingest"}

// Target is one stored release to query. TwoD routes the target's
// traffic to /v1/query2d with rect batches sized for Domain cells laid
// out on a near-square grid (matching the server's 2-D mint).
type Target struct {
	Name   string `json:"name"`
	Domain int    `json:"domain"`
	TwoD   bool   `json:"two_d,omitempty"`
}

// MintStrategy weights one strategy in the mint mix.
type MintStrategy struct {
	Name   string
	Weight float64
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Namespace scopes all traffic; empty means the default routes.
	Namespace string
	// Targets are the releases to query. Required when Mix gives
	// queries nonzero weight. Popularity across targets is Zipfian:
	// target 0 is the hottest.
	Targets []Target
	// Workers is the number of concurrent connections (default 8).
	Workers int
	// Duration is the measured window (default 5s).
	Duration time.Duration
	// Warmup runs traffic before measurement starts (default 0).
	Warmup time.Duration
	// QPS caps total offered load across all workers; 0 means
	// unthrottled (drive as fast as the server answers — the
	// saturation configuration).
	QPS float64
	// QueryWeight, MintWeight, IngestWeight set the op mix. All zero
	// defaults to queries only.
	QueryWeight, MintWeight, IngestWeight float64
	// Batch is the number of ranges (or rects, or events) per request
	// (default 8).
	Batch int
	// ZipfS, ZipfV shape target popularity (defaults 1.2, 1). S must
	// exceed 1 when set.
	ZipfS, ZipfV float64
	// Correlation in [0, 1] is the probability a query's ranges stay
	// near the worker's last position instead of jumping uniformly —
	// real analysts drill into a region, they don't sample the domain.
	Correlation float64
	// MintEpsilon is spent per mint op (default 0.001; keep it small
	// or the mint class starves the budget mid-run).
	MintEpsilon float64
	// MintStrategies weights the strategy each mint op requests
	// (default: universal 3, laplace 1, unattributed 1 — strategies
	// every server answers; hierarchy needs a configured forest).
	MintStrategies []MintStrategy
	// IngestStream names the stream ingest ops post to (default
	// "loadgen").
	IngestStream string
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// Client overrides the HTTP client (default: pooled transport
	// sized to Workers).
	Client *http.Client
}

// OpReport is the per-class outcome of a run.
type OpReport struct {
	Op     string  `json:"op"`
	Ops    int64   `json:"ops"`
	Errors int64   `json:"errors"`
	P50Ns  int64   `json:"p50_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
	QPS    float64 `json:"qps"`
}

// Report is the merged outcome of a run. QPS counts successful and
// failed ops alike (offered load that completed); Errors is the sum of
// non-2xx responses and transport failures.
type Report struct {
	Duration time.Duration `json:"duration_ns"`
	Workers  int           `json:"workers"`
	Ops      int64         `json:"ops"`
	Errors   int64         `json:"errors"`
	QPS      float64       `json:"qps"`
	Classes  []OpReport    `json:"classes"`
}

// Class returns the report row for the named op class, or a zero row.
func (r Report) Class(name string) OpReport {
	for _, c := range r.Classes {
		if c.Op == name {
			return c
		}
	}
	return OpReport{}
}

func (c *Config) setDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("loadgen: ZipfS must exceed 1, got %v", c.ZipfS)
	}
	if c.ZipfV == 0 {
		c.ZipfV = 1
	}
	if c.ZipfV < 1 {
		return fmt.Errorf("loadgen: ZipfV must be at least 1, got %v", c.ZipfV)
	}
	if c.Correlation < 0 || c.Correlation > 1 {
		return fmt.Errorf("loadgen: Correlation must be in [0, 1], got %v", c.Correlation)
	}
	if c.QueryWeight < 0 || c.MintWeight < 0 || c.IngestWeight < 0 {
		return fmt.Errorf("loadgen: op weights must be non-negative")
	}
	if c.QueryWeight+c.MintWeight+c.IngestWeight == 0 {
		c.QueryWeight = 1
	}
	if c.QueryWeight > 0 && len(c.Targets) == 0 {
		return fmt.Errorf("loadgen: queries in the mix but no targets configured")
	}
	for _, t := range c.Targets {
		if t.Domain <= 0 {
			return fmt.Errorf("loadgen: target %q has domain %d", t.Name, t.Domain)
		}
	}
	if c.MintEpsilon <= 0 {
		c.MintEpsilon = 0.001
	}
	if len(c.MintStrategies) == 0 {
		c.MintStrategies = []MintStrategy{
			{Name: "universal", Weight: 3},
			{Name: "laplace", Weight: 1},
			{Name: "unattributed", Weight: 1},
		}
	}
	if c.IngestStream == "" {
		c.IngestStream = "loadgen"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        c.Workers * 2,
			MaxIdleConnsPerHost: c.Workers * 2,
		}
		c.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return nil
}

// route returns the URL for a server endpoint, honoring the namespace.
func (c *Config) route(suffix string) string {
	if c.Namespace == "" {
		return c.BaseURL + "/v1/" + suffix
	}
	return c.BaseURL + "/v1/ns/" + c.Namespace + "/" + suffix
}

// worker carries one goroutine's private generator state; nothing here
// is shared until the post-run merge.
type worker struct {
	cfg    *Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	body   []byte // request body scratch, reused every op
	cursor int    // correlated-walk position within the hot target's domain
	seq    int    // mint name counter

	hists  [numOps]Hist
	ops    [numOps]int64
	errors [numOps]int64
}

// pickOp samples the op mix by cumulative weight.
func (w *worker) pickOp() int {
	c := w.cfg
	total := c.QueryWeight + c.MintWeight + c.IngestWeight
	r := w.rng.Float64() * total
	if r < c.QueryWeight {
		return OpQuery
	}
	if r < c.QueryWeight+c.MintWeight {
		return OpMint
	}
	return OpIngest
}

// pickTarget samples release popularity: Zipf over the target list, so
// target 0 takes the bulk of the traffic like a production hot key.
func (w *worker) pickTarget() Target {
	if w.zipf == nil {
		return w.cfg.Targets[0]
	}
	i := int(w.zipf.Uint64())
	if i >= len(w.cfg.Targets) {
		i = len(w.cfg.Targets) - 1
	}
	return w.cfg.Targets[i]
}

// walk advances the correlated cursor: with probability Correlation
// the next position is a short step from the last, otherwise a uniform
// jump. The returned position is always in [0, domain).
func (w *worker) walk(domain int) int {
	if w.rng.Float64() < w.cfg.Correlation {
		step := w.rng.IntN(domain/8+2) - domain/16
		w.cursor += step
	} else {
		w.cursor = w.rng.IntN(domain)
	}
	if w.cursor < 0 {
		w.cursor = 0
	}
	if w.cursor >= domain {
		w.cursor = domain - 1
	}
	return w.cursor
}

// buildQuery writes a /v1/query (or /v1/query2d) body for the target
// into the worker's scratch and returns the route suffix.
func (w *worker) buildQuery(t Target) string {
	b := append(w.body[:0], `{"name":`...)
	b = strconv.AppendQuote(b, t.Name)
	if t.TwoD {
		side := 1
		for side*side < t.Domain {
			side++
		}
		b = append(b, `,"rects":[`...)
		for i := 0; i < w.cfg.Batch; i++ {
			if i > 0 {
				b = append(b, ',')
			}
			x := w.walk(side)
			y := w.rng.IntN(side)
			wd := w.rng.IntN(side-x) + 1
			ht := w.rng.IntN(side-y) + 1
			b = append(b, `{"x0":`...)
			b = strconv.AppendInt(b, int64(x), 10)
			b = append(b, `,"y0":`...)
			b = strconv.AppendInt(b, int64(y), 10)
			b = append(b, `,"x1":`...)
			b = strconv.AppendInt(b, int64(x+wd), 10)
			b = append(b, `,"y1":`...)
			b = strconv.AppendInt(b, int64(y+ht), 10)
			b = append(b, '}')
		}
		b = append(b, `]}`...)
		w.body = b
		return "query2d"
	}
	b = append(b, `,"ranges":[`...)
	for i := 0; i < w.cfg.Batch; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		lo := w.walk(t.Domain)
		width := w.rng.IntN(t.Domain-lo) + 1
		b = append(b, `{"lo":`...)
		b = strconv.AppendInt(b, int64(lo), 10)
		b = append(b, `,"hi":`...)
		b = strconv.AppendInt(b, int64(lo+width), 10)
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	w.body = b
	return "query"
}

// buildMint writes a /v1/releases body: a uniquely named release with
// a strategy drawn from the weighted mix.
func (w *worker) buildMint(id int) string {
	var total float64
	for _, s := range w.cfg.MintStrategies {
		total += s.Weight
	}
	r := w.rng.Float64() * total
	strategy := w.cfg.MintStrategies[0].Name
	for _, s := range w.cfg.MintStrategies {
		if r < s.Weight {
			strategy = s.Name
			break
		}
		r -= s.Weight
	}
	w.seq++
	b := append(w.body[:0], `{"name":"lg-`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(w.seq), 10)
	b = append(b, `","strategy":`...)
	b = strconv.AppendQuote(b, strategy)
	b = append(b, `,"epsilon":`...)
	b = strconv.AppendFloat(b, w.cfg.MintEpsilon, 'g', -1, 64)
	b = append(b, '}')
	w.body = b
	return "releases"
}

// buildIngest writes a /v1/ingest body: Batch unit-weight events on
// the configured stream, buckets following the correlated walk over
// the hottest target's domain (or 64 when queries are off).
func (w *worker) buildIngest() string {
	domain := 64
	if len(w.cfg.Targets) > 0 {
		domain = w.cfg.Targets[0].Domain
	}
	b := append(w.body[:0], `{"events":[`...)
	for i := 0; i < w.cfg.Batch; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"stream":`...)
		b = strconv.AppendQuote(b, w.cfg.IngestStream)
		b = append(b, `,"bucket":`...)
		b = strconv.AppendInt(b, int64(w.walk(domain)), 10)
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	w.body = b
	return "ingest"
}

// run drives ops until deadline, recording only samples measured after
// warmupOver. Pacing: with a QPS cap each worker owns an equal slice
// of the budget and sleeps to its schedule; an overloaded server slips
// the schedule rather than queueing unbounded requests (closed-loop).
func (w *worker) run(id int, warmupOver, deadline time.Time, interval time.Duration) {
	next := time.Now()
	for {
		now := time.Now()
		if now.After(deadline) {
			return
		}
		if interval > 0 {
			if wait := next.Sub(now); wait > 0 {
				time.Sleep(wait)
			}
			next = next.Add(interval)
			if behind := time.Until(next); behind < -interval {
				next = time.Now() // schedule slipped; don't burst to catch up
			}
		}
		op := w.pickOp()
		var suffix string
		switch op {
		case OpQuery:
			suffix = w.buildQuery(w.pickTarget())
		case OpMint:
			suffix = w.buildMint(id)
		default:
			suffix = w.buildIngest()
		}
		start := time.Now()
		ok := w.post(w.cfg.route(suffix))
		elapsed := time.Since(start)
		if start.After(warmupOver) {
			w.ops[op]++
			if !ok {
				w.errors[op]++
			}
			w.hists[op].Record(elapsed.Nanoseconds())
		}
	}
}

// post sends the scratch body and drains the response; any transport
// error or non-2xx status counts as a failed op.
func (w *worker) post(url string) bool {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(w.body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// Run executes the configured load against the server and reports
// merged per-class quantiles. It is synchronous: warmup plus duration
// of traffic, then the merge.
func Run(cfg Config) (Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return Report{}, err
	}
	var interval time.Duration
	if cfg.QPS > 0 {
		perWorker := cfg.QPS / float64(cfg.Workers)
		interval = time.Duration(float64(time.Second) / perWorker)
	}
	workers := make([]*worker, cfg.Workers)
	start := time.Now()
	warmupOver := start.Add(cfg.Warmup)
	deadline := warmupOver.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{cfg: &cfg, rng: rand.New(rand.NewPCG(cfg.Seed, uint64(i)+1))}
		if len(cfg.Targets) > 1 {
			w.zipf = rand.NewZipf(w.rng, cfg.ZipfS, cfg.ZipfV, uint64(len(cfg.Targets)-1))
		}
		workers[i] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w.run(id, warmupOver, deadline, interval)
		}(i)
	}
	wg.Wait()

	rep := Report{Duration: cfg.Duration, Workers: cfg.Workers}
	for op := 0; op < numOps; op++ {
		var h Hist
		var ops, errs int64
		for _, w := range workers {
			h.Merge(&w.hists[op])
			ops += w.ops[op]
			errs += w.errors[op]
		}
		if ops == 0 {
			continue
		}
		rep.Ops += ops
		rep.Errors += errs
		rep.Classes = append(rep.Classes, OpReport{
			Op:     opNames[op],
			Ops:    ops,
			Errors: errs,
			P50Ns:  h.Quantile(0.50),
			P99Ns:  h.Quantile(0.99),
			P999Ns: h.Quantile(0.999),
			MaxNs:  h.Max(),
			QPS:    float64(ops) / cfg.Duration.Seconds(),
		})
	}
	rep.QPS = float64(rep.Ops) / cfg.Duration.Seconds()
	return rep, nil
}

// Discover lists the server's stored releases and converts them to
// query targets, flagging 2-D strategies by name. An empty result
// means the caller should mint its own seed release.
func Discover(client *http.Client, baseURL, namespace string) ([]Target, error) {
	if client == nil {
		client = http.DefaultClient
	}
	cfg := Config{BaseURL: baseURL, Namespace: namespace}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	resp, err := client.Get(cfg.route("releases"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("loadgen: list releases: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var list struct {
		Releases []struct {
			Name     string `json:"name"`
			Domain   int    `json:"domain"`
			Strategy string `json:"strategy"`
		} `json:"releases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("loadgen: list releases: %w", err)
	}
	targets := make([]Target, 0, len(list.Releases))
	for _, r := range list.Releases {
		targets = append(targets, Target{
			Name:   r.Name,
			Domain: r.Domain,
			TwoD:   strings.HasSuffix(r.Strategy, "2d"),
		})
	}
	return targets, nil
}
