package loadgen

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/ingest"
	"github.com/dphist/dphist/internal/server"
)

func TestHistExactBelowSubBuckets(t *testing.T) {
	var h Hist
	for v := int64(0); v < histSubBuckets; v++ {
		if got := bucketValue(bucketIndex(v)); got != v {
			t.Fatalf("value %d round-trips to %d", v, got)
		}
		h.Record(v)
	}
	if h.Count() != histSubBuckets {
		t.Fatalf("count %d", h.Count())
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != histSubBuckets-1 {
		t.Fatalf("quantile bounds %d..%d", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistRelativeError(t *testing.T) {
	for _, v := range []int64{33, 100, 1023, 4096, 1e6, 37_123_456, 1e12, math.MaxInt64} {
		got := bucketValue(bucketIndex(v))
		relErr := math.Abs(float64(got-v)) / float64(v)
		if relErr > 1.0/histSubBuckets {
			t.Errorf("value %d represented as %d: relative error %.3f", v, got, relErr)
		}
	}
}

func TestHistBucketMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d below previous %d", v, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
}

func TestHistQuantileAndMerge(t *testing.T) {
	var a, b Hist
	for i := int64(1); i <= 1000; i++ {
		if i%2 == 0 {
			a.Record(i * 1000)
		} else {
			b.Record(i * 1000)
		}
	}
	a.Merge(&b)
	if a.Count() != 1000 {
		t.Fatalf("merged count %d", a.Count())
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500_000}, {0.99, 990_000}, {0.999, 999_000}} {
		got := a.Quantile(tc.q)
		if relErr := math.Abs(float64(got-tc.want)) / float64(tc.want); relErr > 2.0/histSubBuckets {
			t.Errorf("q%.3f = %d, want ~%d", tc.q, got, tc.want)
		}
	}
	if a.Quantile(1) != a.Max() {
		t.Fatalf("q1 %d != max %d", a.Quantile(1), a.Max())
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
}

// newLoadServer builds a live server with a stored 1-D release, a 2-D
// release, and a running ingest pipeline — every op class the
// generator drives.
func newLoadServer(t *testing.T) *httptest.Server {
	t.Helper()
	store := dphist.NewStore(dphist.WithBudget(1000), dphist.WithQueryCache(64))
	mech, err := dphist.New(dphist.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.New(ingest.Config{
		Store:     store,
		Mechanism: mech,
		Domain:    64,
		Epoch:     time.Hour,
		Epsilon:   0.5,
		Shards:    2,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	t.Cleanup(func() { in.Close() })
	counts := make([]float64, 64)
	cells := make([][]float64, 8)
	for i := range counts {
		counts[i] = float64(i % 7)
	}
	for y := range cells {
		cells[y] = counts[y*8 : y*8+8]
	}
	s, err := server.New(server.Config{
		Counts:   counts,
		Cells:    cells,
		Store:    store,
		Seed:     7,
		Ingester: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func mustMint(t *testing.T, ts *httptest.Server, body string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/releases", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("mint status %d", resp.StatusCode)
	}
}

func TestRunMixedTraffic(t *testing.T) {
	ts := newLoadServer(t)
	mustMint(t, ts, `{"name":"hot","strategy":"universal","epsilon":0.5}`)
	mustMint(t, ts, `{"name":"grid","strategy":"universal2d","epsilon":0.5}`)
	mustMint(t, ts, `{"name":"cold","strategy":"laplace","epsilon":0.5}`)

	targets, err := Discover(ts.Client(), ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("discovered %d targets: %+v", len(targets), targets)
	}
	var saw2D bool
	for _, tg := range targets {
		if tg.Name == "grid" && tg.TwoD {
			saw2D = true
		}
	}
	if !saw2D {
		t.Fatalf("grid not flagged 2-D: %+v", targets)
	}

	rep, err := Run(Config{
		BaseURL:      ts.URL,
		Targets:      targets,
		Workers:      4,
		Duration:     300 * time.Millisecond,
		Warmup:       50 * time.Millisecond,
		QueryWeight:  0.8,
		MintWeight:   0.1,
		IngestWeight: 0.1,
		Batch:        4,
		Correlation:  0.7,
		MintEpsilon:  0.001,
		Seed:         42,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d ops failed: %+v", rep.Errors, rep.Ops, rep.Classes)
	}
	q := rep.Class("query")
	if q.Ops == 0 {
		t.Fatalf("no query ops: %+v", rep.Classes)
	}
	if q.P50Ns <= 0 || q.P99Ns < q.P50Ns || q.MaxNs < q.P99Ns {
		t.Fatalf("quantiles out of order: %+v", q)
	}
	if q.QPS <= 0 || rep.QPS < q.QPS {
		t.Fatalf("QPS accounting: total %.0f, query %.0f", rep.QPS, q.QPS)
	}
	// The mix should have exercised all three classes in 300ms of
	// unthrottled traffic at these weights.
	if rep.Class("mint").Ops == 0 || rep.Class("ingest").Ops == 0 {
		t.Fatalf("mix starved a class: %+v", rep.Classes)
	}
}

func TestRunThrottled(t *testing.T) {
	ts := newLoadServer(t)
	mustMint(t, ts, `{"name":"hot","strategy":"universal","epsilon":0.5}`)
	rep, err := Run(Config{
		BaseURL:  ts.URL,
		Targets:  []Target{{Name: "hot", Domain: 64}},
		Workers:  2,
		Duration: 400 * time.Millisecond,
		QPS:      100,
		Seed:     7,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors: %+v", rep.Errors, rep.Classes)
	}
	// 100 QPS for 0.4s ≈ 40 ops; allow generous slack for scheduler
	// jitter but catch an unthrottled run (which would do thousands).
	if rep.Ops == 0 || rep.Ops > 120 {
		t.Fatalf("throttled run did %d ops, want ≈40", rep.Ops)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                                      // no BaseURL
		{BaseURL: "http://x"},                   // queries but no targets
		{BaseURL: "http://x", ZipfS: 0.5},       // bad zipf
		{BaseURL: "http://x", Correlation: 1.5}, // bad correlation
		{BaseURL: "http://x", Targets: []Target{{Name: "t", Domain: 0}}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}
