// Package loadgen drives a live dphist server with a mixed
// query/mint/ingest workload and reports per-op-class latency
// quantiles. It exists to answer the question BENCH rows on in-process
// handlers cannot: what does the serving path look like under
// concurrent HTTP traffic with a realistic popularity skew?
//
// Recording is allocation-free: each worker owns a log-linear
// histogram (Hist) per op class and recording a sample is two integer
// ops and a slot increment. Histograms merge after the run, so workers
// never share state during measurement.
package loadgen

import "math/bits"

// histSubBits fixes the histogram's relative precision: each power of
// two splits into 2^histSubBits sub-buckets, so any recorded value is
// off by at most 1/2^histSubBits (~3%) of itself.
const histSubBits = 5

const histSubBuckets = 1 << histSubBits // 32

// histBuckets covers every non-negative int64: values below
// histSubBuckets are exact, every higher power of two contributes
// histSubBuckets slots, and the top bucket absorbs overflow.
const histBuckets = (64 - histSubBits) * histSubBuckets

// Hist is a log-linear histogram of non-negative int64 samples
// (latencies in nanoseconds, here). The zero value is ready to use.
// Not safe for concurrent use — give each worker its own and Merge.
type Hist struct {
	counts [histBuckets]int64
	total  int64
	max    int64
}

// bucketIndex maps a sample to its slot. Values below histSubBuckets
// map exactly; above, the sample keeps histSubBits significant bits.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	shift := msb - histSubBits
	// Sub-bucket in [histSubBuckets, 2*histSubBuckets); consecutive
	// exponents tile consecutive index blocks.
	return (msb-histSubBits)*histSubBuckets + int(v>>uint(shift))
}

// bucketValue returns the representative (midpoint) sample for a slot,
// the inverse of bucketIndex up to the histogram's precision.
func bucketValue(idx int) int64 {
	if idx < 2*histSubBuckets {
		return int64(idx)
	}
	exp := idx/histSubBuckets - 1
	sub := int64(idx%histSubBuckets + histSubBuckets)
	lo := sub << uint(exp)
	return lo + (1 << uint(exp-1))
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.total }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *Hist) Max() int64 { return h.max }

// Merge folds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Quantile returns the sample value at quantile q in [0, 1], up to the
// histogram's ~3% bucketing error. Zero samples reports 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}
