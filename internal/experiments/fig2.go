package experiments

import (
	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
)

// Fig2Result reproduces the running example of Figure 2(b): the three
// query sequences on the 4-address trace with unit counts <2, 0, 10, 2>,
// one sampled noisy answer for each, and the inferred answers.
type Fig2Result struct {
	Unit []float64 // L(I)

	TrueL []float64 // L(I)
	TrueH []float64 // H(I), BFS order
	TrueS []float64 // S(I)

	NoisyL []float64 // L~(I) sample
	NoisyH []float64 // H~(I) sample
	NoisyS []float64 // S~(I) sample

	InferredH []float64 // H-bar from the H~ sample
	InferredS []float64 // S-bar from the S~ sample
}

// RunFig2 evaluates the running example at the given epsilon with a
// deterministic noise draw. The paper's printed values are one arbitrary
// draw; this run demonstrates the same pipeline end to end, and the
// inferred answers are always consistent.
func RunFig2(cfg Config, eps float64) Fig2Result {
	unit := []float64{2, 0, 10, 2}
	tree := htree.MustNew(2, len(unit))
	res := Fig2Result{
		Unit:  unit,
		TrueL: unit,
		TrueH: tree.FromLeaves(unit),
		TrueS: core.SortedQuery(unit),
	}
	res.NoisyL = core.ReleaseL(unit, eps, laplace.Stream(cfg.Seed^0xF160200, 0))
	res.NoisyH = core.ReleaseTree(tree, unit, eps, laplace.Stream(cfg.Seed^0xF160201, 0))
	res.NoisyS = core.ReleaseSorted(unit, eps, laplace.Stream(cfg.Seed^0xF160202, 0))
	res.InferredH = core.InferTree(tree, res.NoisyH)
	res.InferredS = core.InferSorted(res.NoisyS)
	return res
}

// PaperFig2Inference replays the exact worked numbers printed in Figure
// 2(b): given the paper's noisy draws, inference must produce the
// paper's inferred answers. Returns (inferred H, inferred S).
func PaperFig2Inference() ([]float64, []float64) {
	tree := htree.MustNew(2, 4)
	htilde := []float64{13, 3, 11, 4, 1, 12, 1}
	stilde := []float64{1, 2, 0, 11}
	return core.InferTree(tree, htilde), core.InferSorted(stilde)
}

// Fig3Result reproduces Figure 3: a 25-element sequence whose first 20
// counts are uniform, sampled once at epsilon 1.0.
type Fig3Result struct {
	Truth    []float64
	Noisy    []float64
	Inferred []float64
	Epsilon  float64
}

// RunFig3 draws one sample of S~ on the Figure 3 sequence and infers
// S-bar. Inside the long uniform prefix the inferred answer hugs the
// truth; at the trailing distinct counts inference leaves the noisy
// values nearly untouched.
func RunFig3(cfg Config) Fig3Result {
	const eps = 1.0
	truth := make([]float64, 25)
	for i := 0; i < 20; i++ {
		truth[i] = 10
	}
	// A unique step pattern after the uniform run, like the figure's tail.
	tail := []float64{15, 17, 18, 20, 21}
	copy(truth[20:], tail)
	noisy := core.Perturb(truth, core.SensitivityS, eps, laplace.Stream(cfg.Seed^0xF160300, 0))
	return Fig3Result{
		Truth:    truth,
		Noisy:    noisy,
		Inferred: core.InferSorted(noisy),
		Epsilon:  eps,
	}
}
