package experiments

import "testing"

func TestVerifyAllClaimsPass(t *testing.T) {
	cfg := Config{Seed: 42, Trials: 15, RangesPerSize: 120}
	claims := Verify(cfg)
	if len(claims) < 9 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("%s FAILED: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
}

func TestVerifyDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Trials: 5, RangesPerSize: 50}
	a := Verify(cfg)
	b := Verify(cfg)
	if len(a) != len(b) {
		t.Fatal("claim counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("claim %s not deterministic", a[i].ID)
		}
	}
}
