package experiments

import (
	"math"
	"testing"
)

func smallCfg() Config {
	return Config{Seed: 42, Scale: ScaleSmall, Trials: 10, RangesPerSize: 100}
}

// Figure 2(b): inference on the paper's printed noisy draws must
// reproduce the paper's printed inferred answers exactly.
func TestPaperFig2InferenceExact(t *testing.T) {
	hbar, sbar := PaperFig2Inference()
	wantH := []float64{14, 3, 11, 3, 0, 11, 0}
	wantS := []float64{1, 1, 1, 11}
	for i := range wantH {
		if math.Abs(hbar[i]-wantH[i]) > 1e-9 {
			t.Fatalf("H-bar = %v, want %v", hbar, wantH)
		}
	}
	for i := range wantS {
		if math.Abs(sbar[i]-wantS[i]) > 1e-9 {
			t.Fatalf("S-bar = %v, want %v", sbar, wantS)
		}
	}
}

func TestRunFig2Consistency(t *testing.T) {
	res := RunFig2(smallCfg(), 1.0)
	// True answers match the paper.
	wantH := []float64{14, 2, 12, 2, 0, 10, 2}
	for i := range wantH {
		if res.TrueH[i] != wantH[i] {
			t.Fatalf("H(I) = %v, want %v", res.TrueH, wantH)
		}
	}
	// Inferred H is consistent: root = left + right, parents = children.
	h := res.InferredH
	if math.Abs(h[0]-(h[1]+h[2])) > 1e-9 ||
		math.Abs(h[1]-(h[3]+h[4])) > 1e-9 ||
		math.Abs(h[2]-(h[5]+h[6])) > 1e-9 {
		t.Fatalf("inferred H inconsistent: %v", h)
	}
	// Inferred S is sorted.
	for i := 1; i < len(res.InferredS); i++ {
		if res.InferredS[i] < res.InferredS[i-1] {
			t.Fatalf("inferred S unsorted: %v", res.InferredS)
		}
	}
	// Deterministic.
	res2 := RunFig2(smallCfg(), 1.0)
	for i := range res.NoisyH {
		if res.NoisyH[i] != res2.NoisyH[i] {
			t.Fatal("RunFig2 not deterministic")
		}
	}
}

func TestRunFig3Shape(t *testing.T) {
	res := RunFig3(smallCfg())
	if len(res.Truth) != 25 || len(res.Noisy) != 25 || len(res.Inferred) != 25 {
		t.Fatal("lengths wrong")
	}
	// Inside the 20-long uniform run, the inferred answer must be closer
	// to the truth than the raw noisy answer is, in aggregate.
	var errNoisy, errInf float64
	for i := 2; i < 18; i++ {
		errNoisy += (res.Noisy[i] - res.Truth[i]) * (res.Noisy[i] - res.Truth[i])
		errInf += (res.Inferred[i] - res.Truth[i]) * (res.Inferred[i] - res.Truth[i])
	}
	if errInf >= errNoisy {
		t.Fatalf("no error reduction in uniform run: %v vs %v", errInf, errNoisy)
	}
}

func TestRunFig5Shape(t *testing.T) {
	rows := RunFig5(smallCfg())
	if len(rows) != 9 { // 3 datasets x 3 epsilons
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.ErrSBar <= 0 || r.ErrSTilde <= 0 || r.ErrSr <= 0 {
			t.Fatalf("non-positive error in %+v", r)
		}
		// Inference never hurts relative to the raw answer.
		if r.ErrSBar > r.ErrSTilde {
			t.Errorf("%s eps=%v: S-bar (%v) worse than S~ (%v)",
				r.Dataset, r.Epsilon, r.ErrSBar, r.ErrSTilde)
		}
		// S~ error matches theory 2/eps^2 per position within 25%.
		want := 2 / (r.Epsilon * r.Epsilon)
		if rel := math.Abs(r.ErrSTilde-want) / want; rel > 0.25 {
			t.Errorf("%s eps=%v: S~ error %v, theory %v", r.Dataset, r.Epsilon, r.ErrSTilde, want)
		}
		// The paper's headline: an order of magnitude at least. At small
		// scale insist on 5x for the heavily-duplicated datasets.
		if r.Epsilon <= 0.1 && r.ErrSBar*5 > r.ErrSTilde {
			t.Errorf("%s eps=%v: improvement below 5x (%v vs %v)",
				r.Dataset, r.Epsilon, r.ErrSBar, r.ErrSTilde)
		}
	}
}

func TestRunFig6Shapes(t *testing.T) {
	rows := RunFig6(smallCfg())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	type key struct {
		ds  string
		eps float64
	}
	bySeries := map[key][]Fig6Row{}
	for _, r := range rows {
		k := key{r.Dataset, r.Epsilon}
		bySeries[k] = append(bySeries[k], r)
	}
	if len(bySeries) != 6 { // 2 datasets x 3 epsilons
		t.Fatalf("got %d series, want 6", len(bySeries))
	}
	for k, series := range bySeries {
		first, last := series[0], series[len(series)-1]
		// L~ error grows linearly: across the sweep (factor 2^10 in range
		// size at small scale) it must grow by well over an order.
		if last.ErrL < first.ErrL*20 {
			t.Errorf("%v: L~ error not growing: %v -> %v", k, first.ErrL, last.ErrL)
		}
		// The L~/H~ crossover sits around range size ~2000 (paper), which
		// exceeds the largest range of the small-scale sweep; what must
		// hold at any scale is the converging trend: L~'s disadvantage
		// versus H~ grows by well over an order of magnitude across the
		// sweep.
		firstRatio := first.ErrL / first.ErrH
		lastRatio := last.ErrL / last.ErrH
		if lastRatio < firstRatio*20 {
			t.Errorf("%v: L~/H~ ratio not converging: %v -> %v", k, firstRatio, lastRatio)
		}
		// H-bar is uniformly at least as accurate as H~ (small slack for
		// sampling noise).
		for _, r := range series {
			if r.ErrHBar > r.ErrH*1.15 {
				t.Errorf("%v size %d: H-bar (%v) worse than H~ (%v)",
					k, r.RangeSize, r.ErrHBar, r.ErrH)
			}
		}
	}
}

func TestRunFig7Profile(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 60
	res := RunFig7(cfg)
	sum := res.Summarize()
	// Inference error inside uniform runs is far below the flat noisy
	// error, and boundary positions are the expensive ones.
	if sum.MeanInterior >= sum.MeanBoundary {
		t.Errorf("interior error %v >= boundary error %v", sum.MeanInterior, sum.MeanBoundary)
	}
	if sum.MeanOverall*5 > sum.ErrSTilde {
		t.Errorf("overall S-bar error %v not << 2/eps^2 = %v", sum.MeanOverall, sum.ErrSTilde)
	}
	// Truth is descending.
	for i := 1; i < len(res.Truth); i++ {
		if res.Truth[i] > res.Truth[i-1] {
			t.Fatal("truth not descending")
		}
	}
	if len(res.Truth) != len(res.ErrSBar) {
		t.Fatal("profile lengths differ")
	}
}

func TestRunTheorem2Scaling(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 30
	rows := RunTheorem2(cfg)
	if len(rows) < 4 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	for i, r := range rows {
		// S~ matches theory 2n/eps^2 within 20%.
		want := 2 * float64(r.N)
		if rel := math.Abs(r.ErrSTilde-want) / want; rel > 0.2 {
			t.Errorf("d=%d: S~ error %v, theory %v", r.D, r.ErrSTilde, want)
		}
		if i > 0 && r.ErrSBar < rows[i-1].ErrSBar {
			// Error must grow with d (monotone up to sampling noise).
			if rows[i-1].ErrSBar/r.ErrSBar > 1.5 {
				t.Errorf("S-bar error dropped sharply from d=%d to d=%d: %v -> %v",
					rows[i-1].D, r.D, rows[i-1].ErrSBar, r.ErrSBar)
			}
		}
	}
	// d=1 is the polylog regime: orders below S~.
	if rows[0].ErrSBar*20 > rows[0].ErrSTilde {
		t.Errorf("d=1: S-bar %v not << S~ %v", rows[0].ErrSBar, rows[0].ErrSTilde)
	}
}

func TestRunTheorem4Ratio(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 150
	res := RunTheorem4(cfg)
	if res.Height != 11 || res.K != 2 {
		t.Fatalf("tree shape %d/%d, want height 11, k 2", res.Height, res.K)
	}
	want := (2.0*10.0*1.0 - 2.0) / 3.0 // 6
	if math.Abs(res.PredictedRatio-want) > 1e-9 {
		t.Fatalf("predicted ratio %v, want %v", res.PredictedRatio, want)
	}
	// Theorem 4(iv) is a lower bound on the improvement; sampling noise
	// allowed for.
	if res.MeasuredRatio < 0.7*res.PredictedRatio {
		t.Errorf("measured ratio %v below 0.7x predicted %v", res.MeasuredRatio, res.PredictedRatio)
	}
}

func TestBlumBounds(t *testing.T) {
	rows := BlumBounds(0.05, 0.01)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// H~ scales 1/alpha, Blum 1/alpha^3: at fixed n, moving alpha 1.0 ->
	// 0.1 multiplies the H~ bound by 10 and the Blum bound by 1000.
	for i := 0; i+1 < len(rows); i += 2 {
		hRatio := rows[i+1].MinNHTree / rows[i].MinNHTree
		bRatio := rows[i+1].MinNBlum / rows[i].MinNBlum
		if math.Abs(hRatio-10) > 1e-6 {
			t.Errorf("H~ alpha scaling %v, want 10", hRatio)
		}
		if math.Abs(bRatio-1000) > 1e-6 {
			t.Errorf("Blum alpha scaling %v, want 1000", bRatio)
		}
	}
	// Bounds grow with n.
	if rows[4].MinNHTree <= rows[0].MinNHTree {
		t.Error("H~ bound not growing with n")
	}
}

func TestRunBlumEmpirical(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 8
	rows := RunBlumEmpirical(cfg)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// H~ absolute error is independent of database size.
	minH, maxH := rows[0].AbsErrHTree, rows[0].AbsErrHTree
	for _, r := range rows {
		minH = math.Min(minH, r.AbsErrHTree)
		maxH = math.Max(maxH, r.AbsErrHTree)
	}
	if maxH/minH > 2 {
		t.Errorf("H~ error varies with N: min %v max %v", minH, maxH)
	}
	// Equi-depth error grows with N (64x records must show clear growth).
	if rows[3].AbsErrEquiDF < rows[0].AbsErrEquiDF*4 {
		t.Errorf("equi-depth error not growing: %v -> %v",
			rows[0].AbsErrEquiDF, rows[3].AbsErrEquiDF)
	}
	// And at the largest N, H~ is the clear winner.
	if rows[3].AbsErrHTree >= rows[3].AbsErrEquiDF {
		t.Errorf("H~ (%v) did not beat equi-depth (%v) at max N",
			rows[3].AbsErrHTree, rows[3].AbsErrEquiDF)
	}
}

func TestRunBranching(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 8
	rows := RunBranching(cfg)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ErrHBar > r.ErrHTilde*1.15 {
			t.Errorf("k=%d: inference hurt (%v vs %v)", r.K, r.ErrHBar, r.ErrHTilde)
		}
	}
	// Heights shrink as k grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Height >= rows[i-1].Height {
			t.Errorf("height not decreasing with k: %+v", rows)
		}
	}
}

func TestRunNonNegativity(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 10
	rows := RunNonNegativity(cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SparseFraction < 0.5 {
			t.Fatalf("NetTrace domain not sparse: %v", r.SparseFraction)
		}
		// The heuristic must cut the unit-count error of H-bar sharply on
		// sparse data (Section 4.2: "can greatly reduce error in sparse
		// regions"). Whether it also beats L~ at unit length depends on
		// the sparsity pattern (Appendix B concedes L~ "sometimes has
		// higher accuracy for small range queries"); on this synthetic
		// trace L~ keeps the unit-length edge, so we assert the 2x-plus
		// improvement over plain H-bar instead.
		if r.ErrHBarNonNeg*2 > r.ErrHBarPlain {
			t.Errorf("eps=%v: non-negativity gain below 2x (%v vs %v)",
				r.Epsilon, r.ErrHBarNonNeg, r.ErrHBarPlain)
		}
	}
}

func TestRunWaveletComparison(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 8
	rows := RunWaveletComparison(cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		ratio := r.ErrWavelet / r.ErrHTilde
		if ratio > 10 || ratio < 0.02 {
			t.Errorf("eps=%v: wavelet/H~ ratio %v outside same-order band", r.Epsilon, ratio)
		}
		if r.ErrHBar > r.ErrHTilde*1.15 {
			t.Errorf("eps=%v: H-bar worse than H~", r.Epsilon)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(50)
	if c.Trials != 50 || c.RangesPerSize != 1000 || len(c.Epsilons) != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	s := Config{Scale: ScalePaper}.sizes()
	if s.netTraceDomain != 65536 || s.socialNodes != 11000 || s.searchKeywords != 20000 {
		t.Fatalf("paper sizes wrong: %+v", s)
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	cfg := smallCfg()
	a := cfg.netTrace()
	b := cfg.netTrace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("netTrace not deterministic")
		}
	}
	s1 := cfg.searchSeries()
	s2 := cfg.searchSeries()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("searchSeries not deterministic")
		}
	}
}
