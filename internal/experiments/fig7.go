package experiments

import (
	"sort"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// Fig7Result is the positional error profile of Figure 7 on the NetTrace
// unattributed histogram, presented (like the paper) in descending count
// order.
type Fig7Result struct {
	// Truth is the sorted (descending) true sequence S(I).
	Truth []float64
	// ErrSBar[i] is the squared error of the inferred estimate at
	// position i, averaged over trials.
	ErrSBar []float64
	// ErrSTilde is the flat expected squared error of the raw noisy
	// answer, 2/eps^2, identical at every position.
	ErrSTilde float64
	// Epsilon is the privacy level used (the paper uses 1.0).
	Epsilon float64
	// Trials is the number of samples averaged (the paper uses 200).
	Trials int
}

// RunFig7 reproduces Figure 7: where inference helps. The error of S-bar
// collapses to ~0 in the middle of uniform runs of the sequence and
// spikes only near positions where the count changes, while S~ pays
// 2/eps^2 everywhere. Changing one record can only move counts at run
// boundaries, so this is precisely the noise differential privacy does
// not require.
func RunFig7(cfg Config) Fig7Result {
	cfg = cfg.withDefaults(200)
	eps := 1.0
	if len(cfg.Epsilons) == 1 {
		eps = cfg.Epsilons[0]
	}
	data := cfg.netTrace()
	truthAsc := core.SortedQuery(data)
	n := len(truthAsc)

	acc := stats.NewVectorAccumulator(n)
	for trial := 0; trial < cfg.Trials; trial++ {
		src := laplace.Stream(cfg.Seed^0xF160700, trial)
		stilde := core.Perturb(truthAsc, core.SensitivityS, eps, src)
		sbar := core.InferSorted(stilde)
		sq := make([]float64, n)
		for i := range sq {
			d := sbar[i] - truthAsc[i]
			sq[i] = d * d
		}
		acc.Add(sq)
	}
	errAsc := acc.Means()

	// Present in descending order like the figure.
	truthDesc := append([]float64(nil), truthAsc...)
	sort.Sort(sort.Reverse(sort.Float64Slice(truthDesc)))
	errDesc := make([]float64, n)
	for i := range errAsc {
		errDesc[n-1-i] = errAsc[i]
	}
	return Fig7Result{
		Truth:     truthDesc,
		ErrSBar:   errDesc,
		ErrSTilde: core.NoiseVariance(core.SensitivityS, eps),
		Epsilon:   eps,
		Trials:    cfg.Trials,
	}
}

// RunSummary condenses the profile: mean error of S-bar inside uniform
// runs of the truth versus at run boundaries, plus overall means. The
// paper's claim is boundary error >> interior error, both << 2/eps^2 on
// duplicated sequences.
type Fig7Summary struct {
	MeanInterior float64 // mean error at positions interior to a uniform run
	MeanBoundary float64 // mean error at run-boundary positions
	MeanOverall  float64
	ErrSTilde    float64
}

// Summarize computes the interior/boundary split of a Figure 7 profile.
// A position is a boundary if the true count changes on either side of
// it; runs shorter than 3 contribute only boundary positions.
func (r Fig7Result) Summarize() Fig7Summary {
	n := len(r.Truth)
	var interior, boundary stats.Accumulator
	var overall stats.Accumulator
	for i := 0; i < n; i++ {
		overall.Add(r.ErrSBar[i])
		isBoundary := (i > 0 && r.Truth[i] != r.Truth[i-1]) ||
			(i < n-1 && r.Truth[i] != r.Truth[i+1]) ||
			i == 0 || i == n-1
		if isBoundary {
			boundary.Add(r.ErrSBar[i])
		} else {
			interior.Add(r.ErrSBar[i])
		}
	}
	return Fig7Summary{
		MeanInterior: interior.Mean(),
		MeanBoundary: boundary.Mean(),
		MeanOverall:  overall.Mean(),
		ErrSTilde:    r.ErrSTilde,
	}
}
