package experiments

import (
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// BlumBoundRow compares the Appendix E (eps,delta)-usefulness bounds: the
// minimum database size N at which each technique guarantees that, with
// probability 1-delta, every range query has absolute error at most
// usefulness*N.
type BlumBoundRow struct {
	DomainN    int
	Alpha      float64 // the differential-privacy parameter
	Usefulness float64 // the usefulness epsilon
	Delta      float64
	MinNHTree  float64 // H~: 16 ell^(3/2) ln(2 n^2/delta) / (usefulness*alpha)
	MinNBlum   float64 // Blum et al.: log n (log log n + log 1/delta) / (usefulness*alpha^3)
}

// BlumBounds evaluates the two Appendix E bounds over a sweep of domain
// sizes and privacy levels. Both are poly-logarithmic in n, but H~ scales
// with 1/alpha where Blum et al. scales with 1/alpha^3, so H~ achieves
// the same guarantee from a database smaller by O(1/alpha^2).
func BlumBounds(usefulness, delta float64) []BlumBoundRow {
	var rows []BlumBoundRow
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		ell := float64(log2int(n) + 1)
		for _, alpha := range []float64{1.0, 0.1} {
			hBound := 16 * math.Pow(ell, 1.5) * math.Log(2*float64(n)*float64(n)/delta) / (usefulness * alpha)
			blumBound := math.Log(float64(n)) * (math.Log(math.Log(float64(n))) + math.Log(1/delta)) /
				(usefulness * alpha * alpha * alpha)
			rows = append(rows, BlumBoundRow{
				DomainN: n, Alpha: alpha, Usefulness: usefulness, Delta: delta,
				MinNHTree: hBound, MinNBlum: blumBound,
			})
		}
	}
	return rows
}

// BlumEmpiricalRow measures the other Appendix E distinction: the
// absolute range-query error of H~ does not depend on the database size
// N, while an equi-depth histogram's error grows with N (the paper cites
// O(N^(2/3)) for Blum et al.'s mechanism).
type BlumEmpiricalRow struct {
	Records      int     // database size N
	AbsErrHTree  float64 // mean |error| of H~ over random ranges
	AbsErrEquiDF float64 // mean |error| of the equi-depth release
}

// RunBlumEmpirical scales one base distribution to growing database
// sizes and measures mean absolute range-query error for H~ and for a
// simulated equi-depth histogram release (B = N^(1/3) buckets with true
// equi-depth boundaries, noisy bucket counts, uniform interpolation
// inside buckets — the best case for the equi-depth approach, which
// still pays a within-bucket approximation cost that grows with N).
func RunBlumEmpirical(cfg Config) []BlumEmpiricalRow {
	cfg = cfg.withDefaults(20)
	const alpha = 1.0
	base := cfg.netTrace()
	if cfg.Scale == ScaleSmall && len(base) > 4096 {
		base = base[:4096]
	}
	var rows []BlumEmpiricalRow
	for _, factor := range []float64{1, 4, 16, 64} {
		unit := make([]float64, len(base))
		total := 0.0
		for i, v := range base {
			unit[i] = v * factor
			total += unit[i]
		}
		tree := htree.MustNew(2, len(unit))
		truthPrefix := prefixSums(unit)
		var accH, accE stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0xB10+int(factor)), trial)
			rsrc := laplace.Stream(cfg.Seed^uint64(0xB60+int(factor)), trial)
			htilde := core.ReleaseTree(tree, unit, alpha, src)
			ed := newEquiDepth(unit, truthPrefix, total, alpha, src)
			for q := 0; q < 200; q++ {
				size := 2 << rsrc.IntN(log2int(len(unit))-1)
				if size >= len(unit) {
					size = len(unit) / 2
				}
				lo := rsrc.IntN(len(unit) - size)
				hi := lo + size
				truth := truthPrefix[hi] - truthPrefix[lo]
				accH.Add(math.Abs(core.TreeRangeHTilde(tree, htilde, lo, hi) - truth))
				accE.Add(math.Abs(ed.rangeEstimate(lo, hi) - truth))
			}
		}
		rows = append(rows, BlumEmpiricalRow{
			Records:      int(total),
			AbsErrHTree:  accH.Mean(),
			AbsErrEquiDF: accE.Mean(),
		})
	}
	return rows
}

// equiDepth is the simulated equi-depth histogram release.
type equiDepth struct {
	bounds []int     // bucket boundaries in domain positions, len B+1
	counts []float64 // noisy bucket counts, len B
}

func newEquiDepth(unit, truthPrefix []float64, total, alpha float64, src *rand.Rand) *equiDepth {
	b := int(math.Cbrt(total))
	if b < 4 {
		b = 4
	}
	if b > len(unit) {
		b = len(unit)
	}
	bounds := make([]int, b+1)
	bounds[b] = len(unit)
	target := total / float64(b)
	pos := 0
	for j := 1; j < b; j++ {
		want := float64(j) * target
		for pos < len(unit) && truthPrefix[pos+1] < want {
			pos++
		}
		bounds[j] = pos
	}
	counts := make([]float64, b)
	d := laplace.New(0, 1.0/alpha)
	for j := 0; j < b; j++ {
		counts[j] = truthPrefix[bounds[j+1]] - truthPrefix[bounds[j]] + d.Rand(src)
	}
	return &equiDepth{bounds: bounds, counts: counts}
}

// rangeEstimate answers [lo, hi) assuming uniformity within buckets.
func (e *equiDepth) rangeEstimate(lo, hi int) float64 {
	sum := 0.0
	for j := 0; j < len(e.counts); j++ {
		blo, bhi := e.bounds[j], e.bounds[j+1]
		if bhi <= lo || blo >= hi || bhi == blo {
			continue
		}
		olo, ohi := max(blo, lo), min(bhi, hi)
		sum += e.counts[j] * float64(ohi-olo) / float64(bhi-blo)
	}
	return sum
}
