package experiments

import (
	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// Fig6Row is one point of Figure 6: the mean squared error of range
// queries of one size under one estimator family, averaged over
// Config.Trials mechanism samples times Config.RangesPerSize random
// range locations.
type Fig6Row struct {
	Dataset   string
	Epsilon   float64
	RangeSize int
	ErrL      float64 // flat Laplace histogram L~
	ErrH      float64 // noisy hierarchy H~, minimal subtree decomposition
	ErrHBar   float64 // constrained inference H-bar
}

// RunFig6 reproduces Figure 6: universal-histogram range-query error
// versus range size for L~, H~, and H-bar on NetTrace (top row of the
// figure) and Search Logs (bottom row), for each epsilon. Range sizes are
// 2^i for i = 1..ell-2.
//
// Protocol note: L~ and H~ range answers are computed from the raw noisy
// counts. Rounding answers to non-negative integers before summing wide
// ranges adds a truncation bias that grows linearly with range width on
// sparse data, which would swamp the 2s/eps^2 variance the paper's L~
// curve visibly follows (its largest-range error matches the unrounded
// theory). H-bar uses the full paper pipeline — inference, the Section
// 4.2 non-negativity subtree heuristic, integer rounding — with range
// answers taken from the post-processed tree by minimal decomposition.
//
// The paper's findings this run reproduces: the error of L~ grows
// linearly with range size while H~ grows poly-logarithmically, with a
// crossover around ranges of ~2000 units; H-bar is uniformly more
// accurate than H~; and the relative benefit of inference grows as
// epsilon shrinks.
func RunFig6(cfg Config) []Fig6Row {
	cfg = cfg.withDefaults(50)
	datasets := []struct {
		name string
		data []float64
	}{
		{"NetTrace", cfg.netTrace()},
		{"SearchLogs", cfg.searchSeries()},
	}
	var rows []Fig6Row
	for di, ds := range datasets {
		tree := htree.MustNew(2, len(ds.data))
		ell := tree.Height()
		truthPrefix := prefixSums(ds.data)
		var sizesList []int
		for i := 1; i <= ell-2; i++ {
			if s := 1 << i; s <= len(ds.data) {
				sizesList = append(sizesList, s)
			}
		}
		for ei, eps := range cfg.Epsilons {
			accL := make([]stats.Accumulator, len(sizesList))
			accH := make([]stats.Accumulator, len(sizesList))
			accB := make([]stats.Accumulator, len(sizesList))
			for trial := 0; trial < cfg.Trials; trial++ {
				noiseSrc := laplace.Stream(cfg.Seed^uint64(0xF160600+di*100+ei), trial)
				rangeSrc := laplace.Stream(cfg.Seed^uint64(0xF160650+di*100+ei), trial)

				ltilde := core.ReleaseL(ds.data, eps, noiseSrc)
				lPrefix := prefixSums(ltilde)

				// H-bar: infer, zero non-positive subtrees, round, and
				// answer ranges by minimal subtree decomposition over the
				// post-processed tree. Summing post-processed *leaves*
				// would accumulate truncation bias over wide ranges when
				// sparsity is interleaved; the decomposition touches only
				// ~2 log n nodes and preserves the Theorem 4 win.
				htilde := core.ReleaseTree(tree, ds.data, eps, noiseSrc)
				hbar := core.InferTree(tree, htilde)
				core.ZeroNegativeSubtrees(tree, hbar)
				core.RoundNonNegInt(hbar)

				for si, size := range sizesList {
					for q := 0; q < cfg.RangesPerSize; q++ {
						lo := rangeSrc.IntN(len(ds.data) - size + 1)
						hi := lo + size
						truth := truthPrefix[hi] - truthPrefix[lo]
						dl := (lPrefix[hi] - lPrefix[lo]) - truth
						dh := tree.RangeSum(htilde, lo, hi) - truth
						db := tree.RangeSum(hbar, lo, hi) - truth
						accL[si].Add(dl * dl)
						accH[si].Add(dh * dh)
						accB[si].Add(db * db)
					}
				}
			}
			for si, size := range sizesList {
				rows = append(rows, Fig6Row{
					Dataset:   ds.name,
					Epsilon:   eps,
					RangeSize: size,
					ErrL:      accL[si].Mean(),
					ErrH:      accH[si].Mean(),
					ErrHBar:   accB[si].Mean(),
				})
			}
		}
	}
	return rows
}
