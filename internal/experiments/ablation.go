package experiments

import (
	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
	"github.com/dphist/dphist/internal/wavelet"
)

// BranchingRow is one point of the branching-factor ablation (Appendix B
// flags higher branching factors as an open optimization): range-query
// error of H~ and H-bar for one fan-out k.
type BranchingRow struct {
	K         int
	Height    int
	ErrHTilde float64
	ErrHBar   float64
}

// RunBranching sweeps the tree fan-out k on the NetTrace universal
// workload at epsilon 0.1 with mixed-size random ranges. Larger k gives a
// shorter tree (lower sensitivity, fewer levels) but more subtrees per
// range; the sweep exposes the trade-off the paper leaves open. H-bar is
// measured as pure inference (no non-negativity/rounding) so that the
// sweep isolates the branching effect; Theorem 4(ii) then guarantees
// H-bar is at least as accurate as H~ on every range at every k.
func RunBranching(cfg Config) []BranchingRow {
	cfg = cfg.withDefaults(30)
	const eps = 0.1
	data := cfg.netTrace()
	truthPrefix := prefixSums(data)
	var rows []BranchingRow
	for _, k := range []int{2, 4, 8, 16} {
		tree := htree.MustNew(k, len(data))
		var accH, accB stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0xAB10+k), trial)
			rsrc := laplace.Stream(cfg.Seed^uint64(0xAB60+k), trial)
			htilde := core.ReleaseTree(tree, data, eps, src)
			hbar := core.InferTree(tree, htilde)
			for q := 0; q < 200; q++ {
				size := 2 << rsrc.IntN(log2int(len(data))-1)
				if size >= len(data) {
					size = len(data) / 2
				}
				lo := rsrc.IntN(len(data) - size)
				hi := lo + size
				truth := truthPrefix[hi] - truthPrefix[lo]
				dh := core.TreeRangeHTilde(tree, htilde, lo, hi) - truth
				db := tree.RangeSum(hbar, lo, hi) - truth
				accH.Add(dh * dh)
				accB.Add(db * db)
			}
		}
		rows = append(rows, BranchingRow{
			K: k, Height: tree.Height(),
			ErrHTilde: accH.Mean(), ErrHBar: accB.Mean(),
		})
	}
	return rows
}

// NonNegRow is one point of the non-negativity ablation: unit-length
// range error of H-bar with and without the Section 4.2 subtree-zeroing
// heuristic, against the L~ baseline, on the sparse NetTrace domain.
type NonNegRow struct {
	Epsilon        float64
	ErrLTilde      float64 // flat Laplace histogram (rounded)
	ErrHBarPlain   float64 // inference only
	ErrHBarNonNeg  float64 // inference + subtree zeroing + rounding
	SparseFraction float64 // fraction of truly-empty unit positions
}

// RunNonNegativity quantifies the Section 4.2 claim that zeroing
// non-positive subtrees "can greatly reduce error in sparse regions and
// can lead to H-bar being more accurate than L~ even at small ranges".
// Unit-length queries are the adversarial case for H (higher sensitivity,
// no aggregation), so this is where the heuristic must earn its keep.
func RunNonNegativity(cfg Config) []NonNegRow {
	cfg = cfg.withDefaults(30)
	data := cfg.netTrace()
	empty := 0
	for _, v := range data {
		if v == 0 {
			empty++
		}
	}
	sparse := float64(empty) / float64(len(data))
	tree := htree.MustNew(2, len(data))
	var rows []NonNegRow
	for ei, eps := range cfg.Epsilons {
		var accL, accPlain, accNN stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0xAB90+ei), trial)
			ltilde := core.ReleaseL(data, eps, src)
			core.RoundNonNegInt(ltilde)
			htilde := core.ReleaseTree(tree, data, eps, src)
			hbar := core.InferTree(tree, htilde)
			plain := tree.Leaves(hbar)
			accL.Add(stats.MeanSquaredError(ltilde, data))
			accPlain.Add(stats.MeanSquaredError(plain, data))
			nn := append([]float64(nil), hbar...)
			core.ZeroNegativeSubtrees(tree, nn)
			nnLeaves := append([]float64(nil), tree.Leaves(nn)...)
			core.RoundNonNegInt(nnLeaves)
			accNN.Add(stats.MeanSquaredError(nnLeaves, data))
		}
		rows = append(rows, NonNegRow{
			Epsilon:        eps,
			ErrLTilde:      accL.Mean(),
			ErrHBarPlain:   accPlain.Mean(),
			ErrHBarNonNeg:  accNN.Mean(),
			SparseFraction: sparse,
		})
	}
	return rows
}

// WaveletRow compares the Haar-wavelet mechanism (Xiao et al.) with the
// binary H~ and H-bar on one workload — the Section 6 relationship.
type WaveletRow struct {
	Epsilon    float64
	ErrWavelet float64
	ErrHTilde  float64
	ErrHBar    float64
}

// RunWaveletComparison measures mixed-size random range error for the
// wavelet release versus H~ and H-bar on the NetTrace workload. Expected
// shape: wavelet and H~ are the same order (Li et al. equivalence);
// H-bar beats both since neither competitor exploits consistency.
func RunWaveletComparison(cfg Config) []WaveletRow {
	cfg = cfg.withDefaults(30)
	data := cfg.netTrace()
	truthPrefix := prefixSums(data)
	tree := htree.MustNew(2, len(data))
	var rows []WaveletRow
	for ei, eps := range cfg.Epsilons {
		var accW, accH, accB stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0xABC0+ei), trial)
			rsrc := laplace.Stream(cfg.Seed^uint64(0xABF0+ei), trial)
			wrelease, err := wavelet.Release(data, eps, src)
			if err != nil {
				panic(err) // inputs are internally generated and valid
			}
			wPrefix := prefixSums(wrelease)
			htilde := core.ReleaseTree(tree, data, eps, src)
			hbar := core.InferTree(tree, htilde)
			core.ZeroNegativeSubtrees(tree, hbar)
			core.RoundNonNegInt(hbar)
			for q := 0; q < 200; q++ {
				size := 2 << rsrc.IntN(log2int(len(data))-1)
				if size >= len(data) {
					size = len(data) / 2
				}
				lo := rsrc.IntN(len(data) - size)
				hi := lo + size
				truth := truthPrefix[hi] - truthPrefix[lo]
				dw := (wPrefix[hi] - wPrefix[lo]) - truth
				dh := core.TreeRangeHTilde(tree, htilde, lo, hi) - truth
				db := tree.RangeSum(hbar, lo, hi) - truth
				accW.Add(dw * dw)
				accH.Add(dh * dh)
				accB.Add(db * db)
			}
		}
		rows = append(rows, WaveletRow{
			Epsilon:    eps,
			ErrWavelet: accW.Mean(),
			ErrHTilde:  accH.Mean(),
			ErrHBar:    accB.Mean(),
		})
	}
	return rows
}
