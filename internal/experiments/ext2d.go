package experiments

import (
	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/datagen"
	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// Ext2DRow is one point of the 2D-extension experiment: rectangle-query
// error under the flat 2D Laplace baseline, the noisy quadtree, the
// inferred quadtree, and the inferred quadtree with the Section 4.2
// sparsity post-processing.
type Ext2DRow struct {
	Epsilon       float64
	ErrFlat       float64 // per-cell Lap(1/eps), rectangle answered by summation
	ErrQuadTree   float64 // noisy quadtree, decomposition answering
	ErrInferred   float64 // quadtree + Theorem 3 inference (pure)
	ErrInferredNN float64 // inference + subtree zeroing + rounding
}

// RunExt2D measures the Appendix B multi-dimensional extension on a
// synthetic spatial dataset: hotspot clusters on a square grid, random
// axis-aligned rectangles of mixed sizes.
//
// Expected shape: inference uniformly improves the noisy quadtree
// (Gauss-Markov, dimension-independent). Against the flat per-cell
// baseline the trade-off of Figure 6 shifts with dimension: a 2D
// rectangle decomposes into O(perimeter) quadtree nodes rather than
// O(log n) intervals, so on small grids the flat histogram keeps
// mixed-size rectangles, and the quadtree pays off only for large
// rectangles over large domains or when sparsity lets the Section 4.2
// heuristic silence empty regions. The row set quantifies exactly where
// each side of that trade-off lands.
func RunExt2D(cfg Config) []Ext2DRow {
	cfg = cfg.withDefaults(20)
	side := 128
	if cfg.Scale == ScaleSmall {
		side = 64
	}
	cells := hotspotGrid(side, cfg.Seed)
	grid := histo2d.MustNew(side, side)
	truth := grid.FromCells(cells)

	// 2D prefix sums for the flat baseline and for truth lookups.
	flatTruth := make([]float64, 0, side*side)
	for y := 0; y < side; y++ {
		flatTruth = append(flatTruth, cells[y]...)
	}
	var rows []Ext2DRow
	for ei, eps := range cfg.Epsilons {
		var accF, accQ, accI, accN stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0x2D00+ei), trial)
			rsrc := laplace.Stream(cfg.Seed^uint64(0x2D50+ei), trial)

			flat := core.Perturb(flatTruth, 1, eps, src)
			flatPrefix := prefix2D(flat, side)

			noisy := grid.Release(cells, eps, src)
			inferred := grid.Infer(noisy)
			nn := append([]float64(nil), inferred...)
			grid.ZeroNegativeSubtrees(nn)
			core.RoundNonNegInt(nn)

			for q := 0; q < 100; q++ {
				w := 1 + rsrc.IntN(side-1)
				h := 1 + rsrc.IntN(side-1)
				x0 := rsrc.IntN(side - w + 1)
				y0 := rsrc.IntN(side - h + 1)
				x1, y1 := x0+w, y0+h
				want, err := grid.RangeSum(truth, x0, y0, x1, y1)
				if err != nil {
					panic(err) // rectangles are in-bounds by construction
				}
				df := rectSum(flatPrefix, side, x0, y0, x1, y1) - want
				gq, err := grid.RangeSum(noisy, x0, y0, x1, y1)
				if err != nil {
					panic(err)
				}
				gi, err := grid.RangeSum(inferred, x0, y0, x1, y1)
				if err != nil {
					panic(err)
				}
				gn, err := grid.RangeSum(nn, x0, y0, x1, y1)
				if err != nil {
					panic(err)
				}
				accF.Add(df * df)
				accQ.Add((gq - want) * (gq - want))
				accI.Add((gi - want) * (gi - want))
				accN.Add((gn - want) * (gn - want))
			}
		}
		rows = append(rows, Ext2DRow{
			Epsilon:       eps,
			ErrFlat:       accF.Mean(),
			ErrQuadTree:   accQ.Mean(),
			ErrInferred:   accI.Mean(),
			ErrInferredNN: accN.Mean(),
		})
	}
	return rows
}

// hotspotGrid builds a deterministic spatial dataset: Gaussian hotspots
// over a mostly-empty grid.
func hotspotGrid(side int, seed uint64) [][]float64 {
	rng := laplace.NewRand(seed, 0x2dda7a)
	cells := make([][]float64, side)
	for y := range cells {
		cells[y] = make([]float64, side)
	}
	for _, h := range []struct{ cx, cy, sigma, n float64 }{
		{float64(side) * 0.5, float64(side) * 0.5, float64(side) / 20, 20000},
		{float64(side) * 0.8, float64(side) * 0.2, float64(side) / 12, 12000},
	} {
		for i := 0; i < int(h.n); i++ {
			x := int(h.cx + rng.NormFloat64()*h.sigma)
			y := int(h.cy + rng.NormFloat64()*h.sigma)
			if x >= 0 && x < side && y >= 0 && y < side {
				cells[y][x]++
			}
		}
	}
	// A Poisson dusting of background activity.
	for y := range cells {
		for x := range cells[y] {
			if rng.Float64() < 0.02 {
				cells[y][x] += datagen.Poisson(2, rng)
			}
		}
	}
	return cells
}

// prefix2D builds an inclusive 2D summed-area table with a zero border.
func prefix2D(flat []float64, side int) []float64 {
	p := make([]float64, (side+1)*(side+1))
	for y := 1; y <= side; y++ {
		for x := 1; x <= side; x++ {
			p[y*(side+1)+x] = flat[(y-1)*side+(x-1)] +
				p[(y-1)*(side+1)+x] + p[y*(side+1)+x-1] - p[(y-1)*(side+1)+x-1]
		}
	}
	return p
}

// rectSum answers [x0,x1)x[y0,y1) from a summed-area table.
func rectSum(p []float64, side, x0, y0, x1, y1 int) float64 {
	w := side + 1
	return p[y1*w+x1] - p[y0*w+x1] - p[y1*w+x0] + p[y0*w+x0]
}
