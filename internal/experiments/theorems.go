package experiments

import (
	"math"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// Theorem2Row is one point of the Theorem 2 scaling study: total error of
// S-bar versus the number of distinct values d at fixed n.
type Theorem2Row struct {
	N         int
	D         int     // number of distinct values in the sequence
	ErrSBar   float64 // measured total squared error of S-bar
	ErrSTilde float64 // measured total squared error of S~ (theory: 2n/eps^2)
	Bound     float64 // sum_i log^3(n_i)/eps^2, the Theorem 2 shape (c1=1, c2=0)
}

// RunTheorem2 measures how the error of S-bar scales with the number of
// distinct counts d, the quantity Theorem 2 says it is linear in, at
// fixed sequence length n. Sequences are step functions with d equal-size
// runs. The paper's claim: error(S-bar) = O(d log^3 n / eps^2) while
// error(S~) = Theta(n/eps^2) regardless of d.
func RunTheorem2(cfg Config) []Theorem2Row {
	cfg = cfg.withDefaults(60)
	n := 4096
	if cfg.Scale == ScaleSmall {
		n = 1024
	}
	const eps = 1.0
	var rows []Theorem2Row
	for _, d := range []int{1, 2, 4, 16, 64, 256} {
		if d > n {
			continue
		}
		truth := make([]float64, n)
		run := n / d
		for i := range truth {
			step := i / run
			if step >= d {
				step = d - 1
			}
			truth[i] = float64(step * 20)
		}
		var accBar, accTilde stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			src := laplace.Stream(cfg.Seed^uint64(0x7E02000+d), trial)
			stilde := core.Perturb(truth, core.SensitivityS, eps, src)
			accTilde.Add(stats.SquaredError(stilde, truth))
			accBar.Add(stats.SquaredError(core.InferSorted(stilde), truth))
		}
		bound := 0.0
		for i := 0; i < d; i++ {
			l := math.Log(float64(run))
			bound += l * l * l / (eps * eps)
		}
		rows = append(rows, Theorem2Row{
			N: n, D: d,
			ErrSBar:   accBar.Mean(),
			ErrSTilde: accTilde.Mean(),
			Bound:     bound,
		})
	}
	return rows
}

// Theorem4Result measures part (iv) of Theorem 4: on the all-but-endpoint
// range query over a height-ell binary tree, the error ratio
// error(H~_q)/error(H-bar_q) approaches (2(ell-1)(k-1)-k)/3 — 9.33 for
// the paper's height-16 tree.
type Theorem4Result struct {
	Height         int
	K              int
	MeasuredRatio  float64
	PredictedRatio float64
	ErrHTilde      float64
	ErrHBar        float64
}

// RunTheorem4 runs the Theorem 4(iv) experiment. The paper's height-16
// binary tree corresponds to a 2^15-leaf domain; ScaleSmall uses height
// 11 (1024 leaves) with the same prediction formula.
func RunTheorem4(cfg Config) Theorem4Result {
	cfg = cfg.withDefaults(200)
	domain := 1 << 15
	if cfg.Scale == ScaleSmall {
		domain = 1 << 10
	}
	tree := htree.MustNew(2, domain)
	ell := tree.Height()
	k := tree.K()
	// Uniform data: the query's truth is just its size times the level.
	unit := make([]float64, domain)
	for i := range unit {
		unit[i] = 3
	}
	truth := 3 * float64(domain-2)
	const eps = 1.0
	var accTilde, accBar stats.Accumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		src := laplace.Stream(cfg.Seed^0x7E04000, trial)
		htilde := core.ReleaseTree(tree, unit, eps, src)
		hbar := core.InferTree(tree, htilde)
		at := core.TreeRangeHTilde(tree, htilde, 1, domain-1)
		ab := core.TreeRangeHTilde(tree, hbar, 1, domain-1)
		accTilde.Add((at - truth) * (at - truth))
		accBar.Add((ab - truth) * (ab - truth))
	}
	predicted := (2*float64(ell-1)*float64(k-1) - float64(k)) / 3
	return Theorem4Result{
		Height:         ell,
		K:              k,
		MeasuredRatio:  accTilde.Mean() / accBar.Mean(),
		PredictedRatio: predicted,
		ErrHTilde:      accTilde.Mean(),
		ErrHBar:        accBar.Mean(),
	}
}
