package experiments

import "testing"

func TestRunExt2DShapes(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 6
	rows := RunExt2D(cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ErrFlat <= 0 || r.ErrQuadTree <= 0 || r.ErrInferred <= 0 || r.ErrInferredNN <= 0 {
			t.Fatalf("non-positive error: %+v", r)
		}
		// Pure inference uniformly improves the quadtree: Theorem 4(ii)
		// is dimension-independent (any linear query, so any rectangle).
		if r.ErrInferred > r.ErrQuadTree*1.02 {
			t.Errorf("eps=%v: inference hurt in 2D: %v vs %v",
				r.Epsilon, r.ErrInferred, r.ErrQuadTree)
		}
		// The flat baseline keeps mixed-size rectangles on this small
		// grid (O(perimeter) decomposition + height-7 sensitivity): the
		// Figure 6 crossover shifted by dimension. What must hold is that
		// the quadtree family stays within the same order of magnitude,
		// not that it wins here.
		if r.ErrInferred > r.ErrFlat*100 {
			t.Errorf("eps=%v: inferred quadtree (%v) catastrophically worse than flat (%v)",
				r.Epsilon, r.ErrInferred, r.ErrFlat)
		}
	}
}

func TestRunExt2DDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 3
	a := RunExt2D(cfg)
	b := RunExt2D(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RunExt2D not deterministic")
		}
	}
}
