package experiments

import (
	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

// Fig5Row is one bar triplet of Figure 5: the per-position mean squared
// error of the three unattributed-histogram estimators on one dataset at
// one privacy level, averaged over Config.Trials samples.
type Fig5Row struct {
	Dataset   string
	Epsilon   float64
	ErrSTilde float64 // raw noisy sorted query S~
	ErrSr     float64 // sort-and-round baseline S~r
	ErrSBar   float64 // constrained inference S-bar
}

// RunFig5 reproduces Figure 5: unattributed histogram error for S~, S~r,
// and S-bar on NetTrace, Social Network, and Search Logs at each epsilon.
// The paper's result: S-bar reduces error by at least an order of
// magnitude across all datasets and privacy levels, and the gap to S~r
// shows the win comes from inference, not mere integrality.
func RunFig5(cfg Config) []Fig5Row {
	cfg = cfg.withDefaults(50)
	datasets := []struct {
		name string
		data []float64
	}{
		{"SocialNetwork", cfg.socialNetwork()},
		{"NetTrace", cfg.netTrace()},
		{"SearchLogs", cfg.searchKeywords()},
	}
	var rows []Fig5Row
	for di, ds := range datasets {
		truth := core.SortedQuery(ds.data)
		for ei, eps := range cfg.Epsilons {
			var accTilde, accSr, accBar stats.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				src := laplace.Stream(cfg.Seed^uint64(0xF160500+di*100+ei), trial)
				stilde := core.Perturb(truth, core.SensitivityS, eps, src)
				accTilde.Add(stats.MeanSquaredError(stilde, truth))
				accSr.Add(stats.MeanSquaredError(core.SortRound(stilde), truth))
				accBar.Add(stats.MeanSquaredError(core.InferSorted(stilde), truth))
			}
			rows = append(rows, Fig5Row{
				Dataset:   ds.name,
				Epsilon:   eps,
				ErrSTilde: accTilde.Mean(),
				ErrSr:     accSr.Mean(),
				ErrSBar:   accBar.Mean(),
			})
		}
	}
	return rows
}
