package experiments

import "fmt"

// Claim is one paper claim checked live against this implementation.
type Claim struct {
	ID     string // paper locus, e.g. "Fig5", "Thm4(iv)"
	Text   string // what the paper asserts
	Detail string // measured evidence
	Pass   bool
}

// Verify runs a fast (small-scale) end-to-end check of every
// reproducible claim in the paper and reports a scorecard. It is the
// live counterpart of EXPERIMENTS.md: if the implementation drifts, the
// scorecard catches it without consulting stored numbers.
func Verify(cfg Config) []Claim {
	cfg.Scale = ScaleSmall
	if cfg.Trials == 0 {
		cfg.Trials = 20
	}
	if cfg.RangesPerSize == 0 {
		cfg.RangesPerSize = 200
	}
	var claims []Claim
	add := func(id, text string, pass bool, detail string) {
		claims = append(claims, Claim{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	// Figure 2(b): exact inference on the paper's printed draws.
	hbar, sbar := PaperFig2Inference()
	fig2OK := len(hbar) == 7 && len(sbar) == 4
	wantH := []float64{14, 3, 11, 3, 0, 11, 0}
	wantS := []float64{1, 1, 1, 11}
	for i, v := range wantH {
		if diff := hbar[i] - v; diff > 1e-9 || diff < -1e-9 {
			fig2OK = false
		}
	}
	for i, v := range wantS {
		if diff := sbar[i] - v; diff > 1e-9 || diff < -1e-9 {
			fig2OK = false
		}
	}
	add("Fig2", "inference reproduces the worked example exactly", fig2OK,
		fmt.Sprintf("H-bar=%.0f S-bar=%.0f", hbar, sbar))

	// Figure 5: at least an order of magnitude on every dataset and eps.
	// This claim depends on the datasets' duplication structure, which
	// only fully develops at the paper's scale (the shrunk keyword set's
	// head is mostly distinct values), so it alone runs paper-sized data
	// with the reduced trial count.
	fig5Cfg := cfg
	fig5Cfg.Scale = ScalePaper
	worst := 1e18
	for _, r := range RunFig5(fig5Cfg) {
		if ratio := r.ErrSTilde / r.ErrSBar; ratio < worst {
			worst = ratio
		}
	}
	add("Fig5", "S-bar beats S~ by >=10x across datasets and eps", worst >= 10,
		fmt.Sprintf("worst improvement %.1fx", worst))

	// Figure 6: linear L~, converging L~/H~ ratio, H-bar uniformly <= H~.
	rows := RunFig6(cfg)
	type key struct {
		ds  string
		eps float64
	}
	series := map[key][]Fig6Row{}
	for _, r := range rows {
		k := key{r.Dataset, r.Epsilon}
		series[k] = append(series[k], r)
	}
	linear, converging, uniform := true, true, true
	var worstHBar float64
	for _, s := range series {
		first, last := s[0], s[len(s)-1]
		if last.ErrL < first.ErrL*20 {
			linear = false
		}
		if (last.ErrL/last.ErrH)/(first.ErrL/first.ErrH) < 20 {
			converging = false
		}
		for _, r := range s {
			if ratio := r.ErrHBar / r.ErrH; ratio > 1.15 {
				uniform = false
				if ratio > worstHBar {
					worstHBar = ratio
				}
			}
		}
	}
	add("Fig6-L", "L~ range error grows linearly with range size", linear, "")
	add("Fig6-X", "L~/H~ ratio converges toward the ~2000-unit crossover", converging, "")
	add("Fig6-H", "H-bar uniformly at least as accurate as H~", uniform,
		fmt.Sprintf("worst H-bar/H~ ratio %.2f", worstHBar))

	// Figure 7: interior of uniform runs nearly free, boundaries pay.
	f7 := RunFig7(cfg).Summarize()
	add("Fig7", "S-bar error concentrates at run boundaries",
		f7.MeanInterior < f7.MeanBoundary && f7.MeanOverall*5 < f7.ErrSTilde,
		fmt.Sprintf("interior %.3g boundary %.3g flat %.3g", f7.MeanInterior, f7.MeanBoundary, f7.ErrSTilde))

	// Theorem 2: error grows with d; d=1 is polylog.
	t2 := RunTheorem2(cfg)
	t2OK := t2[0].ErrSBar*20 < t2[0].ErrSTilde &&
		t2[len(t2)-1].ErrSBar > t2[0].ErrSBar*10
	add("Thm2", "error(S-bar) scales with distinct counts d", t2OK,
		fmt.Sprintf("d=1: %.3g vs d=%d: %.3g (S~ %.3g)",
			t2[0].ErrSBar, t2[len(t2)-1].D, t2[len(t2)-1].ErrSBar, t2[0].ErrSTilde))

	// Theorem 4(iv): measured ratio at least the predicted bound.
	t4 := RunTheorem4(cfg)
	add("Thm4(iv)", "all-but-endpoints query gains at least the predicted factor",
		t4.MeasuredRatio >= 0.7*t4.PredictedRatio,
		fmt.Sprintf("measured %.1fx, bound %.2fx", t4.MeasuredRatio, t4.PredictedRatio))

	// Appendix E: H~ error flat in N; equi-depth grows.
	be := RunBlumEmpirical(cfg)
	minH, maxH := be[0].AbsErrHTree, be[0].AbsErrHTree
	for _, r := range be {
		if r.AbsErrHTree < minH {
			minH = r.AbsErrHTree
		}
		if r.AbsErrHTree > maxH {
			maxH = r.AbsErrHTree
		}
	}
	add("AppE", "H~ absolute error independent of database size; equi-depth grows",
		maxH/minH < 2 && be[len(be)-1].AbsErrEquiDF > be[0].AbsErrEquiDF*4,
		fmt.Sprintf("H~ %.3g..%.3g, equi-depth %.3g -> %.3g",
			minH, maxH, be[0].AbsErrEquiDF, be[len(be)-1].AbsErrEquiDF))

	// Section 4.2: the non-negativity heuristic helps on sparse data.
	nnOK := true
	var nnDetail string
	for _, r := range RunNonNegativity(cfg) {
		if r.ErrHBarNonNeg*2 > r.ErrHBarPlain {
			nnOK = false
		}
		nnDetail = fmt.Sprintf("eps=%g: %.3g -> %.3g", r.Epsilon, r.ErrHBarPlain, r.ErrHBarNonNeg)
	}
	add("Sec4.2", "subtree zeroing cuts sparse-domain error >=2x", nnOK, nnDetail)

	return claims
}
