// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5, Appendices C and E). Each Run* function builds
// the workload, sweeps the parameters the paper sweeps, and returns
// structured rows that cmd/dphist-bench formats exactly like the paper
// reports them. Absolute values depend on the synthetic datasets (the
// originals are private; see DESIGN.md section 4) but the comparisons —
// who wins, by what order, where crossovers fall — reproduce the paper.
package experiments

import (
	"math"

	"github.com/dphist/dphist/internal/datagen"
	"github.com/dphist/dphist/internal/laplace"
)

// Scale selects the workload size.
type Scale int

const (
	// ScalePaper matches the paper's dataset sizes (NetTrace ~65K hosts,
	// Social Network ~11K nodes, Search Logs 20K keywords / 32K bins).
	ScalePaper Scale = iota
	// ScaleSmall shrinks domains ~16x for fast test runs; all
	// qualitative comparisons still hold.
	ScaleSmall
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every random stream in the run; equal configs produce
	// identical outputs.
	Seed uint64
	// Trials is the number of samples of the private mechanism averaged
	// per measurement. The paper uses 50 (200 for Figure 7). Zero means
	// the paper's value.
	Trials int
	// RangesPerSize is the number of random range queries per range size
	// in Figure 6. The paper uses 1000. Zero means 1000.
	RangesPerSize int
	// Epsilons are the privacy levels swept. Nil means the paper's
	// {1.0, 0.1, 0.01}.
	Epsilons []float64
	// Scale selects paper-sized or test-sized workloads.
	Scale Scale
}

func (c Config) withDefaults(defaultTrials int) Config {
	if c.Trials == 0 {
		c.Trials = defaultTrials
	}
	if c.RangesPerSize == 0 {
		c.RangesPerSize = 1000
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{1.0, 0.1, 0.01}
	}
	return c
}

// Dataset sizes per scale.
type sizes struct {
	netTraceDomain  int
	netTraceActive  int
	socialNodes     int
	socialEdgesPer  int
	searchKeywords  int
	searchSeriesLen int
}

func (c Config) sizes() sizes {
	if c.Scale == ScaleSmall {
		return sizes{
			netTraceDomain:  4096,
			netTraceActive:  1200,
			socialNodes:     1200,
			socialEdgesPer:  5,
			searchKeywords:  2000,
			searchSeriesLen: 2048,
		}
	}
	return sizes{
		netTraceDomain:  65536,
		netTraceActive:  20000,
		socialNodes:     11000,
		socialEdgesPer:  5,
		searchKeywords:  20000,
		searchSeriesLen: 32768,
	}
}

// netTrace returns the synthetic NetTrace unit counts (per-host
// connection counts over the external address domain).
func (c Config) netTrace() []float64 {
	s := c.sizes()
	return datagen.NetTraceCounts(datagen.NetTraceConfig{
		DomainSize:  s.netTraceDomain,
		ActiveHosts: s.netTraceActive,
	}, laplace.NewRand(c.Seed, 0xda7a1))
}

// socialNetwork returns the synthetic Social Network degree sequence.
func (c Config) socialNetwork() []float64 {
	s := c.sizes()
	ds, err := datagen.SocialNetworkDegrees(s.socialNodes, s.socialEdgesPer, laplace.NewRand(c.Seed, 0xda7a2))
	if err != nil {
		panic(err) // sizes are hardcoded valid
	}
	return ds
}

// searchKeywords returns the synthetic top-keyword frequency vector.
func (c Config) searchKeywords() []float64 {
	return datagen.SearchLogKeywordCounts(c.sizes().searchKeywords, laplace.NewRand(c.Seed, 0xda7a3))
}

// searchSeries returns the synthetic "Obama" temporal series.
func (c Config) searchSeries() []float64 {
	return datagen.QueryTermSeries(datagen.SeriesConfig{Bins: c.sizes().searchSeriesLen},
		laplace.NewRand(c.Seed, 0xda7a4))
}

// prefixSums returns p with p[i] = sum of x[:i].
func prefixSums(x []float64) []float64 {
	p := make([]float64, len(x)+1)
	for i, v := range x {
		p[i+1] = p[i] + v
	}
	return p
}

// log2int returns floor(log2(n)).
func log2int(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

var _ = math.Abs // keep math imported for helpers added below
