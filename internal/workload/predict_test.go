package workload

import (
	"math"
	"testing"

	"github.com/dphist/dphist/internal/core"
)

func TestRankOrdering(t *testing.T) {
	preds := []Prediction{
		{Strategy: StrategyWavelet, Error: 5, Confidence: ConfidenceExact},
		{Strategy: StrategyUnattributed, Error: 3, Confidence: ConfidenceBound},
		{Strategy: StrategyLaplace, Error: 3, Confidence: ConfidenceExact},
		{Strategy: StrategyUniversal, Branching: 4, Error: 3, Confidence: ConfidenceExact},
		{Strategy: StrategyUniversal, Branching: 2, Error: 3, Confidence: ConfidenceExact},
	}
	Rank(preds)
	// Equal error: exact beats bound, then canonical strategy order
	// (universal before laplace), then smaller branching.
	want := []struct {
		s Strategy
		k int
	}{
		{StrategyUniversal, 2},
		{StrategyUniversal, 4},
		{StrategyLaplace, 0},
		{StrategyUnattributed, 0},
		{StrategyWavelet, 0},
	}
	for i, w := range want {
		if preds[i].Strategy != w.s || preds[i].Branching != w.k {
			t.Fatalf("rank %d = %s k=%d, want %s k=%d",
				i, preds[i].Strategy, preds[i].Branching, w.s, w.k)
		}
	}
}

func TestSetGridAndAddRectValidation(t *testing.T) {
	w, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddRect(0, 0, 1, 1, 1); err == nil {
		t.Fatal("AddRect before SetGrid")
	}
	if err := w.SetGrid(0, 4); err == nil {
		t.Fatal("zero-width grid")
	}
	if err := w.SetGrid(8, 8); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][4]int{
		{-1, 0, 1, 1}, {0, -1, 1, 1}, {0, 0, 9, 1}, {0, 0, 1, 9}, {2, 0, 2, 1}, {0, 3, 1, 3},
	} {
		if err := w.AddRect(bad[0], bad[1], bad[2], bad[3], 1); err == nil {
			t.Fatalf("accepted rect %v", bad)
		}
	}
	if err := w.AddRect(0, 0, 1, 1, math.Inf(1)); err == nil {
		t.Fatal("accepted infinite weight")
	}
	if err := w.AddRect(1, 1, 8, 8, 2); err != nil {
		t.Fatal(err)
	}
	// The grid cannot shrink below an existing rect.
	if err := w.SetGrid(4, 4); err == nil {
		t.Fatal("grid shrank below existing rect")
	}
	if w.RectLen() != 1 {
		t.Fatalf("RectLen = %d", w.RectLen())
	}
}

func TestErrorWaveletFullCoverIsRootOnly(t *testing.T) {
	// A full-domain range on a power-of-two domain touches no detail
	// boundaries: only the scaled root coefficient contributes, so the
	// closed form collapses to n^2 * Var(c0).
	const n = 16
	w, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, n, 1); err != nil {
		t.Fatal(err)
	}
	eps := 0.5
	rho := 1 + math.Log2(n)
	want := float64(n*n) * core.NoiseVariance(rho/n, eps)
	if got := w.ErrorWavelet(eps); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("full-cover wavelet error %v, want %v", got, want)
	}
}

func TestQuadDecomposeCount(t *testing.T) {
	cases := []struct {
		rect [4]int
		want int
	}{
		{[4]int{0, 0, 8, 8}, 1},  // whole root
		{[4]int{0, 0, 4, 4}, 1},  // one child quadrant
		{[4]int{0, 0, 8, 4}, 2},  // top half: two quadrants
		{[4]int{1, 1, 2, 2}, 1},  // single cell
		{[4]int{0, 0, 5, 5}, 10}, // quadrant + two strips of 4 cells + corner cell
		{[4]int{3, 3, 5, 5}, 4},  // center straddling all four quadrants
		{[4]int{0, 0, 0, 8}, 0},  // empty
	}
	for _, tc := range cases {
		got := quadDecomposeCount(0, 0, 8, tc.rect[0], tc.rect[1], tc.rect[2], tc.rect[3])
		if got != tc.want {
			t.Errorf("decompose %v = %d nodes, want %d", tc.rect, got, tc.want)
		}
	}
}

func TestPredictAllRequiresQueries(t *testing.T) {
	w, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.PredictAll(1.0, PredictOptions{}); err == nil {
		t.Fatal("empty workload predicted")
	}
	if err := w.Add(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.PredictAll(0, PredictOptions{}); err == nil {
		t.Fatal("zero epsilon predicted")
	}
	preds, err := w.PredictAll(1.0, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// No hierarchy sensitivity, no grid: the five always-on strategies.
	if len(preds) != 5 {
		t.Fatalf("%d predictions: %+v", len(preds), preds)
	}
	for _, p := range preds {
		if p.Strategy == StrategyHierarchy || p.Strategy == StrategyUniversal2D {
			t.Fatalf("unexpected candidate %s", p.Strategy)
		}
	}
}

func TestPredictAllExactLeavesCap(t *testing.T) {
	w, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, 1024, 1); err != nil {
		t.Fatal(err)
	}
	capped, err := w.PredictAll(1.0, PredictOptions{MaxExactLeaves: 512})
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := w.PredictAll(1.0, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(preds []Prediction) Prediction {
		for _, p := range preds {
			if p.Strategy == StrategyUniversal {
				return p
			}
		}
		t.Fatal("no universal prediction")
		return Prediction{}
	}
	if p := find(capped); p.Confidence != ConfidenceBound {
		t.Fatalf("capped universal confidence %q", p.Confidence)
	}
	if p := find(uncapped); p.Confidence != ConfidenceExact {
		t.Fatalf("uncapped universal confidence %q", p.Confidence)
	}
}

func TestErrorHierarchyRejectsBadSensitivity(t *testing.T) {
	w, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, 0.5, -1, math.Inf(1)} {
		if _, err := w.ErrorHierarchy(bad, 1.0); err == nil {
			t.Fatalf("accepted sensitivity %v", bad)
		}
	}
	got, err := w.ErrorHierarchy(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * core.NoiseVariance(3, 0.5)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("hierarchy error %v, want %v", got, want)
	}
}
