// Package workload predicts the accuracy of the paper's release
// strategies on a concrete set of range queries before any privacy
// budget is spent, and recommends the best one — a step toward the
// paper's closing question of "finding optimal strategies for query
// answering under differential privacy" (Section 7).
//
// All predictions are analytic expectations over the mechanism's
// randomness; no sensitive data is touched:
//
//   - L~: a range of width s costs s * 2/eps^2.
//   - H~: a range decomposing into c subtrees costs c * 2*(ell/eps)^2.
//   - H-bar: the exact OLS variance. With A the 0/1 tree design matrix
//     and q the query's leaf indicator, the inferred answer's variance
//     is sigma^2 * q^T (A^T A)^{-1} q with sigma^2 = 2*(ell/eps)^2
//     (Gauss-Markov; Theorem 4). One Cholesky factorization per tree is
//     shared across all queries, so prediction is exact but limited to
//     modest domains (leaves <= ~2048).
package workload

import (
	"errors"
	"fmt"
	"math"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/linalg"
)

// ErrDomainTooLarge reports that an exact prediction was requested over a
// domain whose closed-form computation is infeasible (the H-bar Cholesky
// factorization is cubic in the leaf count). Callers that serve
// predictions over a network should map it to an unprocessable-input
// status rather than an internal error.
var ErrDomainTooLarge = errors.New("workload: domain too large for exact prediction")

// Query is one weighted half-open range query [Lo, Hi).
type Query struct {
	Lo, Hi int
	Weight float64
}

// Workload is a weighted set of range queries over the domain [0, n),
// optionally extended with weighted rectangle queries over a 2-D grid
// (see SetGrid and AddRect) so the universal2d strategy can be compared
// against the 1-D pipelines.
type Workload struct {
	n       int
	queries []Query

	gridW, gridH int // 0 until SetGrid
	rects        []RectQuery
}

// New returns an empty workload over a domain of the given size.
func New(domain int) (*Workload, error) {
	if domain < 1 {
		return nil, fmt.Errorf("workload: domain %d < 1", domain)
	}
	return &Workload{n: domain}, nil
}

// MustNew is New but panics on error.
func MustNew(domain int) *Workload {
	w, err := New(domain)
	if err != nil {
		panic(err)
	}
	return w
}

// Domain returns the domain size.
func (w *Workload) Domain() int { return w.n }

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.queries) }

// Add appends a weighted range query. Weight must be positive.
func (w *Workload) Add(lo, hi int, weight float64) error {
	if lo < 0 || hi > w.n || lo >= hi {
		return fmt.Errorf("workload: bad range [%d,%d) for domain %d", lo, hi, w.n)
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		return fmt.Errorf("workload: weight %v must be positive and finite", weight)
	}
	w.queries = append(w.queries, Query{Lo: lo, Hi: hi, Weight: weight})
	return nil
}

// Queries returns a copy of the query set.
func (w *Workload) Queries() []Query {
	return append([]Query(nil), w.queries...)
}

// AllRanges returns the workload of every non-empty range over [0, n)
// with unit weights — the "universal histogram" target. Quadratic in n;
// intended for analysis at modest domains.
func AllRanges(domain int) (*Workload, error) {
	w, err := New(domain)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < domain; lo++ {
		for hi := lo + 1; hi <= domain; hi++ {
			if err := w.Add(lo, hi, 1); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// Prefixes returns the workload of all prefix ranges [0, hi) — the CDF
// workload — with unit weights.
func Prefixes(domain int) (*Workload, error) {
	w, err := New(domain)
	if err != nil {
		return nil, err
	}
	for hi := 1; hi <= domain; hi++ {
		if err := w.Add(0, hi, 1); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// ErrorLaplace returns the expected weighted total squared error of the
// flat Laplace strategy L~ at the given epsilon.
func (w *Workload) ErrorLaplace(eps float64) float64 {
	perUnit := core.NoiseVariance(core.SensitivityL, eps)
	total := 0.0
	for _, q := range w.queries {
		total += q.Weight * float64(q.Hi-q.Lo) * perUnit
	}
	return total
}

// ErrorHTilde returns the expected weighted total squared error of the
// noisy hierarchy H~ with branching factor k (no inference).
func (w *Workload) ErrorHTilde(k int, eps float64) (float64, error) {
	tree, err := htree.New(k, w.n)
	if err != nil {
		return 0, err
	}
	perNode := core.NoiseVariance(core.SensitivityH(tree), eps)
	total := 0.0
	for _, q := range w.queries {
		total += q.Weight * float64(len(tree.Decompose(q.Lo, q.Hi))) * perNode
	}
	return total, nil
}

// maxExactLeaves bounds the tree size for exact H-bar prediction; the
// Cholesky factorization is O(leaves^3).
const maxExactLeaves = 2048

// ErrorHBar returns the exact expected weighted total squared error of
// the inferred hierarchy H-bar with branching factor k: the OLS variance
// of each query under homoscedastic node noise. Limited to domains whose
// padded tree has at most 2048 leaves.
func (w *Workload) ErrorHBar(k int, eps float64) (float64, error) {
	tree, err := htree.New(k, w.n)
	if err != nil {
		return 0, err
	}
	if tree.NumLeaves() > maxExactLeaves {
		return 0, fmt.Errorf("%w: exact H-bar prediction limited to %d leaves, tree has %d",
			ErrDomainTooLarge, maxExactLeaves, tree.NumLeaves())
	}
	sigma2 := core.NoiseVariance(core.SensitivityH(tree), eps)
	a := core.TreeDesignMatrix(tree)
	ata := a.T().Mul(a)
	chol, err := linalg.Cholesky(ata)
	if err != nil {
		return 0, fmt.Errorf("workload: %w", err)
	}
	total := 0.0
	leaves := tree.NumLeaves()
	for _, q := range w.queries {
		// Query indicator over leaves.
		c := make([]float64, leaves)
		for i := q.Lo; i < q.Hi; i++ {
			c[i] = 1
		}
		// Var = sigma^2 * c^T (A^T A)^{-1} c = sigma^2 * ||L^{-1} c||^2
		// with A^T A = L L^T.
		y := forwardSolve(chol, c)
		norm2 := 0.0
		for _, v := range y {
			norm2 += v * v
		}
		total += q.Weight * sigma2 * norm2
	}
	return total, nil
}

// forwardSolve solves L*y = b for lower-triangular L.
func forwardSolve(l *linalg.Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= l.At(i, j) * y[j]
		}
		y[i] = sum / l.At(i, i)
	}
	return y
}

// Strategy identifies a release strategy.
type Strategy string

// The estimator-level strategies of the original advisor plus the
// serving-level strategy names used by the release pipelines. The
// estimator names htilde/hbar describe the hierarchy before and after
// inference; the serving name "universal" is the hbar pipeline.
const (
	StrategyLaplace Strategy = "laplace" // flat L~
	StrategyHTilde  Strategy = "htilde"  // hierarchy without inference
	StrategyHBar    Strategy = "hbar"    // hierarchy with inference

	StrategyUniversal      Strategy = "universal"
	StrategyUnattributed   Strategy = "unattributed"
	StrategyWavelet        Strategy = "wavelet"
	StrategyDegreeSequence Strategy = "degree_sequence"
	StrategyHierarchy      Strategy = "hierarchy"
	StrategyUniversal2D    Strategy = "universal2d"
)

// Confidence tags how a prediction relates to the mechanism's true
// expected error.
type Confidence string

const (
	// ConfidenceExact marks a closed-form expectation of the linear
	// mechanism's weighted squared error.
	ConfidenceExact Confidence = "exact"
	// ConfidenceBound marks a one-sided upper bound: the mechanism's
	// post-processing (inference, projection) can only reduce the
	// predicted figure.
	ConfidenceBound Confidence = "bound"
)

// Prediction is one strategy's predicted weighted total squared error.
type Prediction struct {
	Strategy   Strategy
	Branching  int // tree fan-out for hierarchical strategies, else 0
	Error      float64
	Confidence Confidence
}

// Recommend evaluates L~, and H~/H-bar at each candidate branching
// factor, returning all predictions sorted by the caller's inspection
// plus the best one. H-bar predictions fall back to H~'s upper bound
// when the domain exceeds the exact-computation limit (H-bar is never
// worse than H~, so the recommendation stays sound).
func (w *Workload) Recommend(eps float64, branchings ...int) (best Prediction, all []Prediction, err error) {
	if len(w.queries) == 0 {
		return Prediction{}, nil, fmt.Errorf("workload: empty workload")
	}
	if len(branchings) == 0 {
		branchings = []int{2}
	}
	all = append(all, Prediction{Strategy: StrategyLaplace, Error: w.ErrorLaplace(eps), Confidence: ConfidenceExact})
	for _, k := range branchings {
		ht, err := w.ErrorHTilde(k, eps)
		if err != nil {
			return Prediction{}, nil, err
		}
		all = append(all, Prediction{Strategy: StrategyHTilde, Branching: k, Error: ht, Confidence: ConfidenceExact})
		hb, hbErr := w.ErrorHBar(k, eps)
		hbConf := ConfidenceExact
		if hbErr != nil {
			// Domain too large for the exact computation: H~'s error is a
			// valid upper bound for H-bar (Theorem 4(ii)).
			hb, hbConf = ht, ConfidenceBound
		}
		all = append(all, Prediction{Strategy: StrategyHBar, Branching: k, Error: hb, Confidence: hbConf})
	}
	best = all[0]
	for _, p := range all[1:] {
		if p.Error < best.Error {
			best = p
		}
	}
	return best, all, nil
}
