package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/htree"
)

// This file extends the advisor's analytic error model from the original
// three estimators (L~, H~, H-bar) to every serving strategy, so a
// workload can rank all seven release pipelines before any budget is
// spent. Each prediction carries a Confidence tag:
//
//   - laplace, wavelet, universal: closed-form expectations of the linear
//     mechanism ("exact"). The universal prediction is the H-bar OLS
//     variance when the padded tree is small enough, else the H~ upper
//     bound ("bound").
//   - unattributed, degree_sequence: the sorted query's pre-inference
//     noise cost ("bound"). The exact post-isotonic error depends on the
//     data's level-set structure (Theorem 2) and is not computable
//     without looking at the data, so the advisor reports the
//     data-independent upper bound; isotonic regression (and the
//     graphical projection) can only move the estimate toward the
//     feasible set containing the truth.
//   - hierarchy: per-node noise variance summed over the queried leaves
//     ("bound"); least-squares inference is an orthogonal projection and
//     never increases the variance of a linear query.
//   - universal2d: quadtree decomposition cost of each rectangle at the
//     grid's sensitivity ("bound"; no inference credit is taken).
//
// All predictions describe the un-rounded, non-clamped mechanism;
// rounding to non-negative integers adds at most 1/4 per cell.

// RectQuery is one weighted half-open rectangle query
// [X0, X1) x [Y0, Y1) over the workload's 2-D grid.
type RectQuery struct {
	X0, Y0, X1, Y1 int
	Weight         float64
}

// SetGrid declares the 2-D domain for rectangle queries. It must be
// called before AddRect and cannot shrink below an already-added rect.
func (w *Workload) SetGrid(width, height int) error {
	if width < 1 || height < 1 {
		return fmt.Errorf("workload: grid %dx%d must be positive", width, height)
	}
	for _, r := range w.rects {
		if r.X1 > width || r.Y1 > height {
			return fmt.Errorf("workload: grid %dx%d excludes existing rect [%d,%d)x[%d,%d)",
				width, height, r.X0, r.X1, r.Y0, r.Y1)
		}
	}
	w.gridW, w.gridH = width, height
	return nil
}

// GridWidth returns the declared grid width (0 until SetGrid).
func (w *Workload) GridWidth() int { return w.gridW }

// GridHeight returns the declared grid height (0 until SetGrid).
func (w *Workload) GridHeight() int { return w.gridH }

// AddRect appends a weighted rectangle query [x0, x1) x [y0, y1).
// SetGrid must have been called first.
func (w *Workload) AddRect(x0, y0, x1, y1 int, weight float64) error {
	if w.gridW == 0 || w.gridH == 0 {
		return fmt.Errorf("workload: SetGrid before AddRect")
	}
	if x0 < 0 || y0 < 0 || x1 > w.gridW || y1 > w.gridH || x0 >= x1 || y0 >= y1 {
		return fmt.Errorf("workload: bad rect [%d,%d)x[%d,%d) for grid %dx%d",
			x0, x1, y0, y1, w.gridW, w.gridH)
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		return fmt.Errorf("workload: weight %v must be positive and finite", weight)
	}
	w.rects = append(w.rects, RectQuery{X0: x0, Y0: y0, X1: x1, Y1: y1, Weight: weight})
	return nil
}

// Rects returns a copy of the rectangle query set.
func (w *Workload) Rects() []RectQuery {
	return append([]RectQuery(nil), w.rects...)
}

// RectLen returns the number of rectangle queries.
func (w *Workload) RectLen() int { return len(w.rects) }

// ErrorSorted returns the pre-inference noise cost of the sorted-query
// strategies (unattributed, degree_sequence): the sorted query has
// sensitivity 1 (Proposition 3), so a width-s range over the sorted
// counts costs s * 2/eps^2 before isotonic regression. This is an upper
// bound on the released estimate's error — isotonic regression projects
// onto the order cone containing the truth and is non-expansive — but
// the exact post-inference figure is data-dependent.
func (w *Workload) ErrorSorted(eps float64) float64 {
	perUnit := core.NoiseVariance(core.SensitivityS, eps)
	total := 0.0
	for _, q := range w.queries {
		total += q.Weight * float64(q.Hi-q.Lo) * perUnit
	}
	return total
}

// ErrorHierarchy returns the pre-inference noise cost of a custom
// constraint forest with the given sensitivity over the workload's
// ranges, interpreted as ranges of leaf positions: each queried leaf
// contributes one node's noise variance. Least-squares inference is an
// orthogonal projection, so the released estimate's error never exceeds
// this figure.
func (w *Workload) ErrorHierarchy(sensitivity, eps float64) (float64, error) {
	if !(sensitivity >= 1) || math.IsInf(sensitivity, 0) {
		return 0, fmt.Errorf("workload: hierarchy sensitivity %v must be >= 1 and finite", sensitivity)
	}
	perNode := core.NoiseVariance(sensitivity, eps)
	total := 0.0
	for _, q := range w.queries {
		total += q.Weight * float64(q.Hi-q.Lo) * perNode
	}
	return total, nil
}

// ErrorWavelet returns the exact expected weighted total squared error
// of the Haar-wavelet mechanism (Privelet) on this workload: a range
// answer is (hi-lo)*c0 plus, for every detail node straddling a range
// boundary, s_i * c_i with s_i the signed leaf-count difference between
// the range's overlap with the node's halves; fully-covered and disjoint
// nodes contribute s_i = 0. Coefficient i carries independent
// Lap(rho/(eps*W(i))) noise with rho = 1 + log2(n) and W(i) the node's
// leaf count, so the variance propagates in closed form. The walk visits
// only boundary-straddling nodes: O(log n) per query.
func (w *Workload) ErrorWavelet(eps float64) float64 {
	n := 1
	for n < w.n {
		n *= 2
	}
	rho := 1 + math.Log2(float64(n))
	baseVar := core.NoiseVariance(rho/float64(n), eps)
	total := 0.0
	for _, q := range w.queries {
		width := float64(q.Hi - q.Lo)
		v := width * width * baseVar
		v += waveletDetailVar(0, n, q.Lo, q.Hi, rho, eps)
		total += q.Weight * v
	}
	return total
}

// waveletDetailVar sums s_i^2 * Var(c_i) over the detail nodes of the
// subtree covering [a, a+size) that straddle a boundary of [lo, hi).
func waveletDetailVar(a, size, lo, hi int, rho, eps float64) float64 {
	oLo, oHi := max(lo, a), min(hi, a+size)
	if oLo >= oHi {
		return 0 // disjoint: this node and all descendants have s = 0
	}
	if oLo == a && oHi == a+size {
		return 0 // fully covered: halves cancel here and below
	}
	if size == 1 {
		return 0 // leaves carry no detail coefficient
	}
	half := size / 2
	mid := a + half
	left := max(0, min(hi, mid)-max(lo, a))
	right := max(0, min(hi, a+size)-max(lo, mid))
	s := float64(left - right)
	v := s * s * core.NoiseVariance(rho/float64(size), eps)
	return v + waveletDetailVar(a, half, lo, hi, rho, eps) +
		waveletDetailVar(mid, half, lo, hi, rho, eps)
}

// ErrorUniversal2D returns the quadtree noise cost of answering the
// workload's rectangle queries from a 2-D universal histogram: each
// rectangle decomposes into its minimal set of quadtree nodes, and every
// node carries Lap(height/eps) noise. Constrained inference can only
// improve on this, so the prediction is an upper bound. SetGrid and at
// least one AddRect are required.
func (w *Workload) ErrorUniversal2D(eps float64) (float64, error) {
	if w.gridW == 0 || w.gridH == 0 {
		return 0, fmt.Errorf("workload: no grid declared (SetGrid)")
	}
	if len(w.rects) == 0 {
		return 0, fmt.Errorf("workload: no rectangle queries")
	}
	grid, err := histo2d.New(w.gridW, w.gridH)
	if err != nil {
		return 0, err
	}
	perNode := core.NoiseVariance(grid.Sensitivity(), eps)
	side := grid.Side()
	total := 0.0
	for _, q := range w.rects {
		nodes := quadDecomposeCount(0, 0, side, q.X0, q.Y0, q.X1, q.Y1)
		total += q.Weight * float64(nodes) * perNode
	}
	return total, nil
}

// quadDecomposeCount counts the minimal quadtree nodes whose disjoint
// union is the rectangle's overlap with the square [x, x+size)^2 rooted
// at (x, y).
func quadDecomposeCount(x, y, size, x0, y0, x1, y1 int) int {
	ox0, oy0 := max(x0, x), max(y0, y)
	ox1, oy1 := min(x1, x+size), min(y1, y+size)
	if ox0 >= ox1 || oy0 >= oy1 {
		return 0
	}
	if ox0 == x && oy0 == y && ox1 == x+size && oy1 == y+size {
		return 1
	}
	half := size / 2
	return quadDecomposeCount(x, y, half, x0, y0, x1, y1) +
		quadDecomposeCount(x+half, y, half, x0, y0, x1, y1) +
		quadDecomposeCount(x, y+half, half, x0, y0, x1, y1) +
		quadDecomposeCount(x+half, y+half, half, x0, y0, x1, y1)
}

// PredictOptions controls which strategies PredictAll evaluates.
type PredictOptions struct {
	// Branchings lists the universal-tree fan-outs to evaluate
	// (default {2}).
	Branchings []int
	// HierarchySensitivity, when >= 1, enables the custom-hierarchy
	// strategy at that forest sensitivity.
	HierarchySensitivity float64
	// MaxExactLeaves caps the padded tree size for the exact universal
	// prediction; larger trees fall back to the H~ bound. 0 means the
	// package default. Serving paths use a low cap to keep prediction
	// cheap on the request path.
	MaxExactLeaves int
}

// canonicalOrder breaks exact ties deterministically: the serving
// strategies in their wire order, then the estimator-level names.
var canonicalOrder = map[Strategy]int{
	StrategyUniversal:      0,
	StrategyLaplace:        1,
	StrategyUnattributed:   2,
	StrategyWavelet:        3,
	StrategyDegreeSequence: 4,
	StrategyHierarchy:      5,
	StrategyUniversal2D:    6,
	StrategyHBar:           7,
	StrategyHTilde:         8,
}

// Rank sorts predictions in place: ascending predicted error, exact
// before bound at equal error (a bound may be loose, an exact figure is
// not), then canonical strategy order, then branching.
func Rank(preds []Prediction) {
	sort.SliceStable(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.Error != b.Error {
			return a.Error < b.Error
		}
		if a.Confidence != b.Confidence {
			return a.Confidence == ConfidenceExact
		}
		if canonicalOrder[a.Strategy] != canonicalOrder[b.Strategy] {
			return canonicalOrder[a.Strategy] < canonicalOrder[b.Strategy]
		}
		return a.Branching < b.Branching
	})
}

// PredictAll evaluates every serving strategy the workload has inputs
// for — the six 1-D strategies when range queries are present (hierarchy
// only when opt.HierarchySensitivity is set), universal2d when a grid
// and rectangle queries are present — and returns the predictions ranked
// best-first. At least one strategy must be evaluable.
func (w *Workload) PredictAll(eps float64, opt PredictOptions) ([]Prediction, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("workload: epsilon must be positive and finite, got %v", eps)
	}
	if len(w.queries) == 0 && len(w.rects) == 0 {
		return nil, fmt.Errorf("workload: empty workload")
	}
	var preds []Prediction
	if len(w.queries) > 0 {
		branchings := opt.Branchings
		if len(branchings) == 0 {
			branchings = []int{2}
		}
		maxLeaves := opt.MaxExactLeaves
		if maxLeaves <= 0 || maxLeaves > maxExactLeaves {
			maxLeaves = maxExactLeaves
		}
		for _, k := range branchings {
			p, err := w.predictUniversal(k, eps, maxLeaves)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		preds = append(preds,
			Prediction{Strategy: StrategyLaplace, Error: w.ErrorLaplace(eps), Confidence: ConfidenceExact},
			Prediction{Strategy: StrategyWavelet, Error: w.ErrorWavelet(eps), Confidence: ConfidenceExact},
			Prediction{Strategy: StrategyUnattributed, Error: w.ErrorSorted(eps), Confidence: ConfidenceBound},
			Prediction{Strategy: StrategyDegreeSequence, Error: w.ErrorSorted(eps), Confidence: ConfidenceBound},
		)
		if opt.HierarchySensitivity != 0 {
			e, err := w.ErrorHierarchy(opt.HierarchySensitivity, eps)
			if err != nil {
				return nil, err
			}
			preds = append(preds, Prediction{Strategy: StrategyHierarchy, Error: e, Confidence: ConfidenceBound})
		}
	}
	if len(w.rects) > 0 {
		e, err := w.ErrorUniversal2D(eps)
		if err != nil {
			return nil, err
		}
		preds = append(preds, Prediction{Strategy: StrategyUniversal2D, Error: e, Confidence: ConfidenceBound})
	}
	Rank(preds)
	return preds, nil
}

// predictUniversal predicts the universal (H-bar) strategy at branching
// k: the exact OLS variance when the padded tree has at most maxLeaves
// leaves, else the H~ upper bound (Theorem 4(ii)).
func (w *Workload) predictUniversal(k int, eps float64, maxLeaves int) (Prediction, error) {
	tree, err := htree.New(k, w.n)
	if err != nil {
		return Prediction{}, err
	}
	if tree.NumLeaves() <= maxLeaves {
		e, err := w.ErrorHBar(k, eps)
		if err == nil {
			return Prediction{Strategy: StrategyUniversal, Branching: k, Error: e, Confidence: ConfidenceExact}, nil
		}
		if !errors.Is(err, ErrDomainTooLarge) {
			return Prediction{}, err
		}
	}
	e, err := w.ErrorHTilde(k, eps)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Strategy: StrategyUniversal, Branching: k, Error: e, Confidence: ConfidenceBound}, nil
}
