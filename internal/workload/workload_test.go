package workload

import (
	"math"
	"testing"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

func TestNewAndAddValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero domain accepted")
	}
	w := MustNew(8)
	if err := w.Add(-1, 4, 1); err == nil {
		t.Error("negative lo accepted")
	}
	if err := w.Add(0, 9, 1); err == nil {
		t.Error("hi beyond domain accepted")
	}
	if err := w.Add(3, 3, 1); err == nil {
		t.Error("empty range accepted")
	}
	if err := w.Add(0, 4, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := w.Add(0, 4, 2); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 || w.Domain() != 8 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestAllRangesAndPrefixes(t *testing.T) {
	w, err := AllRanges(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 10 { // C(4,2)+4 = 10 non-empty ranges
		t.Fatalf("AllRanges(4) has %d queries, want 10", w.Len())
	}
	p, err := Prefixes(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("Prefixes(5) has %d queries", p.Len())
	}
	for _, q := range p.Queries() {
		if q.Lo != 0 {
			t.Fatal("prefix query does not start at 0")
		}
	}
}

func TestErrorLaplaceFormula(t *testing.T) {
	w := MustNew(16)
	_ = w.Add(0, 4, 1)  // width 4
	_ = w.Add(2, 10, 3) // width 8, weight 3
	const eps = 0.5
	want := (4*1.0 + 8*3.0) * 2 / (eps * eps)
	if got := w.ErrorLaplace(eps); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ErrorLaplace = %v, want %v", got, want)
	}
}

func TestErrorHTildeCountsSubtrees(t *testing.T) {
	w := MustNew(8)
	_ = w.Add(0, 8, 1) // the root: one subtree
	const eps = 1.0
	tree := htree.MustNew(2, 8)
	want := core.NoiseVariance(core.SensitivityH(tree), eps)
	got, err := w.ErrorHTilde(2, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("root query H~ error %v, want one node's variance %v", got, want)
	}
}

// The exact H-bar prediction must match Monte Carlo measurement.
func TestErrorHBarMatchesMonteCarlo(t *testing.T) {
	const n, eps, trials = 32, 1.0, 3000
	w := MustNew(n)
	ranges := [][2]int{{0, 32}, {5, 9}, {0, 16}, {17, 31}, {12, 13}}
	for _, r := range ranges {
		_ = w.Add(r[0], r[1], 1)
	}
	predicted, err := w.ErrorHBar(2, eps)
	if err != nil {
		t.Fatal(err)
	}
	tree := htree.MustNew(2, n)
	unit := make([]float64, n) // zero data: error is pure noise, truth 0
	var acc stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		htilde := core.ReleaseTree(tree, unit, eps, laplace.Stream(3, trial))
		hbar := core.InferTree(tree, htilde)
		sum := 0.0
		for _, r := range ranges {
			v := tree.RangeSum(hbar, r[0], r[1])
			sum += v * v
		}
		acc.Add(sum)
	}
	measured := acc.Mean()
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.1 {
		t.Fatalf("H-bar prediction %v vs Monte Carlo %v (rel %v)", predicted, measured, rel)
	}
}

func TestErrorHBarNeverWorseThanHTilde(t *testing.T) {
	w, err := AllRanges(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		ht, err := w.ErrorHTilde(k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := w.ErrorHBar(k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if hb > ht {
			t.Fatalf("k=%d: H-bar prediction %v exceeds H~ %v", k, hb, ht)
		}
	}
}

func TestErrorHBarDomainLimit(t *testing.T) {
	w := MustNew(4096)
	_ = w.Add(0, 4096, 1)
	if _, err := w.ErrorHBar(2, 1.0); err == nil {
		t.Fatal("oversized exact computation accepted")
	}
}

// The advisor reproduces the Figure 6 crossover: point queries favor L~,
// wide queries favor the hierarchy.
func TestRecommendCrossover(t *testing.T) {
	const n = 256
	points := MustNew(n)
	for i := 0; i < n; i++ {
		_ = points.Add(i, i+1, 1)
	}
	best, _, err := points.Recommend(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != StrategyLaplace {
		t.Fatalf("point workload recommended %v, want laplace", best.Strategy)
	}

	// Wide queries on a larger domain: 3/4-width ranges sit far past the
	// crossover, so the hierarchy with inference must win.
	const wn = 1024
	wide := MustNew(wn)
	for i := 0; i < 50; i++ {
		lo := (i * 5) % (wn / 4)
		_ = wide.Add(lo, lo+3*wn/4, 1)
	}
	best, all, err := wide.Recommend(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != StrategyHBar {
		t.Fatalf("wide workload recommended %+v (all %+v), want hbar", best, all)
	}
}

func TestRecommendEmptyWorkload(t *testing.T) {
	w := MustNew(4)
	if _, _, err := w.Recommend(1.0); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestRecommendFallsBackOnLargeDomains(t *testing.T) {
	w := MustNew(1 << 14)
	_ = w.Add(0, 1<<14, 1)
	best, all, err := w.Recommend(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// H-bar falls back to the H~ bound; the full-domain query is one
	// subtree, so the hierarchy wins over L~'s 16384 unit variances.
	if best.Strategy == StrategyLaplace {
		t.Fatalf("full-domain query recommended laplace: %+v", all)
	}
}

func TestQueriesReturnsCopy(t *testing.T) {
	w := MustNew(8)
	_ = w.Add(0, 4, 1)
	qs := w.Queries()
	qs[0].Weight = 99
	if w.Queries()[0].Weight == 99 {
		t.Fatal("Queries aliases internal state")
	}
}
