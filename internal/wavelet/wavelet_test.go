package wavelet

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
)

func TestDecomposeRejectsEmpty(t *testing.T) {
	if _, err := Decompose(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 9))
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 100} {
		unit := make([]float64, n)
		for i := range unit {
			unit[i] = math.Round(rng.NormFloat64() * 50)
		}
		tr, err := Decompose(unit)
		if err != nil {
			t.Fatal(err)
		}
		back := tr.Reconstruct()
		if len(back) != n {
			t.Fatalf("n=%d: reconstructed length %d", n, len(back))
		}
		for i := range unit {
			if math.Abs(back[i]-unit[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip lost data at %d: %v vs %v", n, i, back[i], unit[i])
			}
		}
	}
}

func TestKnownTransform(t *testing.T) {
	// unit = [3, 1]: base = mean = 2, detail = (3-1)/2 = 1.
	tr, err := Decompose([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Coefficients()
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("coefficients = %v, want [2 1]", c)
	}
}

func TestPadding(t *testing.T) {
	tr, err := Decompose([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 4 || tr.Domain() != 3 {
		t.Fatalf("n=%d domain=%d", tr.N(), tr.Domain())
	}
}

func TestGeneralizedSensitivity(t *testing.T) {
	tr, _ := Decompose(make([]float64, 1024))
	if got := tr.GeneralizedSensitivity(); got != 11 {
		t.Fatalf("rho = %v, want 11 for n=1024", got)
	}
}

func TestPerturbRejectsBadEpsilon(t *testing.T) {
	tr, _ := Decompose([]float64{1, 2})
	for _, eps := range []float64{0, -1, math.Inf(1)} {
		if _, err := tr.Perturb(eps, laplace.NewRand(1, 1)); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestPerturbDeterministicAndUnbiased(t *testing.T) {
	unit := []float64{10, 0, 0, 30, 2, 2, 2, 2}
	tr, _ := Decompose(unit)
	a, _ := tr.Perturb(1.0, laplace.Stream(5, 3))
	b, _ := tr.Perturb(1.0, laplace.Stream(5, 3))
	for i := range a.coeffs {
		if a.coeffs[i] != b.coeffs[i] {
			t.Fatal("same stream, different noise")
		}
	}
	// Unbiasedness of reconstructed counts.
	const trials = 4000
	mean := make([]float64, len(unit))
	for trial := 0; trial < trials; trial++ {
		noisy, err := tr.Perturb(1.0, laplace.Stream(17, trial))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range noisy.Reconstruct() {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= trials
		if math.Abs(mean[i]-unit[i]) > 1.5 {
			t.Fatalf("position %d biased: %v vs %v", i, mean[i], unit[i])
		}
	}
}

func TestRangeSumMatchesTruthWithoutNoise(t *testing.T) {
	unit := []float64{1, 2, 3, 4, 5}
	tr, _ := Decompose(unit)
	got, err := tr.RangeSum(1, 4)
	if err != nil || math.Abs(got-9) > 1e-9 {
		t.Fatalf("RangeSum = %v, %v; want 9", got, err)
	}
	for _, r := range [][2]int{{-1, 2}, {0, 6}, {3, 3}} {
		if _, err := tr.RangeSum(r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[1])
		}
	}
}

func TestReleaseEndToEnd(t *testing.T) {
	unit := make([]float64, 64)
	unit[10] = 100
	got, err := Release(unit, 1.0, laplace.Stream(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("length %d", len(got))
	}
	if _, err := Release(nil, 1.0, laplace.Stream(2, 0)); err == nil {
		t.Fatal("empty release accepted")
	}
}

// Li et al. (PODS 2010): the wavelet technique's error is equivalent to a
// binary H query. Check the orders match: mean squared range-query error
// of the wavelet release stays within a small constant factor of the
// noisy binary tree H~ on the same workload.
func TestErrorEquivalentToBinaryHTree(t *testing.T) {
	const n, eps, trials = 256, 1.0, 120
	rngData := rand.New(rand.NewPCG(3, 1))
	unit := make([]float64, n)
	for i := range unit {
		unit[i] = float64(rngData.IntN(20))
	}
	tree := htree.MustNew(2, n)
	tr, _ := Decompose(unit)

	type query struct{ lo, hi int }
	queries := make([]query, 50)
	qr := rand.New(rand.NewPCG(4, 4))
	for i := range queries {
		lo := qr.IntN(n - 1)
		hi := lo + 1 + qr.IntN(n-lo-1)
		queries[i] = query{lo, hi}
	}
	truth := func(q query) float64 {
		s := 0.0
		for i := q.lo; i < q.hi; i++ {
			s += unit[i]
		}
		return s
	}
	var errWavelet, errTree float64
	for trial := 0; trial < trials; trial++ {
		noisyW, err := tr.Perturb(eps, laplace.Stream(100, trial))
		if err != nil {
			t.Fatal(err)
		}
		recon := noisyW.Reconstruct()
		prefix := make([]float64, n+1)
		for i, v := range recon {
			prefix[i+1] = prefix[i] + v
		}
		htilde := core.ReleaseTree(tree, unit, eps, laplace.Stream(200, trial))
		for _, q := range queries {
			tw := prefix[q.hi] - prefix[q.lo]
			th := core.TreeRangeHTilde(tree, htilde, q.lo, q.hi)
			want := truth(q)
			errWavelet += (tw - want) * (tw - want)
			errTree += (th - want) * (th - want)
		}
	}

	// Same poly-logarithmic order as the binary tree (constants differ:
	// the wavelet's boundary coefficients carry less variance than two
	// full-noise tree nodes per level, so it lands a small factor below
	// on random ranges; Li et al.'s exact equivalence is for the total
	// error over the complete range workload).
	ratio := errWavelet / errTree
	if ratio > 4 || ratio < 0.05 {
		t.Fatalf("wavelet/tree error ratio %v outside [0.05, 4]", ratio)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		unit := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			unit[i] = 1000 * math.Tanh(v/1000)
		}
		tr, err := Decompose(unit)
		if err != nil {
			return false
		}
		back := tr.Reconstruct()
		for i := range unit {
			if math.Abs(back[i]-unit[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	unit := make([]float64, 1<<15)
	for i := range unit {
		unit[i] = float64(i % 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(unit); err != nil {
			b.Fatal(err)
		}
	}
}
