// Package wavelet implements the Haar-wavelet mechanism for range-count
// queries (Privelet; Xiao, Wang, Gehrke: "Differential Privacy via
// Wavelet Transforms", ICDE 2010). Section 6 of Hay et al. notes this
// technique is "conceptually similar to the H query" and Li et al. (PODS
// 2010) showed its error is equivalent to a binary H query; the package
// exists as the independent comparator for that claim.
//
// Coefficient layout for a domain padded to n = 2^h leaves:
//
//	c[0]        the base coefficient, the mean of all unit counts
//	c[1..n-1]   detail coefficients of the implicit complete binary tree
//	            in heap order: node i has children 2i and 2i+1, covers
//	            size(i) = n/2^depth(i) leaves, and
//	            c[i] = (sum(left half) - sum(right half)) / size(i).
//
// Adding one record changes c[0] by 1/n and each of the log2(n) ancestor
// details by 1/size; weighting coefficient i by W(i) = size(i) (and W(0)
// = n) gives generalized sensitivity rho = 1 + log2(n), so coefficient i
// receives Lap(rho/(eps*W(i))) noise.
package wavelet

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/laplace"
)

// Transform is a Haar decomposition of a unit-count vector over a
// power-of-two domain.
type Transform struct {
	n      int       // padded domain size, power of two
	domain int       // real domain size before padding
	coeffs []float64 // layout described in the package comment
}

// Decompose computes the Haar transform of the unit counts, padding the
// domain with zeros to the next power of two. It returns an error on an
// empty input.
func Decompose(unit []float64) (*Transform, error) {
	if len(unit) == 0 {
		return nil, fmt.Errorf("wavelet: empty input")
	}
	n := 1
	for n < len(unit) {
		n *= 2
	}
	// Segment-tree sums: leaves at [n, 2n), internal nodes at [1, n).
	sums := make([]float64, 2*n)
	copy(sums[n:], unit)
	for i := n - 1; i >= 1; i-- {
		sums[i] = sums[2*i] + sums[2*i+1]
	}
	coeffs := make([]float64, n)
	coeffs[0] = sums[1] / float64(n)
	for i := 1; i < n; i++ {
		coeffs[i] = (sums[2*i] - sums[2*i+1]) / float64(size(n, i))
	}
	return &Transform{n: n, domain: len(unit), coeffs: coeffs}, nil
}

// size returns the number of leaves under heap node i in a tree with n
// leaves.
func size(n, i int) int {
	s := n
	for i > 1 {
		i /= 2
		s /= 2
	}
	return s
}

// N returns the padded domain size.
func (t *Transform) N() int { return t.n }

// Domain returns the real (unpadded) domain size.
func (t *Transform) Domain() int { return t.domain }

// Coefficients returns a copy of the coefficient vector.
func (t *Transform) Coefficients() []float64 {
	return append([]float64(nil), t.coeffs...)
}

// GeneralizedSensitivity returns rho = 1 + log2(n), the weighted L1
// sensitivity of the Haar coefficients under the weights W(i) = size(i).
func (t *Transform) GeneralizedSensitivity() float64 {
	return 1 + math.Log2(float64(t.n))
}

// Perturb returns a new Transform whose coefficients carry the
// level-weighted Laplace noise making the release eps-differentially
// private: coefficient i gains Lap(rho/(eps*W(i))).
func (t *Transform) Perturb(eps float64, src *rand.Rand) (*Transform, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("wavelet: epsilon must be positive and finite, got %v", eps)
	}
	rho := t.GeneralizedSensitivity()
	out := &Transform{n: t.n, domain: t.domain, coeffs: make([]float64, t.n)}
	base := laplace.New(0, rho/(eps*float64(t.n)))
	out.coeffs[0] = t.coeffs[0] + base.Rand(src)
	for i := 1; i < t.n; i++ {
		d := laplace.New(0, rho/(eps*float64(size(t.n, i))))
		out.coeffs[i] = t.coeffs[i] + d.Rand(src)
	}
	return out, nil
}

// Reconstruct inverts the transform, returning unit counts over the real
// domain (padding removed).
func (t *Transform) Reconstruct() []float64 {
	// Top-down averages: avg(left) = avg(v) + c[v], avg(right) = avg(v) - c[v].
	avg := make([]float64, 2*t.n)
	avg[1] = t.coeffs[0]
	for i := 1; i < t.n; i++ {
		avg[2*i] = avg[i] + t.coeffs[i]
		avg[2*i+1] = avg[i] - t.coeffs[i]
	}
	return append([]float64(nil), avg[t.n:t.n+t.domain]...)
}

// RangeSum answers the half-open range [lo, hi) from the reconstructed
// counts. For repeated queries over one release, reconstruct once and
// keep prefix sums instead.
func (t *Transform) RangeSum(lo, hi int) (float64, error) {
	if lo < 0 || hi > t.domain || lo >= hi {
		return 0, fmt.Errorf("wavelet: bad range [%d,%d) for domain %d", lo, hi, t.domain)
	}
	unit := t.Reconstruct()
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += unit[i]
	}
	return sum, nil
}

// Release is the end-to-end mechanism: decompose the unit counts, add
// level-weighted noise for eps-differential privacy, and return the
// reconstructed noisy counts over the real domain.
func Release(unit []float64, eps float64, src *rand.Rand) ([]float64, error) {
	t, err := Decompose(unit)
	if err != nil {
		return nil, err
	}
	noisy, err := t.Perturb(eps, src)
	if err != nil {
		return nil, err
	}
	return noisy.Reconstruct(), nil
}
