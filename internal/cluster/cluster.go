// Package cluster scales the read path horizontally: a consistent-hash
// ring assigns each namespace to one primary shard, and a Router
// exposes the public read API, fanning reads out across that shard's
// replicas with retry-next-replica on failure. Releases are immutable
// once minted and replication ships them already noised, so replicas
// need no coordination to serve bit-identical answers — the router
// only has to pick a live one.
//
// Routing rules:
//
//   - The namespace is taken from the /v1/ns/{ns}/ path segment
//     (default namespace otherwise) and hashed onto the ring; all
//     traffic for one namespace lands on one shard.
//   - Reads — every GET, plus POST bodies to .../query and
//     .../query2d — rotate across the shard's replicas, falling back
//     to the primary last, and retry the next candidate on a transport
//     error or 5xx. 4xx answers are the caller's problem and are
//     never retried.
//   - Everything else (minting, ingest, deletes, /v1/repl/*) goes to
//     the primary only: writes must not be retried blindly, and only
//     the primary can accept them.
//
// The router holds no histogram state and spends no budget; it can be
// restarted freely and run in multiple copies behind one load
// balancer.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Shard is one primary and its read replicas.
type Shard struct {
	// Name labels the shard in stats; empty defaults to the primary URL.
	Name string `json:"name"`
	// Primary is the primary server's base URL.
	Primary string `json:"primary"`
	// Replicas are the base URLs of the shard's followers; may be empty,
	// in which case the primary serves its own reads.
	Replicas []string `json:"replicas"`
}

// defaultVnodes is how many ring points each shard gets when NewRing is
// given 0: enough that namespace keyspace splits stay within a few
// percent of even for small clusters.
const defaultVnodes = 64

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring consistently hashes namespaces across shards: each shard owns
// vnodes pseudo-random points on a 64-bit circle, and a namespace
// belongs to the shard owning the first point at or after its hash.
// Adding or removing one shard moves only ~1/n of the namespaces.
// Immutable after construction; safe for concurrent use.
type Ring struct {
	shards []Shard
	points []ringPoint
}

// NewRing builds a ring over the given shards with vnodes points per
// shard (0 means 64).
func NewRing(shards []Shard, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{
		shards: append([]Shard(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		if sh.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
		for _, addr := range append([]string{sh.Primary}, sh.Replicas...) {
			u, err := url.Parse(addr)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("cluster: %q is not an absolute URL", addr)
			}
		}
		sh.Primary = strings.TrimRight(sh.Primary, "/")
		for j, rep := range sh.Replicas {
			sh.Replicas[j] = strings.TrimRight(rep, "/")
		}
		if sh.Name == "" {
			sh.Name = sh.Primary
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnvHash(fmt.Sprintf("%s#%d", sh.Primary, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard // deterministic on (unlikely) ties
	})
	return r, nil
}

// Shard returns the shard owning the namespace.
func (r *Ring) Shard(ns string) *Shard {
	h := fnvHash(ns)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point the circle starts over
	}
	return &r.shards[r.points[i].shard]
}

// Shards returns the ring's shards in construction order.
func (r *Ring) Shards() []Shard { return r.shards }

// fnvHash is FNV-1a over the string — the same cheap non-cryptographic
// hash the store uses for shard selection.
func fnvHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// maxProxyBody caps buffered request bodies, matching the backend
// server's own request cap: the router buffers bodies so a failed read
// can be replayed against the next replica.
const maxProxyBody = 4 << 20

// Router is the http.Handler fronting a ring. Safe for concurrent use.
type Router struct {
	ring   *Ring
	client *http.Client
	start  time.Time

	rr        atomic.Uint64 // round-robin cursor for replica rotation
	reqTotal  atomic.Int64
	reqErrors atomic.Int64
	retries   atomic.Int64 // candidate failures that moved to the next one
}

// NewRouter returns a router over the ring. A nil client uses a
// default with a 30-second timeout — bounded, unlike
// http.DefaultClient, so one hung backend cannot pin router goroutines
// forever — and a deep idle-connection pool per backend: a router
// funnels many concurrent clients onto few hosts, where the standard
// transport's 2 idle connections per host would churn TCP setup on
// every burst.
func NewRouter(ring *Ring, client *http.Client) *Router {
	if client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = 64
		client = &http.Client{Timeout: 30 * time.Second, Transport: transport}
	}
	return &Router{ring: ring, client: client, start: time.Now()}
}

// namespaceOf extracts the namespace a request addresses from its
// path: the {ns} segment of /v1/ns/{ns}/..., the default namespace
// otherwise. The segment is percent-unescaped the same way the
// backend's route matching does, so both sides hash the same name.
func namespaceOf(path string) string {
	const prefix = "/v1/ns/"
	if !strings.HasPrefix(path, prefix) {
		return "default"
	}
	seg, _, _ := strings.Cut(path[len(prefix):], "/")
	if ns, err := url.PathUnescape(seg); err == nil {
		return ns
	}
	return seg
}

// isFanoutRead reports whether the request may be served by any
// replica: every GET/HEAD except the replication surface (which only
// the primary's own log can answer authoritatively), plus the POST
// query bodies — reads in write clothing.
func isFanoutRead(r *http.Request) bool {
	if strings.HasPrefix(r.URL.Path, "/v1/repl/") {
		return false
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return true
	case http.MethodPost:
		return strings.HasSuffix(r.URL.Path, "/query") || strings.HasSuffix(r.URL.Path, "/query2d")
	}
	return false
}

// Handler returns the router's routes: the shard proxy for everything,
// with /healthz and /v1/stats answered locally.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "router"})
	})
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("/", rt.route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.reqTotal.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(rec, r)
		if rec.status >= 400 {
			rt.reqErrors.Add(1)
		}
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush lets proxied streaming responses (a primary's replication
// stream fetched through the router) keep flowing record by record
// instead of buffering until the backend hangs up.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routerStats is the router's own GET /v1/stats payload.
type routerStats struct {
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      struct {
		Total   int64 `json:"total"`
		Errors  int64 `json:"errors"`
		Retries int64 `json:"retries"`
	} `json:"requests"`
	Shards []Shard `json:"shards"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := routerStats{
		Role:          "router",
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Shards:        rt.ring.Shards(),
	}
	stats.Requests.Total = rt.reqTotal.Load()
	stats.Requests.Errors = rt.reqErrors.Load()
	stats.Requests.Retries = rt.retries.Load()
	writeJSON(w, http.StatusOK, stats)
}

// route picks the shard for the request's namespace and proxies:
// fan-out reads walk the replica rotation (primary last), everything
// else goes to the primary alone.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	shard := rt.ring.Shard(namespaceOf(r.URL.Path))
	var candidates []string
	if isFanoutRead(r) && len(shard.Replicas) > 0 {
		// Rotate the starting replica per request so load spreads, keep
		// the primary as the candidate of last resort.
		start := int(rt.rr.Add(1)-1) % len(shard.Replicas)
		for i := 0; i < len(shard.Replicas); i++ {
			candidates = append(candidates, shard.Replicas[(start+i)%len(shard.Replicas)])
		}
		candidates = append(candidates, shard.Primary)
	} else {
		candidates = []string{shard.Primary}
	}
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
			return
		}
	}
	var lastErr error
	for i, target := range candidates {
		if i > 0 {
			rt.retries.Add(1)
		}
		served, err := rt.forward(w, r, target, body)
		if served {
			return
		}
		lastErr = err
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": fmt.Sprintf("all %d candidates failed, last: %v", len(candidates), lastErr),
	})
}

// forward proxies the request to one backend. It reports served=true
// once any bytes have been committed to the client — after that a
// failure cannot be retried — and served=false with the error when the
// candidate failed cleanly (transport error or 5xx) before commitment.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, target string, body []byte) (served bool, err error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("Accept", r.Header.Get("Accept"))
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		// A sick backend: drain enough to reuse the connection and let
		// the caller try the next candidate.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("%s answered HTTP %d", target, resp.StatusCode)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
