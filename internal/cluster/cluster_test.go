package cluster

// Ring and router tests: hashing determinism and coverage, fan-out
// with retry-next-replica, write pinning to the primary, and the
// 4xx-pass-through rule.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRingDeterminismAndCoverage(t *testing.T) {
	shards := []Shard{
		{Primary: "http://a:8080", Replicas: []string{"http://a1:8081"}},
		{Primary: "http://b:8080"},
		{Primary: "http://c:8080"},
	}
	r1, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 3000; i++ {
		ns := fmt.Sprintf("tenant-%d", i)
		sh := r1.Shard(ns)
		if sh2 := r2.Shard(ns); sh2.Primary != sh.Primary {
			t.Fatalf("ns %q: ring1 → %s, ring2 → %s", ns, sh.Primary, sh2.Primary)
		}
		hits[sh.Primary]++
	}
	if len(hits) != len(shards) {
		t.Fatalf("only %d of %d shards own namespaces: %v", len(hits), len(shards), hits)
	}
	for primary, n := range hits {
		// 64 vnodes keeps splits loose but no shard should be starved or
		// hog the keyspace.
		if n < 300 || n > 2000 {
			t.Fatalf("shard %s owns %d of 3000 namespaces, wildly uneven: %v", primary, n, hits)
		}
	}
	// A namespace's shard only moves if its owner changed: removing one
	// shard must not reshuffle everything.
	r3, err := NewRing(shards[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 3000; i++ {
		ns := fmt.Sprintf("tenant-%d", i)
		before, after := r1.Shard(ns), r3.Shard(ns)
		if before.Primary != after.Primary {
			if before.Primary != "http://c:8080" {
				t.Fatalf("ns %q moved from surviving shard %s to %s", ns, before.Primary, after.Primary)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removing a shard moved no namespaces")
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]Shard{{Primary: "not-a-url"}}, 0); err == nil {
		t.Fatal("relative primary URL accepted")
	}
	if _, err := NewRing([]Shard{{Primary: "http://a", Replicas: []string{"nope"}}}, 0); err == nil {
		t.Fatal("relative replica URL accepted")
	}
}

// backend is a scripted upstream that records which paths hit it.
type backend struct {
	ts   *httptest.Server
	hits atomic.Int64
	fail atomic.Bool // when set, answer 500
}

func newBackend(t *testing.T, label string) *backend {
	t.Helper()
	b := &backend{}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if b.fail.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		if strings.HasSuffix(r.URL.Path, "/missing") {
			http.Error(w, "no such release", http.StatusNotFound)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"served_by": label, "method": r.Method, "path": r.URL.Path, "body_len": len(body),
		})
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func routerFor(t *testing.T, primary *backend, replicas ...*backend) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, b := range replicas {
		urls[i] = b.ts.URL
	}
	ring, err := NewRing([]Shard{{Primary: primary.ts.URL, Replicas: urls}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(ring, nil)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func servedBy(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var out struct {
		ServedBy string `json:"served_by"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ServedBy
}

func TestRouterFanoutAndFailover(t *testing.T) {
	primary := newBackend(t, "primary")
	rep1, rep2 := newBackend(t, "rep1"), newBackend(t, "rep2")
	rt, ts := routerFor(t, primary, rep1, rep2)

	// Healthy fan-out: reads spread across the replicas, never the primary.
	served := map[string]int{}
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/v1/releases/traffic")
		if err != nil {
			t.Fatal(err)
		}
		served[servedBy(t, resp)]++
	}
	if served["primary"] != 0 || served["rep1"] == 0 || served["rep2"] == 0 {
		t.Fatalf("healthy fan-out hit %v", served)
	}

	// One replica dies: reads keep succeeding via retry-next.
	rep1.fail.Store(true)
	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL + "/v1/releases/traffic")
		if err != nil {
			t.Fatal(err)
		}
		if by := servedBy(t, resp); by != "rep2" {
			t.Fatalf("with rep1 sick, served by %q", by)
		}
	}
	if rt.retries.Load() == 0 {
		t.Fatal("failover happened with no retry counted")
	}

	// Both replicas die: the primary is the candidate of last resort.
	rep2.fail.Store(true)
	resp, err := http.Get(ts.URL + "/v1/releases/traffic")
	if err != nil {
		t.Fatal(err)
	}
	if by := servedBy(t, resp); by != "primary" {
		t.Fatalf("with all replicas sick, served by %q", by)
	}

	// Everything dies: 502 naming the failure.
	primary.fail.Store(true)
	resp, err = http.Get(ts.URL + "/v1/releases/traffic")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all backends sick: HTTP %d, want 502", resp.StatusCode)
	}
}

func TestRouterWritesPinToPrimary(t *testing.T) {
	primary := newBackend(t, "primary")
	rep := newBackend(t, "rep")
	_, ts := routerFor(t, primary, rep)
	for _, path := range []string{"/v1/releases", "/v1/ingest", "/v1/ns/tenant-a/releases"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"x":1}`))
		if err != nil {
			t.Fatal(err)
		}
		if by := servedBy(t, resp); by != "primary" {
			t.Fatalf("POST %s served by %q, want primary", path, by)
		}
	}
	// POST query bodies are reads in write clothing: they fan out.
	resp, err := http.Post(ts.URL+"/v1/releases/traffic/query", "application/json", strings.NewReader(`{"ranges":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if by := servedBy(t, resp); by != "rep" {
		t.Fatalf("POST query served by %q, want the replica", by)
	}
	if rep.hits.Load() != 1 || primary.hits.Load() != 3 {
		t.Fatalf("hit split rep=%d primary=%d", rep.hits.Load(), primary.hits.Load())
	}
}

func TestRouterDoesNotRetry4xx(t *testing.T) {
	primary := newBackend(t, "primary")
	rep := newBackend(t, "rep")
	rt, ts := routerFor(t, primary, rep)
	resp, err := http.Get(ts.URL + "/v1/releases/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want the backend's 404 passed through", resp.StatusCode)
	}
	if got := rt.retries.Load(); got != 0 {
		t.Fatalf("a 4xx answer was retried %d times", got)
	}
	if primary.hits.Load() != 0 {
		t.Fatal("a 4xx fan-out read leaked to the primary")
	}
}

func TestRouterLocalEndpoints(t *testing.T) {
	primary := newBackend(t, "primary")
	_, ts := routerFor(t, primary)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats routerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Role != "router" || len(stats.Shards) != 1 {
		t.Fatalf("router stats = %+v", stats)
	}
	if primary.hits.Load() != 0 {
		t.Fatal("/v1/stats was proxied instead of answered locally")
	}
}

func TestNamespaceOf(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/releases/traffic":     "default",
		"/v1/budget":               "default",
		"/v1/ns/tenant-a/releases": "tenant-a",
		"/v1/ns/tenant-a/budget":   "tenant-a",
		"/v1/ns/sp%20ace/releases": "sp ace",
		"/v1/ns/solo":              "solo",
	} {
		if got := namespaceOf(path); got != want {
			t.Fatalf("namespaceOf(%q) = %q, want %q", path, got, want)
		}
	}
}
