// Package laplace implements the Laplace (double-exponential) distribution
// used by the Laplace mechanism of differential privacy (Dwork et al.,
// "Calibrating Noise to Sensitivity in Private Data Analysis", TCC 2006).
//
// The package provides deterministic, seedable sampling so that every
// experiment in this repository is reproducible, together with the usual
// distribution functions (PDF, CDF, quantile) and moments.
package laplace

import (
	"errors"
	"math"
	"math/rand/v2"
)

// Dist is a zero-or-nonzero-mean Laplace distribution with scale b > 0.
// Its density is f(x) = exp(-|x-mu|/b) / (2b).
type Dist struct {
	Mu    float64 // location (mean)
	Scale float64 // scale b; variance is 2*b^2
}

// New returns the Laplace distribution with location mu and scale b.
// It panics if scale is not strictly positive or not finite; callers that
// need error handling should validate the scale themselves (see Valid).
func New(mu, scale float64) Dist {
	d := Dist{Mu: mu, Scale: scale}
	if err := d.Valid(); err != nil {
		panic("laplace: " + err.Error())
	}
	return d
}

// ErrBadScale reports a non-positive or non-finite scale parameter.
var ErrBadScale = errors.New("scale must be positive and finite")

// Valid reports whether the distribution parameters are usable.
func (d Dist) Valid() error {
	if !(d.Scale > 0) || math.IsInf(d.Scale, 0) || math.IsNaN(d.Mu) {
		return ErrBadScale
	}
	return nil
}

// PDF returns the probability density at x.
func (d Dist) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x-d.Mu)/d.Scale) / (2 * d.Scale)
}

// LogPDF returns the natural logarithm of the density at x.
func (d Dist) LogPDF(x float64) float64 {
	return -math.Abs(x-d.Mu)/d.Scale - math.Log(2*d.Scale)
}

// CDF returns P(X <= x).
func (d Dist) CDF(x float64) float64 {
	z := (x - d.Mu) / d.Scale
	if z < 0 {
		return 0.5 * math.Exp(z)
	}
	return 1 - 0.5*math.Exp(-z)
}

// Quantile returns the value x such that CDF(x) = p. It panics unless
// 0 < p < 1.
func (d Dist) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("laplace: quantile requires 0 < p < 1")
	}
	if p < 0.5 {
		return d.Mu + d.Scale*math.Log(2*p)
	}
	return d.Mu - d.Scale*math.Log(2*(1-p))
}

// Mean returns the distribution mean.
func (d Dist) Mean() float64 { return d.Mu }

// Variance returns the distribution variance, 2*Scale^2.
func (d Dist) Variance() float64 { return 2 * d.Scale * d.Scale }

// Rand draws one sample using src. Sampling uses the standard inverse-CDF
// construction: with U uniform on (-1/2, 1/2],
//
//	X = mu - b * sign(U) * ln(1 - 2|U|).
func (d Dist) Rand(src *rand.Rand) float64 {
	// Draw u in (-0.5, 0.5]. Float64 returns [0,1); shifting gives
	// [-0.5, 0.5). Rejecting -0.5 keeps log's argument positive.
	for {
		u := src.Float64() - 0.5
		if u == -0.5 {
			continue
		}
		if u < 0 {
			return d.Mu + d.Scale*math.Log1p(2*u)
		}
		return d.Mu - d.Scale*math.Log1p(-2*u)
	}
}

// Fill overwrites dst with independent samples drawn using src.
func (d Dist) Fill(dst []float64, src *rand.Rand) {
	for i := range dst {
		dst[i] = d.Rand(src)
	}
}

// Sample returns n fresh independent samples drawn using src.
func (d Dist) Sample(n int, src *rand.Rand) []float64 {
	out := make([]float64, n)
	d.Fill(out, src)
	return out
}
