package laplace

import "math/rand/v2"

// NewRand returns a deterministic PRNG seeded from the two words. All
// randomness in this repository flows through sources constructed here so
// that experiments are reproducible.
func NewRand(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// Stream derives an independent PRNG for a numbered trial of a named
// experiment. Distinct (seed, trial) pairs yield streams that do not
// overlap in practice (PCG with distinct increments).
func Stream(seed uint64, trial int) *rand.Rand {
	// SplitMix64-style scrambling of the trial index keeps nearby trial
	// numbers from producing correlated PCG states.
	x := uint64(trial) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return rand.New(rand.NewPCG(seed, x|1))
}
