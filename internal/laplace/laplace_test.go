package laplace

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadScale(t *testing.T) {
	for _, scale := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(0, %v) did not panic", scale)
				}
			}()
			New(0, scale)
		}()
	}
}

func TestValid(t *testing.T) {
	if err := (Dist{Mu: 0, Scale: 1}).Valid(); err != nil {
		t.Fatalf("valid dist reported error: %v", err)
	}
	if err := (Dist{Mu: 0, Scale: 0}).Valid(); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := (Dist{Mu: math.NaN(), Scale: 1}).Valid(); err == nil {
		t.Fatal("NaN mean accepted")
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	d := New(1.5, 2.0)
	const step = 1e-3
	sum := 0.0
	for x := -40.0; x < 40.0; x += step {
		sum += d.PDF(x) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("PDF integrates to %v, want 1", sum)
	}
}

func TestCDFMatchesNumericIntegral(t *testing.T) {
	d := New(-0.5, 1.3)
	const step = 1e-3
	sum := 0.0
	for x := -30.0; x < 5.0; x += step {
		sum += d.PDF(x) * step
		if got := d.CDF(x + step); math.Abs(got-sum) > 2e-3 {
			t.Fatalf("CDF(%v) = %v, numeric integral %v", x+step, got, sum)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	d := New(2, 0.7)
	if got := d.CDF(2); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF at mean = %v, want 0.5", got)
	}
	if d.CDF(-1e9) > 1e-12 || d.CDF(1e9) < 1-1e-12 {
		t.Error("CDF tails do not approach 0/1")
	}
	prev := -1.0
	for x := -10.0; x <= 10; x += 0.25 {
		if c := d.CDF(x); c < prev {
			t.Fatalf("CDF not monotone at %v", x)
		} else {
			prev = c
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := New(0.3, 2.2)
	for _, p := range []float64{1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-6} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestQuantilePanicsOutsideOpenInterval(t *testing.T) {
	d := New(0, 1)
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			d.Quantile(p)
		}()
	}
}

func TestLogPDFConsistent(t *testing.T) {
	d := New(0, 3)
	for x := -20.0; x <= 20; x += 0.5 {
		if got, want := d.LogPDF(x), math.Log(d.PDF(x)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSampleMomentsAndSymmetry(t *testing.T) {
	d := New(0, 1.0/0.1) // the eps=0.1 regime used in the experiments
	src := NewRand(7, 11)
	const n = 400000
	var sum, sumSq float64
	neg := 0
	for i := 0; i < n; i++ {
		x := d.Rand(src)
		sum += x
		sumSq += x * x
		if x < 0 {
			neg++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.15 {
		t.Errorf("sample mean %v too far from 0", mean)
	}
	if rel := math.Abs(variance-d.Variance()) / d.Variance(); rel > 0.02 {
		t.Errorf("sample variance %v, want %v (rel err %v)", variance, d.Variance(), rel)
	}
	if frac := float64(neg) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("negative fraction %v, want 0.5", frac)
	}
}

func TestSampleQuantilesMatchCDF(t *testing.T) {
	d := New(0, 2)
	src := NewRand(3, 5)
	const n = 200000
	count := 0
	threshold := d.Quantile(0.9)
	for i := 0; i < n; i++ {
		if d.Rand(src) <= threshold {
			count++
		}
	}
	if frac := float64(count) / n; math.Abs(frac-0.9) > 0.01 {
		t.Errorf("empirical CDF at q90 = %v", frac)
	}
}

func TestDeterminismAcrossStreams(t *testing.T) {
	d := New(0, 1)
	a := d.Sample(64, Stream(42, 3))
	b := d.Sample(64, Stream(42, 3))
	c := d.Sample(64, Stream(42, 4))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same stream produced different samples")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct trials produced identical streams")
	}
}

func TestFillMatchesSample(t *testing.T) {
	d := New(1, 2)
	got := make([]float64, 16)
	d.Fill(got, NewRand(1, 2))
	want := d.Sample(16, NewRand(1, 2))
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("Fill and Sample disagree for identical sources")
		}
	}
}

func TestQuickCDFQuantileRoundTrip(t *testing.T) {
	f := func(rawP, rawMu, rawScale float64) bool {
		p := 0.001 + 0.998*frac(rawP)
		mu := 10 * math.Tanh(rawMu)
		scale := 0.1 + 5*frac(rawScale)
		d := New(mu, scale)
		return math.Abs(d.CDF(d.Quantile(p))-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPDFPositiveAndPeakAtMean(t *testing.T) {
	f := func(rawX, rawMu float64) bool {
		x := 50 * math.Tanh(rawX)
		mu := 50 * math.Tanh(rawMu)
		d := New(mu, 1.5)
		return d.PDF(x) > 0 && d.PDF(x) <= d.PDF(mu)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// frac maps an arbitrary float64 into [0,1) safely.
func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(x)
	return x - math.Floor(x)
}

func BenchmarkRand(b *testing.B) {
	d := New(0, 1)
	src := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Rand(src)
	}
}
