// Package htree provides the k-ary interval tree underlying the paper's
// hierarchical query sequence H (Hay et al., Section 4). Each node of the
// tree is a range-count query; the root covers the whole domain and every
// node has k children covering equal subranges. Nodes are stored in a
// flat slice in breadth-first order, which is exactly the order in which
// the paper arranges the query sequence H.
//
// The domain is padded up to the next power of k so that the tree is
// complete; padding leaves always hold zero counts and sit to the right
// of the real domain.
package htree

import (
	"fmt"
)

// Tree describes the shape of a complete k-ary interval tree. It carries
// no counts itself; count vectors are plain []float64 slices of length
// NumNodes laid out in BFS order, so several noisy versions of the same
// tree can share one shape.
type Tree struct {
	k      int // branching factor, >= 2 (or exactly 1 leaf when height 1)
	height int // number of levels, counted in nodes (paper's ell); >= 1
	domain int // number of real (unpadded) unit-length intervals
	leaves int // number of leaf nodes, k^(height-1)
	nodes  int // total number of nodes, (k^height - 1)/(k - 1)
}

// New returns the tree with branching factor k whose leaves cover a
// domain of the given size. The leaf count is the smallest power of k
// that is at least domain. New returns an error if k < 2 or domain < 1.
func New(k, domain int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("htree: branching factor %d < 2", k)
	}
	if domain < 1 {
		return nil, fmt.Errorf("htree: domain size %d < 1", domain)
	}
	height := 1
	leaves := 1
	for leaves < domain {
		if leaves > (1<<62)/k {
			return nil, fmt.Errorf("htree: domain %d too large for k=%d", domain, k)
		}
		leaves *= k
		height++
	}
	nodes := 0
	width := 1
	for h := 0; h < height; h++ {
		nodes += width
		width *= k
	}
	return &Tree{k: k, height: height, domain: domain, leaves: leaves, nodes: nodes}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(k, domain int) *Tree {
	t, err := New(k, domain)
	if err != nil {
		panic(err)
	}
	return t
}

// K returns the branching factor.
func (t *Tree) K() int { return t.k }

// Height returns the number of levels counted in nodes (the paper's ell):
// a root-only tree has height 1, the Fig. 4 example has height 3.
func (t *Tree) Height() int { return t.height }

// Domain returns the size of the real (unpadded) domain.
func (t *Tree) Domain() int { return t.domain }

// NumLeaves returns the number of leaves including padding.
func (t *Tree) NumLeaves() int { return t.leaves }

// NumNodes returns the total number of nodes in the tree.
func (t *Tree) NumNodes() int { return t.nodes }

// LeafStart returns the BFS index of the leftmost leaf.
func (t *Tree) LeafStart() int { return t.nodes - t.leaves }

// Root returns the BFS index of the root (always 0).
func (t *Tree) Root() int { return 0 }

// IsLeaf reports whether node v is a leaf.
func (t *Tree) IsLeaf(v int) bool { return v >= t.LeafStart() }

// Parent returns the BFS index of v's parent. It panics on the root.
func (t *Tree) Parent(v int) int {
	if v == 0 {
		panic("htree: root has no parent")
	}
	return (v - 1) / t.k
}

// FirstChild returns the BFS index of v's leftmost child. It panics on
// leaves.
func (t *Tree) FirstChild(v int) int {
	if t.IsLeaf(v) {
		panic("htree: leaf has no children")
	}
	return v*t.k + 1
}

// Children returns the BFS index range [lo, hi) of v's children.
func (t *Tree) Children(v int) (lo, hi int) {
	lo = t.FirstChild(v)
	return lo, lo + t.k
}

// Depth returns the number of edges from the root to v.
func (t *Tree) Depth(v int) int {
	d := 0
	for v > 0 {
		v = (v - 1) / t.k
		d++
	}
	return d
}

// HeightOf returns the paper's height of node v: leaves have height 1 and
// the root has height Height().
func (t *Tree) HeightOf(v int) int { return t.height - t.Depth(v) }

// LevelStart returns the BFS index of the first node at the given depth
// (depth 0 is the root).
func (t *Tree) LevelStart(depth int) int {
	// (k^depth - 1)/(k-1) without floating point.
	start := 0
	width := 1
	for d := 0; d < depth; d++ {
		start += width
		width *= t.k
	}
	return start
}

// LevelWidth returns the number of nodes at the given depth.
func (t *Tree) LevelWidth(depth int) int {
	width := 1
	for d := 0; d < depth; d++ {
		width *= t.k
	}
	return width
}

// SubtreeSize returns the number of leaves under node v.
func (t *Tree) SubtreeSize(v int) int {
	return t.leaves / t.LevelWidth(t.Depth(v))
}

// Interval returns the half-open leaf interval [lo, hi) covered by node
// v, in leaf coordinates (0-based unit-length positions, padding
// included).
func (t *Tree) Interval(v int) (lo, hi int) {
	depth := t.Depth(v)
	offset := v - t.LevelStart(depth)
	size := t.leaves / t.LevelWidth(depth)
	return offset * size, (offset + 1) * size
}

// LeafIndex returns the BFS index of the leaf covering unit position i.
func (t *Tree) LeafIndex(i int) int {
	if i < 0 || i >= t.leaves {
		panic(fmt.Sprintf("htree: leaf position %d out of range [0,%d)", i, t.leaves))
	}
	return t.LeafStart() + i
}

// FromLeaves builds a full BFS count vector from unit-length counts: the
// real domain counts come first, padding leaves are zero, and every
// internal node is the sum of its children. This is the true answer H(I)
// for the hierarchical query. It panics if len(unit) exceeds the leaf
// capacity.
func (t *Tree) FromLeaves(unit []float64) []float64 {
	if len(unit) > t.leaves {
		panic(fmt.Sprintf("htree: %d unit counts exceed %d leaves", len(unit), t.leaves))
	}
	counts := make([]float64, t.nodes)
	copy(counts[t.LeafStart():], unit)
	for v := t.LeafStart() - 1; v >= 0; v-- {
		lo, hi := t.Children(v)
		sum := 0.0
		for c := lo; c < hi; c++ {
			sum += counts[c]
		}
		counts[v] = sum
	}
	return counts
}

// Leaves returns the leaf portion of a BFS count vector truncated to the
// real domain (padding removed). The result aliases counts.
func (t *Tree) Leaves(counts []float64) []float64 {
	t.checkLen(counts)
	return counts[t.LeafStart() : t.LeafStart()+t.domain]
}

// IsConsistent reports whether every internal node equals the sum of its
// children up to tol.
func (t *Tree) IsConsistent(counts []float64, tol float64) bool {
	t.checkLen(counts)
	for v := 0; v < t.LeafStart(); v++ {
		lo, hi := t.Children(v)
		sum := 0.0
		for c := lo; c < hi; c++ {
			sum += counts[c]
		}
		if diff := counts[v] - sum; diff > tol || diff < -tol {
			return false
		}
	}
	return true
}

// Decompose returns the minimal set of node indices whose disjoint
// intervals union to the half-open range [lo, hi) in leaf coordinates.
// This is the paper's "fewest sub-intervals" strategy for answering a
// range query from the noisy tree; at most 2(k-1) nodes are used per
// level. It panics if the range is empty or out of bounds.
func (t *Tree) Decompose(lo, hi int) []int {
	if lo < 0 || hi > t.leaves || lo >= hi {
		panic(fmt.Sprintf("htree: bad range [%d,%d) for %d leaves", lo, hi, t.leaves))
	}
	var out []int
	t.decompose(0, lo, hi, &out)
	return out
}

func (t *Tree) decompose(v, lo, hi int, out *[]int) {
	nlo, nhi := t.Interval(v)
	if lo <= nlo && nhi <= hi {
		*out = append(*out, v)
		return
	}
	if t.IsLeaf(v) {
		// Unit-length leaf partially covered cannot happen for integer
		// ranges; reaching here means the range excludes this leaf.
		return
	}
	clo, chi := t.Children(v)
	for c := clo; c < chi; c++ {
		ilo, ihi := t.Interval(c)
		if ihi <= lo || ilo >= hi {
			continue
		}
		t.decompose(c, max(ilo, lo), min(ihi, hi), out)
	}
}

// RangeSum answers the range count [lo, hi) from a BFS count vector by
// summing the same minimal subtree decomposition Decompose returns, but
// iteratively and without allocating: it walks the tree bottom-up,
// peeling off maximal nodes at both ends of the range until the
// endpoints align with parent boundaries. Per level at most 2(k-1)
// nodes are touched, so a query costs O(k log n) time and zero bytes —
// the serving hot path. The empty range lo == hi sums to zero; it
// panics on a malformed range.
func (t *Tree) RangeSum(counts []float64, lo, hi int) float64 {
	t.checkLen(counts)
	if lo < 0 || hi > t.leaves || lo > hi {
		panic(fmt.Sprintf("htree: bad range [%d,%d) for %d leaves", lo, hi, t.leaves))
	}
	// l and r index nodes within the current level; start is the BFS
	// index of the level's first node and width its node count.
	sum := 0.0
	l, r := lo, hi
	start := t.LeafStart()
	width := t.leaves
	for l < r {
		// A node whose level offset is not a multiple of k does not
		// start (or end) a parent block, so it cannot be covered by any
		// ancestor: emit it now. Everything left aligned moves up.
		for l%t.k != 0 && l < r {
			sum += counts[start+l]
			l++
		}
		for r%t.k != 0 && l < r {
			r--
			sum += counts[start+r]
		}
		l /= t.k
		r /= t.k
		width /= t.k
		start -= width
	}
	return sum
}

// LevelPrefixSums compiles a BFS count vector into one running-sum table
// per level, leaf level first: out[j] has LevelWidth(d)+1 entries for
// depth d = Height()-1-j, and out[j][i+1]-out[j][i] is the value of the
// i'th node at that depth. Any contiguous run of same-level nodes then
// sums in two lookups, which is what the plan engine's tree-offset mode
// builds its branch-free RangeSum walk on.
func (t *Tree) LevelPrefixSums(counts []float64) [][]float64 {
	t.checkLen(counts)
	out := make([][]float64, t.height)
	for j := 0; j < t.height; j++ {
		depth := t.height - 1 - j
		start := t.LevelStart(depth)
		width := t.LevelWidth(depth)
		row := make([]float64, width+1)
		for i := 0; i < width; i++ {
			row[i+1] = row[i] + counts[start+i]
		}
		out[j] = row
	}
	return out
}

func (t *Tree) checkLen(counts []float64) {
	if len(counts) != t.nodes {
		panic(fmt.Sprintf("htree: count vector has %d entries, tree has %d nodes", len(counts), t.nodes))
	}
}
