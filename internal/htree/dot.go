package htree

import (
	"fmt"
	"io"
)

// WriteDOT renders the tree with the given count vector as a Graphviz
// DOT graph, for debugging and documentation. Each node shows its
// interval (in real-domain coordinates, clipped to the domain) and its
// count. Counts may be nil, in which case only the structure is drawn.
func (t *Tree) WriteDOT(w io.Writer, counts []float64) error {
	if counts != nil && len(counts) != t.nodes {
		return fmt.Errorf("htree: count vector has %d entries, tree has %d nodes", len(counts), t.nodes)
	}
	if _, err := fmt.Fprintln(w, "digraph htree {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];"); err != nil {
		return err
	}
	for v := 0; v < t.nodes; v++ {
		lo, hi := t.Interval(v)
		if lo >= t.domain {
			continue // pure padding subtree
		}
		if hi > t.domain {
			hi = t.domain
		}
		label := fmt.Sprintf("[%d,%d)", lo, hi)
		if counts != nil {
			label += fmt.Sprintf("\\n%.6g", counts[v])
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", v, label); err != nil {
			return err
		}
		if v > 0 {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", t.Parent(v), v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
