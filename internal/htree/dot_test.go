package htree

import (
	"strings"
	"testing"
)

func TestWriteDOTStructure(t *testing.T) {
	tr := MustNew(2, 4)
	counts := tr.FromLeaves([]float64{2, 0, 10, 2})
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, counts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph htree {",
		`n0 [label="[0,4)\n14"]`,
		`n1 [label="[0,2)\n2"]`,
		`n6 [label="[3,4)\n2"]`,
		"n0 -> n1;",
		"n2 -> n6;",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithoutCounts(t *testing.T) {
	tr := MustNew(2, 2)
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "\\n") {
		t.Fatal("structure-only DOT should not embed counts")
	}
}

func TestWriteDOTSkipsPadding(t *testing.T) {
	tr := MustNew(2, 3) // 4 leaves, leaf 3 is padding
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "n6 ") {
		t.Fatal("padding leaf rendered")
	}
	// The node straddling the domain boundary is clipped.
	if !strings.Contains(out, `n2 [label="[2,3)"]`) {
		t.Fatalf("straddling node not clipped:\n%s", out)
	}
}

func TestWriteDOTLengthMismatch(t *testing.T) {
	tr := MustNew(2, 4)
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, make([]float64, 3)); err == nil {
		t.Fatal("bad count vector accepted")
	}
}
