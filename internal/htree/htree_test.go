package htree

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadArguments(t *testing.T) {
	if _, err := New(1, 4); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("domain=0 accepted")
	}
	if _, err := New(0, 4); err == nil {
		t.Error("k=0 accepted")
	}
}

// The Fig. 4 example: binary tree over 4 addresses, height 3, 7 nodes.
func TestPaperFig4Shape(t *testing.T) {
	tr := MustNew(2, 4)
	if tr.Height() != 3 {
		t.Errorf("height = %d, want 3", tr.Height())
	}
	if tr.NumNodes() != 7 {
		t.Errorf("nodes = %d, want 7", tr.NumNodes())
	}
	if tr.NumLeaves() != 4 {
		t.Errorf("leaves = %d, want 4", tr.NumLeaves())
	}
	if tr.LeafStart() != 3 {
		t.Errorf("leaf start = %d, want 3", tr.LeafStart())
	}
}

// H(I) = <14, 2, 12, 2, 0, 10, 2> for unit counts <2, 0, 10, 2> (Fig 2b).
func TestPaperFig2HierarchicalAnswer(t *testing.T) {
	tr := MustNew(2, 4)
	got := tr.FromLeaves([]float64{2, 0, 10, 2})
	want := []float64{14, 2, 12, 2, 0, 10, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("H(I) = %v, want %v", got, want)
		}
	}
	if !tr.IsConsistent(got, 0) {
		t.Fatal("true answer reported inconsistent")
	}
}

func TestDomainPadding(t *testing.T) {
	tr := MustNew(2, 5) // pads to 8 leaves
	if tr.NumLeaves() != 8 || tr.Height() != 4 || tr.NumNodes() != 15 {
		t.Fatalf("padding wrong: leaves=%d height=%d nodes=%d",
			tr.NumLeaves(), tr.Height(), tr.NumNodes())
	}
	counts := tr.FromLeaves([]float64{1, 2, 3, 4, 5})
	if counts[0] != 15 {
		t.Errorf("root = %v, want 15", counts[0])
	}
	leaves := tr.Leaves(counts)
	if len(leaves) != 5 {
		t.Errorf("Leaves returned %d entries, want 5 (domain)", len(leaves))
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := MustNew(2, 1)
	if tr.Height() != 1 || tr.NumNodes() != 1 || !tr.IsLeaf(0) {
		t.Fatalf("degenerate tree wrong: height=%d nodes=%d", tr.Height(), tr.NumNodes())
	}
	counts := tr.FromLeaves([]float64{42})
	if counts[0] != 42 {
		t.Fatal("single leaf count lost")
	}
	if got := tr.RangeSum(counts, 0, 1); got != 42 {
		t.Fatalf("RangeSum = %v", got)
	}
}

func TestParentChildInverse(t *testing.T) {
	for _, k := range []int{2, 3, 4, 7} {
		tr := MustNew(k, 50)
		for v := 0; v < tr.LeafStart(); v++ {
			lo, hi := tr.Children(v)
			if hi-lo != k {
				t.Fatalf("k=%d node %d has %d children", k, v, hi-lo)
			}
			for c := lo; c < hi; c++ {
				if tr.Parent(c) != v {
					t.Fatalf("k=%d Parent(%d) != %d", k, c, v)
				}
			}
		}
	}
}

func TestParentPanicsOnRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent(0) did not panic")
		}
	}()
	MustNew(2, 4).Parent(0)
}

func TestDepthAndHeight(t *testing.T) {
	tr := MustNew(2, 16) // height 5
	if tr.Depth(0) != 0 || tr.HeightOf(0) != 5 {
		t.Error("root depth/height wrong")
	}
	leaf := tr.LeafIndex(7)
	if tr.Depth(leaf) != 4 || tr.HeightOf(leaf) != 1 {
		t.Error("leaf depth/height wrong")
	}
}

func TestIntervalPartitionPerLevel(t *testing.T) {
	tr := MustNew(3, 27)
	for depth := 0; depth < tr.Height(); depth++ {
		start := tr.LevelStart(depth)
		width := tr.LevelWidth(depth)
		covered := 0
		for i := 0; i < width; i++ {
			lo, hi := tr.Interval(start + i)
			if lo != covered {
				t.Fatalf("level %d node %d starts at %d, want %d", depth, i, lo, covered)
			}
			covered = hi
		}
		if covered != tr.NumLeaves() {
			t.Fatalf("level %d covers %d leaves, want %d", depth, covered, tr.NumLeaves())
		}
	}
}

func TestSubtreeSize(t *testing.T) {
	tr := MustNew(2, 8)
	if got := tr.SubtreeSize(0); got != 8 {
		t.Errorf("root subtree size %d", got)
	}
	if got := tr.SubtreeSize(tr.LeafIndex(3)); got != 1 {
		t.Errorf("leaf subtree size %d", got)
	}
	if got := tr.SubtreeSize(1); got != 4 {
		t.Errorf("depth-1 subtree size %d", got)
	}
}

func TestDecomposeFullDomainIsRoot(t *testing.T) {
	tr := MustNew(2, 16)
	nodes := tr.Decompose(0, 16)
	if len(nodes) != 1 || nodes[0] != 0 {
		t.Fatalf("full-range decomposition %v, want [0]", nodes)
	}
}

func TestDecomposeDisjointCoverMinimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 28))
	for _, k := range []int{2, 3, 4} {
		tr := MustNew(k, 81)
		for trial := 0; trial < 300; trial++ {
			lo := rng.IntN(tr.NumLeaves())
			hi := lo + 1 + rng.IntN(tr.NumLeaves()-lo)
			nodes := tr.Decompose(lo, hi)
			// Disjoint exact cover.
			covered := make([]bool, tr.NumLeaves())
			for _, v := range nodes {
				nlo, nhi := tr.Interval(v)
				for i := nlo; i < nhi; i++ {
					if covered[i] {
						t.Fatalf("k=%d overlap at leaf %d for [%d,%d)", k, i, lo, hi)
					}
					covered[i] = true
				}
			}
			for i := 0; i < tr.NumLeaves(); i++ {
				if covered[i] != (i >= lo && i < hi) {
					t.Fatalf("k=%d cover mismatch at %d for [%d,%d)", k, i, lo, hi)
				}
			}
			// Minimality: no k siblings all present (they would merge),
			// and per-level budget 2(k-1).
			perLevel := map[int]int{}
			set := map[int]bool{}
			for _, v := range nodes {
				set[v] = true
				perLevel[tr.Depth(v)]++
			}
			for d, c := range perLevel {
				if d > 0 && c > 2*(k-1) {
					t.Fatalf("k=%d level %d uses %d nodes > 2(k-1)", k, d, c)
				}
			}
			for _, v := range nodes {
				if v == 0 {
					continue
				}
				parent := tr.Parent(v)
				clo, chi := tr.Children(parent)
				all := true
				for c := clo; c < chi; c++ {
					if !set[c] {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("k=%d all children of %d present; not minimal", k, parent)
				}
			}
		}
	}
}

func TestDecomposePanicsOnBadRange(t *testing.T) {
	tr := MustNew(2, 8)
	for _, r := range [][2]int{{-1, 3}, {0, 9}, {3, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decompose(%d,%d) did not panic", r[0], r[1])
				}
			}()
			tr.Decompose(r[0], r[1])
		}()
	}
}

func TestRangeSumMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 2))
	tr := MustNew(2, 100)
	unit := make([]float64, 100)
	for i := range unit {
		unit[i] = float64(rng.IntN(50))
	}
	counts := tr.FromLeaves(unit)
	for trial := 0; trial < 500; trial++ {
		lo := rng.IntN(tr.NumLeaves())
		hi := lo + 1 + rng.IntN(tr.NumLeaves()-lo)
		want := 0.0
		for i := lo; i < hi && i < len(unit); i++ {
			want += unit[i]
		}
		if got := tr.RangeSum(counts, lo, hi); math.Abs(got-want) > 1e-9 {
			t.Fatalf("RangeSum[%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
}

// The iterative RangeSum must visit exactly the nodes Decompose names —
// integer counts make the comparison exact regardless of summation
// order — across branching factors, domains, and every range.
func TestRangeSumMatchesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 7))
	for _, k := range []int{2, 3, 4, 5} {
		for _, domain := range []int{1, 2, 7, 16, 100} {
			tr := MustNew(k, domain)
			counts := make([]float64, tr.NumNodes())
			for i := range counts {
				counts[i] = float64(rng.IntN(1000))
			}
			for lo := 0; lo <= tr.NumLeaves(); lo++ {
				for hi := lo + 1; hi <= tr.NumLeaves(); hi++ {
					want := 0.0
					for _, v := range tr.Decompose(lo, hi) {
						want += counts[v]
					}
					if got := tr.RangeSum(counts, lo, hi); got != want {
						t.Fatalf("k=%d domain=%d: RangeSum[%d,%d) = %v, decomposition sum = %v",
							k, domain, lo, hi, got, want)
					}
				}
			}
		}
	}
}

func TestRangeSumEmptyRangeIsZero(t *testing.T) {
	tr := MustNew(3, 10)
	counts := tr.FromLeaves([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for lo := 0; lo <= tr.NumLeaves(); lo++ {
		if got := tr.RangeSum(counts, lo, lo); got != 0 {
			t.Fatalf("RangeSum[%d,%d) = %v, want 0", lo, lo, got)
		}
	}
}

func TestRangeSumPanicsOnBadRange(t *testing.T) {
	tr := MustNew(2, 8)
	counts := make([]float64, tr.NumNodes())
	for _, r := range [][2]int{{-1, 3}, {0, 9}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RangeSum(%d,%d) did not panic", r[0], r[1])
				}
			}()
			tr.RangeSum(counts, r[0], r[1])
		}()
	}
}

func TestFromLeavesPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized unit vector accepted")
		}
	}()
	MustNew(2, 4).FromLeaves(make([]float64, 5))
}

func TestIsConsistentDetectsViolation(t *testing.T) {
	tr := MustNew(2, 4)
	counts := tr.FromLeaves([]float64{1, 2, 3, 4})
	counts[1] += 0.5
	if tr.IsConsistent(counts, 1e-9) {
		t.Fatal("violation not detected")
	}
	if !tr.IsConsistent(counts, 1.0) {
		t.Fatal("tolerance not respected")
	}
}

func TestQuickDecomposeCoversExactly(t *testing.T) {
	tr := MustNew(2, 64)
	f := func(a, b uint16) bool {
		lo := int(a) % tr.NumLeaves()
		hi := lo + 1 + int(b)%(tr.NumLeaves()-lo)
		total := 0
		for _, v := range tr.Decompose(lo, hi) {
			nlo, nhi := tr.Interval(v)
			total += nhi - nlo
		}
		return total == hi-lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFromLeavesRootIsTotal(t *testing.T) {
	tr := MustNew(4, 64)
	f := func(raw []float64) bool {
		unit := make([]float64, 64)
		total := 0.0
		for i := range unit {
			if i < len(raw) && !math.IsNaN(raw[i]) && !math.IsInf(raw[i], 0) {
				unit[i] = math.Mod(math.Abs(raw[i]), 1000)
			}
			total += unit[i]
		}
		counts := tr.FromLeaves(unit)
		return math.Abs(counts[0]-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	tr := MustNew(2, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Decompose(1234, 43210)
	}
}

// The serving hot path: one range query against a stored tree must be
// allocation-free (compare BenchmarkDecompose, which builds a node
// slice per call).
func BenchmarkRangeSum(b *testing.B) {
	tr := MustNew(2, 1<<16)
	counts := make([]float64, tr.NumNodes())
	for i := range counts {
		counts[i] = float64(i % 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.RangeSum(counts, 1234, 43210)
	}
}

func BenchmarkFromLeaves(b *testing.B) {
	tr := MustNew(2, 1<<16)
	unit := make([]float64, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.FromLeaves(unit)
	}
}

// LevelPrefixSums is the compiled form behind the plan engine's
// tree-offset mode: its tables must reproduce every node value and
// every contiguous same-level run as a two-lookup difference.
func TestLevelPrefixSums(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for _, k := range []int{2, 3, 4} {
		for _, domain := range []int{1, 2, 9, 27, 64} {
			tr := MustNew(k, domain)
			counts := make([]float64, tr.NumNodes())
			for i := range counts {
				counts[i] = float64(rng.IntN(100)) - 20 // arbitrary, not consistent
			}
			levels := tr.LevelPrefixSums(counts)
			if len(levels) != tr.Height() {
				t.Fatalf("k=%d domain=%d: %d levels, want height %d", k, domain, len(levels), tr.Height())
			}
			for j, row := range levels {
				depth := tr.Height() - 1 - j
				width := tr.LevelWidth(depth)
				if len(row) != width+1 {
					t.Fatalf("level %d: %d entries, want %d", j, len(row), width+1)
				}
				start := tr.LevelStart(depth)
				for i := 0; i < width; i++ {
					if got := row[i+1] - row[i]; math.Abs(got-counts[start+i]) > 1e-9 {
						t.Fatalf("level %d node %d: %v, want %v", j, i, got, counts[start+i])
					}
				}
			}
		}
	}
}
