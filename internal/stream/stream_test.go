package stream

import (
	"math"
	"sync"
	"testing"

	"github.com/dphist/dphist/internal/laplace"
)

func TestNewCounterValidation(t *testing.T) {
	src := laplace.NewRand(1, 1)
	if _, err := NewCounter(0, 8, src); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewCounter(1, 0, src); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewCounter(1, 8, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewCounter(math.Inf(1), 8, src); err == nil {
		t.Error("infinite epsilon accepted")
	}
}

func TestNoiseScale(t *testing.T) {
	c, err := NewCounter(0.5, 1024, laplace.NewRand(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// bits.Len(1024) = 11 levels; scale = 11/0.5 = 22.
	if got := c.NoiseScale(); got != 22 {
		t.Fatalf("noise scale %v, want 22", got)
	}
}

func TestFeedTracksRunningCount(t *testing.T) {
	const horizon = 4096
	// Big epsilon: estimates should hug the truth.
	c, err := NewCounter(200, horizon, laplace.NewRand(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for i := 0; i < horizon; i++ {
		inc := float64(i % 3)
		truth += inc
		got, err := c.Feed(inc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 5 {
			t.Fatalf("step %d: estimate %v, truth %v", i+1, got, truth)
		}
	}
	if c.Step() != horizon {
		t.Fatalf("step = %d", c.Step())
	}
}

func TestFeedHorizonExhausted(t *testing.T) {
	c, _ := NewCounter(1, 2, laplace.NewRand(3, 3))
	if _, err := c.Feed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Feed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Feed(1); err == nil {
		t.Fatal("feed past horizon accepted")
	}
}

func TestFeedRejectsBadIncrement(t *testing.T) {
	c, _ := NewCounter(1, 8, laplace.NewRand(4, 4))
	if _, err := c.Feed(math.NaN()); err == nil {
		t.Fatal("NaN increment accepted")
	}
	if _, err := c.Feed(math.Inf(-1)); err == nil {
		t.Fatal("infinite increment accepted")
	}
	if c.Step() != 0 {
		t.Fatal("failed feeds consumed steps")
	}
}

func TestDeterministicGivenSource(t *testing.T) {
	run := func() []float64 {
		c, _ := NewCounter(1, 64, laplace.Stream(9, 4), WithEstimateHistory())
		for i := 0; i < 64; i++ {
			if _, err := c.Feed(1); err != nil {
				t.Fatal(err)
			}
		}
		return c.Estimates()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same source, different estimates")
		}
	}
}

func TestErrorStaysPolyLogarithmic(t *testing.T) {
	// The per-step error uses at most popcount(t) <= log2(horizon)
	// blocks, each Lap(levels/eps): the late-stream error must not grow
	// linearly like a naive running sum of noisy increments would.
	const horizon, eps, trials = 1 << 12, 1.0, 40
	levels := 13.0 // bits.Len(4096)
	var lateSq float64
	for trial := 0; trial < trials; trial++ {
		c, err := NewCounter(eps, horizon, laplace.Stream(77, trial))
		if err != nil {
			t.Fatal(err)
		}
		truth := 0.0
		var last float64
		for i := 0; i < horizon; i++ {
			truth++
			got, err := c.Feed(1)
			if err != nil {
				t.Fatal(err)
			}
			last = got - truth
		}
		lateSq += last * last
	}
	meanSq := lateSq / trials
	// At t = horizon (one block), variance is 2*(levels/eps)^2 = 338.
	// Allow generous slack; a linear-error mechanism would be ~2*4096.
	want := 2 * levels * levels / (eps * eps)
	if meanSq > want*3 {
		t.Fatalf("final-step squared error %v, want about %v", meanSq, want)
	}
}

func TestSmoothNonDecreasingHelps(t *testing.T) {
	const horizon, eps, trials = 1024, 0.5, 30
	var rawSq, smoothSq float64
	for trial := 0; trial < trials; trial++ {
		c, err := NewCounter(eps, horizon, laplace.Stream(55, trial), WithEstimateHistory())
		if err != nil {
			t.Fatal(err)
		}
		truths := make([]float64, horizon)
		truth := 0.0
		for i := 0; i < horizon; i++ {
			truth += float64(i % 2)
			truths[i] = truth
			if _, err := c.Feed(float64(i % 2)); err != nil {
				t.Fatal(err)
			}
		}
		raw := c.Estimates()
		smooth := SmoothNonDecreasing(raw)
		for i := range truths {
			rawSq += (raw[i] - truths[i]) * (raw[i] - truths[i])
			smoothSq += (smooth[i] - truths[i]) * (smooth[i] - truths[i])
		}
		// Smoothed output is monotone.
		for i := 1; i < len(smooth); i++ {
			if smooth[i] < smooth[i-1] {
				t.Fatal("smoothed estimates not non-decreasing")
			}
		}
	}
	if smoothSq >= rawSq {
		t.Fatalf("isotonic smoothing did not help: %v vs %v", smoothSq/trials, rawSq/trials)
	}
}

func TestEstimatesCopy(t *testing.T) {
	c, _ := NewCounter(1, 4, laplace.NewRand(5, 5), WithEstimateHistory())
	_, _ = c.Feed(1)
	e := c.Estimates()
	e[0] = 1e9
	if c.Estimates()[0] == 1e9 {
		t.Fatal("Estimates aliases internal state")
	}
}

func TestHistoryOffByDefault(t *testing.T) {
	c, _ := NewCounter(1, 8, laplace.NewRand(5, 6))
	for i := 0; i < 4; i++ {
		if _, err := c.Feed(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Estimates(); got != nil {
		t.Fatalf("history-free counter returned %d estimates, want nil", len(got))
	}
	if est, step := c.Last(); step != 4 || est == 0 {
		// est == 0 exactly is astronomically unlikely with noise drawn.
		t.Fatalf("Last() = (%v, %d), want a noisy estimate at step 4", est, step)
	}
}

// TestLongStreamMemoryStaysLogarithmic is the regression test for the
// unbounded-estimates leak: a multi-million-step ingest counter must
// retain only its O(log horizon) dyadic block state, never a per-arrival
// history.
func TestLongStreamMemoryStaysLogarithmic(t *testing.T) {
	const horizon = 1 << 22 // 4M steps
	c, err := NewCounter(1.0, horizon, laplace.NewRand(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for i := 0; i < horizon; i++ {
		truth++
		if _, err := c.Feed(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.estimates != nil {
		t.Fatalf("history-free counter accumulated %d estimates", len(c.estimates))
	}
	wantLen := c.levels + 1 // O(log horizon) dyadic blocks
	if len(c.acc) != wantLen || len(c.active) != wantLen {
		t.Fatalf("block state grew: acc %d, active %d, want %d", len(c.acc), len(c.active), wantLen)
	}
	if est, step := c.Last(); step != horizon || math.Abs(est-truth) > 0.01*truth {
		t.Fatalf("after %d steps Last() = (%v, %d), truth %v", horizon, est, step, truth)
	}
}

// TestConcurrentSnapshotWhileFeeding enforces the ingest contract under
// the race detector: one writer drives Feed (single-writer semantics)
// while concurrent readers snapshot Last, Step, and Estimates.
func TestConcurrentSnapshotWhileFeeding(t *testing.T) {
	const horizon = 1 << 14
	c, err := NewCounter(1.0, horizon, laplace.NewRand(8, 8), WithEstimateHistory())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				est, step := c.Last()
				if step > 0 && est == 0 && step > horizon {
					t.Error("impossible snapshot")
				}
				if hist := c.Estimates(); len(hist) > horizon {
					t.Errorf("history of %d estimates past horizon %d", len(hist), horizon)
				}
				_ = c.Step()
			}
		}()
	}
	for i := 0; i < horizon; i++ {
		if _, err := c.Feed(1); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if est, step := c.Last(); step != horizon || est == 0 {
		t.Fatalf("final snapshot (%v, %d)", est, step)
	}
}

func BenchmarkCounterFeed(b *testing.B) {
	c, err := NewCounter(1.0, 1<<30, laplace.NewRand(6, 6))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Feed(1); err != nil {
			b.Fatal(err)
		}
	}
}
