// Package stream implements private continual counting — the streaming
// relative of the paper's H query discussed in Section 6 (Chan, Shi,
// Song: "Private and Continual Release of Statistics", ICALP 2010). A
// counter releases an estimate of the running total after every arrival;
// hierarchical (dyadic) aggregation by arrival time keeps the per-step
// error poly-logarithmic in the stream length, exactly as H does over a
// static domain.
//
// The package also ports the paper's constrained-inference idea to the
// stream: running counts of non-negative increments are non-decreasing,
// so the released estimate sequence can be projected onto monotonicity
// by isotonic regression (SmoothNonDecreasing) once the analysis is
// retrospective — the same Theorem 1 machinery as S-bar, applied to
// cumulative counts.
package stream

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sync"

	"github.com/dphist/dphist/internal/isotonic"
	"github.com/dphist/dphist/internal/laplace"
)

// Counter continually releases a differentially private running count
// over a stream of at most Horizon arrivals. Each dyadic block of
// arrivals carries one Laplace-noised partial sum; an arrival
// contributes to at most log2(Horizon)+1 blocks, so scaling the noise by
// that factor yields eps-differential privacy for the whole stream
// (event-level: neighboring streams differ by 1 in one arrival).
//
// A Counter has single-writer semantics: Feed must be called from one
// goroutine at a time — the dyadic mechanism consumes a serial stream,
// and interleaved writers would make the arrival order (and therefore
// the released sequence) nondeterministic. Snapshot reads (Last,
// Estimates) are safe concurrently with the writer, so a serving layer
// can answer live-count queries while an ingest worker keeps feeding.
//
// Memory stays O(log Horizon) regardless of stream length: the counter
// retains only the active dyadic blocks. The full released-estimate
// history — needed for retrospective smoothing, and O(stream length) —
// is recorded only when the counter is built WithEstimateHistory.
type Counter struct {
	eps     float64
	horizon int
	levels  int
	src     *rand.Rand
	noise   laplace.Dist

	// mu guards the mutable stream state below so snapshot readers can
	// run concurrently with the single writer. It is uncontended on the
	// hot path (one writer, occasional readers).
	mu        sync.Mutex
	t         int       // arrivals consumed so far
	acc       []float64 // accumulating true partial sum per level
	active    []float64 // finalized noisy block sum per level (for set bits of t)
	last      float64   // estimate released at step t (0 before any arrival)
	history   bool      // retain the full estimate sequence
	estimates []float64 // released estimate after each arrival (history only)
}

// Option configures a Counter at construction.
type Option func(*Counter)

// WithEstimateHistory retains every released estimate for retrospective
// analysis (Estimates, SmoothNonDecreasing). Retention costs O(stream
// length) memory — one float64 per arrival — so long-lived ingest
// counters should leave it off; without it the counter stays
// O(log Horizon) forever and Estimates returns nil.
func WithEstimateHistory() Option {
	return func(c *Counter) { c.history = true }
}

// NewCounter returns a counter for at most horizon arrivals at privacy
// level eps, drawing noise from src.
func NewCounter(eps float64, horizon int, src *rand.Rand, opts ...Option) (*Counter, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("stream: epsilon must be positive and finite, got %v", eps)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("stream: horizon %d < 1", horizon)
	}
	if src == nil {
		return nil, fmt.Errorf("stream: nil randomness source")
	}
	levels := bits.Len(uint(horizon)) // log2(horizon)+1 block levels
	c := &Counter{
		eps:     eps,
		horizon: horizon,
		levels:  levels,
		src:     src,
		noise:   laplace.New(0, float64(levels)/eps),
		acc:     make([]float64, levels+1),
		active:  make([]float64, levels+1),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Horizon returns the maximum number of arrivals.
func (c *Counter) Horizon() int { return c.horizon }

// Step returns the number of arrivals consumed so far. Safe to call
// concurrently with Feed.
func (c *Counter) Step() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// NoiseScale returns the Laplace scale applied to each block sum.
func (c *Counter) NoiseScale() float64 { return float64(c.levels) / c.eps }

// Feed consumes the next arrival's contribution (how much the tracked
// count grows at this time step; 1 for simple event counting) and
// returns the private estimate of the running total. It fails once the
// horizon is exhausted. Feed is single-writer: see the Counter doc.
func (c *Counter) Feed(increment float64) (float64, error) {
	if math.IsNaN(increment) || math.IsInf(increment, 0) {
		return 0, fmt.Errorf("stream: increment is %v", increment)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t >= c.horizon {
		return 0, fmt.Errorf("stream: horizon %d exhausted", c.horizon)
	}
	c.t++
	// The new arrival completes the level-i block ending at t, where i
	// is the number of trailing zero bits of t; that block's true sum is
	// the increment plus all lower completed blocks.
	i := bits.TrailingZeros(uint(c.t))
	sum := increment
	for j := 0; j < i; j++ {
		sum += c.acc[j]
		c.acc[j] = 0
		c.active[j] = 0
	}
	c.acc[i] = sum
	c.active[i] = sum + c.noise.Rand(c.src)
	// Estimate: sum the active noisy blocks for every set bit of t.
	est := 0.0
	for j := 0; j <= c.levels; j++ {
		if c.t&(1<<j) != 0 {
			est += c.active[j]
		}
	}
	c.last = est
	if c.history {
		c.estimates = append(c.estimates, est)
	}
	return est, nil
}

// Last returns the most recently released running-count estimate and the
// step it was released at (0, 0 before any arrival). Safe to call
// concurrently with Feed, so a live serving surface can snapshot the
// count between arrivals.
func (c *Counter) Last() (estimate float64, step int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.t
}

// Estimates returns a copy of the released running-count estimates, one
// per arrival so far — nil unless the counter was built
// WithEstimateHistory. Safe to call concurrently with Feed.
func (c *Counter) Estimates() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.estimates == nil {
		return nil
	}
	return append([]float64(nil), c.estimates...)
}

// SmoothNonDecreasing projects a sequence of running-count estimates
// onto the non-decreasing cone by isotonic regression — valid whenever
// increments are known to be non-negative (counts only grow). This is
// pure post-processing of already-released values: no privacy cost, and
// like the paper's S-bar it never increases the L2 error.
func SmoothNonDecreasing(estimates []float64) []float64 {
	return isotonic.Regress(estimates)
}
