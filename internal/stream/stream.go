// Package stream implements private continual counting — the streaming
// relative of the paper's H query discussed in Section 6 (Chan, Shi,
// Song: "Private and Continual Release of Statistics", ICALP 2010). A
// counter releases an estimate of the running total after every arrival;
// hierarchical (dyadic) aggregation by arrival time keeps the per-step
// error poly-logarithmic in the stream length, exactly as H does over a
// static domain.
//
// The package also ports the paper's constrained-inference idea to the
// stream: running counts of non-negative increments are non-decreasing,
// so the released estimate sequence can be projected onto monotonicity
// by isotonic regression (SmoothNonDecreasing) once the analysis is
// retrospective — the same Theorem 1 machinery as S-bar, applied to
// cumulative counts.
package stream

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/isotonic"
	"github.com/dphist/dphist/internal/laplace"
)

// Counter continually releases a differentially private running count
// over a stream of at most Horizon arrivals. Each dyadic block of
// arrivals carries one Laplace-noised partial sum; an arrival
// contributes to at most log2(Horizon)+1 blocks, so scaling the noise by
// that factor yields eps-differential privacy for the whole stream
// (event-level: neighboring streams differ by 1 in one arrival).
type Counter struct {
	eps     float64
	horizon int
	levels  int
	src     *rand.Rand
	noise   laplace.Dist

	t         int       // arrivals consumed so far
	acc       []float64 // accumulating true partial sum per level
	active    []float64 // finalized noisy block sum per level (for set bits of t)
	estimates []float64 // released estimate after each arrival
}

// NewCounter returns a counter for at most horizon arrivals at privacy
// level eps, drawing noise from src.
func NewCounter(eps float64, horizon int, src *rand.Rand) (*Counter, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("stream: epsilon must be positive and finite, got %v", eps)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("stream: horizon %d < 1", horizon)
	}
	if src == nil {
		return nil, fmt.Errorf("stream: nil randomness source")
	}
	levels := bits.Len(uint(horizon)) // log2(horizon)+1 block levels
	return &Counter{
		eps:     eps,
		horizon: horizon,
		levels:  levels,
		src:     src,
		noise:   laplace.New(0, float64(levels)/eps),
		acc:     make([]float64, levels+1),
		active:  make([]float64, levels+1),
	}, nil
}

// Horizon returns the maximum number of arrivals.
func (c *Counter) Horizon() int { return c.horizon }

// Step returns the number of arrivals consumed so far.
func (c *Counter) Step() int { return c.t }

// NoiseScale returns the Laplace scale applied to each block sum.
func (c *Counter) NoiseScale() float64 { return float64(c.levels) / c.eps }

// Feed consumes the next arrival's contribution (how much the tracked
// count grows at this time step; 1 for simple event counting) and
// returns the private estimate of the running total. It fails once the
// horizon is exhausted.
func (c *Counter) Feed(increment float64) (float64, error) {
	if c.t >= c.horizon {
		return 0, fmt.Errorf("stream: horizon %d exhausted", c.horizon)
	}
	if math.IsNaN(increment) || math.IsInf(increment, 0) {
		return 0, fmt.Errorf("stream: increment is %v", increment)
	}
	c.t++
	// The new arrival completes the level-i block ending at t, where i
	// is the number of trailing zero bits of t; that block's true sum is
	// the increment plus all lower completed blocks.
	i := bits.TrailingZeros(uint(c.t))
	sum := increment
	for j := 0; j < i; j++ {
		sum += c.acc[j]
		c.acc[j] = 0
		c.active[j] = 0
	}
	c.acc[i] = sum
	c.active[i] = sum + c.noise.Rand(c.src)
	// Estimate: sum the active noisy blocks for every set bit of t.
	est := 0.0
	for j := 0; j <= c.levels; j++ {
		if c.t&(1<<j) != 0 {
			est += c.active[j]
		}
	}
	c.estimates = append(c.estimates, est)
	return est, nil
}

// Estimates returns a copy of the released running-count estimates, one
// per arrival so far.
func (c *Counter) Estimates() []float64 {
	return append([]float64(nil), c.estimates...)
}

// SmoothNonDecreasing projects a sequence of running-count estimates
// onto the non-decreasing cone by isotonic regression — valid whenever
// increments are known to be non-negative (counts only grow). This is
// pure post-processing of already-released values: no privacy cost, and
// like the paper's S-bar it never increases the L2 error.
func SmoothNonDecreasing(estimates []float64) []float64 {
	return isotonic.Regress(estimates)
}
