package graph

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsGraphicalKnownCases(t *testing.T) {
	cases := []struct {
		deg  []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{1}, false},          // no partner
		{[]int{1, 1}, true},        // one edge
		{[]int{2, 1, 1}, true},     // path
		{[]int{3, 3, 3, 3}, true},  // K4
		{[]int{3, 1, 1, 1}, true},  // star
		{[]int{4, 1, 1, 1}, false}, // degree exceeds n-1
		{[]int{2, 2, 1}, false},    // odd total
		{[]int{3, 3, 1, 1}, false}, // Erdős–Gallai violation at k=2
		{[]int{-1, 1}, false},      // negative degree
		{[]int{5, 5, 4, 4, 2, 2, 2}, true},
		{[]int{6, 5, 5, 4, 3, 2, 1}, false}, // EG fails at k=3
		{[]int{7, 7, 4, 3, 3, 3, 2, 1}, false},
	}
	for _, c := range cases {
		if got := IsGraphical(c.deg); got != c.want {
			t.Errorf("IsGraphical(%v) = %v, want %v", c.deg, got, c.want)
		}
	}
}

func TestIsGraphicalMatchesHavelHakimi(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(12)
		deg := make([]int, n)
		for i := range deg {
			deg[i] = rng.IntN(n)
		}
		if got, want := IsGraphical(deg), havelHakimi(deg); got != want {
			t.Fatalf("IsGraphical(%v) = %v, Havel-Hakimi says %v", deg, got, want)
		}
	}
}

// havelHakimi is the classical constructive test, used as an independent
// oracle for Erdős–Gallai.
func havelHakimi(deg []int) bool {
	d := append([]int(nil), deg...)
	for {
		sort.Sort(sort.Reverse(sort.IntSlice(d)))
		if d[0] < 0 {
			return false
		}
		if d[0] == 0 {
			return true
		}
		k := d[0]
		if k >= len(d) {
			return false
		}
		d = d[1:]
		for i := 0; i < k; i++ {
			d[i]--
			if d[i] < 0 {
				return false
			}
		}
	}
}

func TestRealGraphDegreesAreGraphical(t *testing.T) {
	g, err := PreferentialAttachment(500, 4, rand.New(rand.NewPCG(8, 1)))
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, g.N())
	for i, v := range g.DegreeSequence() {
		deg[i] = int(v)
	}
	if !IsGraphical(deg) {
		t.Fatal("degree sequence of an actual graph rejected")
	}
}

func TestNearestGraphicalFixedPoint(t *testing.T) {
	// A graphical input must come back unchanged (up to sort order).
	in := []int{3, 3, 3, 3}
	got := NearestGraphical(in)
	want := []int{3, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NearestGraphical(%v) = %v", in, got)
		}
	}
}

func TestNearestGraphicalRepairs(t *testing.T) {
	cases := [][]int{
		{1},                // lone stub
		{5, 1, 1, 1},       // over-degree
		{2, 2, 1},          // odd sum
		{3, 3, 1, 1},       // EG violation
		{-2, 7, 100},       // garbage
		{9, 9, 9, 1, 1, 1}, // heavy head
	}
	for _, in := range cases {
		got := NearestGraphical(in)
		asInt := append([]int(nil), got...)
		if !IsGraphical(asInt) {
			t.Errorf("NearestGraphical(%v) = %v is not graphical", in, got)
		}
		if !sort.IntsAreSorted(got) {
			t.Errorf("NearestGraphical(%v) = %v not sorted ascending", in, got)
		}
		if len(got) != len(in) {
			t.Errorf("length changed: %v -> %v", in, got)
		}
	}
}

func TestNearestGraphicalEmpty(t *testing.T) {
	if got := NearestGraphical(nil); got != nil {
		t.Fatalf("NearestGraphical(nil) = %v", got)
	}
}

func TestQuickNearestGraphicalAlwaysGraphical(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		in := make([]int, len(raw))
		for i, v := range raw {
			in[i] = int(v)
		}
		out := NearestGraphical(in)
		return IsGraphical(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNearestGraphicalStaysClose(t *testing.T) {
	// Repairing an already-graphical sequence must not move it at all;
	// generate graphical sequences from random graphs.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 50; trial++ {
		g, err := ErdosRenyi(3+rng.IntN(20), 0.4, rng)
		if err != nil {
			t.Fatal(err)
		}
		deg := make([]int, g.N())
		for i, v := range g.DegreeSequence() {
			deg[i] = int(v)
		}
		got := NearestGraphical(deg)
		sort.Ints(deg)
		for i := range deg {
			if got[i] != deg[i] {
				t.Fatalf("graphical input moved: %v -> %v", deg, got)
			}
		}
	}
}
