package graph

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestUndirectedBasics(t *testing.T) {
	g, err := NewUndirected(4)
	if err != nil {
		t.Fatal(err)
	}
	added, err := g.AddEdge(0, 1)
	if err != nil || !added {
		t.Fatal("first edge rejected")
	}
	added, err = g.AddEdge(1, 0)
	if err != nil || added {
		t.Fatal("duplicate edge (reversed) not detected")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestUndirectedErrors(t *testing.T) {
	g, _ := NewUndirected(3)
	if _, err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := NewUndirected(0); err == nil {
		t.Error("empty graph accepted")
	}
	if g.HasEdge(-1, 0) {
		t.Error("HasEdge out of range true")
	}
}

func TestDegreeSequence(t *testing.T) {
	g, _ := NewUndirected(4)
	_, _ = g.AddEdge(0, 1)
	_, _ = g.AddEdge(0, 2)
	_, _ = g.AddEdge(0, 3)
	ds := g.DegreeSequence()
	want := []float64{3, 1, 1, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("degree sequence %v, want %v", ds, want)
		}
	}
	sorted := g.SortedDegreeSequence()
	if !sort.Float64sAreSorted(sorted) {
		t.Fatal("sorted degree sequence unsorted")
	}
	// Handshake: sum of degrees = 2m.
	sum := 0.0
	for _, d := range ds {
		sum += d
	}
	if int(sum) != 2*g.M() {
		t.Fatal("handshake lemma violated")
	}
}

func TestBipartiteBasics(t *testing.T) {
	g, err := NewBipartite(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NLeft() != 3 || g.NRight() != 2 {
		t.Fatal("sides wrong")
	}
	added, err := g.AddEdge(0, 1)
	if err != nil || !added {
		t.Fatal("edge rejected")
	}
	if added, _ := g.AddEdge(0, 1); added {
		t.Fatal("duplicate accepted")
	}
	_, _ = g.AddEdge(2, 1)
	_, _ = g.AddEdge(2, 0)
	left := g.LeftDegrees()
	right := g.RightDegrees()
	if left[0] != 1 || left[1] != 0 || left[2] != 2 {
		t.Fatalf("left degrees %v", left)
	}
	if right[0] != 1 || right[1] != 2 {
		t.Fatalf("right degrees %v", right)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d", g.M())
	}
	// Degree sums on both sides equal the edge count.
	var ls, rs float64
	for _, d := range left {
		ls += d
	}
	for _, d := range right {
		rs += d
	}
	if int(ls) != g.M() || int(rs) != g.M() {
		t.Fatal("bipartite handshake violated")
	}
}

func TestBipartiteErrors(t *testing.T) {
	if _, err := NewBipartite(0, 1); err == nil {
		t.Error("empty side accepted")
	}
	g, _ := NewBipartite(2, 2)
	if _, err := g.AddEdge(2, 0); err == nil {
		t.Error("left out of range accepted")
	}
	if _, err := g.AddEdge(0, 2); err == nil {
		t.Error("right out of range accepted")
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	const n, m = 2000, 3
	g, err := PreferentialAttachment(n, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Every arriving vertex adds exactly m edges: total = m (star seed)
	// + (n-m-1)*m.
	wantM := m + (n-m-1)*m
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	ds := g.SortedDegreeSequence()
	// Heavy tail: the max degree dwarfs the median; min degree >= m for
	// arriving vertices (all but the seed star's leaves).
	median := ds[n/2]
	max := ds[n-1]
	if max < 5*median {
		t.Fatalf("degree distribution not heavy-tailed: max %v median %v", max, median)
	}
	// Massive duplication at low degrees: the property Theorem 2 needs.
	distinct := map[float64]bool{}
	for _, d := range ds {
		distinct[d] = true
	}
	if len(distinct) > n/4 {
		t.Fatalf("too many distinct degrees: %d of %d", len(distinct), n)
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a, _ := PreferentialAttachment(300, 2, rand.New(rand.NewPCG(7, 7)))
	b, _ := PreferentialAttachment(300, 2, rand.New(rand.NewPCG(7, 7)))
	da, db := a.DegreeSequence(), b.DegreeSequence()
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestPreferentialAttachmentErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := PreferentialAttachment(3, 3, rng); err == nil {
		t.Error("n <= m accepted")
	}
	if _, err := PreferentialAttachment(10, 0, rng); err == nil {
		t.Error("m = 0 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	g, err := ErdosRenyi(200, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges: C(200,2)*0.1 = 1990; allow 5 sigma.
	want := 19900.0 * 0.1
	sigma := 42.3 // sqrt(19900*0.1*0.9)
	if diff := float64(g.M()) - want; diff > 5*sigma || diff < -5*sigma {
		t.Fatalf("M = %d, expected about %v", g.M(), want)
	}
	if _, err := ErdosRenyi(10, 1.5, rng); err == nil {
		t.Error("p > 1 accepted")
	}
	full, _ := ErdosRenyi(10, 1, rng)
	if full.M() != 45 {
		t.Fatalf("p=1 gave %d edges, want 45", full.M())
	}
}
