package graph

import "sort"

// IsGraphical reports whether the non-negative integer sequence deg is
// the degree sequence of some simple graph, by the Erdős–Gallai
// criterion: with d_1 >= ... >= d_n,
//
//	sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k)  for every k,
//
// and the total degree must be even. The input may be in any order and
// is not modified.
func IsGraphical(deg []int) bool {
	n := len(deg)
	if n == 0 {
		return true
	}
	d := append([]int(nil), deg...)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	total := 0
	for _, v := range d {
		if v < 0 || v > n-1 {
			return false
		}
		total += v
	}
	if total%2 != 0 {
		return false
	}
	// Erdős–Gallai with a running prefix and a pointer for min(d_i, k).
	prefix := 0
	for k := 1; k <= n; k++ {
		prefix += d[k-1]
		rhs := k * (k - 1)
		for i := k; i < n; i++ {
			if d[i] < k {
				rhs += d[i]
			} else {
				rhs += k
			}
		}
		if prefix > rhs {
			return false
		}
	}
	return true
}

// NearestGraphical repairs a rounded private degree-sequence estimate
// into a graphical sequence — the constraint the paper's Appendix B
// poses as future work ("a constraint enforcing that the output sequence
// is graphical"). The repair is a greedy heuristic, not an exact L2
// projection (exact projection onto the graphical cone is substantially
// harder): clamp into [0, n-1], fix total-degree parity, then while the
// Erdős–Gallai condition fails decrement the largest degrees, which
// strictly reduces the violated prefix sums. The result is graphical and
// close to the input; all-zeros is the worst-case fixed point, so the
// loop always terminates.
//
// The input may be in any order; the result is sorted non-decreasing
// (the order S-bar publishes). The input is not modified.
func NearestGraphical(deg []int) []int {
	n := len(deg)
	if n == 0 {
		return nil
	}
	d := append([]int(nil), deg...)
	sort.Sort(sort.Reverse(sort.IntSlice(d))) // work in non-increasing order
	total := 0
	for i, v := range d {
		if v < 0 {
			v = 0
		}
		if v > n-1 {
			v = n - 1
		}
		d[i] = v
		total += v
	}
	if total%2 != 0 {
		// Drop one unit from the largest positive degree (there is one,
		// otherwise total would be zero and even).
		for i := 0; i < n; i++ {
			if d[i] > 0 {
				d[i]--
				break
			}
		}
	}
	for !IsGraphical(d) {
		// Decrementing the two largest positive degrees preserves parity
		// and relaxes every violated Erdős–Gallai prefix constraint.
		idx := largestTwoPositive(d)
		switch len(idx) {
		case 2:
			d[idx[0]]--
			d[idx[1]]--
		case 1:
			// A lone positive degree is even (parity invariant) and can
			// only be non-graphical because no neighbor exists; shrink it.
			d[idx[0]] -= 2
			if d[idx[0]] < 0 {
				d[idx[0]] = 0
			}
		default:
			// All zeros is graphical; unreachable, but guard anyway.
			sort.Ints(d)
			return d
		}
		sort.Sort(sort.Reverse(sort.IntSlice(d)))
	}
	sort.Ints(d)
	return d
}

// largestTwoPositive returns the indices of up to two largest strictly
// positive entries of the non-increasing slice d.
func largestTwoPositive(d []int) []int {
	var idx []int
	for i, v := range d {
		if v > 0 {
			idx = append(idx, i)
			if len(idx) == 2 {
				break
			}
		}
	}
	return idx
}
