// Package graph is the graph substrate behind the paper's two
// network-shaped datasets: NetTrace (a bipartite connection graph between
// internal and external hosts) and Social Network (a friendship graph).
// The quantity the histogram tasks consume is the degree sequence, "a
// crucial measure that is widely studied" (Section 1).
package graph

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Undirected is a simple undirected graph on vertices [0, n).
type Undirected struct {
	n   int
	adj []map[int]struct{}
	m   int
}

// NewUndirected returns an empty graph on n vertices.
func NewUndirected(n int) (*Undirected, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: need at least one vertex")
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Undirected{n: n, adj: adj}, nil
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// M returns the number of edges.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts edge {u, v}, reporting whether it was new. Self-loops
// and out-of-range endpoints return an error.
func (g *Undirected) AddEdge(u, v int) (bool, error) {
	if u == v {
		return false, fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", u, v, g.n)
	}
	if _, dup := g.adj[u][v]; dup {
		return false, nil
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true, nil
}

// HasEdge reports whether {u, v} is present.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the degree of vertex v.
func (g *Undirected) Degree(v int) int { return len(g.adj[v]) }

// DegreeSequence returns all vertex degrees in vertex order.
func (g *Undirected) DegreeSequence() []float64 {
	out := make([]float64, g.n)
	for v := range g.adj {
		out[v] = float64(len(g.adj[v]))
	}
	return out
}

// SortedDegreeSequence returns the degree sequence in non-decreasing
// order — the true answer S(I) of the unattributed histogram task.
func (g *Undirected) SortedDegreeSequence() []float64 {
	out := g.DegreeSequence()
	sort.Float64s(out)
	return out
}

// Bipartite is a bipartite graph between left vertices [0, nLeft) and
// right vertices [0, nRight), the shape of the NetTrace gateway data.
type Bipartite struct {
	nLeft, nRight int
	adj           []map[int]struct{} // left vertex -> set of right vertices
	m             int
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite(nLeft, nRight int) (*Bipartite, error) {
	if nLeft < 1 || nRight < 1 {
		return nil, fmt.Errorf("graph: bipartite sides must be non-empty")
	}
	adj := make([]map[int]struct{}, nLeft)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: adj}, nil
}

// NLeft returns the number of left vertices.
func (g *Bipartite) NLeft() int { return g.nLeft }

// NRight returns the number of right vertices.
func (g *Bipartite) NRight() int { return g.nRight }

// M returns the number of edges.
func (g *Bipartite) M() int { return g.m }

// AddEdge inserts edge (l, r), reporting whether it was new.
func (g *Bipartite) AddEdge(l, r int) (bool, error) {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		return false, fmt.Errorf("graph: edge (%d,%d) outside %dx%d", l, r, g.nLeft, g.nRight)
	}
	if _, dup := g.adj[l][r]; dup {
		return false, nil
	}
	g.adj[l][r] = struct{}{}
	g.m++
	return true, nil
}

// LeftDegrees returns the degree of every left vertex.
func (g *Bipartite) LeftDegrees() []float64 {
	out := make([]float64, g.nLeft)
	for l := range g.adj {
		out[l] = float64(len(g.adj[l]))
	}
	return out
}

// RightDegrees returns the degree of every right vertex.
func (g *Bipartite) RightDegrees() []float64 {
	out := make([]float64, g.nRight)
	for _, set := range g.adj {
		for r := range set {
			out[r]++
		}
	}
	return out
}

// PreferentialAttachment grows a Barabasi-Albert graph: n vertices, each
// new vertex attaching m edges to existing vertices with probability
// proportional to their degree. The resulting degree sequence is
// power-law with exponent about 3, matching degree distributions of
// online social networks. Requires n > m >= 1.
func PreferentialAttachment(n, m int, rng *rand.Rand) (*Undirected, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("graph: need n > m >= 1, got n=%d m=%d", n, m)
	}
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	// repeated holds every edge endpoint once per incidence; sampling a
	// uniform element is degree-proportional sampling.
	repeated := make([]int, 0, 2*m*n)
	// Seed: a star on the first m+1 vertices.
	for v := 1; v <= m; v++ {
		if _, err := g.AddEdge(0, v); err != nil {
			return nil, err
		}
		repeated = append(repeated, 0, v)
	}
	for v := m + 1; v < n; v++ {
		attached := make(map[int]struct{}, m)
		for len(attached) < m {
			t := repeated[rng.IntN(len(repeated))]
			if t == v {
				continue
			}
			if _, dup := attached[t]; dup {
				continue
			}
			attached[t] = struct{}{}
		}
		// Sort targets before inserting: map iteration order is random
		// and would leak into the sampling pool, breaking determinism.
		targets := make([]int, 0, m)
		for t := range attached {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			if _, err := g.AddEdge(v, t); err != nil {
				return nil, err
			}
			repeated = append(repeated, v, t)
		}
	}
	return g, nil
}

// ErdosRenyi samples a G(n, p) random graph. Each of the n(n-1)/2
// possible edges appears independently with probability p. Intended for
// test baselines with small n; runtime is O(n^2).
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Undirected, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: probability %v outside [0,1]", p)
	}
	g, err := NewUndirected(n)
	if err != nil {
		return nil, err
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if _, err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
