package isotonic

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Brute-force oracle for weighted isotonic regression on tiny inputs:
// project by cyclic coordinate descent with feasibility projection,
// which converges to the unique minimizer of this strictly convex
// problem over the closed convex cone of sorted vectors.
func bruteForceWeighted(y, w []float64) []float64 {
	x := append([]float64(nil), y...)
	// Start from the sorted feasible point closest in order.
	x = Regress(y)
	for iter := 0; iter < 200000; iter++ {
		maxMove := 0.0
		for i := range x {
			// Optimal unconstrained coordinate is y[i]; clamp to the
			// feasible interval defined by the neighbors.
			lo := math.Inf(-1)
			hi := math.Inf(1)
			if i > 0 {
				lo = x[i-1]
			}
			if i < len(x)-1 {
				hi = x[i+1]
			}
			target := math.Min(math.Max(y[i], lo), hi)
			if move := math.Abs(target - x[i]); move > maxMove {
				maxMove = move
			}
			x[i] = target
		}
		if maxMove < 1e-12 {
			break
		}
	}
	return x
}

// weightedObjective is sum w_i (x_i - y_i)^2.
func weightedObjective(x, y, w []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += w[i] * d * d
	}
	return s
}

// For unit weights, coordinate descent and PAVA must agree.
func TestUnitWeightsAgainstCoordinateDescent(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(6)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range y {
			y[i] = math.Round(rng.NormFloat64() * 8)
			w[i] = 1
		}
		pava := Regress(y)
		brute := bruteForceWeighted(y, w)
		// Coordinate descent can stall on flat directions; compare
		// objective values, which must match at the optimum.
		op := weightedObjective(pava, y, w)
		ob := weightedObjective(brute, y, w)
		if op > ob+1e-6 {
			t.Fatalf("PAVA objective %v worse than coordinate descent %v for %v", op, ob, y)
		}
	}
}

// Weighted PAVA beats (or ties) any sorted candidate under the weighted
// objective.
func TestWeightedOptimalityAgainstCandidates(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(10)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 5
			w[i] = 0.25 + 4*rng.Float64()
		}
		sol := RegressWeighted(y, w)
		if !IsNonDecreasing(sol) {
			t.Fatalf("weighted output unsorted: %v", sol)
		}
		base := weightedObjective(sol, y, w)
		for cand := 0; cand < 50; cand++ {
			c := make([]float64, n)
			c[0] = rng.NormFloat64() * 5
			for i := 1; i < n; i++ {
				c[i] = c[i-1] + math.Abs(rng.NormFloat64())
			}
			if d := weightedObjective(c, y, w); d < base-1e-9 {
				t.Fatalf("candidate beats weighted PAVA: %v < %v", d, base)
			}
		}
		// Perturbations of the solution that stay sorted cannot improve.
		for i := 0; i < n; i++ {
			for _, delta := range []float64{-1e-4, 1e-4} {
				c := append([]float64(nil), sol...)
				c[i] += delta
				if !IsNonDecreasing(c) {
					continue
				}
				if d := weightedObjective(c, y, w); d < base-1e-12 {
					t.Fatalf("perturbation improves weighted objective at %d", i)
				}
			}
		}
	}
}

// Weighted pooling preserves the weighted mean of each pooled block, so
// the weighted sum is invariant.
func TestWeightedSumPreservation(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 4))
	y := make([]float64, 48)
	w := make([]float64, 48)
	for i := range y {
		y[i] = rng.NormFloat64() * 3
		w[i] = 0.5 + rng.Float64()
	}
	sol := RegressWeighted(y, w)
	var sy, ss float64
	for i := range y {
		sy += w[i] * y[i]
		ss += w[i] * sol[i]
	}
	if math.Abs(sy-ss) > 1e-9 {
		t.Fatalf("weighted sum changed: %v -> %v", sy, ss)
	}
}

// Scaling all weights by a constant does not change the solution.
func TestWeightScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 5))
	y := make([]float64, 20)
	w := make([]float64, 20)
	for i := range y {
		y[i] = rng.NormFloat64()
		w[i] = 0.5 + rng.Float64()
	}
	a := RegressWeighted(y, w)
	scaled := make([]float64, len(w))
	for i := range w {
		scaled[i] = w[i] * 7.5
	}
	b := RegressWeighted(y, scaled)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("solution changed under weight scaling")
		}
	}
}
