package isotonic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// The three worked examples from Example 4 of the paper.
func TestPaperExample4(t *testing.T) {
	cases := []struct {
		in, want []float64
	}{
		{[]float64{9, 10, 14}, []float64{9, 10, 14}},
		{[]float64{9, 14, 10}, []float64{9, 12, 12}},
		{[]float64{14, 9, 10, 15}, []float64{11, 11, 11, 15}},
	}
	for _, c := range cases {
		got := Regress(c.in)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Regress(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPaperExample4Distance(t *testing.T) {
	// The paper notes ||s~ - s||^2 = 14 for the third example.
	in := []float64{14, 9, 10, 15}
	if d := SquaredDistance(in, Regress(in)); math.Abs(d-14) > 1e-12 {
		t.Fatalf("squared distance %v, want 14", d)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Regress(nil); len(got) != 0 {
		t.Fatal("Regress(nil) not empty")
	}
	if got := Regress([]float64{3.5}); got[0] != 3.5 {
		t.Fatal("single element changed")
	}
	if got := MinMax(nil); len(got) != 0 {
		t.Fatal("MinMax(nil) not empty")
	}
}

func TestSortedInputUnchanged(t *testing.T) {
	in := []float64{-3, -1, 0, 0, 2, 7, 7, 9}
	if got := Regress(in); !almostEqual(got, in, 0) {
		t.Fatalf("sorted input changed: %v", got)
	}
}

func TestReverseSortedPoolsToMean(t *testing.T) {
	in := []float64{5, 4, 3, 2, 1}
	got := Regress(in)
	for _, v := range got {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("reverse-sorted input should pool to global mean 3, got %v", got)
		}
	}
}

func TestInputNotModified(t *testing.T) {
	in := []float64{3, 1, 2}
	cp := append([]float64(nil), in...)
	Regress(in)
	MinMax(in)
	MinMaxUpper(in)
	RegressDescending(in)
	if !almostEqual(in, cp, 0) {
		t.Fatal("input slice was modified")
	}
}

func TestWeightedSimple(t *testing.T) {
	// Heavier weight on the first element pulls the pooled mean toward it.
	got := RegressWeighted([]float64{4, 0}, []float64{3, 1})
	want := (4*3.0 + 0*1.0) / 4.0
	if math.Abs(got[0]-want) > 1e-12 || math.Abs(got[1]-want) > 1e-12 {
		t.Fatalf("weighted pooling got %v, want %v", got, want)
	}
}

func TestWeightedPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		RegressWeighted([]float64{1, 2}, []float64{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero weight did not panic")
			}
		}()
		RegressWeighted([]float64{1, 2}, []float64{1, 0})
	}()
}

func TestDescending(t *testing.T) {
	in := []float64{10, 2, 3, 1}
	got := RegressDescending(in)
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1]+1e-12 {
			t.Fatalf("descending output not non-increasing: %v", got)
		}
	}
	// Mirror image of the ascending solution on the reversed input.
	rev := []float64{1, 3, 2, 10}
	asc := Regress(rev)
	for i := range got {
		if math.Abs(got[i]-asc[len(asc)-1-i]) > 1e-12 {
			t.Fatalf("descending %v is not the mirror of ascending %v", got, asc)
		}
	}
}

func TestMinMaxAgreesWithPAVA(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(40)
		y := make([]float64, n)
		for i := range y {
			y[i] = math.Round(rng.NormFloat64()*10) / 2
		}
		pava := Regress(y)
		lower := MinMax(y)
		upper := MinMaxUpper(y)
		if !almostEqual(pava, lower, 1e-9) {
			t.Fatalf("PAVA %v != MinMax L_k %v for input %v", pava, lower, y)
		}
		if !almostEqual(lower, upper, 1e-9) {
			t.Fatalf("Theorem 1 violated: L_k %v != U_k %v for input %v", lower, upper, y)
		}
	}
}

func TestOutputIsNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 23))
	for trial := 0; trial < 100; trial++ {
		y := make([]float64, 1+rng.IntN(100))
		for i := range y {
			y[i] = rng.NormFloat64() * 100
		}
		if got := Regress(y); !IsNonDecreasing(got) {
			t.Fatalf("output not sorted: %v", got)
		}
	}
}

func TestIdempotent(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 9))
	for trial := 0; trial < 50; trial++ {
		y := make([]float64, 1+rng.IntN(50))
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		once := Regress(y)
		twice := Regress(once)
		if !almostEqual(once, twice, 1e-12) {
			t.Fatal("projection is not idempotent")
		}
	}
}

// The projection must beat every other sorted candidate in L2. We verify
// against random sorted candidates and against local perturbations of the
// solution that keep it sorted.
func TestOptimalityAgainstCandidates(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(20)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 5
		}
		sol := Regress(y)
		base := SquaredDistance(y, sol)
		for cand := 0; cand < 30; cand++ {
			c := make([]float64, n)
			c[0] = rng.NormFloat64() * 5
			for i := 1; i < n; i++ {
				c[i] = c[i-1] + math.Abs(rng.NormFloat64())
			}
			if d := SquaredDistance(y, c); d < base-1e-9 {
				t.Fatalf("random sorted candidate beats projection: %v < %v", d, base)
			}
		}
		// Structured perturbations: nudge one coordinate while staying sorted.
		for i := 0; i < n; i++ {
			for _, delta := range []float64{-1e-3, 1e-3} {
				c := append([]float64(nil), sol...)
				c[i] += delta
				if !IsNonDecreasing(c) {
					continue
				}
				if d := SquaredDistance(y, c); d < base-1e-12 {
					t.Fatalf("perturbation at %d improves objective", i)
				}
			}
		}
	}
}

func TestTranslationEquivariance(t *testing.T) {
	// Lemma 2 of the paper: shifting the input shifts the solution.
	rng := rand.New(rand.NewPCG(3, 77))
	y := make([]float64, 30)
	for i := range y {
		y[i] = rng.NormFloat64() * 4
	}
	const delta = 12.75
	shifted := make([]float64, len(y))
	for i := range y {
		shifted[i] = y[i] + delta
	}
	a := Regress(y)
	b := Regress(shifted)
	for i := range a {
		if math.Abs(a[i]+delta-b[i]) > 1e-9 {
			t.Fatal("projection is not translation-equivariant")
		}
	}
}

func TestMeanPreservation(t *testing.T) {
	// Pooling preserves the global sum (projection onto a set containing
	// all constant shifts of the solution preserves the mean).
	rng := rand.New(rand.NewPCG(19, 4))
	y := make([]float64, 64)
	for i := range y {
		y[i] = rng.NormFloat64() * 3
	}
	sol := Regress(y)
	var sy, ss float64
	for i := range y {
		sy += y[i]
		ss += sol[i]
	}
	if math.Abs(sy-ss) > 1e-9 {
		t.Fatalf("sum changed: %v -> %v", sy, ss)
	}
}

func TestQuickSortedFixedPoint(t *testing.T) {
	f := func(raw []float64) bool {
		y := sanitize(raw, 30)
		sorted := Regress(y) // sorted by construction
		again := Regress(sorted)
		return almostEqual(sorted, again, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinMaxEqualsPAVA(t *testing.T) {
	f := func(raw []float64) bool {
		y := sanitize(raw, 25)
		return almostEqual(Regress(y), MinMax(y), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContraction(t *testing.T) {
	// Projection onto a convex set is a contraction:
	// ||P(a)-P(b)|| <= ||a-b||.
	f := func(rawA, rawB []float64) bool {
		n := 20
		a := sanitize(rawA, n)
		b := sanitize(rawB, n)
		if len(a) < len(b) {
			b = b[:len(a)]
		} else {
			a = a[:len(b)]
		}
		if len(a) == 0 {
			return true
		}
		pa, pb := Regress(a), Regress(b)
		return SquaredDistance(pa, pb) <= SquaredDistance(a, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sanitize converts arbitrary quick-generated floats into a bounded,
// finite vector with at most maxN entries.
func sanitize(raw []float64, maxN int) []float64 {
	if len(raw) > maxN {
		raw = raw[:maxN]
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = 100 * math.Tanh(v/100)
	}
	return out
}

func BenchmarkRegress(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	y := make([]float64, 65536)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Regress(y)
	}
}

func BenchmarkMinMax4096(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	y := make([]float64, 4096)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinMax(y)
	}
}
