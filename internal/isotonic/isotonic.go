// Package isotonic implements least-squares regression under ordering
// constraints (isotonic regression). It is the computational core of the
// paper's unattributed-histogram estimator S-bar: given the noisy sorted
// query answer s~, the minimum-L2 consistent answer is the isotonic
// regression of s~ (Hay et al., Theorem 1).
//
// Two independent algorithms are provided:
//
//   - Regress: the classical pool-adjacent-violators algorithm (PAVA),
//     which runs in linear time (Barlow et al., 1972).
//   - MinMax: the closed-form min-max characterization stated in
//     Theorem 1 of the paper, in O(n^2) time. It exists to cross-check
//     PAVA in tests and to mirror the paper's presentation.
package isotonic

// Regress returns the non-decreasing vector closest to y in L2, computed
// by the pool-adjacent-violators algorithm in O(n) time. The input is not
// modified. Regress of an already sorted vector returns a copy of it.
func Regress(y []float64) []float64 {
	w := make([]float64, len(y))
	for i := range w {
		w[i] = 1
	}
	return RegressWeighted(y, w)
}

// RegressWeighted returns the non-decreasing vector minimizing
// sum_i w[i]*(x[i]-y[i])^2 over non-decreasing x. All weights must be
// strictly positive. It panics if len(w) != len(y) or any weight is not
// positive.
func RegressWeighted(y, w []float64) []float64 {
	if len(w) != len(y) {
		panic("isotonic: weight and value lengths differ")
	}
	n := len(y)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Stack of merged blocks. Each block stores its weighted mean, total
	// weight, and the number of original elements it covers.
	type block struct {
		mean   float64
		weight float64
		count  int
	}
	blocks := make([]block, 0, n)
	for i := 0; i < n; i++ {
		if !(w[i] > 0) {
			panic("isotonic: weights must be strictly positive")
		}
		cur := block{mean: y[i], weight: w[i], count: 1}
		// Merge while the order constraint is violated against the block
		// below. Pooling replaces both blocks by their weighted mean,
		// which is the L2-optimal constant on the pooled stretch.
		for len(blocks) > 0 && blocks[len(blocks)-1].mean > cur.mean {
			prev := blocks[len(blocks)-1]
			blocks = blocks[:len(blocks)-1]
			totalW := prev.weight + cur.weight
			cur = block{
				mean:   (prev.mean*prev.weight + cur.mean*cur.weight) / totalW,
				weight: totalW,
				count:  prev.count + cur.count,
			}
		}
		blocks = append(blocks, cur)
	}
	i := 0
	for _, b := range blocks {
		for j := 0; j < b.count; j++ {
			out[i] = b.mean
			i++
		}
	}
	return out
}

// RegressDescending returns the non-increasing vector closest to y in L2.
// Figure 7 of the paper presents the NetTrace unattributed histogram in
// descending order; this is the matching projection.
func RegressDescending(y []float64) []float64 {
	neg := make([]float64, len(y))
	for i, v := range y {
		neg[i] = -v
	}
	out := Regress(neg)
	for i := range out {
		out[i] = -out[i]
	}
	return out
}

// MinMax evaluates the Theorem 1 closed form directly:
//
//	s[k] = L_k = min_{j in [k,n]} max_{i in [1,j]} mean(y[i..j])
//
// in O(n^2) time and O(n) space. The theorem also states s[k] = U_k with
// U_k = max_{i in [1,k]} min_{j in [i,n]} mean(y[i..j]); MinMaxUpper
// computes that form. Production code should use Regress; these exist as
// independent oracles for tests.
func MinMax(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	prefix := prefixSums(y)
	// A[j] = max_{i<=j} mean(y[i..j]) for each j, then suffix-minimize.
	// The inner max is independent of k, so the whole table is O(n^2).
	a := make([]float64, n)
	for j := 0; j < n; j++ {
		best := mean(prefix, 0, j)
		for i := 1; i <= j; i++ {
			if m := mean(prefix, i, j); m > best {
				best = m
			}
		}
		a[j] = best
	}
	suffixMin := a[n-1]
	out[n-1] = suffixMin
	for k := n - 2; k >= 0; k-- {
		if a[k] < suffixMin {
			suffixMin = a[k]
		}
		out[k] = suffixMin
	}
	return out
}

// MinMaxUpper evaluates the U_k form of Theorem 1:
//
//	s[k] = U_k = max_{i in [1,k]} min_{j in [i,n]} mean(y[i..j]).
func MinMaxUpper(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	prefix := prefixSums(y)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		best := mean(prefix, i, n-1)
		for j := i; j < n; j++ {
			if m := mean(prefix, i, j); m < best {
				best = m
			}
		}
		b[i] = best
	}
	prefixMax := b[0]
	out[0] = prefixMax
	for k := 1; k < n; k++ {
		if b[k] > prefixMax {
			prefixMax = b[k]
		}
		out[k] = prefixMax
	}
	return out
}

// IsNonDecreasing reports whether x is sorted in non-decreasing order.
func IsNonDecreasing(x []float64) bool {
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			return false
		}
	}
	return true
}

// SquaredDistance returns ||a-b||_2^2. It panics if the lengths differ.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("isotonic: length mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func prefixSums(y []float64) []float64 {
	prefix := make([]float64, len(y)+1)
	for i, v := range y {
		prefix[i+1] = prefix[i] + v
	}
	return prefix
}

// mean returns the average of y[i..j] inclusive given prefix sums.
func mean(prefix []float64, i, j int) float64 {
	return (prefix[j+1] - prefix[i]) / float64(j-i+1)
}
