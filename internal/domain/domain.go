// Package domain maps range-attribute values onto the contiguous integer
// domain [0, n) that the histogram queries operate over. The paper's
// tasks use three attribute kinds: IP addresses whose natural hierarchy
// matches the H query's tree (NetTrace), timestamps binned at 16 units
// per day (Search Logs), and arbitrary ordered values (generic
// histograms).
package domain

import (
	"fmt"
	"sort"
)

// Ordinal maps values of any ordered type onto [0, n) by rank within a
// fixed sorted universe.
type Ordinal[T comparable] struct {
	values []T
	index  map[T]int
}

// NewOrdinal builds an Ordinal domain over the given values in the given
// order. Values must be distinct.
func NewOrdinal[T comparable](values []T) (*Ordinal[T], error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("domain: empty ordinal universe")
	}
	idx := make(map[T]int, len(values))
	for i, v := range values {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("domain: duplicate value %v", v)
		}
		idx[v] = i
	}
	return &Ordinal[T]{values: append([]T(nil), values...), index: idx}, nil
}

// Size returns the number of values in the universe.
func (d *Ordinal[T]) Size() int { return len(d.values) }

// Index returns the position of v in the universe.
func (d *Ordinal[T]) Index(v T) (int, error) {
	i, ok := d.index[v]
	if !ok {
		return 0, fmt.Errorf("domain: value %v not in universe", v)
	}
	return i, nil
}

// Value returns the universe element at position i.
func (d *Ordinal[T]) Value(i int) (T, error) {
	var zero T
	if i < 0 || i >= len(d.values) {
		return zero, fmt.Errorf("domain: index %d out of range [0,%d)", i, len(d.values))
	}
	return d.values[i], nil
}

// IntRange is an integer interval domain [Lo, Hi) mapping the value v to
// v-Lo. It is the natural domain for pre-binned data.
type IntRange struct {
	Lo, Hi int
}

// NewIntRange returns the integer domain [lo, hi).
func NewIntRange(lo, hi int) (*IntRange, error) {
	if hi <= lo {
		return nil, fmt.Errorf("domain: empty range [%d,%d)", lo, hi)
	}
	return &IntRange{Lo: lo, Hi: hi}, nil
}

// Size returns hi-lo.
func (d *IntRange) Size() int { return d.Hi - d.Lo }

// Index maps v to its offset.
func (d *IntRange) Index(v int) (int, error) {
	if v < d.Lo || v >= d.Hi {
		return 0, fmt.Errorf("domain: %d outside [%d,%d)", v, d.Lo, d.Hi)
	}
	return v - d.Lo, nil
}

// Buckets maps continuous float values to [0, n) given ascending bucket
// boundaries: value v falls in bucket i when bounds[i] <= v < bounds[i+1].
type Buckets struct {
	bounds []float64
}

// NewBuckets builds a bucket domain from strictly ascending boundaries;
// len(bounds) must be at least 2, giving len(bounds)-1 buckets.
func NewBuckets(bounds []float64) (*Buckets, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("domain: need at least 2 boundaries")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("domain: boundaries not strictly ascending at %d", i)
		}
	}
	return &Buckets{bounds: append([]float64(nil), bounds...)}, nil
}

// Size returns the number of buckets.
func (d *Buckets) Size() int { return len(d.bounds) - 1 }

// Index returns the bucket holding v.
func (d *Buckets) Index(v float64) (int, error) {
	if v < d.bounds[0] || v >= d.bounds[len(d.bounds)-1] {
		return 0, fmt.Errorf("domain: %v outside [%v,%v)", v, d.bounds[0], d.bounds[len(d.bounds)-1])
	}
	// First boundary strictly greater than v, minus one.
	i := sort.SearchFloat64s(d.bounds, v)
	if i < len(d.bounds) && d.bounds[i] == v {
		return i, nil
	}
	return i - 1, nil
}
