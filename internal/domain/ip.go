package domain

import (
	"fmt"
	"net/netip"
)

// IPv4 maps addresses inside a fixed IPv4 prefix onto [0, 2^(32-bits)).
// The mapping preserves the address hierarchy: any sub-prefix corresponds
// to a contiguous, power-of-two aligned index range, which is exactly the
// structure the H query's tree exploits (the paper's source addresses
// 000, 001, 01*, ... in Figure 2).
type IPv4 struct {
	prefix netip.Prefix
	base   uint32
}

// NewIPv4 builds the domain of all addresses inside the CIDR prefix,
// e.g. "128.119.0.0/16" for a /16 gateway. Only IPv4 prefixes up to /32
// are supported.
func NewIPv4(cidr string) (*IPv4, error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return nil, fmt.Errorf("domain: %w", err)
	}
	p = p.Masked()
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("domain: %s is not an IPv4 prefix", cidr)
	}
	return &IPv4{prefix: p, base: ipv4ToUint(p.Addr())}, nil
}

// Size returns the number of addresses in the prefix.
func (d *IPv4) Size() int {
	return 1 << (32 - d.prefix.Bits())
}

// Bits returns the prefix length.
func (d *IPv4) Bits() int { return d.prefix.Bits() }

// Index maps a dotted-quad address inside the prefix to its offset.
func (d *IPv4) Index(addr string) (int, error) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return 0, fmt.Errorf("domain: %w", err)
	}
	if !a.Is4() || !d.prefix.Contains(a) {
		return 0, fmt.Errorf("domain: %s outside prefix %s", addr, d.prefix)
	}
	return int(ipv4ToUint(a) - d.base), nil
}

// Addr returns the address at offset i.
func (d *IPv4) Addr(i int) (string, error) {
	if i < 0 || i >= d.Size() {
		return "", fmt.Errorf("domain: index %d out of range [0,%d)", i, d.Size())
	}
	v := d.base + uint32(i)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String(), nil
}

// SubPrefixRange returns the half-open index range [lo, hi) covered by a
// sub-prefix of the domain, e.g. the range for "128.119.4.0/24" inside a
// /16 domain. Such ranges align exactly with H-tree nodes when the
// branching factor is a power of two.
func (d *IPv4) SubPrefixRange(cidr string) (lo, hi int, err error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return 0, 0, fmt.Errorf("domain: %w", err)
	}
	p = p.Masked()
	if !p.Addr().Is4() || p.Bits() < d.prefix.Bits() || !d.prefix.Contains(p.Addr()) {
		return 0, 0, fmt.Errorf("domain: %s is not a sub-prefix of %s", cidr, d.prefix)
	}
	lo = int(ipv4ToUint(p.Addr()) - d.base)
	return lo, lo + 1<<(32-p.Bits()), nil
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
