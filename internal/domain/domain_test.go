package domain

import (
	"testing"
	"time"
)

func TestOrdinal(t *testing.T) {
	d, err := NewOrdinal([]string{"A", "B", "C", "D", "F"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 5 {
		t.Fatal("size wrong")
	}
	i, err := d.Index("C")
	if err != nil || i != 2 {
		t.Fatalf("Index(C) = %d, %v", i, err)
	}
	if _, err := d.Index("E"); err == nil {
		t.Fatal("unknown value accepted")
	}
	v, err := d.Value(4)
	if err != nil || v != "F" {
		t.Fatalf("Value(4) = %q, %v", v, err)
	}
	if _, err := d.Value(5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestOrdinalRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewOrdinal([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewOrdinal([]string{}); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestIntRange(t *testing.T) {
	d, err := NewIntRange(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 10 {
		t.Fatal("size wrong")
	}
	if i, err := d.Index(15); err != nil || i != 5 {
		t.Fatalf("Index(15) = %d, %v", i, err)
	}
	if _, err := d.Index(20); err == nil {
		t.Fatal("hi bound accepted")
	}
	if _, err := NewIntRange(5, 5); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestBuckets(t *testing.T) {
	d, err := NewBuckets([]float64{0, 1, 2.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatal("size wrong")
	}
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {0.99, 0}, {1, 1}, {2.49, 1}, {2.5, 2}, {9.999, 2}}
	for _, c := range cases {
		if got, err := d.Index(c.v); err != nil || got != c.want {
			t.Errorf("Index(%v) = %d, %v; want %d", c.v, got, err, c.want)
		}
	}
	for _, v := range []float64{-0.1, 10, 11} {
		if _, err := d.Index(v); err == nil {
			t.Errorf("Index(%v) accepted", v)
		}
	}
	if _, err := NewBuckets([]float64{1, 1}); err == nil {
		t.Fatal("non-ascending boundaries accepted")
	}
	if _, err := NewBuckets([]float64{1}); err == nil {
		t.Fatal("single boundary accepted")
	}
}

func TestIPv4(t *testing.T) {
	d, err := NewIPv4("128.119.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 65536 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.Bits() != 16 {
		t.Fatalf("bits = %d", d.Bits())
	}
	i, err := d.Index("128.119.1.2")
	if err != nil || i != 258 {
		t.Fatalf("Index = %d, %v; want 258", i, err)
	}
	if _, err := d.Index("10.0.0.1"); err == nil {
		t.Fatal("outside address accepted")
	}
	if _, err := d.Index("not-an-ip"); err == nil {
		t.Fatal("garbage accepted")
	}
	addr, err := d.Addr(258)
	if err != nil || addr != "128.119.1.2" {
		t.Fatalf("Addr(258) = %q, %v", addr, err)
	}
	if _, err := d.Addr(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestIPv4SubPrefixRange(t *testing.T) {
	d, err := NewIPv4("128.119.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := d.SubPrefixRange("128.119.4.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if lo != 4*256 || hi != 5*256 {
		t.Fatalf("range = [%d,%d)", lo, hi)
	}
	// A sub-prefix range is power-of-two sized and aligned: it matches an
	// H-tree node exactly.
	if size := hi - lo; size&(size-1) != 0 || lo%size != 0 {
		t.Fatal("sub-prefix range not aligned")
	}
	if _, _, err := d.SubPrefixRange("10.0.0.0/24"); err == nil {
		t.Fatal("foreign prefix accepted")
	}
	if _, _, err := d.SubPrefixRange("128.0.0.0/8"); err == nil {
		t.Fatal("super-prefix accepted")
	}
}

func TestIPv4RejectsNonV4(t *testing.T) {
	if _, err := NewIPv4("2001:db8::/32"); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
	if _, err := NewIPv4("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTimeBins(t *testing.T) {
	start := time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)
	d, err := NewTimeBins(start, 90*time.Minute, 32)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 32 {
		t.Fatal("size wrong")
	}
	if i, err := d.Index(start); err != nil || i != 0 {
		t.Fatalf("Index(start) = %d, %v", i, err)
	}
	if i, err := d.Index(start.Add(89 * time.Minute)); err != nil || i != 0 {
		t.Fatalf("Index(+89m) = %d, %v", i, err)
	}
	if i, err := d.Index(start.Add(90 * time.Minute)); err != nil || i != 1 {
		t.Fatalf("Index(+90m) = %d, %v", i, err)
	}
	if _, err := d.Index(start.Add(-time.Second)); err == nil {
		t.Fatal("pre-start accepted")
	}
	if _, err := d.Index(start.Add(32 * 90 * time.Minute)); err == nil {
		t.Fatal("post-end accepted")
	}
	bs, err := d.BinStart(2)
	if err != nil || !bs.Equal(start.Add(180*time.Minute)) {
		t.Fatalf("BinStart(2) = %v, %v", bs, err)
	}
	if _, err := d.BinStart(32); err == nil {
		t.Fatal("out-of-range bin accepted")
	}
}

func TestSearchLogsBins(t *testing.T) {
	d := SearchLogsBins(16 * 10)
	if d.Width() != 90*time.Minute {
		t.Fatalf("width = %v, want 90m (16 units/day)", d.Width())
	}
	if !d.Start().Equal(time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("start = %v", d.Start())
	}
	// Exactly 16 bins per day.
	day2 := time.Date(2004, 1, 2, 0, 0, 0, 0, time.UTC)
	if i, err := d.Index(day2); err != nil || i != 16 {
		t.Fatalf("Index(Jan 2) = %d, %v; want 16", i, err)
	}
}

func TestNewTimeBinsRejectsBadArgs(t *testing.T) {
	start := time.Now()
	if _, err := NewTimeBins(start, 0, 4); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewTimeBins(start, time.Hour, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}
