package domain

import (
	"fmt"
	"time"
)

// TimeBins maps timestamps to [0, n) by fixed-width binning from a start
// instant. The paper's Search Logs task divides each day into 16 units of
// time from Jan 1, 2004; SearchLogsBins constructs exactly that domain.
type TimeBins struct {
	start time.Time
	width time.Duration
	n     int
}

// NewTimeBins returns a domain of n bins of the given width starting at
// start.
func NewTimeBins(start time.Time, width time.Duration, n int) (*TimeBins, error) {
	if width <= 0 {
		return nil, fmt.Errorf("domain: non-positive bin width %v", width)
	}
	if n < 1 {
		return nil, fmt.Errorf("domain: need at least one bin")
	}
	return &TimeBins{start: start, width: width, n: n}, nil
}

// SearchLogsBins returns the paper's Search Logs domain: 16 bins per day
// (90 minutes each) from Jan 1, 2004 UTC, for the given number of bins.
func SearchLogsBins(n int) *TimeBins {
	start := time.Date(2004, time.January, 1, 0, 0, 0, 0, time.UTC)
	d, err := NewTimeBins(start, 24*time.Hour/16, n)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return d
}

// Size returns the number of bins.
func (d *TimeBins) Size() int { return d.n }

// Start returns the first instant of the domain.
func (d *TimeBins) Start() time.Time { return d.start }

// Width returns the bin width.
func (d *TimeBins) Width() time.Duration { return d.width }

// Index returns the bin holding ts.
func (d *TimeBins) Index(ts time.Time) (int, error) {
	if ts.Before(d.start) {
		return 0, fmt.Errorf("domain: %v before domain start %v", ts, d.start)
	}
	i := int(ts.Sub(d.start) / d.width)
	if i >= d.n {
		return 0, fmt.Errorf("domain: %v beyond bin %d", ts, d.n-1)
	}
	return i, nil
}

// BinStart returns the first instant of bin i.
func (d *TimeBins) BinStart(i int) (time.Time, error) {
	if i < 0 || i >= d.n {
		return time.Time{}, fmt.Errorf("domain: bin %d out of range [0,%d)", i, d.n)
	}
	return d.start.Add(time.Duration(i) * d.width), nil
}
