// Package qcache is a sharded LRU answer cache for the serving read
// path. Once a release is minted, every answer it can give is a pure
// deterministic function of (release version, query batch) — noise was
// spent at mint time, serving is post-processing — so identical batches
// against an unchanged release can be answered from memory without
// touching the store or the query plan at all.
//
// Keys carry the namespace, release name, release *version*, and a hash
// of the spec batch, so a re-minted release can never serve a
// predecessor's answers even before explicit invalidation; the store
// additionally calls Invalidate on every put, delete, TTL expiry, and
// capacity eviction so dead entries free their memory immediately.
// Because hashes can collide, every entry retains its spec batch and a
// lookup only hits when the stored batch compares equal.
//
// Concurrent misses for the same key are collapsed by single-flight
// stampede protection: one caller computes, the rest wait and share the
// result. Entries are sharded by (namespace, name) — a release's whole
// cache footprint lives in one shard, so invalidation touches one lock.
package qcache

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
)

// Key identifies one cached answer batch. Hash and Len fingerprint the
// spec batch; the cache verifies the full batch on every hit, so a
// collision degrades to a miss, never to wrong answers.
type Key struct {
	Namespace string
	Name      string
	Version   int
	Hash      uint64
	Len       int
}

// nameKey scopes invalidation: all versions and batches of one release.
type nameKey struct {
	ns   string
	name string
}

// shardCount is fixed: invalidation and single-flight are per-release,
// and releases spread across shards by name hash.
const shardCount = 8

// Cache is a sharded LRU answer cache, generic over the spec-batch type
// B (one Cache per query family: range batches, rectangle batches). All
// methods are safe for concurrent use. The zero value is not usable;
// construct with New.
type Cache[B any] struct {
	eq       func(a, b B) bool
	clone    func(B) B
	capacity int // cache-wide entry bound
	shards   [shardCount]*shard[B]

	// total is the cache-wide entry count. The capacity bound is global
	// — a single hot release may fill the whole cache even though its
	// entries live in one shard — with eviction localized to the
	// inserting shard (LRU order is per-shard, the bound is exact).
	total  atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

type entry[B any] struct {
	key     Key
	batch   B
	answers []float64
	elem    *list.Element // element of shard.recency; Value is the Key
}

// flight is one in-progress computation other callers of the same key
// can wait on.
type flight[B any] struct {
	batch   B
	done    chan struct{}
	answers []float64
	err     error
}

type shard[B any] struct {
	mu      sync.Mutex
	items   map[Key]*entry[B]
	recency *list.List // front = most recently used
	byName  map[nameKey]map[Key]struct{}
	flights map[Key]*flight[B]
}

// New returns a cache bounded to capacity entries cache-wide (one hot
// release may fill all of it; eviction is LRU within the inserting
// shard), using eq to verify that a stored spec batch matches a
// looked-up one
// and clone to take a private copy of a batch before retaining it (so a
// caller reusing its spec buffer can only cause misses, never wrong
// answers). It panics if capacity is not positive or either func is nil.
func New[B any](capacity int, eq func(a, b B) bool, clone func(B) B) *Cache[B] {
	if capacity <= 0 {
		panic("qcache: capacity must be positive")
	}
	if eq == nil || clone == nil {
		panic("qcache: nil batch equality or clone")
	}
	c := &Cache[B]{
		eq:       eq,
		clone:    clone,
		capacity: capacity,
	}
	for i := range c.shards {
		c.shards[i] = &shard[B]{
			items:   make(map[Key]*entry[B]),
			recency: list.New(),
			byName:  make(map[nameKey]map[Key]struct{}),
			flights: make(map[Key]*flight[B]),
		}
	}
	return c
}

// shardFor hashes (namespace, name) with FNV-1a, so every batch against
// one release — and its invalidation — lands in a single shard.
func (c *Cache[B]) shardFor(ns, name string) *shard[B] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ns); i++ {
		h = (h ^ uint64(ns[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return c.shards[h%shardCount]
}

// Do returns the cached answers for (k, batch), or computes, caches, and
// returns them. Concurrent Do calls for the same key share one compute
// (single-flight); a compute error is returned to every waiter and never
// cached. The returned slice is always the caller's to keep: hits and
// shared flights return a fresh copy, never the cache's own backing
// array.
func (c *Cache[B]) Do(k Key, batch B, compute func() ([]float64, error)) ([]float64, error) {
	sh := c.shardFor(k.Namespace, k.Name)
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok && c.eq(e.batch, batch) {
		sh.recency.MoveToFront(e.elem)
		answers := e.answers
		sh.mu.Unlock()
		c.hits.Add(1)
		// Copy outside the shard lock: answer slices are immutable once
		// stored (storeLocked replaces them wholesale, never mutates), so
		// a large hit's memcpy must not serialize the shard.
		return append([]float64(nil), answers...), nil
	}
	if f, ok := sh.flights[k]; ok {
		if !c.eq(f.batch, batch) {
			// Hash collision with a different batch mid-flight: compute
			// unshared rather than waiting on the wrong answer.
			sh.mu.Unlock()
			c.misses.Add(1)
			return compute()
		}
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		// The flight absorbed a would-be stampede: count it as a hit.
		c.hits.Add(1)
		return append([]float64(nil), f.answers...), nil
	}
	f := &flight[B]{batch: batch, done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	// The flight must be resolved even if compute panics (an external
	// Release implementation can reach arbitrary user code): otherwise
	// every later Do for this key would block on done forever. The
	// deferred cleanup fails the flight and lets the panic propagate.
	finished := false
	defer func() {
		if finished {
			return
		}
		f.err = errors.New("qcache: compute panicked")
		close(f.done)
		sh.mu.Lock()
		delete(sh.flights, k)
		sh.mu.Unlock()
	}()
	answers, err := compute()
	finished = true
	f.answers, f.err = answers, err
	close(f.done)

	sh.mu.Lock()
	delete(sh.flights, k)
	if err == nil {
		c.storeLocked(sh, k, c.clone(batch), append([]float64(nil), answers...))
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// DoInto is Do for buffer-reusing callers: answers are appended to dst
// and the extended slice returned, so a serving loop holding a pooled
// result buffer pays no allocation on a cache hit. compute receives an
// empty slice with capacity for the batch and must return it extended
// with the answers; the slice it returns is retained by the cache, so
// compute must never return memory the caller will reuse. Single-flight
// and error semantics match Do. On error dst is returned truncated to
// its original length.
func (c *Cache[B]) DoInto(dst []float64, k Key, batch B, compute func(dst []float64) ([]float64, error)) ([]float64, error) {
	keep := len(dst)
	sh := c.shardFor(k.Namespace, k.Name)
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok && c.eq(e.batch, batch) {
		sh.recency.MoveToFront(e.elem)
		answers := e.answers
		sh.mu.Unlock()
		c.hits.Add(1)
		// Copy outside the shard lock; stored answer slices are immutable
		// (see Do), so appending from one without the lock is safe.
		return append(dst, answers...), nil
	}
	if f, ok := sh.flights[k]; ok {
		if !c.eq(f.batch, batch) {
			sh.mu.Unlock()
			c.misses.Add(1)
			out, err := compute(dst)
			if err != nil {
				return dst[:keep], err
			}
			return out, nil
		}
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return dst[:keep], f.err
		}
		c.hits.Add(1)
		return append(dst, f.answers...), nil
	}
	f := &flight[B]{batch: batch, done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	finished := false
	defer func() {
		if finished {
			return
		}
		f.err = errors.New("qcache: compute panicked")
		close(f.done)
		sh.mu.Lock()
		delete(sh.flights, k)
		sh.mu.Unlock()
	}()
	// Compute into a fresh owned slice, not dst: waiters read f.answers
	// after done closes, which may be after the caller has already
	// recycled dst. The owned slice is handed to the cache uncopied.
	answers, err := compute(make([]float64, 0, k.Len))
	finished = true
	f.answers, f.err = answers, err
	close(f.done)

	sh.mu.Lock()
	delete(sh.flights, k)
	if err == nil {
		c.storeLocked(sh, k, c.clone(batch), answers)
	}
	sh.mu.Unlock()
	if err != nil {
		return dst[:keep], err
	}
	return append(dst, answers...), nil
}

// storeLocked inserts (replacing any colliding entry) and evicts the
// shard's LRU entries until the cache-wide bound holds again. Evicting
// locally keeps the bound exact without a global recency lock: the
// inserting shard always holds at least the entry just inserted, so
// every insert past capacity frees one.
func (c *Cache[B]) storeLocked(sh *shard[B], k Key, batch B, answers []float64) {
	if e, ok := sh.items[k]; ok {
		e.batch, e.answers = batch, answers
		sh.recency.MoveToFront(e.elem)
		return
	}
	e := &entry[B]{key: k, batch: batch, answers: answers, elem: sh.recency.PushFront(k)}
	sh.items[k] = e
	c.total.Add(1)
	nk := nameKey{k.Namespace, k.Name}
	keys := sh.byName[nk]
	if keys == nil {
		keys = make(map[Key]struct{})
		sh.byName[nk] = keys
	}
	keys[k] = struct{}{}
	for len(sh.items) > 0 && c.total.Load() > int64(c.capacity) {
		c.removeLocked(sh, sh.recency.Back().Value.(Key))
	}
}

func (c *Cache[B]) removeLocked(sh *shard[B], k Key) {
	e, ok := sh.items[k]
	if !ok {
		return
	}
	sh.recency.Remove(e.elem)
	delete(sh.items, k)
	c.total.Add(-1)
	nk := nameKey{k.Namespace, k.Name}
	if keys := sh.byName[nk]; keys != nil {
		delete(keys, k)
		if len(keys) == 0 {
			delete(sh.byName, nk)
		}
	}
}

// Invalidate drops every cached batch for the release — all versions,
// all spec batches. In-flight computations are not interrupted; their
// results land under the old version's key, which no future lookup will
// use once the store reports the new version.
func (c *Cache[B]) Invalidate(ns, name string) {
	sh := c.shardFor(ns, name)
	sh.mu.Lock()
	for k := range sh.byName[nameKey{ns, name}] {
		c.removeLocked(sh, k)
	}
	sh.mu.Unlock()
}

// Stats is a point-in-time cache scorecard.
type Stats struct {
	Hits     int64
	Misses   int64
	Entries  int
	Capacity int
}

// Stats reports hit/miss counters since construction plus the current
// entry count and configured capacity.
func (c *Cache[B]) Stats() Stats {
	s := Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Capacity: c.capacity,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += len(sh.items)
		sh.mu.Unlock()
	}
	return s
}
