package qcache

import (
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestCache(capacity int) *Cache[[]int] {
	return New(capacity, slices.Equal[[]int], slices.Clone[[]int])
}

func key(ns, name string, version int, hash uint64) Key {
	return Key{Namespace: ns, Name: name, Version: version, Hash: hash, Len: 1}
}

func TestDoCachesAndCounts(t *testing.T) {
	c := newTestCache(16)
	computes := 0
	compute := func() ([]float64, error) { computes++; return []float64{1, 2}, nil }
	k := key("ns", "rel", 1, 42)
	for i := 0; i < 3; i++ {
		got, err := c.Do(k, []int{7}, compute)
		if err != nil || !slices.Equal(got, []float64{1, 2}) {
			t.Fatalf("Do = %v, %v", got, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 16 {
		t.Fatalf("stats = %+v", st)
	}
	// A different version is a different key.
	if _, err := c.Do(key("ns", "rel", 2, 42), []int{7}, compute); err != nil {
		t.Fatal(err)
	}
	if computes != 2 {
		t.Fatalf("version bump did not recompute")
	}
}

// A hash collision (same Key, different batch) must never serve the
// other batch's answers.
func TestCollisionIsMissNotWrongAnswer(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 99)
	if _, err := c.Do(k, []int{1}, func() ([]float64, error) { return []float64{10}, nil }); err != nil {
		t.Fatal(err)
	}
	got, err := c.Do(k, []int{2}, func() ([]float64, error) { return []float64{20}, nil })
	if err != nil || got[0] != 20 {
		t.Fatalf("colliding batch answered %v, %v", got, err)
	}
}

// The returned slice must be the caller's to keep: mutating a hit's
// result must not corrupt the cache.
func TestHitReturnsPrivateCopy(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 7)
	compute := func() ([]float64, error) { return []float64{5}, nil }
	if _, err := c.Do(k, []int{1}, compute); err != nil {
		t.Fatal(err)
	}
	first, _ := c.Do(k, []int{1}, compute)
	first[0] = -1
	second, _ := c.Do(k, []int{1}, compute)
	if second[0] != 5 {
		t.Fatalf("cache corrupted by caller mutation: %v", second)
	}
}

// Mutating the spec batch after Do must not poison stored entries: the
// cache retains a private clone.
func TestBatchClonedOnStore(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 8)
	batch := []int{1}
	if _, err := c.Do(k, batch, func() ([]float64, error) { return []float64{5}, nil }); err != nil {
		t.Fatal(err)
	}
	batch[0] = 99 // caller reuses its buffer
	got, err := c.Do(k, []int{1}, func() ([]float64, error) { return []float64{-1}, nil })
	if err != nil || got[0] != 5 {
		t.Fatalf("stored batch was not cloned: %v, %v", got, err)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 3)
	boom := errors.New("boom")
	if _, err := c.Do(k, []int{1}, func() ([]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := c.Do(k, []int{1}, func() ([]float64, error) { return []float64{4}, nil })
	if err != nil || got[0] != 4 {
		t.Fatalf("recovery after error = %v, %v", got, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateDropsAllVersionsAndBatches(t *testing.T) {
	c := newTestCache(64)
	compute := func() ([]float64, error) { return []float64{1}, nil }
	for v := 1; v <= 3; v++ {
		for h := uint64(0); h < 4; h++ {
			if _, err := c.Do(key("ns", "rel", v, h), []int{int(h)}, compute); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Do(key("ns", "other", 1, 0), []int{0}, compute); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("ns", "rel")
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("after invalidate: %d entries, want 1 (the other release)", st.Entries)
	}
	// Re-querying recomputes.
	misses := c.Stats().Misses
	if _, err := c.Do(key("ns", "rel", 3, 0), []int{0}, compute); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != misses+1 {
		t.Fatal("invalidated entry served a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newTestCache(2)
	compute := func() ([]float64, error) { return []float64{1}, nil }
	k0, k1, k2 := key("ns", "rel", 1, 0), key("ns", "rel", 1, 1), key("ns", "rel", 1, 2)
	for _, k := range []Key{k0, k1, k2} {
		if _, err := c.Do(k, []int{int(k.Hash)}, compute); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("%d entries, capacity 2", st.Entries)
	}
	// k0 is the least recently used and must be gone.
	misses := c.Stats().Misses
	if _, err := c.Do(k0, []int{0}, compute); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != misses+1 {
		t.Fatal("evicted entry served a hit")
	}
}

// The capacity bound is cache-wide, not per shard: one hot release —
// whose entries all land in a single shard — may use every slot.
func TestSingleReleaseFillsWholeCapacity(t *testing.T) {
	const capacity = 40
	c := newTestCache(capacity)
	compute := func() ([]float64, error) { return []float64{1}, nil }
	for h := uint64(0); h < capacity; h++ {
		if _, err := c.Do(key("ns", "hot", 1, h), []int{int(h)}, compute); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != capacity {
		t.Fatalf("one release cached %d of %d entries", st.Entries, capacity)
	}
	// Every batch is still a hit: nothing was evicted below capacity.
	hits := c.Stats().Hits
	for h := uint64(0); h < capacity; h++ {
		if _, err := c.Do(key("ns", "hot", 1, h), []int{int(h)}, compute); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Hits - hits; got != capacity {
		t.Fatalf("%d of %d repeat batches hit", got, capacity)
	}
}

// A panicking compute must not wedge the key: the flight resolves with
// an error, the panic propagates, and the next Do recovers.
func TestComputePanicDoesNotWedgeKey(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 6)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		_, _ = c.Do(k, []int{1}, func() ([]float64, error) { panic("boom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := c.Do(k, []int{1}, func() ([]float64, error) { return []float64{3}, nil })
		if err != nil || got[0] != 3 {
			t.Errorf("Do after panic = %v, %v", got, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after compute panic")
	}
}

// Concurrent misses for one key must collapse to a single computation.
func TestSingleFlight(t *testing.T) {
	c := newTestCache(16)
	k := key("ns", "rel", 1, 5)
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]float64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Do(k, []int{1}, func() ([]float64, error) {
				computes.Add(1)
				<-gate // hold every concurrent caller in the flight
				return []float64{9}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", n)
	}
	for i, got := range results {
		if len(got) != 1 || got[0] != 9 {
			t.Fatalf("caller %d got %v", i, got)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v", st)
	}
}
