package histo2d

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative height accepted")
	}
	g, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Side() != 8 || g.Width() != 5 || g.Height() != 3 {
		t.Fatalf("padding wrong: side=%d", g.Side())
	}
	// 8x8 grid: 64 leaves of a 4-ary tree, height 4 (1,4,16,64).
	if g.TreeHeight() != 4 {
		t.Fatalf("height = %d, want 4", g.TreeHeight())
	}
	if g.Sensitivity() != 4 {
		t.Fatalf("sensitivity = %v", g.Sensitivity())
	}
}

func TestMortonRoundTrip(t *testing.T) {
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			gx, gy := mortonDecode(mortonEncode(x, y))
			if gx != x || gy != y {
				t.Fatalf("morton round trip failed at (%d,%d)", x, y)
			}
		}
	}
	// Quadrant contiguity: the four quadrants of a 4x4 block occupy
	// contiguous Morton intervals of length 4.
	if mortonEncode(0, 0) != 0 || mortonEncode(1, 1) != 3 {
		t.Fatal("Morton order not Z-curve")
	}
}

func TestMortonQuadrantsAreTreeChildren(t *testing.T) {
	g := MustNew(8, 8)
	// Every tree node's Morton interval must be a square: decode the
	// interval ends and check the node covers exactly a side x side box.
	for v := 0; v < g.NumNodes(); v++ {
		lo, hi := g.tree.Interval(v)
		side := isqrt(hi - lo)
		if side*side != hi-lo {
			t.Fatalf("node %d covers %d cells, not a square", v, hi-lo)
		}
		x0, y0 := mortonDecode(lo)
		if x0%side != 0 || y0%side != 0 {
			t.Fatalf("node %d box (%d,%d) not aligned to side %d", v, x0, y0, side)
		}
		// Every cell in the box maps into [lo, hi).
		for dx := 0; dx < side; dx++ {
			for dy := 0; dy < side; dy++ {
				m := mortonEncode(x0+dx, y0+dy)
				if m < lo || m >= hi {
					t.Fatalf("cell (%d,%d) outside node %d interval", x0+dx, y0+dy, v)
				}
			}
		}
	}
}

func TestFromCellsAndCell(t *testing.T) {
	g := MustNew(4, 4)
	cells := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	}
	counts := g.FromCells(cells)
	if counts[0] != 136 { // total
		t.Fatalf("root = %v, want 136", counts[0])
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			got, err := g.Cell(counts, x, y)
			if err != nil || got != cells[y][x] {
				t.Fatalf("Cell(%d,%d) = %v, %v", x, y, got, err)
			}
		}
	}
	if _, err := g.Cell(counts, 4, 0); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
}

func TestFromCellsPanics(t *testing.T) {
	g := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized rows accepted")
		}
	}()
	g.FromCells([][]float64{{1, 2, 3}})
}

func TestRangeSumMatchesBruteForce(t *testing.T) {
	g := MustNew(13, 9) // non-power-of-two on purpose
	rng := rand.New(rand.NewPCG(5, 5))
	cells := make([][]float64, 9)
	for y := range cells {
		cells[y] = make([]float64, 13)
		for x := range cells[y] {
			cells[y][x] = float64(rng.IntN(20))
		}
	}
	counts := g.FromCells(cells)
	for trial := 0; trial < 500; trial++ {
		x0 := rng.IntN(13)
		x1 := x0 + 1 + rng.IntN(13-x0)
		y0 := rng.IntN(9)
		y1 := y0 + 1 + rng.IntN(9-y0)
		want := 0.0
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += cells[y][x]
			}
		}
		got, err := g.RangeSum(counts, x0, y0, x1, y1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("RangeSum [%d,%d)x[%d,%d) = %v, want %v", x0, x1, y0, y1, got, want)
		}
	}
}

func TestRangeSumErrors(t *testing.T) {
	g := MustNew(4, 4)
	counts := g.FromCells(nil)
	for _, r := range [][4]int{{-1, 0, 2, 2}, {0, 0, 5, 2}, {3, 0, 2, 2}, {0, 3, 2, 2}} {
		if _, err := g.RangeSum(counts, r[0], r[1], r[2], r[3]); err == nil {
			t.Errorf("rect %v accepted", r)
		}
	}
	// Empty rectangles within bounds answer 0, matching the 1-D range
	// convention.
	for _, r := range [][4]int{{2, 0, 2, 2}, {0, 2, 4, 2}, {0, 0, 0, 0}, {4, 4, 4, 4}} {
		got, err := g.RangeSum(counts, r[0], r[1], r[2], r[3])
		if err != nil || got != 0 {
			t.Errorf("empty rect %v = %v, %v; want 0, nil", r, got, err)
		}
	}
	if _, err := g.RangeSum(make([]float64, 3), 0, 0, 1, 1); err == nil {
		t.Error("short count vector accepted")
	}
}

func TestReleaseInferConsistent(t *testing.T) {
	g := MustNew(16, 16)
	cells := make([][]float64, 16)
	for y := range cells {
		cells[y] = make([]float64, 16)
		cells[y][y] = 100 // diagonal mass
	}
	noisy := g.Release(cells, 1.0, laplace.Stream(9, 0))
	inferred := g.Infer(noisy)
	// Consistency: every node equals the sum of its 4 children.
	for v := 0; v < g.NumNodes(); v++ {
		if g.tree.IsLeaf(v) {
			continue
		}
		lo, hi := g.tree.Children(v)
		sum := 0.0
		for c := lo; c < hi; c++ {
			sum += inferred[c]
		}
		if math.Abs(inferred[v]-sum) > 1e-6 {
			t.Fatalf("node %d inconsistent", v)
		}
	}
}

func TestInferenceImprovesRectQueries(t *testing.T) {
	g := MustNew(32, 32)
	rng := rand.New(rand.NewPCG(6, 6))
	cells := make([][]float64, 32)
	for y := range cells {
		cells[y] = make([]float64, 32)
		for x := range cells[y] {
			cells[y][x] = float64(rng.IntN(10))
		}
	}
	truth := g.FromCells(cells)
	const eps, trials = 0.5, 60
	var errNoisy, errInferred stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		noisy := g.Release(cells, eps, laplace.Stream(31, trial))
		inferred := g.Infer(noisy)
		qr := laplace.Stream(32, trial)
		for q := 0; q < 30; q++ {
			x0 := qr.IntN(31)
			x1 := x0 + 1 + qr.IntN(32-x0)
			y0 := qr.IntN(31)
			y1 := y0 + 1 + qr.IntN(32-y0)
			want, _ := g.RangeSum(truth, x0, y0, x1, y1)
			ns, _ := g.RangeSum(noisy, x0, y0, x1, y1)
			is, _ := g.RangeSum(inferred, x0, y0, x1, y1)
			errNoisy.Add((ns - want) * (ns - want))
			errInferred.Add((is - want) * (is - want))
		}
	}
	if errInferred.Mean() >= errNoisy.Mean() {
		t.Fatalf("2D inference did not improve rect queries: %v vs %v",
			errInferred.Mean(), errNoisy.Mean())
	}
}

func TestZeroNegativeSubtrees2D(t *testing.T) {
	g := MustNew(4, 4)
	counts := g.FromCells([][]float64{{1, 1}, {1, 1}})
	counts[1] = -5 // first quadrant node forced negative
	g.ZeroNegativeSubtrees(counts)
	if counts[1] != 0 {
		t.Fatal("negative node survived")
	}
	lo, hi := g.tree.Children(1)
	for c := lo; c < hi; c++ {
		if counts[c] != 0 {
			t.Fatal("descendant of zeroed node survived")
		}
	}
}

func TestQuickMortonInverse(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)%1024, int(b)%1024
		gx, gy := mortonDecode(mortonEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangeSumNonNegativeOnTruth(t *testing.T) {
	g := MustNew(8, 8)
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 1))
		cells := make([][]float64, 8)
		for y := range cells {
			cells[y] = make([]float64, 8)
			for x := range cells[y] {
				cells[y][x] = float64(rng.IntN(5))
			}
		}
		counts := g.FromCells(cells)
		got, err := g.RangeSum(counts, 0, 0, 8, 8)
		return err == nil && got == counts[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRangeSum2D(b *testing.B) {
	g := MustNew(256, 256)
	cells := make([][]float64, 256)
	for y := range cells {
		cells[y] = make([]float64, 256)
	}
	counts := g.FromCells(cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RangeSum(counts, 10, 20, 200, 240); err != nil {
			b.Fatal(err)
		}
	}
}

// LevelSummedAreas is the compiled form behind the plan engine's
// quadtree-offset mode: each level's table must answer any block of
// same-level nodes as the brute-force sum of their (Morton-ordered)
// values.
func TestLevelSummedAreas(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	for _, side := range []int{1, 2, 4, 8} {
		g := MustNew(side, side)
		counts := make([]float64, g.NumNodes())
		for i := range counts {
			counts[i] = float64(rng.IntN(100)) - 20 // arbitrary, not consistent
		}
		levels := g.LevelSummedAreas(counts)
		if len(levels) != g.TreeHeight() {
			t.Fatalf("side=%d: %d levels, want %d", side, len(levels), g.TreeHeight())
		}
		for j, sat := range levels {
			lvlSide := side >> j
			stride := lvlSide + 1
			depth := g.TreeHeight() - 1 - j
			start := g.tree.LevelStart(depth)
			for y0 := 0; y0 <= lvlSide; y0++ {
				for y1 := y0; y1 <= lvlSide; y1++ {
					for x0 := 0; x0 <= lvlSide; x0++ {
						for x1 := x0; x1 <= lvlSide; x1++ {
							want := 0.0
							for m := 0; m < lvlSide*lvlSide; m++ {
								x, y := mortonDecode(m)
								if x >= x0 && x < x1 && y >= y0 && y < y1 {
									want += counts[start+m]
								}
							}
							got := sat[y1*stride+x1] - sat[y0*stride+x1] - sat[y1*stride+x0] + sat[y0*stride+x0]
							if math.Abs(got-want) > 1e-9 {
								t.Fatalf("side=%d level=%d block [%d,%d)x[%d,%d): %v, want %v",
									side, j, x0, x1, y0, y1, got, want)
							}
						}
					}
				}
			}
		}
	}
}
