// Package histo2d extends the paper's universal histograms to
// two-dimensional range queries — the extension Appendix B flags as
// future work ("we hope to extend the technique for universal histograms
// to multi-dimensional range queries").
//
// The construction reuses the one-dimensional machinery wholesale: a
// quadtree over a 2^s x 2^s grid is exactly a complete 4-ary interval
// tree over the cells in Morton (Z-curve) order, because the four Morton
// quadrants of a square are contiguous intervals. The hierarchical query
// H, its sensitivity argument (one record changes one leaf-to-root path),
// and the Theorem 3 inference therefore apply unchanged with k = 4;
// only range decomposition needs 2D geometry.
package histo2d

import (
	"fmt"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/core"
	"github.com/dphist/dphist/internal/htree"
)

// Grid is the quadtree shape over a 2D domain [0, W) x [0, H). The
// domain is padded to the smallest enclosing power-of-two square.
type Grid struct {
	w, h int // real domain
	side int // padded side, a power of two
	tree *htree.Tree
}

// New returns the grid for a W x H domain.
func New(w, h int) (*Grid, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("histo2d: domain %dx%d must be positive", w, h)
	}
	side := 1
	for side < w || side < h {
		if side > 1<<20 {
			return nil, fmt.Errorf("histo2d: domain %dx%d too large", w, h)
		}
		side *= 2
	}
	tree, err := htree.New(4, side*side)
	if err != nil {
		return nil, err
	}
	if tree.NumLeaves() != side*side {
		return nil, fmt.Errorf("histo2d: internal error: %d leaves for side %d", tree.NumLeaves(), side)
	}
	return &Grid{w: w, h: h, side: side, tree: tree}, nil
}

// MustNew is New but panics on error.
func MustNew(w, h int) *Grid {
	g, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return g
}

// Width returns the real domain width.
func (g *Grid) Width() int { return g.w }

// Height returns the real domain height.
func (g *Grid) Height() int { return g.h }

// Side returns the padded square side.
func (g *Grid) Side() int { return g.side }

// TreeHeight returns the quadtree height (the query's sensitivity).
func (g *Grid) TreeHeight() int { return g.tree.Height() }

// Sensitivity returns the L1 sensitivity of the 2D hierarchical query:
// the tree height, by the same path argument as Proposition 4.
func (g *Grid) Sensitivity() float64 { return float64(g.tree.Height()) }

// NumNodes returns the number of quadtree nodes.
func (g *Grid) NumNodes() int { return g.tree.NumNodes() }

// mortonEncode interleaves the bits of x and y (x in even positions).
func mortonEncode(x, y int) int {
	return spread(x) | spread(y)<<1
}

// mortonDecode inverts mortonEncode.
func mortonDecode(m int) (x, y int) {
	return compact(m), compact(m >> 1)
}

func spread(v int) int {
	x := uint64(v) & 0xFFFFF // 20 bits is plenty for side <= 2^20
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return int(x)
}

func compact(v int) int {
	x := uint64(v) & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return int(x)
}

// FromCells builds the true BFS quadtree counts from cells[y][x]. Rows
// may be ragged short; missing cells count zero. It panics if any row or
// the row count exceeds the real domain.
func (g *Grid) FromCells(cells [][]float64) []float64 {
	if len(cells) > g.h {
		panic(fmt.Sprintf("histo2d: %d rows exceed height %d", len(cells), g.h))
	}
	unit := make([]float64, g.side*g.side)
	for y, row := range cells {
		if len(row) > g.w {
			panic(fmt.Sprintf("histo2d: row %d has %d cells, width is %d", y, len(row), g.w))
		}
		for x, v := range row {
			unit[mortonEncode(x, y)] = v
		}
	}
	return g.tree.FromLeaves(unit)
}

// Release answers the 2D hierarchical query under eps-differential
// privacy: true quadtree counts plus Lap(height/eps) noise per node.
func (g *Grid) Release(cells [][]float64, eps float64, src *rand.Rand) []float64 {
	return core.Perturb(g.FromCells(cells), g.Sensitivity(), eps, src)
}

// Infer computes the minimum-L2 consistent quadtree (Theorem 3 with
// k = 4).
func (g *Grid) Infer(noisy []float64) []float64 {
	return core.InferTree(g.tree, noisy)
}

// ZeroNegativeSubtrees applies the Section 4.2 sparsity heuristic to a
// quadtree count vector in place and returns it.
func (g *Grid) ZeroNegativeSubtrees(counts []float64) []float64 {
	return core.ZeroNegativeSubtrees(g.tree, counts)
}

// IsConsistent reports whether every internal quadtree node equals the
// sum of its children up to tol.
func (g *Grid) IsConsistent(counts []float64, tol float64) bool {
	return g.tree.IsConsistent(counts, tol)
}

// Cell returns the released count of cell (x, y) from a BFS count
// vector.
func (g *Grid) Cell(counts []float64, x, y int) (float64, error) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return 0, fmt.Errorf("histo2d: cell (%d,%d) outside %dx%d", x, y, g.w, g.h)
	}
	return counts[g.tree.LeafIndex(mortonEncode(x, y))], nil
}

// RangeSum answers the half-open rectangle query [x0, x1) x [y0, y1)
// from a BFS count vector by quadtree decomposition: nodes fully inside
// the rectangle contribute their count; partially covered nodes descend.
// Empty rectangles (x0 == x1 or y0 == y1, within bounds) answer 0,
// matching the 1-D range convention.
func (g *Grid) RangeSum(counts []float64, x0, y0, x1, y1 int) (float64, error) {
	if x0 < 0 || y0 < 0 || x1 > g.w || y1 > g.h || x0 > x1 || y0 > y1 {
		return 0, fmt.Errorf("histo2d: bad rectangle [%d,%d)x[%d,%d) for %dx%d",
			x0, x1, y0, y1, g.w, g.h)
	}
	if len(counts) != g.tree.NumNodes() {
		return 0, fmt.Errorf("histo2d: count vector has %d entries, want %d", len(counts), g.tree.NumNodes())
	}
	return g.RectSum(counts, x0, y0, x1, y1), nil
}

// RectSum is the serving hot path behind RangeSum: an iterative
// depth-first quadtree decomposition with an explicit fixed-capacity
// stack, so a rectangle query costs zero heap bytes. The caller must
// have validated the rectangle against the grid and counts against the
// tree shape (RangeSum does both); empty rectangles answer 0.
func (g *Grid) RectSum(counts []float64, x0, y0, x1, y1 int) float64 {
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	// DFS over partially covered nodes. The stack stays small: at most
	// 3 siblings per level plus the current path, and the tree height is
	// capped by the side limit in New (side <= 2^21, height <= 22), so
	// 128 entries can never overflow — stackBuf lives on the goroutine
	// stack and the append-spill path is unreachable in practice.
	var stackBuf [128]int
	stack := stackBuf[:0]
	stack = append(stack, 0)
	sum := 0.0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := g.tree.Interval(v)
		side := isqrt(hi - lo) // node squares have power-of-four cell counts
		nx, ny := mortonDecode(lo)
		// Intersection with the query rectangle.
		ix0, iy0 := max(nx, x0), max(ny, y0)
		ix1, iy1 := min(nx+side, x1), min(ny+side, y1)
		if ix0 >= ix1 || iy0 >= iy1 {
			continue
		}
		if ix0 == nx && iy0 == ny && ix1 == nx+side && iy1 == ny+side {
			sum += counts[v]
			continue
		}
		clo, chi := g.tree.Children(v)
		for c := clo; c < chi; c++ {
			stack = append(stack, c)
		}
	}
	return sum
}

// LevelSummedAreas compiles a BFS count vector into one summed-area
// table per quadtree level, leaf level first. The nodes at level j
// (counting from the leaves) tile the padded square with 2^j x 2^j cell
// blocks and form a grid of side Side()>>j; out[j] is the standard
// (side+1)^2 inclusion-exclusion table over their values, so any
// axis-aligned block of same-level nodes sums in four lookups. This is
// the compiled form behind the plan engine's quadtree-offset mode. It
// panics if counts does not match the tree shape.
func (g *Grid) LevelSummedAreas(counts []float64) [][]float64 {
	if len(counts) != g.tree.NumNodes() {
		panic(fmt.Sprintf("histo2d: count vector has %d entries, want %d", len(counts), g.tree.NumNodes()))
	}
	height := g.tree.Height()
	out := make([][]float64, height)
	for j := 0; j < height; j++ {
		depth := height - 1 - j
		start := g.tree.LevelStart(depth)
		side := g.side >> j
		stride := side + 1
		// De-interleave the level's Morton-ordered nodes into row-major
		// position, then accumulate the 2-D running sums.
		vals := make([]float64, side*side)
		for m := range vals {
			x, y := mortonDecode(m)
			vals[y*side+x] = counts[start+m]
		}
		sat := make([]float64, stride*stride)
		for y := 1; y <= side; y++ {
			rowSum := 0.0
			for x := 1; x <= side; x++ {
				rowSum += vals[(y-1)*side+(x-1)]
				sat[y*stride+x] = sat[(y-1)*stride+x] + rowSum
			}
		}
		out[j] = sat
	}
	return out
}

// isqrt returns the integer square root of a perfect square power of 4
// (or 1).
func isqrt(n int) int {
	s := 1
	for s*s < n {
		s *= 2
	}
	return s
}
