package plan

// Batch kernels: the batch, not the query, is the unit of execution on
// the serving read path. Callers split a validated []RangeSpec /
// []RectSpec batch into columnar int slices (one per endpoint) and the
// kernels sweep them in flat loops — the prefix and SAT modes compile
// to branch-free gather/subtract loops the compiler can unroll and
// vectorize, and the offset-table modes run their short per-level walks
// back to back with all tables hot in cache. Batches at or above a
// per-mode crossover threshold are partitioned across the shared worker
// pool (pool.go); answers are bit-identical either way, because every
// element is computed by the same scalar recurrence regardless of how
// the batch is partitioned.

// RangeBatchInto answers a validated batch of half-open ranges into dst:
// dst[i] = Range(lo[i], hi[i]). The three slices must have the same
// length and every (lo[i], hi[i]) must already satisfy
// 0 <= lo <= hi <= Domain() — the batch engines hoist validation into a
// single pre-pass. It allocates nothing.
func (p *Plan) RangeBatchInto(dst []float64, lo, hi []int) {
	if len(lo) != len(dst) || len(hi) != len(dst) {
		panic("plan: range batch columns do not match dst length")
	}
	threshold := parallelThresholdTable
	if p.prefix != nil {
		threshold = parallelThresholdO1
	}
	if len(dst) >= threshold {
		parallelFor(len(dst), func(a, b int) {
			p.rangeKernel(dst[a:b], lo[a:b], hi[a:b])
		})
		return
	}
	p.rangeKernel(dst, lo, hi)
}

func (p *Plan) rangeKernel(dst []float64, lo, hi []int) {
	lo = lo[:len(dst)]
	hi = hi[:len(dst)]
	if prefix := p.prefix; prefix != nil {
		for i := range dst {
			dst[i] = prefix[hi[i]] - prefix[lo[i]]
		}
		return
	}
	if p.kShift != 0 {
		for i := range dst {
			dst[i] = p.treeOffsetRangePow2(lo[i], hi[i])
		}
		return
	}
	for i := range dst {
		dst[i] = p.treeOffsetRangeAny(lo[i], hi[i])
	}
}

// RectBatchInto answers a validated batch of half-open rectangles into
// dst: dst[i] = Rect(x0[i], y0[i], x1[i], y1[i]). The five slices must
// have the same length, the plan must be Rectangular, and every
// rectangle must already be validated against Width and Height. It
// allocates nothing.
func (p *Plan) RectBatchInto(dst []float64, x0, y0, x1, y1 []int) {
	if len(x0) != len(dst) || len(y0) != len(dst) || len(x1) != len(dst) || len(y1) != len(dst) {
		panic("plan: rect batch columns do not match dst length")
	}
	threshold := parallelThresholdTable
	if p.sat != nil {
		threshold = parallelThresholdO1
	}
	if len(dst) >= threshold {
		parallelFor(len(dst), func(a, b int) {
			p.rectKernel(dst[a:b], x0[a:b], y0[a:b], x1[a:b], y1[a:b])
		})
		return
	}
	p.rectKernel(dst, x0, y0, x1, y1)
}

func (p *Plan) rectKernel(dst []float64, x0, y0, x1, y1 []int) {
	x0 = x0[:len(dst)]
	y0 = y0[:len(dst)]
	x1 = x1[:len(dst)]
	y1 = y1[:len(dst)]
	if sat := p.sat; sat != nil {
		stride := p.width + 1
		for i := range dst {
			dst[i] = satLookup(sat, stride, x0[i], y0[i], x1[i], y1[i])
		}
		return
	}
	for i := range dst {
		dst[i] = p.quadOffsetRect(x0[i], y0[i], x1[i], y1[i])
	}
}
