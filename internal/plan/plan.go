// Package plan compiles releases into immutable query plans — the
// precomputed read side of the serving layer. A release is minted once
// (spending epsilon) and then answers arbitrarily many range or
// rectangle queries, so everything that can be computed ahead of the
// first query should be: prefix-sum tables for positional and sorted
// strategies, summed-area tables for 2-D grids, and per-level offset
// tables when a hierarchy is not exactly consistent.
//
// A Plan answers *validated* queries with zero allocations, in one of
// four execution modes:
//
//   - "prefix": Range(lo, hi) in O(1) from prefix sums.
//   - "tree-offset": Range by a branch-free bottom-up walk over
//     per-level prefix-sum tables of the node values — the minimal
//     subtree decomposition reduced to four table lookups per level,
//     with no pointer chasing (used when the post-processed tree is
//     inconsistent: truncation bias must stay bounded per covering
//     node, so summing leaves is not equivalent).
//   - "sat": Rect(x0, y0, x1, y1) in O(1) from a summed-area table.
//   - "quadtree-offset": Rect by the same per-level walk over one
//     summed-area table per quadtree level — eight lookups per level
//     instead of a node-by-node DFS.
//
// Plans also answer whole batches: RangeBatchInto and RectBatchInto
// sweep columnar query arrays in flat loops, and batches above a
// per-mode crossover threshold are partitioned across a bounded
// process-wide worker pool (see pool.go).
//
// Plans are immutable after compilation and safe for concurrent use;
// the release store snapshots a plan under a read lock and answers whole
// batches against it outside any lock.
package plan

import (
	"math"
	"math/bits"

	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/htree"
)

// Plan is one release's compiled read path. The zero value is not
// usable; build one with Compile1D, CompileTree, or Compile2D.
type Plan struct {
	domain int // size of the 1-D query index space

	// prefix, when non-nil, is the running-sum table (len domain+1)
	// answering Range in O(1). For 2-D plans it runs over the row-major
	// cells, so the 1-D view is always O(1).
	prefix []float64

	// k and treeLevels drive the tree-offset walk for a hierarchy whose
	// post-processed counts are not exactly consistent: one prefix-sum
	// table per level of the node values, leaf level first (see
	// htree.LevelPrefixSums). kShift is log2(k) when k is a power of
	// two, else 0: the walk's two divisions per level dominate its cost,
	// and the common power-of-two branching factors replace them with
	// shifts (bit-identical for the non-negative operands involved).
	k          int
	kShift     uint
	treeLevels [][]float64

	// 2-D state; width == 0 means the plan answers no rectangles.
	width, height int
	sat           []float64 // (w+1) x (h+1) summed-area table, or nil

	// gridSide and gridLevels drive the quadtree-offset walk: one
	// summed-area table per quadtree level over the padded gridSide
	// square, leaf level first (see histo2d.LevelSummedAreas).
	gridSide   int
	gridLevels [][]float64
}

// consistencyTol is the consistency tolerance for a post-processed count
// vector: inference is closed-form floating-point arithmetic, so
// "exactly consistent" means equal up to accumulated rounding scaled to
// the root magnitude.
func consistencyTol(rootVal float64) float64 {
	return 1e-9 * (1 + math.Abs(rootVal))
}

// Compile1D compiles a flat count vector: the O(1) prefix-sum plan every
// positional and sorted strategy serves ranges from. The counts are read
// once and not retained.
func Compile1D(counts []float64) *Plan {
	return &Plan{domain: len(counts), prefix: prefixSums(counts)}
}

// CompileTree compiles a hierarchy release: prefix sums over the leaves
// when the post-processed tree is exactly consistent (decomposition and
// leaf sums then agree, so O(1) is free), otherwise the tree-offset plan
// compiled from the node values. leaves is the published unit vector
// over the real domain; vals is the BFS node vector. A vals that does
// not match the tree shape (including nil or empty) cannot drive a
// decomposition, so the plan falls back to prefix sums over the leaves
// rather than panicking.
func CompileTree(t *htree.Tree, vals, leaves []float64) *Plan {
	if len(vals) != t.NumNodes() || t.IsConsistent(vals, consistencyTol(vals[0])) {
		return &Plan{domain: len(leaves), prefix: prefixSums(leaves)}
	}
	return TreeOnly(t, vals, len(leaves))
}

// TreeOnly compiles the tree-offset plan unconditionally, bypassing the
// consistency check — the fallback half of CompileTree, exported so
// benchmarks and equivalence tests can pin the slow path. A vals that
// does not match the tree shape degrades to an all-zero prefix plan.
func TreeOnly(t *htree.Tree, vals []float64, domain int) *Plan {
	if len(vals) != t.NumNodes() {
		return Compile1D(make([]float64, domain))
	}
	p := &Plan{domain: domain, k: t.K(), treeLevels: t.LevelPrefixSums(vals)}
	if k := t.K(); k&(k-1) == 0 {
		p.kShift = uint(bits.TrailingZeros(uint(k)))
	}
	return p
}

// Compile2D compiles a quadtree release over a Width x Height cell grid:
// the 1-D row-major view always answers from prefix sums, and rectangles
// answer from a summed-area table when the post-processed quadtree is
// exactly consistent, else by the quadtree-offset walk over per-level
// summed-area tables. cells is the published row-major cell vector. As
// with CompileTree, a vals that does not match the tree shape falls back
// to the summed-area table over the cells rather than panicking.
func Compile2D(g *histo2d.Grid, vals, cells []float64) *Plan {
	p := plan2DBase(g, cells)
	if len(vals) != g.NumNodes() || g.IsConsistent(vals, consistencyTol(vals[0])) {
		p.sat = summedAreaTable(cells, g.Width(), g.Height())
		return p
	}
	p.gridSide = g.Side()
	p.gridLevels = g.LevelSummedAreas(vals)
	return p
}

// Grid2DOnly compiles the 2-D plan without the O(1) summed-area table,
// pinning rectangle answers to the quadtree-offset walk — the fallback
// half of Compile2D, exported so benchmarks and equivalence tests can
// pin the slow path. A vals that does not match the tree shape degrades
// to the summed-area table over the cells.
func Grid2DOnly(g *histo2d.Grid, vals, cells []float64) *Plan {
	p := plan2DBase(g, cells)
	if len(vals) != g.NumNodes() {
		p.sat = summedAreaTable(cells, g.Width(), g.Height())
		return p
	}
	p.gridSide = g.Side()
	p.gridLevels = g.LevelSummedAreas(vals)
	return p
}

func plan2DBase(g *histo2d.Grid, cells []float64) *Plan {
	return &Plan{
		domain: len(cells),
		prefix: prefixSums(cells),
		width:  g.Width(),
		height: g.Height(),
	}
}

// prefixSums returns the running-sum table of counts, with prefix[0] = 0.
func prefixSums(counts []float64) []float64 {
	prefix := make([]float64, len(counts)+1)
	for i, v := range counts {
		prefix[i+1] = prefix[i] + v
	}
	return prefix
}

// summedAreaTable returns the (w+1) x (h+1) inclusion-exclusion table
// over row-major cells: sat[y*(w+1)+x] is the sum of all cells in
// [0, x) x [0, y), so any rectangle is four lookups.
func summedAreaTable(cells []float64, w, h int) []float64 {
	stride := w + 1
	sat := make([]float64, stride*(h+1))
	for y := 1; y <= h; y++ {
		rowSum := 0.0
		for x := 1; x <= w; x++ {
			rowSum += cells[(y-1)*w+(x-1)]
			sat[y*stride+x] = sat[(y-1)*stride+x] + rowSum
		}
	}
	return sat
}

// Domain returns the size of the 1-D query index space — what
// len(Release.Counts()) reports.
func (p *Plan) Domain() int { return p.domain }

// Rectangular reports whether the plan answers rectangle queries.
func (p *Plan) Rectangular() bool { return p.width > 0 }

// Width returns the cell-grid width, or 0 for a 1-D plan.
func (p *Plan) Width() int { return p.width }

// Height returns the cell-grid height, or 0 for a 1-D plan.
func (p *Plan) Height() int { return p.height }

// Consistent reports whether the plan answers its native query family in
// O(1): prefix sums for a 1-D plan, the summed-area table for a 2-D one.
func (p *Plan) Consistent() bool {
	if p.Rectangular() {
		return p.sat != nil
	}
	return p.prefix != nil
}

// Mode names the native-query execution strategy, for logs and bench
// labels: "prefix", "tree-offset", "sat", or "quadtree-offset".
func (p *Plan) Mode() string {
	switch {
	case p.Rectangular() && p.sat != nil:
		return "sat"
	case p.Rectangular():
		return "quadtree-offset"
	case p.prefix != nil:
		return "prefix"
	default:
		return "tree-offset"
	}
}

// Range answers the half-open range [lo, hi) over the 1-D index space.
// The caller must have validated 0 <= lo <= hi <= Domain(); Range itself
// allocates nothing and cannot fail.
func (p *Plan) Range(lo, hi int) float64 {
	if p.prefix != nil {
		return p.prefix[hi] - p.prefix[lo]
	}
	return p.treeOffsetRange(lo, hi)
}

// treeOffsetRange answers [lo, hi) from the per-level offset tables.
// At each level the minimal subtree decomposition contributes at most
// two contiguous runs of nodes — those inside the range but not covered
// by a fully-inside parent — and a contiguous run is a difference of
// two prefix-table entries. The walk is bottom-up: nl/nr are the range
// endpoints propagated to the parent level (first fully-covered parent,
// one past the last), and [l, nl*k) plus [nr*k, r) are this level's
// emitted runs, summed as (t[r]-t[l]) - (t[nr*k]-t[nl*k]). It exits as
// soon as the surviving range is empty, so a width-w query costs
// O(log w) levels of four lookups each — no pointer chasing and no
// per-node branching, which is what closes the inconsistent-tree gap.
func (p *Plan) treeOffsetRange(lo, hi int) float64 {
	if p.kShift != 0 {
		return p.treeOffsetRangePow2(lo, hi)
	}
	return p.treeOffsetRangeAny(lo, hi)
}

// treeOffsetRangePow2 is the walk for power-of-two branching factors:
// the endpoint propagation's two divisions per level become shifts,
// which is worth ~2x on the whole query. Shift and division agree
// exactly here — every operand is non-negative.
func (p *Plan) treeOffsetRangePow2(lo, hi int) float64 {
	sum := 0.0
	shift := p.kShift
	mask := p.k - 1
	l, r := lo, hi
	levels := p.treeLevels
	last := len(levels) - 1
	for j := 0; l < r; j++ {
		t := levels[j]
		if j == last {
			sum += t[r] - t[l]
			break
		}
		nl := (l + mask) >> shift
		nr := r >> shift
		if nr < nl {
			nr = nl
		}
		sum += (t[r] - t[l]) - (t[nr<<shift] - t[nl<<shift])
		l, r = nl, nr
	}
	return sum
}

func (p *Plan) treeOffsetRangeAny(lo, hi int) float64 {
	sum := 0.0
	k := p.k
	l, r := lo, hi
	levels := p.treeLevels
	last := len(levels) - 1
	for j := 0; l < r; j++ {
		t := levels[j]
		if j == last {
			sum += t[r] - t[l]
			break
		}
		nl := (l + k - 1) / k
		nr := r / k
		if nr < nl {
			nr = nl
		}
		sum += (t[r] - t[l]) - (t[nr*k] - t[nl*k])
		l, r = nl, nr
	}
	return sum
}

// Rect answers the half-open rectangle [x0, x1) x [y0, y1) over the cell
// grid. The caller must have validated the rectangle against Width and
// Height and that the plan is Rectangular; Rect itself allocates nothing
// and cannot fail.
func (p *Plan) Rect(x0, y0, x1, y1 int) float64 {
	if p.sat != nil {
		return satLookup(p.sat, p.width+1, x0, y0, x1, y1)
	}
	return p.quadOffsetRect(x0, y0, x1, y1)
}

// quadOffsetRect is treeOffsetRange in two dimensions: at each quadtree
// level the decomposition's fully-covered nodes form an axis-aligned
// block minus the block already covered by fully-inside parents, and
// each block is four lookups in that level's summed-area table. The
// per-dimension endpoint propagation mirrors the 1-D walk with k = 2.
func (p *Plan) quadOffsetRect(x0, y0, x1, y1 int) float64 {
	sum := 0.0
	lx, ly, rx, ry := x0, y0, x1, y1
	last := len(p.gridLevels) - 1
	for j := 0; lx < rx && ly < ry; j++ {
		sat := p.gridLevels[j]
		stride := p.gridSide>>j + 1
		if j == last {
			sum += satLookup(sat, stride, lx, ly, rx, ry)
			break
		}
		nlx, nly := (lx+1)/2, (ly+1)/2
		nrx, nry := rx/2, ry/2
		if nrx < nlx {
			nrx = nlx
		}
		if nry < nly {
			nry = nly
		}
		sum += satLookup(sat, stride, lx, ly, rx, ry) - satLookup(sat, stride, 2*nlx, 2*nly, 2*nrx, 2*nry)
		lx, ly, rx, ry = nlx, nly, nrx, nry
	}
	return sum
}

// satLookup is the four-lookup rectangle sum over a summed-area table
// with the given row stride. Both the scalar Rect path and the batch
// kernel go through it, so their floating-point answers are
// bit-identical.
func satLookup(sat []float64, stride, x0, y0, x1, y1 int) float64 {
	return sat[y1*stride+x1] - sat[y0*stride+x1] - sat[y1*stride+x0] + sat[y0*stride+x0]
}

// Total answers the full-domain query: the whole range for a 1-D plan,
// the whole grid for a 2-D one (which may differ from the row-major
// range sum when truncation left the quadtree inconsistent — the
// decomposition's bounded-bias answer is the released total).
func (p *Plan) Total() float64 {
	if p.Rectangular() {
		return p.Rect(0, 0, p.width, p.height)
	}
	return p.Range(0, p.domain)
}
