// Package plan compiles releases into immutable query plans — the
// precomputed read side of the serving layer. A release is minted once
// (spending epsilon) and then answers arbitrarily many range or
// rectangle queries, so everything that can be computed ahead of the
// first query should be: prefix-sum tables for positional and sorted
// strategies, summed-area tables for 2-D grids, and iterative
// tree-decomposition state when a hierarchy is not exactly consistent.
//
// A Plan answers *validated* queries with zero allocations:
//
//   - Range(lo, hi) in O(1) from prefix sums, or O(k log n) from an
//     iterative subtree decomposition when the post-processed tree is
//     inconsistent (truncation bias must stay bounded per covering node,
//     so summing leaves is not equivalent).
//   - Rect(x0, y0, x1, y1) in O(1) from a summed-area table, or by
//     iterative quadtree decomposition under the same consistency rule.
//
// Plans are immutable after compilation and safe for concurrent use;
// the release store snapshots a plan under a read lock and answers whole
// batches against it outside any lock.
package plan

import (
	"math"

	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/htree"
)

// Plan is one release's compiled read path. The zero value is not
// usable; build one with Compile1D, CompileTree, or Compile2D.
type Plan struct {
	domain int // size of the 1-D query index space

	// prefix, when non-nil, is the running-sum table (len domain+1)
	// answering Range in O(1). For 2-D plans it runs over the row-major
	// cells, so the 1-D view is always O(1).
	prefix []float64

	// tree and treeVals drive the iterative subtree decomposition for a
	// hierarchy whose post-processed counts are not exactly consistent.
	tree     *htree.Tree
	treeVals []float64

	// 2-D state; width == 0 means the plan answers no rectangles.
	width, height int
	sat           []float64 // (w+1) x (h+1) summed-area table, or nil
	grid          *histo2d.Grid
	gridVals      []float64
}

// consistencyTol is the consistency tolerance for a post-processed count
// vector: inference is closed-form floating-point arithmetic, so
// "exactly consistent" means equal up to accumulated rounding scaled to
// the root magnitude.
func consistencyTol(rootVal float64) float64 {
	return 1e-9 * (1 + math.Abs(rootVal))
}

// Compile1D compiles a flat count vector: the O(1) prefix-sum plan every
// positional and sorted strategy serves ranges from. The counts are read
// once and not retained.
func Compile1D(counts []float64) *Plan {
	return &Plan{domain: len(counts), prefix: prefixSums(counts)}
}

// CompileTree compiles a hierarchy release: prefix sums over the leaves
// when the post-processed tree is exactly consistent (decomposition and
// leaf sums then agree, so O(1) is free), otherwise the iterative
// decomposition plan over the retained node values. leaves is the
// published unit vector over the real domain; vals is the BFS node
// vector, retained by the plan when decomposition is needed.
func CompileTree(t *htree.Tree, vals, leaves []float64) *Plan {
	if t.IsConsistent(vals, consistencyTol(vals[0])) {
		return &Plan{domain: len(leaves), prefix: prefixSums(leaves)}
	}
	return TreeOnly(t, vals, len(leaves))
}

// TreeOnly compiles the decomposition plan unconditionally, bypassing
// the consistency check — the fallback half of CompileTree, exported so
// benchmarks and equivalence tests can pin the slow path.
func TreeOnly(t *htree.Tree, vals []float64, domain int) *Plan {
	return &Plan{domain: domain, tree: t, treeVals: vals}
}

// Compile2D compiles a quadtree release over a Width x Height cell grid:
// the 1-D row-major view always answers from prefix sums, and rectangles
// answer from a summed-area table when the post-processed quadtree is
// exactly consistent, else by iterative quadtree decomposition over the
// retained node values. cells is the published row-major cell vector.
func Compile2D(g *histo2d.Grid, vals, cells []float64) *Plan {
	p := Grid2DOnly(g, vals, cells)
	if g.IsConsistent(vals, consistencyTol(vals[0])) {
		p.sat = summedAreaTable(cells, g.Width(), g.Height())
	}
	return p
}

// Grid2DOnly compiles the 2-D plan without a summed-area table, pinning
// rectangle answers to the quadtree decomposition — the fallback half of
// Compile2D, exported so benchmarks and equivalence tests can pin the
// slow path.
func Grid2DOnly(g *histo2d.Grid, vals, cells []float64) *Plan {
	return &Plan{
		domain:   len(cells),
		prefix:   prefixSums(cells),
		width:    g.Width(),
		height:   g.Height(),
		grid:     g,
		gridVals: vals,
	}
}

// prefixSums returns the running-sum table of counts, with prefix[0] = 0.
func prefixSums(counts []float64) []float64 {
	prefix := make([]float64, len(counts)+1)
	for i, v := range counts {
		prefix[i+1] = prefix[i] + v
	}
	return prefix
}

// summedAreaTable returns the (w+1) x (h+1) inclusion-exclusion table
// over row-major cells: sat[y*(w+1)+x] is the sum of all cells in
// [0, x) x [0, y), so any rectangle is four lookups.
func summedAreaTable(cells []float64, w, h int) []float64 {
	stride := w + 1
	sat := make([]float64, stride*(h+1))
	for y := 1; y <= h; y++ {
		rowSum := 0.0
		for x := 1; x <= w; x++ {
			rowSum += cells[(y-1)*w+(x-1)]
			sat[y*stride+x] = sat[(y-1)*stride+x] + rowSum
		}
	}
	return sat
}

// Domain returns the size of the 1-D query index space — what
// len(Release.Counts()) reports.
func (p *Plan) Domain() int { return p.domain }

// Rectangular reports whether the plan answers rectangle queries.
func (p *Plan) Rectangular() bool { return p.width > 0 }

// Width returns the cell-grid width, or 0 for a 1-D plan.
func (p *Plan) Width() int { return p.width }

// Height returns the cell-grid height, or 0 for a 1-D plan.
func (p *Plan) Height() int { return p.height }

// Consistent reports whether the plan answers its native query family in
// O(1): prefix sums for a 1-D plan, the summed-area table for a 2-D one.
func (p *Plan) Consistent() bool {
	if p.Rectangular() {
		return p.sat != nil
	}
	return p.prefix != nil
}

// Mode names the native-query execution strategy, for logs and bench
// labels: "prefix", "tree", "sat", or "quadtree".
func (p *Plan) Mode() string {
	switch {
	case p.Rectangular() && p.sat != nil:
		return "sat"
	case p.Rectangular():
		return "quadtree"
	case p.prefix != nil:
		return "prefix"
	default:
		return "tree"
	}
}

// Range answers the half-open range [lo, hi) over the 1-D index space.
// The caller must have validated 0 <= lo <= hi <= Domain(); Range itself
// allocates nothing and cannot fail.
func (p *Plan) Range(lo, hi int) float64 {
	if p.prefix != nil {
		return p.prefix[hi] - p.prefix[lo]
	}
	return p.tree.RangeSum(p.treeVals, lo, hi)
}

// Rect answers the half-open rectangle [x0, x1) x [y0, y1) over the cell
// grid. The caller must have validated the rectangle against Width and
// Height and that the plan is Rectangular; Rect itself allocates nothing
// and cannot fail.
func (p *Plan) Rect(x0, y0, x1, y1 int) float64 {
	if p.sat != nil {
		stride := p.width + 1
		return p.sat[y1*stride+x1] - p.sat[y0*stride+x1] - p.sat[y1*stride+x0] + p.sat[y0*stride+x0]
	}
	return p.grid.RectSum(p.gridVals, x0, y0, x1, y1)
}

// Total answers the full-domain query: the whole range for a 1-D plan,
// the whole grid for a 2-D one (which may differ from the row-major
// range sum when truncation left the quadtree inconsistent — the
// decomposition's bounded-bias answer is the released total).
func (p *Plan) Total() float64 {
	if p.Rectangular() {
		return p.Rect(0, 0, p.width, p.height)
	}
	return p.Range(0, p.domain)
}
