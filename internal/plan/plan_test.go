package plan

import (
	"math"
	"testing"

	"github.com/dphist/dphist/internal/histo2d"
	"github.com/dphist/dphist/internal/htree"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

func TestCompile1D(t *testing.T) {
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	p := Compile1D(counts)
	if p.Domain() != len(counts) || !p.Consistent() || p.Rectangular() || p.Mode() != "prefix" {
		t.Fatalf("plan shape: domain %d, mode %q, rect %v", p.Domain(), p.Mode(), p.Rectangular())
	}
	for lo := 0; lo <= len(counts); lo++ {
		for hi := lo; hi <= len(counts); hi++ {
			want := 0.0
			for _, v := range counts[lo:hi] {
				want += v
			}
			if got := p.Range(lo, hi); !almostEqual(got, want) {
				t.Fatalf("Range(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if !almostEqual(p.Total(), 31) {
		t.Fatalf("Total = %v", p.Total())
	}
}

// buildTree assembles a consistent BFS node vector from unit counts.
func buildTree(t *testing.T, k, domain int) (*htree.Tree, []float64, []float64) {
	t.Helper()
	tree := htree.MustNew(k, domain)
	unit := make([]float64, domain)
	for i := range unit {
		unit[i] = float64((i*7 + 3) % 11)
	}
	vals := tree.FromLeaves(unit)
	return tree, vals, unit
}

func TestCompileTreeConsistent(t *testing.T) {
	tree, vals, unit := buildTree(t, 2, 13)
	leaves := tree.Leaves(vals)[:13]
	p := CompileTree(tree, vals, leaves)
	if p.Mode() != "prefix" {
		t.Fatalf("consistent tree compiled to %q", p.Mode())
	}
	forced := TreeOnly(tree, vals, 13)
	if forced.Mode() != "tree-offset" {
		t.Fatalf("TreeOnly compiled to %q", forced.Mode())
	}
	for lo := 0; lo <= 13; lo++ {
		for hi := lo; hi <= 13; hi++ {
			want := 0.0
			for _, v := range unit[lo:hi] {
				want += v
			}
			if got := p.Range(lo, hi); !almostEqual(got, want) {
				t.Fatalf("prefix Range(%d,%d) = %v, want %v", lo, hi, got, want)
			}
			if got := forced.Range(lo, hi); !almostEqual(got, want) {
				t.Fatalf("tree Range(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
}

func TestCompileTreeInconsistent(t *testing.T) {
	tree, vals, _ := buildTree(t, 3, 9)
	vals[0] += 5 // break root consistency: decomposition semantics must win
	leaves := tree.Leaves(vals)[:9]
	p := CompileTree(tree, vals, leaves)
	if p.Mode() != "tree-offset" || p.Consistent() {
		t.Fatalf("inconsistent tree compiled to %q", p.Mode())
	}
	// The full-domain query must answer the root, not the leaf sum.
	if got := p.Range(0, 9); !almostEqual(got, vals[0]) {
		t.Fatalf("Range(0,9) = %v, want root %v", got, vals[0])
	}
	if got := p.Total(); !almostEqual(got, vals[0]) {
		t.Fatalf("Total = %v, want root %v", got, vals[0])
	}
}

func TestCompile2D(t *testing.T) {
	const w, h = 5, 3
	grid := histo2d.MustNew(w, h)
	cells2d := make([][]float64, h)
	for y := range cells2d {
		cells2d[y] = make([]float64, w)
		for x := range cells2d[y] {
			cells2d[y][x] = float64((x*3 + y*5) % 7)
		}
	}
	vals := grid.FromCells(cells2d)
	cells := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v, err := grid.Cell(vals, x, y)
			if err != nil {
				t.Fatal(err)
			}
			cells[y*w+x] = v
		}
	}
	p := Compile2D(grid, vals, cells)
	if !p.Rectangular() || p.Width() != w || p.Height() != h || p.Mode() != "sat" {
		t.Fatalf("plan shape: %dx%d mode %q", p.Width(), p.Height(), p.Mode())
	}
	forced := Grid2DOnly(grid, vals, cells)
	if forced.Mode() != "quadtree-offset" || forced.Consistent() {
		t.Fatalf("Grid2DOnly compiled to %q", forced.Mode())
	}
	for x0 := 0; x0 <= w; x0++ {
		for x1 := x0; x1 <= w; x1++ {
			for y0 := 0; y0 <= h; y0++ {
				for y1 := y0; y1 <= h; y1++ {
					want := 0.0
					for y := y0; y < y1; y++ {
						for x := x0; x < x1; x++ {
							want += cells[y*w+x]
						}
					}
					if got := p.Rect(x0, y0, x1, y1); !almostEqual(got, want) {
						t.Fatalf("sat Rect(%d,%d,%d,%d) = %v, want %v", x0, y0, x1, y1, got, want)
					}
					if got := forced.Rect(x0, y0, x1, y1); !almostEqual(got, want) {
						t.Fatalf("quadtree Rect(%d,%d,%d,%d) = %v, want %v", x0, y0, x1, y1, got, want)
					}
				}
			}
		}
	}
	// The 1-D row-major view always answers from prefix sums.
	for lo := 0; lo <= w*h; lo += 4 {
		for hi := lo; hi <= w*h; hi += 3 {
			want := 0.0
			for _, v := range cells[lo:hi] {
				want += v
			}
			if got := p.Range(lo, hi); !almostEqual(got, want) {
				t.Fatalf("2-D Range(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if !almostEqual(p.Total(), forced.Total()) {
		t.Fatalf("Total disagreement: %v vs %v", p.Total(), forced.Total())
	}
}

// Plans must answer without allocating: the batch engines promise zero
// allocations per query in steady state for every mode.
func TestPlanAnswersWithoutAllocating(t *testing.T) {
	tree, vals, _ := buildTree(t, 2, 64)
	leaves := tree.Leaves(vals)[:64]
	grid := histo2d.MustNew(8, 8)
	cells2d := make([][]float64, 8)
	for y := range cells2d {
		cells2d[y] = make([]float64, 8)
		for x := range cells2d[y] {
			cells2d[y][x] = float64(x ^ y)
		}
	}
	gvals := grid.FromCells(cells2d)
	cells := make([]float64, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v, _ := grid.Cell(gvals, x, y)
			cells[y*8+x] = v
		}
	}
	for _, tc := range []struct {
		mode string
		p    *Plan
	}{
		{"prefix", Compile1D(leaves)},
		{"tree-offset", TreeOnly(tree, vals, 64)},
		{"sat", Compile2D(grid, gvals, cells)},
		{"quadtree-offset", Grid2DOnly(grid, gvals, cells)},
	} {
		if tc.p.Mode() != tc.mode {
			t.Fatalf("mode %q compiled as %q", tc.mode, tc.p.Mode())
		}
		var sink float64
		allocs := testing.AllocsPerRun(100, func() {
			if tc.p.Rectangular() {
				sink += tc.p.Rect(1, 1, 7, 7)
			}
			sink += tc.p.Range(3, tc.p.Domain()-1)
		})
		if allocs != 0 {
			t.Errorf("%s plan allocates %v per query", tc.mode, allocs)
		}
		_ = sink
	}
}

// The tree-offset walk must agree with the minimal subtree
// decomposition on arbitrary (inconsistent) node vectors — integer
// values make the comparison exact regardless of summation order.
func TestTreeOffsetMatchesDecomposition(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		for _, domain := range []int{1, 2, 7, 16, 33, 100} {
			tree := htree.MustNew(k, domain)
			vals := make([]float64, tree.NumNodes())
			for i := range vals {
				vals[i] = float64((i*13+5)%37) - 9
			}
			p := TreeOnly(tree, vals, domain)
			if p.Mode() != "tree-offset" {
				t.Fatalf("k=%d domain=%d compiled to %q", k, domain, p.Mode())
			}
			for lo := 0; lo <= domain; lo++ {
				for hi := lo; hi <= domain; hi++ {
					want := 0.0
					if lo < hi {
						for _, v := range tree.Decompose(lo, hi) {
							want += vals[v]
						}
					}
					if got := p.Range(lo, hi); got != want {
						t.Fatalf("k=%d domain=%d Range(%d,%d) = %v, decomposition %v", k, domain, lo, hi, got, want)
					}
				}
			}
		}
	}
}

// The quadtree-offset walk must agree with the DFS quadtree
// decomposition on arbitrary (inconsistent) node vectors.
func TestQuadOffsetMatchesDecomposition(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {5, 3}, {8, 8}, {13, 9}} {
		w, h := dims[0], dims[1]
		grid := histo2d.MustNew(w, h)
		vals := make([]float64, grid.NumNodes())
		for i := range vals {
			vals[i] = float64((i*17+3)%41) - 11
		}
		cells := make([]float64, w*h)
		p := Grid2DOnly(grid, vals, cells)
		if p.Mode() != "quadtree-offset" {
			t.Fatalf("%dx%d compiled to %q", w, h, p.Mode())
		}
		for x0 := 0; x0 <= w; x0++ {
			for x1 := x0; x1 <= w; x1++ {
				for y0 := 0; y0 <= h; y0++ {
					for y1 := y0; y1 <= h; y1++ {
						want := grid.RectSum(vals, x0, y0, x1, y1)
						if got := p.Rect(x0, y0, x1, y1); got != want {
							t.Fatalf("%dx%d Rect(%d,%d,%d,%d) = %v, decomposition %v", w, h, x0, y0, x1, y1, got, want)
						}
					}
				}
			}
		}
	}
}

// Degenerate node vectors (nil, empty, wrong length) must compile to a
// defined plan instead of panicking on vals[0].
func TestCompileDegenerateNodeVectors(t *testing.T) {
	tree := htree.MustNew(2, 4)
	leaves := []float64{1, 2, 3, 4}
	for _, vals := range [][]float64{nil, {}, {1, 2}} {
		p := CompileTree(tree, vals, leaves)
		if p.Mode() != "prefix" || p.Domain() != 4 {
			t.Fatalf("CompileTree(%v) compiled to %q domain %d", vals, p.Mode(), p.Domain())
		}
		if got := p.Range(1, 4); got != 9 {
			t.Fatalf("CompileTree(%v) Range(1,4) = %v, want 9", vals, got)
		}
		forced := TreeOnly(tree, vals, 4)
		if forced.Mode() != "prefix" || forced.Domain() != 4 || forced.Range(0, 4) != 0 {
			t.Fatalf("TreeOnly(%v) compiled to %q with Range(0,4)=%v", vals, forced.Mode(), forced.Range(0, 4))
		}
	}
	grid := histo2d.MustNew(2, 2)
	cells := []float64{1, 2, 3, 4}
	for _, vals := range [][]float64{nil, {}, {1, 2, 3}} {
		p := Compile2D(grid, vals, cells)
		if p.Mode() != "sat" {
			t.Fatalf("Compile2D(%v) compiled to %q", vals, p.Mode())
		}
		if got := p.Rect(0, 0, 2, 2); got != 10 {
			t.Fatalf("Compile2D(%v) Rect = %v, want 10", vals, got)
		}
		forced := Grid2DOnly(grid, vals, cells)
		if forced.Mode() != "sat" || forced.Rect(0, 1, 2, 2) != 7 {
			t.Fatalf("Grid2DOnly(%v) compiled to %q", vals, forced.Mode())
		}
	}
}

// The batch kernels must be bit-identical to the scalar path in every
// mode, at sizes below and above the parallel crossover thresholds.
func TestBatchKernelsMatchScalar(t *testing.T) {
	tree, vals, _ := buildTree(t, 2, 512)
	leaves := tree.Leaves(vals)[:512]
	plans := []struct {
		mode string
		p    *Plan
	}{
		{"prefix", Compile1D(leaves)},
		{"tree-offset", TreeOnly(tree, vals, 512)},
	}
	for _, tc := range plans {
		for _, size := range []int{0, 1, 7, 1000, parallelThresholdO1 + 1000} {
			lo := make([]int, size)
			hi := make([]int, size)
			for i := range lo {
				a, b := (i*31)%513, (i*17)%513
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
			}
			dst := make([]float64, size)
			tc.p.RangeBatchInto(dst, lo, hi)
			for i := range dst {
				if want := tc.p.Range(lo[i], hi[i]); dst[i] != want {
					t.Fatalf("%s size %d: dst[%d] = %v, scalar %v", tc.mode, size, i, dst[i], want)
				}
			}
		}
	}

	grid := histo2d.MustNew(16, 16)
	gvals := make([]float64, grid.NumNodes())
	for i := range gvals {
		gvals[i] = float64((i*7 + 1) % 23)
	}
	cells := make([]float64, 256)
	for i := range cells {
		cells[i] = float64((i * 3) % 11)
	}
	plans2d := []struct {
		mode string
		p    *Plan
	}{
		{"sat", Compile2D(grid, nil, cells)},
		{"quadtree-offset", Grid2DOnly(grid, gvals, cells)},
	}
	for _, tc := range plans2d {
		for _, size := range []int{0, 1, 7, 1000, parallelThresholdO1 + 1000} {
			x0 := make([]int, size)
			y0 := make([]int, size)
			x1 := make([]int, size)
			y1 := make([]int, size)
			for i := range x0 {
				a, b := (i*5)%17, (i*11)%17
				if a > b {
					a, b = b, a
				}
				c, d := (i*3)%17, (i*13)%17
				if c > d {
					c, d = d, c
				}
				x0[i], x1[i], y0[i], y1[i] = a, b, c, d
			}
			dst := make([]float64, size)
			tc.p.RectBatchInto(dst, x0, y0, x1, y1)
			for i := range dst {
				if want := tc.p.Rect(x0[i], y0[i], x1[i], y1[i]); dst[i] != want {
					t.Fatalf("%s size %d: dst[%d] = %v, scalar %v", tc.mode, size, i, dst[i], want)
				}
			}
		}
	}
}

// Below the crossover threshold the kernels must not allocate: the
// batch engines' zero-allocation promise rides on them.
func TestBatchKernelsNoAllocBelowThreshold(t *testing.T) {
	tree, vals, _ := buildTree(t, 2, 64)
	p := TreeOnly(tree, vals, 64)
	lo := []int{0, 3, 17}
	hi := []int{5, 40, 64}
	dst := make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() { p.RangeBatchInto(dst, lo, hi) }); allocs != 0 {
		t.Errorf("RangeBatchInto allocates %v per batch", allocs)
	}
}
