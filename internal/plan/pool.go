package plan

import (
	"runtime"
	"sync"
)

const (
	// Crossover thresholds: the batch size at which fanning a kernel out
	// across the pool beats running it inline, found by benchmark
	// (BenchmarkRangeKernel / BenchmarkRectKernel in the root package).
	// Dispatch plus wakeup costs a few microseconds, so the O(1) prefix
	// and SAT modes — a handful of ns per query — only win on
	// multi-thousand batches, while the offset-table walks (tens of ns
	// per query) amortize it several times earlier.
	parallelThresholdO1    = 8192
	parallelThresholdTable = 1024

	// chunkAlign keeps every partition boundary a multiple of 8 answers —
	// 8 float64s is one 64-byte cache line — so adjacent workers never
	// store to the same line of dst.
	chunkAlign = 8
)

// The process-wide batch worker pool. One pool is shared by every plan
// in the process so concurrent large batches contend for GOMAXPROCS
// workers instead of spawning goroutines per batch. It starts lazily on
// the first above-threshold batch and is sized once at that point.
var (
	poolOnce  sync.Once
	poolSize  int
	poolTasks chan poolTask
)

type poolTask struct {
	f      func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolTasks = make(chan poolTask, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range poolTasks {
				t.f(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelFor partitions [0, n) into cache-line-aligned chunks, one per
// pool worker, and runs f over them concurrently. The submitting
// goroutine always participates: it hands the tail chunks to the pool
// with a non-blocking send — falling back to running a chunk inline
// when every worker is busy with other batches — and then runs the
// first chunk itself, so a saturated pool degrades to inline execution
// rather than queueing or deadlocking. Each index is covered exactly
// once.
func parallelFor(n int, f func(lo, hi int)) {
	poolOnce.Do(startPool)
	chunks := poolSize
	if maxChunks := (n + chunkAlign - 1) / chunkAlign; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks <= 1 {
		f(0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	chunk = (chunk + chunkAlign - 1) / chunkAlign * chunkAlign
	var wg sync.WaitGroup
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		select {
		case poolTasks <- poolTask{f: f, lo: start, hi: end, wg: &wg}:
		default:
			f(start, end)
			wg.Done()
		}
	}
	f(0, chunk)
	wg.Wait()
}
