// Package table is the relational substrate the paper's counting queries
// run against: an in-memory multiset of records positioned on an ordered
// domain [0, n), supporting the range-count query
//
//	c([x, y]) = Select count(*) From R Where x <= R.A <= y
//
// of Section 2. A frozen table answers any range count in O(1) through
// prefix sums; histograms (the true answers L(I)) fall out directly.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Table is a mutable multiset of records over the domain [0, n).
type Table struct {
	n      int
	counts []int64
	total  int64
}

// New returns an empty table over a domain of the given size.
func New(domainSize int) (*Table, error) {
	if domainSize < 1 {
		return nil, fmt.Errorf("table: domain size %d < 1", domainSize)
	}
	return &Table{n: domainSize, counts: make([]int64, domainSize)}, nil
}

// MustNew is New but panics on error.
func MustNew(domainSize int) *Table {
	t, err := New(domainSize)
	if err != nil {
		panic(err)
	}
	return t
}

// DomainSize returns n.
func (t *Table) DomainSize() int { return t.n }

// Len returns the number of records.
func (t *Table) Len() int { return int(t.total) }

// Add inserts one record at position pos.
func (t *Table) Add(pos int) error { return t.AddN(pos, 1) }

// AddN inserts count records at position pos.
func (t *Table) AddN(pos int, count int) error {
	if pos < 0 || pos >= t.n {
		return fmt.Errorf("table: position %d outside [0,%d)", pos, t.n)
	}
	if count < 0 {
		return fmt.Errorf("table: negative count %d", count)
	}
	t.counts[pos] += int64(count)
	t.total += int64(count)
	return nil
}

// Histogram returns the unit-length counts L(I) as float64s.
func (t *Table) Histogram() []float64 {
	out := make([]float64, t.n)
	for i, c := range t.counts {
		out[i] = float64(c)
	}
	return out
}

// Count answers the inclusive range-count query c([x, y]).
func (t *Table) Count(x, y int) (int, error) {
	if x < 0 || y >= t.n || x > y {
		return 0, fmt.Errorf("table: bad range [%d,%d] for domain %d", x, y, t.n)
	}
	var sum int64
	for i := x; i <= y; i++ {
		sum += t.counts[i]
	}
	return int(sum), nil
}

// Freeze returns an immutable index over the current contents with O(1)
// range counts.
func (t *Table) Freeze() *Index {
	prefix := make([]int64, t.n+1)
	for i, c := range t.counts {
		prefix[i+1] = prefix[i] + c
	}
	return &Index{prefix: prefix}
}

// FromCounts builds a table whose histogram equals the given non-negative
// integer-valued counts.
func FromCounts(counts []float64) (*Table, error) {
	t, err := New(len(counts))
	if err != nil {
		return nil, err
	}
	for i, c := range counts {
		if c < 0 || c != float64(int64(c)) {
			return nil, fmt.Errorf("table: count at %d is %v, want non-negative integer", i, c)
		}
		if err := t.AddN(i, int(c)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Index answers range counts over a frozen table in O(1).
type Index struct {
	prefix []int64
}

// DomainSize returns n.
func (ix *Index) DomainSize() int { return len(ix.prefix) - 1 }

// Len returns the number of records.
func (ix *Index) Len() int { return int(ix.prefix[len(ix.prefix)-1]) }

// Count answers the inclusive range-count query c([x, y]).
func (ix *Index) Count(x, y int) (int, error) {
	if x < 0 || y >= ix.DomainSize() || x > y {
		return 0, fmt.Errorf("table: bad range [%d,%d] for domain %d", x, y, ix.DomainSize())
	}
	return int(ix.prefix[y+1] - ix.prefix[x]), nil
}

// ReadCSV loads records from CSV data. Column col (0-based) of each row
// is mapped to a domain position by index; rows whose mapping fails are
// counted in skipped rather than aborting the load, since real trace data
// routinely contains out-of-domain values.
func ReadCSV(r io.Reader, col int, index func(string) (int, error), t *Table) (loaded, skipped int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return loaded, skipped, nil
		}
		if err != nil {
			return loaded, skipped, fmt.Errorf("table: %w", err)
		}
		if col >= len(rec) {
			skipped++
			continue
		}
		pos, err := index(rec[col])
		if err != nil {
			skipped++
			continue
		}
		if err := t.Add(pos); err != nil {
			skipped++
			continue
		}
		loaded++
	}
}

// WriteCSV writes the table's histogram as "position,count" rows,
// omitting zero counts.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	for i, c := range t.counts {
		if c == 0 {
			continue
		}
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatInt(c, 10)}); err != nil {
			return fmt.Errorf("table: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
