package table

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAddAndCount(t *testing.T) {
	tab := MustNew(4)
	// The running example: counts <2, 0, 10, 2> over four addresses.
	for pos, c := range []int{2, 0, 10, 2} {
		if err := tab.AddN(pos, c); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 14 {
		t.Fatalf("Len = %d, want 14", tab.Len())
	}
	if got, _ := tab.Count(0, 3); got != 14 {
		t.Fatalf("total count = %d", got)
	}
	if got, _ := tab.Count(2, 3); got != 12 {
		t.Fatalf("count[2,3] = %d, want 12 (prefix 01*)", got)
	}
	if got, _ := tab.Count(1, 1); got != 0 {
		t.Fatalf("count[1,1] = %d", got)
	}
}

func TestAddErrors(t *testing.T) {
	tab := MustNew(3)
	if err := tab.Add(-1); err == nil {
		t.Error("negative position accepted")
	}
	if err := tab.Add(3); err == nil {
		t.Error("out-of-range position accepted")
	}
	if err := tab.AddN(0, -2); err == nil {
		t.Error("negative count accepted")
	}
}

func TestCountErrors(t *testing.T) {
	tab := MustNew(3)
	for _, r := range [][2]int{{-1, 2}, {0, 3}, {2, 1}} {
		if _, err := tab.Count(r[0], r[1]); err == nil {
			t.Errorf("Count(%d,%d) accepted", r[0], r[1])
		}
	}
}

func TestHistogram(t *testing.T) {
	tab := MustNew(3)
	_ = tab.AddN(1, 5)
	h := tab.Histogram()
	if h[0] != 0 || h[1] != 5 || h[2] != 0 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestFreezeMatchesDirectCounts(t *testing.T) {
	tab := MustNew(64)
	for i := 0; i < 64; i++ {
		_ = tab.AddN(i, i%7)
	}
	ix := tab.Freeze()
	if ix.Len() != tab.Len() || ix.DomainSize() != 64 {
		t.Fatal("frozen metadata wrong")
	}
	for x := 0; x < 64; x += 5 {
		for y := x; y < 64; y += 9 {
			want, _ := tab.Count(x, y)
			got, err := ix.Count(x, y)
			if err != nil || got != want {
				t.Fatalf("Index.Count(%d,%d) = %d, %v; want %d", x, y, got, err, want)
			}
		}
	}
	if _, err := ix.Count(0, 64); err == nil {
		t.Fatal("bad range accepted by index")
	}
}

func TestFreezeSnapshotIsolation(t *testing.T) {
	tab := MustNew(2)
	_ = tab.Add(0)
	ix := tab.Freeze()
	_ = tab.Add(0)
	if got, _ := ix.Count(0, 0); got != 1 {
		t.Fatal("frozen index observed later mutation")
	}
}

func TestFromCounts(t *testing.T) {
	tab, err := FromCounts([]float64{2, 0, 10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 14 {
		t.Fatal("FromCounts lost records")
	}
	if _, err := FromCounts([]float64{1.5}); err == nil {
		t.Error("fractional count accepted")
	}
	if _, err := FromCounts([]float64{-1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestNewRejectsEmptyDomain(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestReadCSV(t *testing.T) {
	input := strings.Join([]string{
		"3,x", "0,y", "3,z", "bad,w", "9,v", "1",
	}, "\n")
	tab := MustNew(4)
	index := func(s string) (int, error) { return strconv.Atoi(s) }
	loaded, skipped, err := ReadCSV(strings.NewReader(input), 0, index, tab)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || skipped != 2 {
		t.Fatalf("loaded=%d skipped=%d, want 4/2", loaded, skipped)
	}
	if got, _ := tab.Count(3, 3); got != 2 {
		t.Fatalf("count[3] = %d", got)
	}
}

func TestReadCSVMissingColumn(t *testing.T) {
	tab := MustNew(4)
	index := func(s string) (int, error) { return strconv.Atoi(s) }
	loaded, skipped, err := ReadCSV(strings.NewReader("1\n2,0\n"), 1, index, tab)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 1 {
		t.Fatalf("loaded=%d skipped=%d", loaded, skipped)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tab := MustNew(5)
	_ = tab.AddN(1, 3)
	_ = tab.AddN(4, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "1,3\n4,7\n"
	if got != want {
		t.Fatalf("WriteCSV = %q, want %q", got, want)
	}
	// Round-trip through ReadCSV reading counts via AddN-style loader.
	back := MustNew(5)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	for _, ln := range lines {
		parts := strings.Split(ln, ",")
		pos, _ := strconv.Atoi(parts[0])
		c, _ := strconv.Atoi(parts[1])
		if err := back.AddN(pos, c); err != nil {
			t.Fatal(err)
		}
	}
	if back.Len() != tab.Len() {
		t.Fatal("round trip lost records")
	}
}
