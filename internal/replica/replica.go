// Package replica tails a primary dphist-server's replication log into
// a local replica store — the follower half of cluster mode.
//
// The tailer long-polls GET /v1/repl/stream?from=<applied+1> and folds
// each NDJSON journal record into the store through Store.Apply. When
// the primary answers 410 Gone — the requested records were compacted
// into a snapshot — it bootstraps from GET /v1/repl/snapshot and
// resumes streaming past the snapshot's sequence. Transport failures
// reconnect with backoff, and a chunk torn mid-record (the connection
// died between a record's bytes) is discarded and re-fetched, exactly
// like the journal's own torn-tail rule on disk. Corruption is
// different: a complete line that does not parse, a sequence gap, or a
// snapshot that fails to load means the replica can no longer claim to
// mirror the primary, so the tailer fails loudly — it records the
// error, stops applying, and stays stopped until an operator
// intervenes. Serving stale-but-correct data beats serving wrong data.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/journal"
)

// Config describes the primary to follow and the store to feed.
type Config struct {
	// Primary is the primary server's base URL, e.g. "http://10.0.0.5:8080".
	Primary string
	// Store is the replica store records are applied to; it must be
	// read-only (dphist.NewReplica or dphist.OpenReplica).
	Store *dphist.Store
	// Client issues the HTTP requests. Nil means http.DefaultTransport
	// with no client timeout — the stream long-polls, so a whole-request
	// timeout would kill healthy parked polls.
	Client *http.Client
	// Retry is the reconnect backoff after a transport failure; 0 means
	// one second.
	Retry time.Duration
	// Logf, when non-nil, receives connection-lifecycle and failure
	// messages (log.Printf-shaped).
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the tailer's counters.
type Stats struct {
	// State is one of "idle", "streaming", "bootstrapping", "retrying",
	// "failed", "stopped".
	State string
	// PrimarySeq is the primary's journal frontier as of the last
	// response that carried it; Lag is how far AppliedSeq trails it.
	PrimarySeq uint64
	AppliedSeq uint64
	Lag        uint64
	// RecordsApplied counts records folded into the store; Snapshots
	// counts full-state bootstraps; Errors counts transport failures
	// that triggered a reconnect.
	RecordsApplied int64
	Snapshots      int64
	Errors         int64
	// LastError is the most recent failure message, sticky after a
	// corruption stop.
	LastError string
}

// Tailer replicates a primary's journal into a local replica store.
// Start it once; Close joins the streaming goroutine, after which no
// further Apply can be in flight — close the store only after Close
// returns.
type Tailer struct {
	cfg    Config
	client *http.Client
	retry  time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the run loop has fully exited

	startOnce sync.Once
	closeOnce sync.Once

	state      atomic.Value // string
	primarySeq atomic.Uint64
	records    atomic.Int64
	snapshots  atomic.Int64
	errCount   atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

// New validates the configuration and returns an unstarted Tailer.
func New(cfg Config) (*Tailer, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: nil store")
	}
	if !cfg.Store.ReadOnly() {
		return nil, errors.New("replica: store must be a read-only replica (dphist.NewReplica or OpenReplica)")
	}
	u, err := url.Parse(cfg.Primary)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("replica: primary %q is not an absolute URL", cfg.Primary)
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	retry := cfg.Retry
	if retry <= 0 {
		retry = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &Tailer{
		cfg:    cfg,
		client: client,
		retry:  retry,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	t.state.Store("idle")
	return t, nil
}

// Start launches the streaming loop. It may be called once.
func (t *Tailer) Start() {
	t.startOnce.Do(func() { go t.run() })
}

// Close stops the tailer and waits for the streaming goroutine to
// exit; no Apply is in flight once it returns. Safe to call more than
// once, and required BEFORE closing the replica store — the mirror of
// the ingester-before-store shutdown rule.
func (t *Tailer) Close() {
	t.closeOnce.Do(func() {
		t.cancel()
		t.startOnce.Do(func() { close(t.done) }) // never started: nothing to join
		<-t.done
		if t.state.Load() != "failed" {
			t.state.Store("stopped")
		}
	})
}

// Stats returns the tailer's current counters.
func (t *Tailer) Stats() Stats {
	t.errMu.Lock()
	lastErr := t.lastErr
	t.errMu.Unlock()
	s := Stats{
		State:          t.state.Load().(string),
		PrimarySeq:     t.primarySeq.Load(),
		AppliedSeq:     t.cfg.Store.AppliedSeq(),
		RecordsApplied: t.records.Load(),
		Snapshots:      t.snapshots.Load(),
		Errors:         t.errCount.Load(),
		LastError:      lastErr,
	}
	if s.PrimarySeq > s.AppliedSeq {
		s.Lag = s.PrimarySeq - s.AppliedSeq
	}
	return s
}

func (t *Tailer) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

func (t *Tailer) setErr(err error) {
	t.errMu.Lock()
	t.lastErr = err.Error()
	t.errMu.Unlock()
}

// isCorrupt reports whether the error means the replica's view of the
// primary can no longer be trusted — the fail-loudly class, as opposed
// to transport hiccups that a reconnect repairs.
func isCorrupt(err error) bool {
	return errors.Is(err, journal.ErrCorrupt)
}

func (t *Tailer) run() {
	defer close(t.done)
	for {
		if t.ctx.Err() != nil {
			return
		}
		err := t.streamOnce()
		if err == nil {
			continue // clean end of chunk; re-poll immediately
		}
		if t.ctx.Err() != nil {
			return // shutdown cancels the in-flight request; not a failure
		}
		if isCorrupt(err) {
			t.setErr(err)
			t.state.Store("failed")
			t.logf("replica: replication stream corrupt, stopping: %v", err)
			return
		}
		t.setErr(err)
		t.errCount.Add(1)
		t.state.Store("retrying")
		t.logf("replica: stream from %s failed (%v), retrying in %v", t.cfg.Primary, err, t.retry)
		select {
		case <-t.ctx.Done():
			return
		case <-time.After(t.retry):
		}
	}
}

// streamOnce runs one stream request from the store's current position
// and applies every complete record it carries. A nil return means the
// chunk ended cleanly (or after a tolerated torn tail) and the caller
// should immediately re-poll.
func (t *Tailer) streamOnce() error {
	from := t.cfg.Store.AppliedSeq() + 1
	req, err := http.NewRequestWithContext(t.ctx, http.MethodGet,
		t.cfg.Primary+"/v1/repl/stream?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if seq, err := strconv.ParseUint(resp.Header.Get("X-Dphist-Journal-Seq"), 10, 64); err == nil {
		t.primarySeq.Store(seq)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Our position was compacted into a snapshot; full resync.
		return t.bootstrap()
	default:
		return fmt.Errorf("replica: stream from %s: HTTP %d", t.cfg.Primary, resp.StatusCode)
	}
	t.state.Store("streaming")
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if err == nil {
			var rec journal.Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				// A complete line that does not parse is corruption, not a
				// transport hiccup: re-fetching would replay the same bytes.
				return fmt.Errorf("%w: undecodable stream record: %v", journal.ErrCorrupt, jerr)
			}
			if aerr := t.cfg.Store.Apply(rec); aerr != nil {
				return aerr
			}
			t.records.Add(1)
			continue
		}
		if err == io.EOF {
			if len(line) > 0 {
				// Torn tail: the connection died mid-record. The partial
				// line was never applied, so discarding it and re-polling
				// from the store's position loses nothing — the journal's
				// own torn-append rule, applied to the wire.
				t.logf("replica: discarding %d-byte torn record tail, re-polling", len(line))
			}
			return nil
		}
		return err // transport failure mid-chunk; reconnect
	}
}

// bootstrap replaces the replica's whole state from the primary's
// snapshot endpoint — first sync for an empty replica, resync after
// compaction outran the stream position.
func (t *Tailer) bootstrap() error {
	t.state.Store("bootstrapping")
	t.logf("replica: bootstrapping from %s/v1/repl/snapshot", t.cfg.Primary)
	req, err := http.NewRequestWithContext(t.ctx, http.MethodGet, t.cfg.Primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot from %s: HTTP %d", t.cfg.Primary, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err // truncated snapshot body is a transport failure: retry
	}
	if seq, err := strconv.ParseUint(resp.Header.Get("X-Dphist-Journal-Seq"), 10, 64); err == nil {
		t.primarySeq.Store(seq)
	}
	if err := t.cfg.Store.Bootstrap(data); err != nil {
		return err // unparseable or regressing snapshots wrap ErrCorrupt
	}
	t.snapshots.Add(1)
	t.logf("replica: bootstrapped to seq %d", t.cfg.Store.AppliedSeq())
	return nil
}
