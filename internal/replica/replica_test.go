package replica_test

// End-to-end replication tests: a follower started from an empty
// directory against a live primary must converge and answer every read
// bit-identically, survive a kill-and-restart without double-applying,
// tolerate torn stream tails, and fail loudly on corruption.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/journal"
	"github.com/dphist/dphist/internal/replica"
	"github.com/dphist/dphist/internal/server"
)

var rangeSpecs = []dphist.RangeSpec{{Lo: 0, Hi: 8}, {Lo: 2, Hi: 5}, {Lo: 7, Hi: 8}, {Lo: 3, Hi: 3}}

var rectSpecs = []dphist.RectSpec{{X0: 0, Y0: 0, X1: 3, Y1: 3}, {X0: 1, Y0: 2, X1: 2, Y1: 3}}

// newPrimary opens a durable store in a temp dir and serves it over a
// replication-enabled test server with a short long-poll window.
func newPrimary(t *testing.T) (*dphist.Store, *httptest.Server) {
	t.Helper()
	store, err := dphist.OpenStore(t.TempDir(), dphist.WithBudget(8.0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, err := server.New(server.Config{
		Counts:         []float64{2, 0, 10, 2, 5, 5, 5, 5, 1},
		Store:          store,
		Seed:           7,
		ReplPollWindow: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

// mintState mints a 1-D and a 2-D release into the store's default
// namespace plus one in a tenant namespace, with distinct seeds so the
// noise differs per release.
func mintState(t *testing.T, store *dphist.Store, round uint64) {
	t.Helper()
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5, 1}
	cells := [][]float64{{1, 0, 3, 2}, {0, 5, 1, 0}, {2, 2, 0, 4}, {1, 0, 0, 7}}
	mint := func(ns *dphist.Namespace, name string, req dphist.Request, seed uint64) {
		t.Helper()
		session, err := ns.Session(dphist.MustNew(dphist.WithSeed(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ns.Mint(session, name, req); err != nil {
			t.Fatal(err)
		}
	}
	def := store.Namespace(dphist.DefaultNamespace)
	mint(def, "traffic", dphist.Request{Counts: counts, Epsilon: 0.5}, 100+round)
	mint(def, "heat", dphist.Request{Strategy: dphist.StrategyUniversal2D, Cells: cells, Epsilon: 0.25}, 200+round)
	mint(store.Namespace("tenant-a"), "grades", dphist.Request{Counts: counts, Epsilon: 0.5}, 300+round)
}

// requireParity asserts the follower answers every read endpoint
// bit-identically to the primary: range answers, rectangle answers,
// versions, and budget spend down to the float bits.
func requireParity(t *testing.T, primary, follower *dphist.Store) {
	t.Helper()
	for _, ns := range []string{dphist.DefaultNamespace, "tenant-a"} {
		pns, fns := primary.Namespace(ns), follower.Namespace(ns)
		for _, entry := range pns.List() {
			if got := fns.Version(entry.Name); got != entry.Version {
				t.Fatalf("ns %s release %s: follower version %d, primary %d", ns, entry.Name, got, entry.Version)
			}
			if entry.Name == "heat" {
				want, _, err := pns.QueryRects(entry.Name, rectSpecs)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := fns.QueryRects(entry.Name, rectSpecs)
				if err != nil {
					t.Fatalf("follower QueryRects %s/%s: %v", ns, entry.Name, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("ns %s rect %d: follower %v, primary %v", ns, i, got[i], want[i])
					}
				}
				continue
			}
			want, _, err := pns.Query(entry.Name, rangeSpecs)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := fns.Query(entry.Name, rangeSpecs)
			if err != nil {
				t.Fatalf("follower Query %s/%s: %v", ns, entry.Name, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ns %s range %d: follower %v, primary %v", ns, i, got[i], want[i])
				}
			}
		}
		ps, fs := pns.Accountant().Spent(), fns.Accountant().Spent()
		if math.Float64bits(ps) != math.Float64bits(fs) {
			t.Fatalf("ns %s: follower spent %v (bits %x), primary %v (bits %x)", ns, fs, math.Float64bits(fs), ps, math.Float64bits(ps))
		}
	}
}

func waitConverged(t *testing.T, follower, primary *dphist.Store) {
	t.Helper()
	waitFor(t, func() bool { return follower.AppliedSeq() == primary.JournalSeq() },
		fmt.Sprintf("follower at %d, primary at %d", follower.AppliedSeq(), primary.JournalSeq()))
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting: %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startTailer(t *testing.T, primary string, store *dphist.Store) *replica.Tailer {
	t.Helper()
	tailer, err := replica.New(replica.Config{
		Primary: primary,
		Store:   store,
		Retry:   10 * time.Millisecond,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	tailer.Start()
	t.Cleanup(tailer.Close)
	return tailer
}

func TestFollowerConvergesAndPromotes(t *testing.T) {
	pstore, pts := newPrimary(t)
	mintState(t, pstore, 0)
	// Snapshot so the follower exercises the bootstrap path, then mint
	// more so it also tails live records.
	if err := pstore.Snapshot(); err != nil {
		t.Fatal(err)
	}
	fstore := dphist.NewReplica(dphist.WithBudget(8.0))
	tailer := startTailer(t, pts.URL, fstore)
	waitConverged(t, fstore, pstore)
	mintState(t, pstore, 1)
	waitConverged(t, fstore, pstore)
	requireParity(t, pstore, fstore)
	if tailer.Stats().Snapshots == 0 {
		t.Fatal("follower converged without ever bootstrapping from the snapshot")
	}
	// Record the primary's answers, then kill it. The follower keeps
	// serving exactly what the primary last acked.
	want, _, err := pstore.Query("traffic", rangeSpecs)
	if err != nil {
		t.Fatal(err)
	}
	wantSpent := pstore.Namespace(dphist.DefaultNamespace).Accountant().Spent()
	pts.Close()
	waitFor(t, func() bool { return tailer.Stats().State == "retrying" }, "tailer noticing the dead primary")
	got, _, err := fstore.Query("traffic", rangeSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after primary death, range %d: follower %v, want %v", i, got[i], want[i])
		}
	}
	if got := fstore.Namespace(dphist.DefaultNamespace).Accountant().Spent(); math.Float64bits(got) != math.Float64bits(wantSpent) {
		t.Fatalf("after primary death, spent %v, want %v", got, wantSpent)
	}
}

func TestFollowerRestartMidStreamNoDoubleApply(t *testing.T) {
	pstore, pts := newPrimary(t)
	mintState(t, pstore, 0)
	dir := t.TempDir()
	fstore, err := dphist.OpenReplica(dir, dphist.WithBudget(8.0))
	if err != nil {
		t.Fatal(err)
	}
	tailer := startTailer(t, pts.URL, fstore)
	waitConverged(t, fstore, pstore)
	killedAt := fstore.AppliedSeq()
	// Kill the follower — tailer first, store second — while the
	// primary keeps writing, so the restart resumes mid-stream.
	tailer.Close()
	if err := fstore.Close(); err != nil {
		t.Fatal(err)
	}
	mintState(t, pstore, 1)
	fstore2, err := dphist.OpenReplica(dir, dphist.WithBudget(8.0))
	if err != nil {
		t.Fatal(err)
	}
	defer fstore2.Close()
	if got := fstore2.AppliedSeq(); got != killedAt {
		t.Fatalf("restarted follower resumes at %d, want the killed position %d", got, killedAt)
	}
	tailer2 := startTailer(t, pts.URL, fstore2)
	waitConverged(t, fstore2, pstore)
	// Parity — and in particular Spent() parity — proves nothing was
	// applied twice across the restart.
	requireParity(t, pstore, fstore2)
	tailer2.Close()
}

// fakePrimary serves a scripted /v1/repl/stream: responses[from] is
// written verbatim for that from value; unknown positions park briefly
// and answer an empty chunk.
func fakePrimary(t *testing.T, responses map[string][]byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/repl/stream" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Dphist-Journal-Seq", "2")
		body, ok := responses[r.URL.Query().Get("from")]
		if !ok {
			time.Sleep(20 * time.Millisecond) // caught up: empty poll
			return
		}
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func chargeLine(t *testing.T, seq uint64) []byte {
	t.Helper()
	line, err := json.Marshal(journal.Record{Seq: seq, Op: journal.OpCharge, Namespace: "default", Label: "r", Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return append(line, '\n')
}

func TestTailerToleratesTornTail(t *testing.T) {
	rec1, rec2 := chargeLine(t, 1), chargeLine(t, 2)
	ts := fakePrimary(t, map[string][]byte{
		// First chunk: record 1 complete, then record 2 torn mid-line —
		// the connection died between a record's bytes.
		"1": append(append([]byte{}, rec1...), rec2[:10]...),
		"2": rec2,
	})
	store := dphist.NewReplica(dphist.WithBudget(4.0))
	tailer := startTailer(t, ts.URL, store)
	waitFor(t, func() bool { return store.AppliedSeq() == 2 }, "both records applied past the torn tail")
	if s := tailer.Stats(); s.State == "failed" || s.RecordsApplied != 2 {
		t.Fatalf("tailer after torn tail: %+v", s)
	}
	if got := store.Namespace(dphist.DefaultNamespace).Accountant().Spent(); got != 0.5 {
		t.Fatalf("spent %v after two 0.25 charges, torn record double-applied?", got)
	}
}

func TestTailerFailsLoudOnCorruption(t *testing.T) {
	for name, body := range map[string][]byte{
		// A complete line that does not parse: re-fetching replays the
		// same bytes, so the tailer must not retry.
		"garbage-line": []byte("}{ not json\n"),
		// Records 1 then 3: the gap means record 2 is lost for good.
		"sequence-gap": append(append([]byte{}, chargeLine(t, 1)...), chargeLine(t, 3)...),
	} {
		t.Run(name, func(t *testing.T) {
			ts := fakePrimary(t, map[string][]byte{"1": body})
			store := dphist.NewReplica(dphist.WithBudget(4.0))
			tailer := startTailer(t, ts.URL, store)
			waitFor(t, func() bool { return tailer.Stats().State == "failed" }, "tailer failing loudly")
			s := tailer.Stats()
			if s.LastError == "" {
				t.Fatal("failed with no LastError")
			}
			if store.AppliedSeq() > 1 {
				t.Fatalf("applied past the corruption: seq %d", store.AppliedSeq())
			}
			// Failed is sticky: Close does not relabel it "stopped".
			tailer.Close()
			if got := tailer.Stats().State; got != "failed" {
				t.Fatalf("state after Close = %q, want failed to stick", got)
			}
		})
	}
}

func TestTailerCloseJoinsBeforeStoreClose(t *testing.T) {
	// Regression for shutdown ordering: Close must join the streaming
	// goroutine even while it is parked in a long poll, so the store can
	// be closed afterwards with no Apply in flight.
	pstore, pts := newPrimary(t)
	mintState(t, pstore, 0)
	fstore := dphist.NewReplica(dphist.WithBudget(8.0))
	tailer := startTailer(t, pts.URL, fstore)
	waitConverged(t, fstore, pstore)
	done := make(chan struct{})
	go func() { tailer.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not join the parked streaming goroutine")
	}
	if got := tailer.Stats().State; got != "stopped" {
		t.Fatalf("state after Close = %q", got)
	}
	tailer.Close() // idempotent
}

// BenchmarkReplicationApply measures the follower's apply path alone —
// decode-free journal records folded into an in-memory replica — the
// per-record floor of replication throughput.
func BenchmarkReplicationApply(b *testing.B) {
	dir := b.TempDir()
	primary, err := dphist.OpenStore(dir, dphist.WithBudget(1e9), dphist.WithoutSync())
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(i % 23)
	}
	ns := primary.Namespace(dphist.DefaultNamespace)
	for i := 0; i < 32; i++ {
		session, err := ns.Session(dphist.MustNew(dphist.WithSeed(uint64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ns.Mint(session, fmt.Sprintf("rel-%d", i), dphist.Request{Counts: counts, Epsilon: 0.001}); err != nil {
			b.Fatal(err)
		}
	}
	recs, err := primary.ReplicationRead(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := dphist.NewReplica(dphist.WithBudget(1e9))
		for _, rec := range recs {
			if err := f.Apply(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// BenchmarkReplicationShip measures the full pipe: HTTP stream from a
// live primary into a fresh follower, NDJSON decode and Apply included.
func BenchmarkReplicationShip(b *testing.B) {
	primary, err := dphist.OpenStore(b.TempDir(), dphist.WithBudget(1e9), dphist.WithoutSync())
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	counts := make([]float64, 256)
	for i := range counts {
		counts[i] = float64(i % 23)
	}
	ns := primary.Namespace(dphist.DefaultNamespace)
	for i := 0; i < 32; i++ {
		session, err := ns.Session(dphist.MustNew(dphist.WithSeed(uint64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ns.Mint(session, fmt.Sprintf("rel-%d", i), dphist.Request{Counts: counts, Epsilon: 0.001}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := server.New(server.Config{Counts: counts, Store: primary, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	target := primary.JournalSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := dphist.NewReplica(dphist.WithBudget(1e9))
		tailer, err := replica.New(replica.Config{Primary: ts.URL, Store: f, Retry: 10 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		tailer.Start()
		for f.AppliedSeq() < target {
			time.Sleep(100 * time.Microsecond)
		}
		tailer.Close()
	}
	b.ReportMetric(float64(target), "records/op")
}

func TestTailerValidation(t *testing.T) {
	store, err := dphist.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := replica.New(replica.Config{Primary: "http://x", Store: store}); err == nil {
		t.Fatal("tailer accepted a writable store")
	}
	rstore := dphist.NewReplica()
	if _, err := replica.New(replica.Config{Primary: "not-a-url", Store: rstore}); err == nil {
		t.Fatal("tailer accepted a relative primary URL")
	}
	if _, err := replica.New(replica.Config{Primary: "http://x"}); err == nil {
		t.Fatal("tailer accepted a nil store")
	}
	// A never-started tailer must still Close cleanly.
	tailer, err := replica.New(replica.Config{Primary: "http://localhost:1", Store: rstore})
	if err != nil {
		t.Fatal(err)
	}
	tailer.Close()
}
