package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/dphist/dphist"
)

func decodeAutoResponse(t *testing.T, body []byte) releaseResponse {
	t.Helper()
	var rr releaseResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	return rr
}

func TestAutoReleaseOverHTTP(t *testing.T) {
	ts := newTestServer(t, 5.0)
	resp, body := postRelease(t, ts,
		`{"strategy":"auto","epsilon":0.5,"workload":{"preset":"points"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr := decodeAutoResponse(t, body)
	if rr.Strategy == "auto" {
		t.Fatal("response reports the sentinel, not the resolved strategy")
	}
	if rr.Auto == nil {
		t.Fatalf("no auto decision in response: %s", body)
	}
	if rr.Auto.Strategy != rr.Strategy {
		t.Fatalf("decision strategy %q, response strategy %q", rr.Auto.Strategy, rr.Strategy)
	}
	if len(rr.Auto.Alternatives) < 5 {
		t.Fatalf("only %d alternatives: %s", len(rr.Auto.Alternatives), body)
	}
	// The embedded release decodes client-side and carries the decision.
	rel, err := dphist.DecodeRelease(rr.Release)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := dphist.ReleaseDecision(rel)
	if !ok || dec.Strategy != rr.Strategy {
		t.Fatalf("decoded release decision %+v ok=%v", dec, ok)
	}
	// A direct mint carries no decision block.
	resp, body = postRelease(t, ts, `{"strategy":"laplace","epsilon":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if rr := decodeAutoResponse(t, body); rr.Auto != nil {
		t.Fatalf("direct mint reports auto decision: %s", body)
	}
}

func TestAutoReleaseWithExplicitRangesAndWeights(t *testing.T) {
	ts := newTestServer(t, 5.0)
	resp, body := postRelease(t, ts,
		`{"strategy":"auto","epsilon":0.5,"workload":{"ranges":[{"lo":0,"hi":8,"weight":2},{"lo":2,"hi":5}]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if rr := decodeAutoResponse(t, body); rr.Auto == nil {
		t.Fatalf("no decision: %s", body)
	}
}

func TestAutoCountOfCountsOverHTTP(t *testing.T) {
	ts := newTestServer(t, 5.0)
	resp, body := postRelease(t, ts,
		`{"strategy":"auto","epsilon":0.5,"workload":{"preset":"count_of_counts"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr := decodeAutoResponse(t, body)
	if rr.Auto == nil || rr.Auto.PredictedError <= 0 {
		t.Fatalf("decision %+v", rr.Auto)
	}
}

func TestAutoBadSketchOverHTTP(t *testing.T) {
	ts := newTestServer(t, 5.0)
	cases := []struct {
		name, body string
	}{
		{"no sketch", `{"strategy":"auto","epsilon":0.5}`},
		{"empty sketch", `{"strategy":"auto","epsilon":0.5,"workload":{}}`},
		{"unknown preset", `{"strategy":"auto","epsilon":0.5,"workload":{"preset":"nope"}}`},
		{"range outside domain", `{"strategy":"auto","epsilon":0.5,"workload":{"ranges":[{"lo":0,"hi":999}]}}`},
		{"rects without cells", `{"strategy":"auto","epsilon":0.5,"workload":{"rects":[{"x1":1,"y1":1}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRelease(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
		})
	}
	// Nothing above should have spent budget.
	resp, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Spent != 0 {
		t.Fatalf("bad sketches spent %v", br.Spent)
	}
}

func TestSketchErrorStatusMapping(t *testing.T) {
	if got := sketchErrorStatus(dphist.ErrDomainTooLarge); got != http.StatusUnprocessableEntity {
		t.Fatalf("ErrDomainTooLarge -> %d", got)
	}
	if got := sketchErrorStatus(dphist.ErrBadSketch); got != http.StatusBadRequest {
		t.Fatalf("ErrBadSketch -> %d", got)
	}
	var s Server
	rec := httptest.NewRecorder()
	s.writeReleaseError(rec, dphist.ErrDomainTooLarge)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("writeReleaseError(ErrDomainTooLarge) = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.writeReleaseError(rec, dphist.ErrBadSketch)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("writeReleaseError(ErrBadSketch) = %d", rec.Code)
	}
}

func TestAutoStoreReleaseJournalsConcrete(t *testing.T) {
	ts := newTestServer(t, 5.0)
	resp, body := postJSON(t, ts, "/v1/releases",
		`{"name":"advised","strategy":"auto","epsilon":0.5,"workload":{"preset":"points"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr storeReleaseResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Strategy == "auto" || sr.Strategy == "" {
		t.Fatalf("stored strategy %q", sr.Strategy)
	}
	if sr.Auto == nil || sr.Auto.Strategy != sr.Strategy {
		t.Fatalf("stored decision %+v for strategy %q", sr.Auto, sr.Strategy)
	}
	// The listing (fed from the store's journal metadata) shows the
	// concrete strategy, never the sentinel.
	resp, err := http.Get(ts.URL + "/v1/releases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Releases []storedReleaseInfo `json:"releases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Releases) != 1 || list.Releases[0].Strategy != sr.Strategy {
		t.Fatalf("listing %+v", list.Releases)
	}
}

func TestAutoOnNamespacedRoutes(t *testing.T) {
	ts := newTestServer(t, 5.0)
	resp, body := postJSON(t, ts, "/v1/ns/tenant1/release",
		`{"strategy":"auto","epsilon":0.5,"workload":{"preset":"points"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if rr := decodeAutoResponse(t, body); rr.Auto == nil {
		t.Fatalf("no decision on namespaced route: %s", body)
	}
	resp, body = postJSON(t, ts, "/v1/ns/tenant1/releases",
		`{"name":"advised","strategy":"auto","epsilon":0.5,"workload":{"preset":"prefixes"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr storeReleaseResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Namespace != "tenant1" || sr.Auto == nil {
		t.Fatalf("stored %+v", sr.storedReleaseInfo)
	}
}

func TestAutoResolutionStats(t *testing.T) {
	ts := newTestServer(t, 10.0)
	for i := 0; i < 3; i++ {
		resp, body := postRelease(t, ts,
			`{"strategy":"auto","epsilon":0.5,"workload":{"preset":"points"}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	// Direct mints must not count as auto resolutions.
	if resp, body := postRelease(t, ts, `{"strategy":"laplace","epsilon":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, n := range stats.Requests.AutoResolved {
		total += n
	}
	if total != 3 {
		t.Fatalf("auto_resolved %v, want 3 total", stats.Requests.AutoResolved)
	}
	// The points preset resolves deterministically to laplace on this
	// server's counts.
	if stats.Requests.AutoResolved["laplace"] != 3 {
		t.Fatalf("auto_resolved %v", stats.Requests.AutoResolved)
	}
}
