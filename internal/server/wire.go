// wire.go is the zero-allocation wire layer for the query hot path.
//
// POST /v1/query and /v1/query2d are the routes the serving tier exists
// for: the in-memory plan engine answers a range in tens of
// nanoseconds, so reflection-based encoding/json decode/encode and the
// per-request slices it allocates dominated the served cost. This file
// replaces that path with a pooled scratch struct carried through the
// whole request — body bytes, decoded specs, answers, and the response
// buffer all live in one sync.Pool entry — a hand-rolled streaming
// parser for the two fixed request shapes, and an append-based response
// writer built on strconv. The steady-state cost is ~1 amortized
// allocation per request (enforced by TestServerQueryAllocs).
//
// The parser is not "close enough" JSON: FuzzQueryRequestParse holds it
// to encoding/json's observable behavior on the request shapes —
// case-insensitive field matching (bytes.EqualFold, as encoding/json
// folds names), last-value-wins duplicate keys, null as a field no-op,
// unknown fields skipped with full syntactic validation, encoding/json's
// string unescaping (including lone-surrogate and invalid-UTF-8
// replacement) and its strconv.ParseInt integer semantics. Where it is
// stricter than a generic decoder it is stricter on purpose: a spec
// batch larger than the route cap fails during parsing, before the
// oversized tail is even scanned.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"github.com/dphist/dphist"
)

// queryScratch is one pooled working set for a query request: every
// buffer the hot path touches, reused across requests. Fields hold
// their capacity between uses; slices are re-sliced to zero length, not
// reallocated. A scratch is owned by exactly one request at a time, so
// none of this needs locking.
type queryScratch struct {
	body    []byte             // raw request body
	key     []byte             // decoded object key scratch
	str     []byte             // decoded name scratch
	specs   []dphist.RangeSpec // decoded /v1/query batch
	rects   []dphist.RectSpec  // decoded /v1/query2d batch
	answers []float64          // query results
	out     []byte             // encoded response

	// Interning memo for the release name: converting decoded name
	// bytes to a string is the one unavoidable allocation in the hot
	// path, and serving traffic re-queries a small set of names. Each
	// scratch remembers the last name it interned; a repeat costs a
	// byte comparison instead of an allocation.
	lastNameBytes []byte
	lastName      string
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// internName returns sc.str as a string, reusing the scratch's memoized
// string when the bytes match the previous request's name.
func (sc *queryScratch) internName() string {
	if bytes.Equal(sc.str, sc.lastNameBytes) {
		return sc.lastName
	}
	sc.lastName = string(sc.str)
	sc.lastNameBytes = append(sc.lastNameBytes[:0], sc.str...)
	return sc.lastName
}

// readBody reads the request body into the scratch's pooled buffer,
// enforcing maxRequestBody. On failure it writes the error response and
// returns false. The manual read loop exists because
// http.MaxBytesReader allocates a wrapper per request.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *queryScratch) bool {
	buf := sc.body[:0]
	if n := r.ContentLength; n > 0 {
		if n > maxRequestBody {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("malformed request: request body exceeds %d bytes", maxRequestBody)})
			return false
		}
		if int64(cap(buf)) < n {
			buf = make([]byte, 0, n)
		}
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > maxRequestBody {
			sc.body = buf
			s.writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("malformed request: request body exceeds %d bytes", maxRequestBody)})
			return false
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			sc.body = buf
			s.writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: "malformed request: reading body: " + err.Error()})
			return false
		}
	}
	sc.body = buf
	return true
}

// maxNestingDepth mirrors encoding/json's scanner limit, so deeply
// nested unknown fields fail here exactly where they fail there.
const maxNestingDepth = 10000

var errUnexpectedEnd = errors.New("unexpected end of request body")

// wireParser is a cursor over one request body. Parse errors are the
// cold path and may allocate freely.
type wireParser struct {
	data  []byte
	pos   int
	depth int
}

func (p *wireParser) errAt(msg string) error {
	return fmt.Errorf("%s at offset %d", msg, p.pos)
}

func (p *wireParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// literal consumes the exact bytes of lit ("true", "false", "null").
func (p *wireParser) literal(lit string) error {
	if len(p.data)-p.pos < len(lit) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errAt("invalid literal")
	}
	p.pos += len(lit)
	return nil
}

// end verifies only whitespace remains, matching json.Unmarshal's
// rejection of trailing data after the top-level value.
func (p *wireParser) end() error {
	p.skipSpace()
	if p.pos != len(p.data) {
		return p.errAt("unexpected data after top-level value")
	}
	return nil
}

// peekNull reports whether the next value is the null literal.
func (p *wireParser) peekNull() bool {
	return p.pos < len(p.data) && p.data[p.pos] == 'n'
}

// hex4 consumes 4 hex digits and returns their value.
func (p *wireParser) hex4() (rune, error) {
	if len(p.data)-p.pos < 4 {
		return 0, errUnexpectedEnd
	}
	var v rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos]
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			v = v<<4 | rune(c-'A'+10)
		default:
			return 0, p.errAt("invalid \\u escape")
		}
		p.pos++
	}
	return v, nil
}

// peekU reads a \uXXXX sequence at b without consuming, returning
// (value, 6) or (0, 0). Mirrors encoding/json's getu4 probe for the low
// half of a surrogate pair.
func peekU(b []byte) (rune, int) {
	if len(b) < 6 || b[0] != '\\' || b[1] != 'u' {
		return 0, 0
	}
	var v rune
	for _, c := range b[2:6] {
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			v = v<<4 | rune(c-'A'+10)
		default:
			return 0, 0
		}
	}
	return v, 6
}

// string decodes a JSON string into dst, matching encoding/json's
// unquote: full escape set, surrogate pairs, lone surrogates and
// invalid UTF-8 replaced with U+FFFD, control characters rejected.
func (p *wireParser) string(dst []byte) ([]byte, error) {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return dst, p.errAt("expected string")
	}
	p.pos++
	for {
		if p.pos >= len(p.data) {
			return dst, errUnexpectedEnd
		}
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return dst, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return dst, errUnexpectedEnd
			}
			switch e := p.data[p.pos]; e {
			case '"', '\\', '/':
				dst = append(dst, e)
				p.pos++
			case 'b':
				dst = append(dst, '\b')
				p.pos++
			case 'f':
				dst = append(dst, '\f')
				p.pos++
			case 'n':
				dst = append(dst, '\n')
				p.pos++
			case 'r':
				dst = append(dst, '\r')
				p.pos++
			case 't':
				dst = append(dst, '\t')
				p.pos++
			case 'u':
				p.pos++
				r, err := p.hex4()
				if err != nil {
					return dst, err
				}
				if utf16.IsSurrogate(r) {
					// A valid pair combines; anything else leaves U+FFFD
					// for this half and reprocesses what follows, exactly
					// as encoding/json's unquote does.
					if r2, n := peekU(p.data[p.pos:]); n > 0 {
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							p.pos += n
							dst = utf8.AppendRune(dst, dec)
							continue
						}
					}
					r = utf8.RuneError
				}
				dst = utf8.AppendRune(dst, r)
			default:
				return dst, p.errAt("invalid escape character in string")
			}
		case c < 0x20:
			return dst, p.errAt("control character in string")
		case c < utf8.RuneSelf:
			dst = append(dst, c)
			p.pos++
		default:
			r, size := utf8.DecodeRune(p.data[p.pos:])
			p.pos += size
			dst = utf8.AppendRune(dst, r) // invalid bytes become U+FFFD
		}
	}
}

// skipString validates a string without decoding it: escapes checked,
// control characters rejected, raw bytes otherwise accepted (the
// encoding/json scanner does not validate UTF-8 either).
func (p *wireParser) skipString() error {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return p.errAt("expected string")
	}
	p.pos++
	for {
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return errUnexpectedEnd
			}
			switch p.data[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				if _, err := p.hex4(); err != nil {
					return err
				}
			default:
				return p.errAt("invalid escape character in string")
			}
		case c < 0x20:
			return p.errAt("control character in string")
		default:
			p.pos++
		}
	}
}

// scanNumber validates a JSON number without converting it.
func (p *wireParser) scanNumber() error {
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos >= len(p.data):
		return errUnexpectedEnd
	case p.data[p.pos] == '0':
		p.pos++
	case '1' <= p.data[p.pos] && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return p.errAt("invalid number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return p.errAt("invalid number")
		}
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return p.errAt("invalid number")
		}
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	return nil
}

// int parses a JSON integer with strconv.ParseInt semantics as
// encoding/json applies them to an int field: no leading zeros beyond a
// lone 0, no fraction or exponent, int64 range. Error labeling is the
// caller's job (the error path may allocate; this path must not).
func (p *wireParser) int() (int, error) {
	neg := false
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		neg = true
		p.pos++
	}
	if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
		return 0, p.errAt("expected integer")
	}
	if p.data[p.pos] == '0' && p.pos+1 < len(p.data) && '0' <= p.data[p.pos+1] && p.data[p.pos+1] <= '9' {
		return 0, p.errAt("invalid number literal")
	}
	var v uint64
	for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
		if v > (math.MaxUint64-9)/10 {
			return 0, p.errAt("integer overflow")
		}
		v = v*10 + uint64(p.data[p.pos]-'0')
		p.pos++
	}
	if p.pos < len(p.data) && (p.data[p.pos] == '.' || p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		return 0, p.errAt("expected integer, got number")
	}
	bound := uint64(math.MaxInt64)
	if neg {
		bound++
	}
	if v > bound {
		return 0, p.errAt("integer overflow")
	}
	if neg {
		return int(-v), nil
	}
	return int(v), nil
}

// skipValue consumes and syntactically validates one value of any type,
// tracking nesting depth — unknown fields get the same scrutiny
// encoding/json's scanner gives them.
func (p *wireParser) skipValue() error {
	p.skipSpace()
	if p.pos >= len(p.data) {
		return errUnexpectedEnd
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		p.pos++
		p.depth++
		if p.depth > maxNestingDepth {
			return p.errAt("exceeded max nesting depth")
		}
		first := true
		for {
			p.skipSpace()
			if p.pos >= len(p.data) {
				return errUnexpectedEnd
			}
			if p.data[p.pos] == '}' {
				p.pos++
				p.depth--
				return nil
			}
			if !first {
				if p.data[p.pos] != ',' {
					return p.errAt("expected ',' or '}'")
				}
				p.pos++
				p.skipSpace()
			}
			first = false
			if err := p.skipString(); err != nil {
				return err
			}
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != ':' {
				return p.errAt("expected ':'")
			}
			p.pos++
			if err := p.skipValue(); err != nil {
				return err
			}
		}
	case c == '[':
		p.pos++
		p.depth++
		if p.depth > maxNestingDepth {
			return p.errAt("exceeded max nesting depth")
		}
		first := true
		for {
			p.skipSpace()
			if p.pos >= len(p.data) {
				return errUnexpectedEnd
			}
			if p.data[p.pos] == ']' {
				p.pos++
				p.depth--
				return nil
			}
			if !first {
				if p.data[p.pos] != ',' {
					return p.errAt("expected ',' or ']'")
				}
				p.pos++
			}
			first = false
			if err := p.skipValue(); err != nil {
				return err
			}
		}
	case c == '"':
		return p.skipString()
	case c == 't':
		return p.literal("true")
	case c == 'f':
		return p.literal("false")
	case c == 'n':
		return p.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		return p.scanNumber()
	default:
		return p.errAt("unexpected character")
	}
}

// key decodes the next object key into sc.key and consumes the
// following colon.
func (p *wireParser) key(sc *queryScratch) error {
	k, err := p.string(sc.key[:0])
	sc.key = k
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != ':' {
		return p.errAt("expected ':'")
	}
	p.pos++
	return nil
}

// parseQueryRequest decodes {"name": ..., "ranges": [{"lo":..,"hi":..},
// ...]} from sc.body, appending specs into sc.specs. maxSpecs bounds the
// batch during parsing. Returned name and specs alias the scratch's
// pooled buffers.
func parseQueryRequest(sc *queryScratch, maxSpecs int) (name string, specs []dphist.RangeSpec, err error) {
	p := wireParser{data: sc.body}
	sc.specs = sc.specs[:0]
	sc.str = sc.str[:0]
	hasName := false
	var st specState

	p.skipSpace()
	if p.pos >= len(p.data) {
		return "", nil, errUnexpectedEnd
	}
	if p.peekNull() {
		if err := p.literal("null"); err != nil {
			return "", nil, err
		}
		return "", nil, p.end()
	}
	if p.data[p.pos] != '{' {
		return "", nil, p.errAt("expected request object")
	}
	p.pos++
	p.depth++
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return "", nil, errUnexpectedEnd
		}
		if p.data[p.pos] == '}' {
			p.pos++
			break
		}
		if !first {
			if p.data[p.pos] != ',' {
				return "", nil, p.errAt("expected ',' or '}'")
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if err := p.key(sc); err != nil {
			return "", nil, err
		}
		switch {
		case bytes.EqualFold(sc.key, nameField):
			p.skipSpace()
			if p.peekNull() {
				if err := p.literal("null"); err != nil {
					return "", nil, err
				}
				continue // null leaves the previous value in place
			}
			sc.str, err = p.string(sc.str[:0])
			if err != nil {
				return "", nil, fmt.Errorf("name: %w", err)
			}
			hasName = true
		case bytes.EqualFold(sc.key, rangesField):
			if err := p.parseRangeSpecs(sc, maxSpecs, &st); err != nil {
				return "", nil, err
			}
		default:
			if err := p.skipValue(); err != nil {
				return "", nil, err
			}
		}
	}
	p.depth--
	if err := p.end(); err != nil {
		return "", nil, err
	}
	if hasName {
		name = sc.internName()
	}
	if !st.got {
		return name, nil, nil
	}
	return name, sc.specs, nil
}

// specState tracks one request's spec-array decoding across duplicate
// keys: got distinguishes "ranges present (possibly empty)" from
// absent, hw is the high-water element count written this request —
// the slots a later duplicate array may inherit from, mirroring
// encoding/json's reuse of slice capacity it allocated earlier in the
// same Unmarshal.
type specState struct {
	got bool
	hw  int
}

var (
	nameField   = []byte("name")
	rangesField = []byte("ranges")
	rectsField  = []byte("rects")
	loField     = []byte("lo")
	hiField     = []byte("hi")
	x0Field     = []byte("x0")
	y0Field     = []byte("y0")
	x1Field     = []byte("x1")
	y1Field     = []byte("y1")
)

// parseRangeSpecs decodes the "ranges" array value into sc.specs. A
// null value is a no-op (previous value kept). On a duplicate key the
// new array decodes over the previous one's elements — a slot's fields
// survive unless the new element overwrites them — because that is what
// encoding/json does when it re-decodes a field into an existing slice,
// and FuzzQueryRequestParse holds this parser to that behavior.
func (p *wireParser) parseRangeSpecs(sc *queryScratch, maxSpecs int, st *specState) error {
	p.skipSpace()
	if p.peekNull() {
		// Unlike scalar fields, null decoded into a slice sets it to
		// nil: discard everything an earlier duplicate key accumulated.
		*st = specState{}
		sc.specs = sc.specs[:0]
		return p.literal("null")
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '[' {
		return p.errAt("ranges: expected array")
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errAt("exceeded max nesting depth")
	}
	specs := sc.specs[:st.hw] // slots an earlier duplicate key wrote
	st.got = true
	n := 0
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		if p.data[p.pos] == ']' {
			p.pos++
			p.depth--
			if len(specs) > st.hw {
				st.hw = len(specs)
			}
			sc.specs = specs[:n]
			return nil
		}
		if !first {
			if p.data[p.pos] != ',' {
				return p.errAt("ranges: expected ',' or ']'")
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if n >= maxSpecs {
			return fmt.Errorf("batch exceeds limit of %d ranges", maxSpecs)
		}
		var spec dphist.RangeSpec
		if n < len(specs) {
			spec = specs[n]
		}
		if err := p.parseRangeSpec(sc, n, &spec); err != nil {
			return err
		}
		if n < len(specs) {
			specs[n] = spec
		} else {
			specs = append(specs, spec)
		}
		n++
	}
}

// parseRangeSpec decodes one {"lo":..,"hi":..} element (or null, the
// zero spec). Errors name the element index — the 400 the analyst sees
// points at the offending spec.
func (p *wireParser) parseRangeSpec(sc *queryScratch, i int, spec *dphist.RangeSpec) error {
	if p.peekNull() {
		return p.literal("null")
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '{' {
		return p.errAt(fmt.Sprintf("ranges[%d]: expected object", i))
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errAt("exceeded max nesting depth")
	}
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		if p.data[p.pos] == '}' {
			p.pos++
			p.depth--
			return nil
		}
		if !first {
			if p.data[p.pos] != ',' {
				return p.errAt(fmt.Sprintf("ranges[%d]: expected ',' or '}'", i))
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if err := p.key(sc); err != nil {
			return err
		}
		var dst *int
		switch {
		case bytes.EqualFold(sc.key, loField):
			dst = &spec.Lo
		case bytes.EqualFold(sc.key, hiField):
			dst = &spec.Hi
		default:
			if err := p.skipValue(); err != nil {
				return err
			}
			continue
		}
		p.skipSpace()
		if p.peekNull() {
			if err := p.literal("null"); err != nil {
				return err
			}
			continue
		}
		v, err := p.int()
		if err != nil {
			return fmt.Errorf("ranges[%d].%s: %w", i, sc.key, err)
		}
		*dst = v
	}
}

// parseQuery2DRequest is parseQueryRequest for {"name": ..., "rects":
// [{"x0":..,"y0":..,"x1":..,"y1":..}, ...]}.
func parseQuery2DRequest(sc *queryScratch, maxSpecs int) (name string, rects []dphist.RectSpec, err error) {
	p := wireParser{data: sc.body}
	sc.rects = sc.rects[:0]
	sc.str = sc.str[:0]
	hasName := false
	var st specState

	p.skipSpace()
	if p.pos >= len(p.data) {
		return "", nil, errUnexpectedEnd
	}
	if p.peekNull() {
		if err := p.literal("null"); err != nil {
			return "", nil, err
		}
		return "", nil, p.end()
	}
	if p.data[p.pos] != '{' {
		return "", nil, p.errAt("expected request object")
	}
	p.pos++
	p.depth++
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return "", nil, errUnexpectedEnd
		}
		if p.data[p.pos] == '}' {
			p.pos++
			break
		}
		if !first {
			if p.data[p.pos] != ',' {
				return "", nil, p.errAt("expected ',' or '}'")
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if err := p.key(sc); err != nil {
			return "", nil, err
		}
		switch {
		case bytes.EqualFold(sc.key, nameField):
			p.skipSpace()
			if p.peekNull() {
				if err := p.literal("null"); err != nil {
					return "", nil, err
				}
				continue
			}
			sc.str, err = p.string(sc.str[:0])
			if err != nil {
				return "", nil, fmt.Errorf("name: %w", err)
			}
			hasName = true
		case bytes.EqualFold(sc.key, rectsField):
			if err := p.parseRectSpecs(sc, maxSpecs, &st); err != nil {
				return "", nil, err
			}
		default:
			if err := p.skipValue(); err != nil {
				return "", nil, err
			}
		}
	}
	p.depth--
	if err := p.end(); err != nil {
		return "", nil, err
	}
	if hasName {
		name = sc.internName()
	}
	if !st.got {
		return name, nil, nil
	}
	return name, sc.rects, nil
}

// parseRectSpecs mirrors parseRangeSpecs' duplicate-key inheritance;
// see the comment there.
func (p *wireParser) parseRectSpecs(sc *queryScratch, maxSpecs int, st *specState) error {
	p.skipSpace()
	if p.peekNull() {
		*st = specState{}
		sc.rects = sc.rects[:0]
		return p.literal("null")
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '[' {
		return p.errAt("rects: expected array")
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errAt("exceeded max nesting depth")
	}
	rects := sc.rects[:st.hw] // slots an earlier duplicate key wrote
	st.got = true
	n := 0
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		if p.data[p.pos] == ']' {
			p.pos++
			p.depth--
			if len(rects) > st.hw {
				st.hw = len(rects)
			}
			sc.rects = rects[:n]
			return nil
		}
		if !first {
			if p.data[p.pos] != ',' {
				return p.errAt("rects: expected ',' or ']'")
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if n >= maxSpecs {
			return fmt.Errorf("batch exceeds limit of %d rectangles", maxSpecs)
		}
		var spec dphist.RectSpec
		if n < len(rects) {
			spec = rects[n]
		}
		if err := p.parseRectSpec(sc, n, &spec); err != nil {
			return err
		}
		if n < len(rects) {
			rects[n] = spec
		} else {
			rects = append(rects, spec)
		}
		n++
	}
}

func (p *wireParser) parseRectSpec(sc *queryScratch, i int, spec *dphist.RectSpec) error {
	if p.peekNull() {
		return p.literal("null")
	}
	if p.pos >= len(p.data) || p.data[p.pos] != '{' {
		return p.errAt(fmt.Sprintf("rects[%d]: expected object", i))
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return p.errAt("exceeded max nesting depth")
	}
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return errUnexpectedEnd
		}
		if p.data[p.pos] == '}' {
			p.pos++
			p.depth--
			return nil
		}
		if !first {
			if p.data[p.pos] != ',' {
				return p.errAt(fmt.Sprintf("rects[%d]: expected ',' or '}'", i))
			}
			p.pos++
			p.skipSpace()
		}
		first = false
		if err := p.key(sc); err != nil {
			return err
		}
		var dst *int
		switch {
		case bytes.EqualFold(sc.key, x0Field):
			dst = &spec.X0
		case bytes.EqualFold(sc.key, y0Field):
			dst = &spec.Y0
		case bytes.EqualFold(sc.key, x1Field):
			dst = &spec.X1
		case bytes.EqualFold(sc.key, y1Field):
			dst = &spec.Y1
		default:
			if err := p.skipValue(); err != nil {
				return err
			}
			continue
		}
		p.skipSpace()
		if p.peekNull() {
			if err := p.literal("null"); err != nil {
				return err
			}
			continue
		}
		v, err := p.int()
		if err != nil {
			return fmt.Errorf("rects[%d].%s: %w", i, sc.key, err)
		}
		*dst = v
	}
}

// --- response encoding ---

const hexDigits = "0123456789abcdef"

// errUnsupportedFloat mirrors encoding/json's UnsupportedValueError for
// NaN and infinities, which JSON cannot carry.
var errUnsupportedFloat = errors.New("unsupported value: NaN or Inf answer")

// appendJSONString appends s as a JSON string, byte-identical to
// encoding/json's default encoder: HTML-relevant characters and
// U+2028/U+2029 escaped, invalid UTF-8 replaced with U+FFFD.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder
// does: shortest representation, 'f' format unless the magnitude calls
// for 'e', with the exponent's leading zero trimmed.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, errUnsupportedFloat
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// appendQueryResponse appends the query/query2d success payload —
// {"namespace":...,"name":...,"version":N,"strategy":...,"answers":[...]}
// plus the trailing newline json.Encoder emits — so the wire bytes are
// indistinguishable from the reflection path's.
func appendQueryResponse(b []byte, entry dphist.StoreEntry, answers []float64) ([]byte, error) {
	b = append(b, `{"namespace":`...)
	b = appendJSONString(b, entry.Namespace)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, entry.Name)
	b = append(b, `,"version":`...)
	b = strconv.AppendInt(b, int64(entry.Version), 10)
	b = append(b, `,"strategy":`...)
	b = appendJSONString(b, entry.Strategy.String())
	b = append(b, `,"answers":[`...)
	var err error
	for i, v := range answers {
		if i > 0 {
			b = append(b, ',')
		}
		if b, err = appendJSONFloat(b, v); err != nil {
			return b, err
		}
	}
	return append(b, ']', '}', '\n'), nil
}

// nsView returns the namespace handle for ns, cached so the hot path
// does not allocate a view per request. Views are cached only for
// namespaces that exist (or the default): a probe for an arbitrary name
// must not grow server state, reads never create namespaces.
func (s *Server) nsView(ns string) *dphist.Namespace {
	if v, ok := s.nsViews.Load(ns); ok {
		return v.(*dphist.Namespace)
	}
	v := s.store.Namespace(ns)
	if ns == dphist.DefaultNamespace || s.store.HasNamespace(ns) {
		s.nsViews.Store(ns, v)
	}
	return v
}

// serveQueryError maps a query failure onto the same statuses the
// reflection path used: unknown release is 404, anything else about the
// request (malformed spec, wrong dimensionality) is the analyst's 400.
func (s *Server) serveQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, dphist.ErrReleaseNotFound) {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// writeQueryResponse encodes into the scratch's pooled output buffer
// and writes it. An unencodable answer (NaN/Inf) is a server-side fault:
// counted, 500, nothing half-written.
func (s *Server) writeQueryResponse(w http.ResponseWriter, sc *queryScratch, entry dphist.StoreEntry, answers []float64) {
	out, err := appendQueryResponse(sc.out[:0], entry, answers)
	sc.out = out
	if err != nil {
		s.encodeErrors.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "encoding response: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}
