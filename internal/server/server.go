// Package server exposes a private histogram interface over HTTP — the
// deployment the paper sketches in Appendix B ("the server can implement
// the post-processing step. In that case it would appear to the analyst
// as if the server was sampling from the improved distribution"), in the
// spirit of the emerging private query interfaces it cites (PINQ).
//
// The data owner holds one sensitive count vector and a total epsilon
// budget. Analysts POST release requests; the server runs the mechanism
// plus constrained inference, charges the budget under sequential
// composition, and returns the serialized release. Once the budget is
// exhausted every further request is refused — permanently.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/privacy"
)

// Config describes the protected dataset and policy.
type Config struct {
	// Counts is the sensitive unit-count histogram being protected.
	Counts []float64
	// Budget is the total epsilon available across all releases.
	Budget float64
	// Seed drives the noise streams.
	Seed uint64
	// Branching is the universal-histogram tree fan-out; 0 means 2.
	Branching int
	// MaxEpsilonPerRequest caps single requests; 0 means no cap beyond
	// the remaining budget.
	MaxEpsilonPerRequest float64
}

// Server is the HTTP-facing privacy mechanism. Safe for concurrent use.
type Server struct {
	cfg        Config
	mechanism  *dphist.Mechanism
	accountant *privacy.Accountant
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Counts) == 0 {
		return nil, errors.New("server: empty count vector")
	}
	if !(cfg.Budget > 0) {
		return nil, fmt.Errorf("server: budget %v must be positive", cfg.Budget)
	}
	k := cfg.Branching
	if k == 0 {
		k = 2
	}
	m, err := dphist.New(dphist.WithSeed(cfg.Seed), dphist.WithBranching(k))
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		mechanism:  m,
		accountant: privacy.NewAccountant(cfg.Budget),
	}, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/release", s.handleRelease)
	return mux
}

// budgetResponse is the GET /v1/budget payload.
type budgetResponse struct {
	Total     float64 `json:"total"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, budgetResponse{
		Total:     s.accountant.Total(),
		Spent:     s.accountant.Spent(),
		Remaining: s.accountant.Remaining(),
	})
}

// releaseRequest is the POST /v1/release payload.
type releaseRequest struct {
	Task    string  `json:"task"`    // universal | unattributed | laplace
	Epsilon float64 `json:"epsilon"` // privacy cost of this release
}

// releaseResponse wraps a serialized release with accounting info.
type releaseResponse struct {
	Task            string          `json:"task"`
	Epsilon         float64         `json:"epsilon"`
	Domain          int             `json:"domain"`
	Release         json.RawMessage `json:"release"`
	BudgetRemaining float64         `json:"budget_remaining"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if !(req.Epsilon > 0) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "epsilon must be positive"})
		return
	}
	if s.cfg.MaxEpsilonPerRequest > 0 && req.Epsilon > s.cfg.MaxEpsilonPerRequest {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("epsilon %v exceeds per-request cap %v", req.Epsilon, s.cfg.MaxEpsilonPerRequest)})
		return
	}
	if req.Task == "" {
		req.Task = "universal"
	}
	switch req.Task {
	case "universal", "unattributed", "laplace":
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "unknown task " + req.Task})
		return
	}
	// Charge the budget after request validation but BEFORE computing:
	// malformed requests cost nothing, and a refused charge leaks nothing
	// beyond the refusal itself.
	if err := s.accountant.Spend("release:"+req.Task, req.Epsilon); err != nil {
		if errors.Is(err, privacy.ErrBudgetExceeded) {
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var (
		payload any
		err     error
	)
	switch req.Task {
	case "universal":
		payload, err = s.mechanism.UniversalHistogram(s.cfg.Counts, req.Epsilon)
	case "unattributed":
		payload, err = s.mechanism.UnattributedHistogram(s.cfg.Counts, req.Epsilon)
	case "laplace":
		payload, err = s.mechanism.LaplaceHistogram(s.cfg.Counts, req.Epsilon)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, releaseResponse{
		Task:            req.Task,
		Epsilon:         req.Epsilon,
		Domain:          len(s.cfg.Counts),
		Release:         raw,
		BudgetRemaining: s.accountant.Remaining(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
